// Ablation A2 (design choice §IV-D): does the random-sampling phase
// earn its n x N simulations?
//
// The paper argues the sampling phase "helps find a good starting point
// ... [which] can save the optimization algorithm many iterations of
// wandering in an almost flat area reached by a random start". This
// bench runs the optimization phase on the L3 objective from
//
//   A. the best-of-sampling start (full flow), vs.
//   B. a random start with the sampling budget handed to the optimizer
//      as extra iterations (equal total simulation budget),
//
// and reports the best approximated-target value each reaches.
//
// Pass a scale factor for a quick run: ./bench_ablation_sampling 0.25
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "cdg/cdg_objective.hpp"
#include "cdg/random_sample.hpp"
#include "cdg/skeletonizer.hpp"
#include "duv/l3_cache.hpp"
#include "opt/implicit_filtering.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "Ablation: random-sampling phase vs. random start with equal budget",
      "the design rationale of paper §IV-D");

  const duv::L3Cache l3;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  const auto probe = farm.run(l3, l3.defaults(), scaled(3000), 13);
  const auto target =
      neighbors::family_target(l3.space(), "byp_reqs", probe);

  const auto suite = l3.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& tmpl : suite) {
    if (tmpl.name() == "l3_nc_smoke") seed_tmpl = &tmpl;
  }
  if (seed_tmpl == nullptr) return 1;
  const auto skeleton = cdg::Skeletonizer().skeletonize(*seed_tmpl);

  const std::size_t sample_templates = scaled(120);
  const std::size_t sample_sims = scaled(100);
  const std::size_t sims_per_point = scaled(100);
  const std::size_t opt_iterations = 12;
  const std::size_t directions = 10;
  // Sampling budget expressed as extra optimizer evaluations.
  const std::size_t sampling_evals = sample_templates * sample_sims / sims_per_point;

  util::Table table({"Variant", "seed", "start value", "best value",
                     "total sims"});
  for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    // --- A: full flow (sampling picks the start) -----------------------
    {
      cdg::RandomSampleOptions sopt;
      sopt.templates = sample_templates;
      sopt.sims_per_template = sample_sims;
      sopt.seed = seed;
      const auto sampling = cdg::random_sample(l3, farm, skeleton, target, sopt);
      cdg::CdgObjective objective(l3, farm, skeleton, target, sims_per_point);
      opt::ImplicitFilteringOptions ifopt;
      ifopt.directions = directions;
      ifopt.max_iterations = opt_iterations;
      ifopt.seed = seed;
      const auto result =
          opt::implicit_filtering(objective, sampling.best().point, ifopt);
      table.add_row({"with sampling", std::to_string(seed),
                     util::format_number(sampling.best().target_value, 4),
                     util::format_number(result.best_value, 4),
                     util::format_count(sampling.simulations +
                                        objective.simulations())});
    }
    // --- B: random start, sampling budget converted to iterations ------
    {
      util::Xoshiro256 rng(seed ^ 0xABCDULL);
      std::vector<double> x0(skeleton.mark_count());
      for (double& v : x0) v = rng.uniform();
      cdg::CdgObjective objective(l3, farm, skeleton, target, sims_per_point);
      opt::ImplicitFilteringOptions ifopt;
      ifopt.directions = directions;
      ifopt.max_iterations = 1000;  // bounded by evaluations instead
      ifopt.max_evaluations =
          sampling_evals + opt_iterations * (directions + 1);
      ifopt.seed = seed;
      const double start = objective.evaluate(x0, seed);
      const auto result = opt::implicit_filtering(objective, x0, ifopt);
      table.add_row({"random start", std::to_string(seed),
                     util::format_number(start, 4),
                     util::format_number(result.best_value, 4),
                     util::format_count(objective.simulations())});
    }
    table.add_separator();
  }
  table.render(std::cout, bench::use_color());
  std::cout << "\n(Equal simulation budgets; 'with sampling' should start "
               "higher and finish at least as high.)\n"
            << "Total simulations: "
            << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
