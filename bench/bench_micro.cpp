// Microbenchmarks (google-benchmark): throughput of every substrate the
// flow leans on — DUV simulation, template parsing/instantiation,
// sampler draws, TAC queries, coverage accumulation, and farm scaling.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <sstream>

#include "batch/sim_farm.hpp"
#include "exec/process_farm.hpp"
#include "cdg/skeletonizer.hpp"
#include "coverage/repository.hpp"
#include "flow/artifacts.hpp"
#include "flow/session.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/run_state.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "duv/ifu.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "stimgen/sampler.hpp"
#include "tac/tac.hpp"
#include "tgen/parser.hpp"
#include "util/failure.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace ascdg;

void BM_IoUnitSimulate(benchmark::State& state) {
  const duv::IoUnit io;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(io.simulate(io.defaults(), seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IoUnitSimulate);

void BM_L3CacheSimulate(benchmark::State& state) {
  const duv::L3Cache l3;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l3.simulate(l3.defaults(), seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L3CacheSimulate);

void BM_IfuSimulate(benchmark::State& state) {
  const duv::Ifu ifu;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ifu.simulate(ifu.defaults(), seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IfuSimulate);

void BM_TemplateParse(benchmark::State& state) {
  const std::string text = tgen::to_text(duv::IoUnit().defaults());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tgen::parse_template(text));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_TemplateParse);

void BM_SkeletonInstantiate(benchmark::State& state) {
  const duv::IoUnit io;
  const auto skel = cdg::Skeletonizer().skeletonize(io.defaults());
  util::Xoshiro256 rng(1);
  std::vector<double> weights(skel.mark_count());
  for (auto _ : state) {
    for (double& w : weights) w = rng.uniform();
    benchmark::DoNotOptimize(skel.instantiate("probe", weights));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkeletonInstantiate);

void BM_SamplerWeightedDraw(benchmark::State& state) {
  const duv::IoUnit io;
  util::Xoshiro256 rng(1);
  stimgen::ParameterSampler sampler(nullptr, io.defaults(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.draw("Cmd"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerWeightedDraw);

void BM_SamplerRangeDraw(benchmark::State& state) {
  const duv::IoUnit io;
  util::Xoshiro256 rng(1);
  stimgen::ParameterSampler sampler(nullptr, io.defaults(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.draw_range("GapDelay"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerRangeDraw);

void BM_CoverageRecord(benchmark::State& state) {
  const duv::Ifu ifu;  // largest space (260+ events)
  const auto vec = ifu.simulate(ifu.defaults(), 3);
  coverage::SimStats stats(ifu.space().size());
  for (auto _ : state) {
    stats.record(vec);
  }
  benchmark::DoNotOptimize(stats);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoverageRecord);

// Word-level union of one simulation's bitmap into an accumulator — the
// merge the farm's partials and the repository lean on.
void BM_CoverageOrInto(benchmark::State& state) {
  const duv::Ifu ifu;  // largest space (260+ events)
  coverage::CoverageVector acc(ifu.space().size());
  const auto vec = ifu.simulate(ifu.defaults(), 3);
  for (auto _ : state) {
    acc.merge(vec);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoverageOrInto);

void BM_CoveragePopcount(benchmark::State& state) {
  const duv::Ifu ifu;
  const auto vec = ifu.simulate(ifu.defaults(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoveragePopcount);

// One batched kernel step: a full farm-chunk-wide simulate_batch call
// with precompiled tables — the farm's unit of work minus scheduling.
// items/sec here is per-simulation kernel throughput.
void BM_DuvStep(benchmark::State& state) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  const auto compiled = io.compile(tmpl);
  constexpr std::size_t kWidth = 64;
  std::vector<std::uint64_t> seeds(kWidth);
  std::vector<coverage::CoverageVector> out(kWidth);
  std::uint64_t next = 1;
  for (auto _ : state) {
    for (auto& s : seeds) s = next++;
    io.simulate_batch(tmpl, compiled.get(), seeds, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWidth));
}
BENCHMARK(BM_DuvStep);

void BM_TacBestTemplates(benchmark::State& state) {
  const duv::IoUnit io;
  batch::SimFarm farm(2);
  coverage::CoverageRepository repo(io.space().size());
  for (const auto& tmpl : io.suite()) {
    repo.record(tmpl.name(), farm.run(io, tmpl, 50, 1));
  }
  const tac::Tac tac_view(repo);
  const auto family = io.crc_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tac_view.best_templates(events, 3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TacBestTemplates);

void BM_FarmRun(benchmark::State& state) {
  const duv::IoUnit io;
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(farm.run(io, io.defaults(), 256, seed++));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 256));
  const auto farm_stats = farm.telemetry();
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(farm_stats.steals));
}
BENCHMARK(BM_FarmRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The flow's hot shape: many independent jobs (one per sampled
// template) fanned across few workers in one run_all call.
void BM_FarmRunAll(benchmark::State& state) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(kJobs,
                                        batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kJobs * kSimsPerJob));
}
BENCHMARK(BM_FarmRunAll)->Arg(2)->Arg(8);

// BM_FarmRunAll with the metrics registry mutators short-circuited, for
// the instrumentation-overhead comparison (acceptance: enabled regresses
// < 5% vs this).
void BM_FarmRunAllMetricsOff(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(kJobs,
                                        batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kJobs * kSimsPerJob));
  obs::set_metrics_enabled(true);
}
BENCHMARK(BM_FarmRunAllMetricsOff)->Arg(2)->Arg(8);

// The refactor's throughput headline, measured in wall-clock time: the
// run_all hot shape with chunks dispatched as batch-of-seeds kernel
// calls over compiled tables. UseRealTime makes items/sec the farm's
// true sims/sec at the given worker count (the cpu-time variants above
// divide by a mostly-blocked main thread instead).
void BM_FarmRunAllBatched(benchmark::State& state) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(
      kJobs, batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kJobs * kSimsPerJob));
}
BENCHMARK(BM_FarmRunAllBatched)->Arg(1)->Arg(8)->UseRealTime();

// The fork-based process backend on the identical workload: what the
// pipe protocol + per-worker recompilation cost relative to the thread
// farm above. Reported by tools/bench_summary.py as process sims/sec
// (informational — no regression gate; the IPC overhead is the price
// of crash isolation, see docs/backends.md).
void BM_ProcessFarmRunAll(benchmark::State& state) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  exec::ProcessFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<exec::Job> jobs(kJobs, exec::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kJobs * kSimsPerJob));
}
BENCHMARK(BM_ProcessFarmRunAll)->Arg(1)->Arg(8)->UseRealTime();

/// IoUnit with compile()/simulate_batch() hidden behind the scalar
/// fallback — exactly how an external RTL wrapper presents itself, and
/// the per-simulation baseline the batched path is compared against.
class ScalarIoUnit final : public duv::Duv {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "io_unit_scalar";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return io_.space();
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return io_.defaults();
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override {
    return io_.simulate(tmpl, seed);
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return io_.suite();
  }

 private:
  duv::IoUnit io_;
};

// Scalar-dispatch baseline for BM_FarmRunAllBatched: same workload, no
// shared compiled tables, one simulate() per instance. The bench summary
// fails the CI job if batched sims/sec regresses below this.
void BM_FarmRunAllScalar(benchmark::State& state) {
  const ScalarIoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(
      kJobs, batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kJobs * kSimsPerJob));
}
BENCHMARK(BM_FarmRunAllScalar)->Arg(1)->Arg(8)->UseRealTime();

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::registry().counter("bench_counter_total", {{"bench", "micro"}});
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::Histogram& hist =
      obs::registry().histogram("bench_hist_us", {{"bench", "micro"}});
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.observe(v++);
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_TracerSpan(benchmark::State& state) {
  // /dev/null keeps memory flat however many iterations benchmark picks.
  obs::Tracer tracer(std::filesystem::path("/dev/null"));
  for (auto _ : state) {
    obs::Span span = tracer.span("bench");
    benchmark::DoNotOptimize(span.id());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerSpan);

// --- live-introspection overhead guards (acceptance: the *ServeOn /
// *RecorderOn variants regress < 5% vs their baselines above; the CI
// bench artifact archives both sides of each pair).

void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder recorder(1024);
  const std::string line(96, 'x');  // a typical trace-event width
  for (auto _ : state) {
    recorder.record(line);
  }
  benchmark::DoNotOptimize(recorder.recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlightRecorderRecord);

// BM_TracerSpan with a flight-recorder mirror attached — the delta is
// the per-event cost of keeping the crash ring warm.
void BM_TracerSpanRecorderOn(benchmark::State& state) {
  obs::FlightRecorder recorder(1024);
  obs::Tracer tracer(std::filesystem::path("/dev/null"));
  tracer.mirror_to(&recorder);
  for (auto _ : state) {
    obs::Span span = tracer.span("bench");
    benchmark::DoNotOptimize(span.id());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerSpanRecorderOn);

// One full /metrics scrape against a registry shaped like a real run
// (a few dozen series) — bounds what a 1 Hz Prometheus poller costs.
void BM_HttpMetricsScrape(benchmark::State& state) {
  obs::Registry reg;
  for (int i = 0; i < 24; ++i) {
    reg.counter("bench_scrape_total", {{"series", std::to_string(i)}})
        .add(static_cast<std::uint64_t>(i));
    reg.histogram("bench_scrape_us", {{"series", std::to_string(i)}})
        .observe(static_cast<std::uint64_t>(i) * 17);
  }
  obs::HttpServerConfig config;
  config.registry = &reg;
  obs::HttpServer server(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle("GET", "/metrics"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HttpMetricsScrape);

// BM_FarmRunAll with the introspection service live: HTTP server
// accepting scrapes on its own thread while the farm saturates the
// workers. The delta vs BM_FarmRunAll is the serve-mode overhead.
void BM_FarmRunAllServeOn(benchmark::State& state) {
  obs::HttpServerConfig http_config;
  obs::HttpServer server(http_config);
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(kJobs,
                                        batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kJobs * kSimsPerJob));
}
BENCHMARK(BM_FarmRunAllServeOn)->Arg(2)->Arg(8);

// One durable optimizer-iteration checkpoint: serialize a realistically
// sized IfCheckpoint (20-dim template space, 10 completed iterations)
// and write it atomically (temp + rename) into a session directory.
// This is the only extra cost a sessioned run pays per optimizer
// iteration, so it must stay negligible next to the iteration's
// simulation budget (thousands of sims).
void BM_SessionCheckpoint(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  opt::IfCheckpoint ckpt;
  ckpt.next_iteration = 10;
  ckpt.center.assign(dim, 0.333333333333);
  ckpt.center_value = 0.125;
  ckpt.step = 0.05;
  ckpt.evaluations = 10 * (dim + 1);
  ckpt.best_point.assign(dim, 0.666666666666);
  ckpt.best_value = 0.25;
  ckpt.rng_state = {0xDEADBEEFCAFEBABEULL, 0x123456789ABCDEF0ULL, 42ULL, 7ULL};
  ckpt.eval_seed_counter = 1234;
  for (std::size_t i = 0; i < 10; ++i) {
    opt::IterationRecord record;
    record.iteration = i;
    record.center_value = 0.01 * static_cast<double>(i);
    record.evaluations = (i + 1) * (dim + 1);
    ckpt.trace.push_back(record);
  }
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ascdg_bench_session";
  const std::filesystem::path file = dir / "optimization.ckpt.json";
  for (auto _ : state) {
    flow::atomic_write_file(file, flow::to_json(ckpt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SessionCheckpoint)->Arg(20)->Arg(100);

// Same checkpoint write with fsync elided: the gap to
// BM_SessionCheckpoint is the price of the durability guarantee, and
// this variant is what a profile of "atomic write minus the disk" looks
// like. Both must stay cheap relative to an optimizer iteration.
void BM_SessionCheckpointNoFsync(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  opt::IfCheckpoint ckpt;
  ckpt.next_iteration = 10;
  ckpt.center.assign(dim, 0.333333333333);
  ckpt.center_value = 0.125;
  ckpt.step = 0.05;
  ckpt.evaluations = 10 * (dim + 1);
  ckpt.best_point.assign(dim, 0.666666666666);
  ckpt.best_value = 0.25;
  ckpt.rng_state = {0xDEADBEEFCAFEBABEULL, 0x123456789ABCDEF0ULL, 42ULL, 7ULL};
  ckpt.eval_seed_counter = 1234;
  for (std::size_t i = 0; i < 10; ++i) {
    opt::IterationRecord record;
    record.iteration = i;
    record.center_value = 0.01 * static_cast<double>(i);
    record.evaluations = (i + 1) * (dim + 1);
    ckpt.trace.push_back(record);
  }
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ascdg_bench_session_nofsync";
  const std::filesystem::path file = dir / "optimization.ckpt.json";
  const std::string json = flow::to_json(ckpt);
  for (auto _ : state) {
    util::atomic_write_file(file, json, util::Durability::kNoFsync);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SessionCheckpointNoFsync)->Arg(20)->Arg(100);

// The disarmed fast path of a failure point: one relaxed atomic load.
// Injection sites sit on every write/fsync/rename and inside the HTTP
// serve loop, so this must stay indistinguishable from free — the CI
// overhead guard watches it.
void BM_FailurePointCheckOff(benchmark::State& state) {
  util::FailurePoint::disarm_all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::FailurePoint::check(util::FailurePoint::Id::kAtomicWriteFsync));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FailurePointCheckOff);

// One telemetry sample: registry snapshot + line render + ring slot
// (memory-only; the file append is the session's problem, not the
// sampler's). This is what --timeline costs the run per interval, so
// it must stay far below any sane sampling period.
void BM_TimeSeriesSample(benchmark::State& state) {
  obs::Registry reg;
  // A realistic registry shape: per-farm counters, cache counters,
  // busy gauges, latency histograms.
  for (int farm = 0; farm < 4; ++farm) {
    const std::string id = std::to_string(farm);
    reg.counter("ascdg_farm_simulations_total", {{"farm", id}}).add(100'000);
    reg.gauge("ascdg_farm_worker_busy_fraction", {{"farm", id}}).set(900'000);
    auto& hist = reg.histogram("ascdg_farm_chunk_latency_us", {{"farm", id}});
    for (std::uint64_t v = 1; v < 4096; v *= 2) hist.observe(v);
  }
  reg.counter("ascdg_eval_cache_hits_total").add(5'000);
  reg.counter("ascdg_eval_cache_misses_total").add(1'000);
  obs::RunState run;
  run.start_flow("bench");
  run.enter_phase("optimization");
  obs::TimeSeriesConfig config;
  config.start_thread = false;
  config.registry = &reg;
  config.run_state = &run;
  config.mirror_to_recorder = false;
  obs::TimeSeriesRecorder recorder(config);
  for (auto _ : state) {
    recorder.sample_now();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesSample);

void BM_XoshiroU64(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_XoshiroU64);

}  // namespace

int main(int argc, char** argv) {
  ascdg::util::set_log_level(ascdg::util::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
