// Microbenchmarks (google-benchmark): throughput of every substrate the
// flow leans on — DUV simulation, template parsing/instantiation,
// sampler draws, TAC queries, coverage accumulation, and farm scaling.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <sstream>

#include "batch/sim_farm.hpp"
#include "cdg/skeletonizer.hpp"
#include "coverage/repository.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "duv/ifu.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "stimgen/sampler.hpp"
#include "tac/tac.hpp"
#include "tgen/parser.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace ascdg;

void BM_IoUnitSimulate(benchmark::State& state) {
  const duv::IoUnit io;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(io.simulate(io.defaults(), seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IoUnitSimulate);

void BM_L3CacheSimulate(benchmark::State& state) {
  const duv::L3Cache l3;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l3.simulate(l3.defaults(), seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L3CacheSimulate);

void BM_IfuSimulate(benchmark::State& state) {
  const duv::Ifu ifu;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ifu.simulate(ifu.defaults(), seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IfuSimulate);

void BM_TemplateParse(benchmark::State& state) {
  const std::string text = tgen::to_text(duv::IoUnit().defaults());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tgen::parse_template(text));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_TemplateParse);

void BM_SkeletonInstantiate(benchmark::State& state) {
  const duv::IoUnit io;
  const auto skel = cdg::Skeletonizer().skeletonize(io.defaults());
  util::Xoshiro256 rng(1);
  std::vector<double> weights(skel.mark_count());
  for (auto _ : state) {
    for (double& w : weights) w = rng.uniform();
    benchmark::DoNotOptimize(skel.instantiate("probe", weights));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkeletonInstantiate);

void BM_SamplerWeightedDraw(benchmark::State& state) {
  const duv::IoUnit io;
  util::Xoshiro256 rng(1);
  stimgen::ParameterSampler sampler(nullptr, io.defaults(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.draw("Cmd"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerWeightedDraw);

void BM_SamplerRangeDraw(benchmark::State& state) {
  const duv::IoUnit io;
  util::Xoshiro256 rng(1);
  stimgen::ParameterSampler sampler(nullptr, io.defaults(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.draw_range("GapDelay"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerRangeDraw);

void BM_CoverageRecord(benchmark::State& state) {
  const duv::Ifu ifu;  // largest space (260+ events)
  const auto vec = ifu.simulate(ifu.defaults(), 3);
  coverage::SimStats stats(ifu.space().size());
  for (auto _ : state) {
    stats.record(vec);
  }
  benchmark::DoNotOptimize(stats);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoverageRecord);

void BM_TacBestTemplates(benchmark::State& state) {
  const duv::IoUnit io;
  batch::SimFarm farm(2);
  coverage::CoverageRepository repo(io.space().size());
  for (const auto& tmpl : io.suite()) {
    repo.record(tmpl.name(), farm.run(io, tmpl, 50, 1));
  }
  const tac::Tac tac_view(repo);
  const auto family = io.crc_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tac_view.best_templates(events, 3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TacBestTemplates);

void BM_FarmRun(benchmark::State& state) {
  const duv::IoUnit io;
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(farm.run(io, io.defaults(), 256, seed++));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 256));
  const auto farm_stats = farm.telemetry();
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(farm_stats.steals));
}
BENCHMARK(BM_FarmRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The flow's hot shape: many independent jobs (one per sampled
// template) fanned across few workers in one run_all call.
void BM_FarmRunAll(benchmark::State& state) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(kJobs,
                                        batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kJobs * kSimsPerJob));
}
BENCHMARK(BM_FarmRunAll)->Arg(2)->Arg(8);

// BM_FarmRunAll with the metrics registry mutators short-circuited, for
// the instrumentation-overhead comparison (acceptance: enabled regresses
// < 5% vs this).
void BM_FarmRunAllMetricsOff(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  batch::SimFarm farm(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kSimsPerJob = 64;
  std::vector<batch::SimFarm::Job> jobs(kJobs,
                                        batch::SimFarm::Job{&tmpl, kSimsPerJob, 0});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (auto& job : jobs) job.seed_root = seed++;
    benchmark::DoNotOptimize(farm.run_all(io, jobs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kJobs * kSimsPerJob));
  obs::set_metrics_enabled(true);
}
BENCHMARK(BM_FarmRunAllMetricsOff)->Arg(2)->Arg(8);

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::registry().counter("bench_counter_total", {{"bench", "micro"}});
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::Histogram& hist =
      obs::registry().histogram("bench_hist_us", {{"bench", "micro"}});
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.observe(v++);
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_TracerSpan(benchmark::State& state) {
  // /dev/null keeps memory flat however many iterations benchmark picks.
  obs::Tracer tracer(std::filesystem::path("/dev/null"));
  for (auto _ : state) {
    obs::Span span = tracer.span("bench");
    benchmark::DoNotOptimize(span.id());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerSpan);

void BM_XoshiroU64(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_XoshiroU64);

}  // namespace

int main(int argc, char** argv) {
  ascdg::util::set_log_level(ascdg::util::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
