// Reproduces paper Fig. 6: "Optimization progress on the L3 example" —
// the maximal value of the (approximated) target function per implicit-
// filtering iteration.
//
// Expected shape: gradual progress toward a (local) maximum, with
// sampling-noise wobbles that the algorithm absorbs (the paper calls
// out a noise peak at iteration 10 that the optimizer recovers from).
//
// Pass a scale factor for a quick run: ./bench_fig6_opt_progress 0.2
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "duv/l3_cache.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "Implicit-filtering progress on the L3 byp_reqs objective",
      "Fig. 6 of the paper");

  const duv::L3Cache l3;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  // Target: the whole byp_reqs family, uncovered tail as real targets
  // (same setup as the Fig. 4 run, without the huge Before phase).
  coverage::SimStats probe = farm.run(l3, l3.defaults(), scaled(2000), 77);
  const auto target =
      neighbors::family_target(l3.space(), "byp_reqs", probe);

  // Seed template: the suite's nc_read/dma smoke test (what the coarse
  // search selects on this unit).
  const auto suite = l3.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& tmpl : suite) {
    if (tmpl.name() == "l3_nc_smoke") seed_tmpl = &tmpl;
  }
  if (seed_tmpl == nullptr) return 1;

  flow::FlowConfig config;
  config.sample_templates = scaled(210);
  config.sample_sims = scaled(100);
  config.opt_directions = 11;
  config.opt_sims_per_point = scaled(100);
  config.opt_max_iterations = 25;
  config.opt_min_step = 1e-5;
  config.harvest_sims = 0;  // this bench only studies the trace
  config.seed = 6;
  flow::CdgRunner runner(l3, farm, config);
  const auto result = runner.run_from_template(target, *seed_tmpl);

  std::cout << "Max target value per optimization iteration:\n\n";
  report::render_trace(std::cout, result.optimization, 18);

  std::cout << "\niter  center_value  best_value  step      moved\n";
  for (const auto& record : result.optimization.trace) {
    std::printf("%4zu  %12.4f  %10.4f  %8.5f  %s\n", record.iteration + 1,
                record.center_value, record.best_value, record.step,
                record.moved ? "yes" : "no");
  }
  std::cout << "\nStop reason: " << to_string(result.optimization.reason)
            << "  |  evaluations: " << result.optimization.evaluations
            << "  |  total sims: "
            << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
