// Ablation A3 (§IV-E): implicit-filtering hyperparameters on a
// CDG-shaped synthetic objective (BernoulliHill — empirical mean of N
// Bernoulli draws of a hit probability that decays with distance).
//
// Sweeps: N (samples per point), n (directions per iteration), h
// (initial stencil size), and center resampling on/off. Reports the
// true hit probability at the returned point and the total Bernoulli
// draws (the "simulations" cost), averaged over seeds.
//
// Expected shape: larger N reduces noise and improves the found point
// at proportionally higher cost; too-small h converges slowly from a
// distant start; center resampling helps at small N.
#include <cstdio>

#include "bench_common.hpp"
#include "opt/implicit_filtering.hpp"
#include "opt/synthetic.hpp"

namespace {

using namespace ascdg;

struct Row {
  double mean_p = 0.0;
  double mean_draws = 0.0;
};

Row run_config(std::size_t n_dirs, double h, std::size_t samples,
               bool resample) {
  const std::vector<double> optimum{0.75, 0.25, 0.6};
  const std::vector<double> x0{0.2, 0.8, 0.2};
  Row row;
  constexpr int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    opt::BernoulliHill objective(optimum, 0.6, 5.0, samples);
    opt::ImplicitFilteringOptions options;
    options.directions = n_dirs;
    options.initial_step = h;
    options.max_iterations = 40;
    options.min_step = 1e-4;
    options.resample_center = resample;
    options.seed = static_cast<std::uint64_t>(1000 + s);
    const auto result = opt::implicit_filtering(objective, x0, options);
    row.mean_p += objective.hit_probability(result.best_point);
    row.mean_draws += static_cast<double>(objective.draws());
  }
  row.mean_p /= kSeeds;
  row.mean_draws /= kSeeds;
  return row;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "Ablation: implicit-filtering hyperparameters (N, n, h, resampling)",
      "the hyperparameter discussion of paper §IV-E");
  bench::Stopwatch watch;

  std::cout << "True peak hit probability: 0.600; start ~0.011\n";

  std::cout << "\n-- N (samples per point; n=10, h=0.25, resampling on) --\n";
  util::Table n_table({"N", "mean true p at result", "mean draws"});
  for (const std::size_t samples : {10u, 50u, 200u, 800u}) {
    const Row row = run_config(10, 0.25, samples, true);
    n_table.add_row({std::to_string(samples),
                     util::format_number(row.mean_p, 4),
                     util::format_count(static_cast<std::size_t>(row.mean_draws))});
  }
  n_table.render(std::cout, bench::use_color());

  std::cout << "\n-- n (directions; N=100, h=0.25) --\n";
  util::Table d_table({"n", "mean true p at result", "mean draws"});
  for (const std::size_t dirs : {2u, 4u, 8u, 16u, 32u}) {
    const Row row = run_config(dirs, 0.25, 100, true);
    d_table.add_row({std::to_string(dirs),
                     util::format_number(row.mean_p, 4),
                     util::format_count(static_cast<std::size_t>(row.mean_draws))});
  }
  d_table.render(std::cout, bench::use_color());

  std::cout << "\n-- h (initial stencil; N=100, n=10) --\n";
  util::Table h_table({"h", "mean true p at result", "mean draws"});
  for (const double h : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    const Row row = run_config(10, h, 100, true);
    h_table.add_row({util::format_number(h, 3),
                     util::format_number(row.mean_p, 4),
                     util::format_count(static_cast<std::size_t>(row.mean_draws))});
  }
  h_table.render(std::cout, bench::use_color());

  std::cout << "\n-- direction mode (20-dim hill, N=100, n=10, h=0.3, "
               "patience 3) --\n";
  {
    // High-dimensional variant: the regime of real merged skeletons.
    std::vector<double> optimum(20, 0.3);
    optimum[3] = 0.9;
    optimum[11] = 0.8;
    const std::vector<double> x0(20, 0.6);
    util::Table m_table({"direction mode", "mean true p at result",
                         "mean draws"});
    const std::pair<const char*, opt::DirectionMode> modes[] = {
        {"random sphere", opt::DirectionMode::kRandomSphere},
        {"coordinate", opt::DirectionMode::kCoordinate},
        {"rademacher", opt::DirectionMode::kRademacher},
        {"sparse", opt::DirectionMode::kSparse},
    };
    for (const auto& [label, mode] : modes) {
      double mean_p = 0.0, mean_draws = 0.0;
      constexpr int kSeeds = 5;
      for (int sd = 0; sd < kSeeds; ++sd) {
        // Gentler decay than the 3-dim sweeps: in 20 dimensions the
        // start is far from the optimum, and the point of this sweep is
        // how the modes *travel*, not whether any signal exists at all.
        opt::BernoulliHill objective(optimum, 0.6, 1.2, 100);
        opt::ImplicitFilteringOptions options;
        options.directions = 10;
        options.initial_step = 0.3;
        options.max_iterations = 40;
        options.min_step = 1e-4;
        options.halve_patience = 3;
        options.direction_mode = mode;
        options.seed = static_cast<std::uint64_t>(3000 + sd);
        const auto result = opt::implicit_filtering(objective, x0, options);
        mean_p += objective.hit_probability(result.best_point);
        mean_draws += static_cast<double>(objective.draws());
      }
      m_table.add_row({label, util::format_number(mean_p / kSeeds, 4),
                       util::format_count(
                           static_cast<std::size_t>(mean_draws / kSeeds))});
    }
    m_table.render(std::cout, bench::use_color());
  }

  std::cout << "\n-- center resampling (N=25 to make noise matter) --\n";
  util::Table r_table({"resample center", "mean true p at result",
                       "mean draws"});
  for (const bool resample : {true, false}) {
    const Row row = run_config(10, 0.25, 25, resample);
    r_table.add_row({resample ? "on" : "off",
                     util::format_number(row.mean_p, 4),
                     util::format_count(static_cast<std::size_t>(row.mean_draws))});
  }
  r_table.render(std::cout, bench::use_color());

  std::cout << "\nWall time: " << watch.seconds() << " s\n";
  return 0;
}
