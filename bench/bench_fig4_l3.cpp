// Reproduces paper Fig. 4: "Hit statistics for a family of events in a
// processor's L3 unit" — the 16-event byp_reqs buffer-fill family.
//
// Paper budgets: Before CDG 1,000,000 sims; Sampling 210 tests x 100
// sims; Optimization 25 iterations x 12 tests x 100 sims; Best test
// 15,000 sims.
//
// Expected shape: before CDG ~5 events hit and a long never-hit tail;
// the sampling phase alone converts most of the middle of the family;
// optimization pushes the tail (byp_reqs16 stays borderline); the
// harvested test shows the best per-sim rates with a smooth monotone
// gradient down the family.
//
// Pass a scale factor for a quick run: ./bench_fig4_l3 0.1
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "duv/l3_cache.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header("AS-CDG on the L3 cache: byp_reqs family closure",
                      "Fig. 4 of the paper");

  const duv::L3Cache l3;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  // Before CDG: ~1,000,000 sims across the 9-template regression suite.
  const auto repo =
      bench::build_before_repo(l3, farm, scaled(111200), 0xF164);

  const auto target =
      neighbors::family_target(l3.space(), "byp_reqs", repo.total());
  std::cout << "Uncovered byp_reqs events before CDG: "
            << target.targets().size() << '\n';

  flow::FlowConfig config;
  config.sample_templates = scaled(210);
  config.sample_sims = scaled(100);
  config.opt_directions = 11;  // + center resample = 12 tests/iteration
  config.opt_sims_per_point = scaled(100);
  config.opt_max_iterations = 25;
  config.opt_min_step = 1e-4;
  config.harvest_sims = scaled(15000);
  config.seed = 4;

  flow::CdgRunner runner(l3, farm, config);
  const auto suite = l3.suite();
  const auto result = runner.run(target, repo, suite);

  std::cout << "Seed template (coarse search): " << result.seed_template
            << "\n"
            << report::phase_caption(result) << "\n\n";

  const auto family = l3.byp_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  report::phase_table(l3.space(), events, result)
      .render(std::cout, bench::use_color());

  std::cout << "\nStatus summary per phase:\n";
  report::status_table(l3.space(), events, result)
      .render(std::cout, bench::use_color());

  std::cout << "\nHarvested test-template:\n"
            << tgen::to_text(result.best_template) << '\n'
            << "Total simulations: "
            << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
