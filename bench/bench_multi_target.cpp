// Extension experiment A5 (paper §VI future work): "reduce the number
// of simulations per event by using the same simulations for several
// target events".
//
// Setup: three separate CDG problems on the I/O unit — hit crc_016,
// crc_032, and crc_064 — each with its own approximated target. Two
// strategies at equal per-target optimization budgets:
//
//   A. independent flows: each target pays its own sampling phase;
//   B. shared sampling (run_multi_target): one sampling phase, each
//      target re-scores the same sampled statistics for its own start.
//
// Expected shape: B saves (K-1) x sampling simulations while losing
// little or nothing in harvested quality, because the sampling phase's
// per-template statistics contain every target's evidence.
//
// Pass a scale factor for a quick run: ./bench_multi_target 0.25
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "flow/campaign.hpp"
#include "duv/io_unit.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "Extension: shared sampling across several targets",
      "the future-work direction of paper §VI");

  const duv::IoUnit io;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  const auto family = io.crc_family();
  // Three related-but-distinct targets, each with its distance-weighted
  // family backing.
  const auto make_target = [&](std::size_t target_index) {
    std::vector<tac::WeightedEvent> weighted;
    for (std::size_t i = 0; i < family.size(); ++i) {
      const std::size_t dist = i > target_index ? i - target_index
                                                : target_index - i;
      weighted.push_back(
          {family[i],
           dist == 0 ? 2.0 : 1.0 / (1.0 + static_cast<double>(dist))});
    }
    return neighbors::ApproximatedTarget({family[target_index]},
                                         std::move(weighted));
  };
  const std::vector<neighbors::ApproximatedTarget> targets{
      make_target(2), make_target(3), make_target(4)};

  // Seed: the merged template the coarse-grained search selects on this
  // unit (crc smoke + long-gap pacing + mixed), built the same way
  // CdgRunner::run merges the TAC top-3.
  const auto suite = io.suite();
  tgen::TestTemplate merged_seed("io_crc_smoke+io_crc_long_gap+io_mixed");
  for (const char* name : {"io_crc_smoke", "io_crc_long_gap", "io_mixed"}) {
    for (const auto& tmpl : suite) {
      if (tmpl.name() != name) continue;
      for (const auto& param : tmpl.parameters()) {
        if (!merged_seed.contains(tgen::parameter_name(param))) {
          merged_seed.add(param);
        }
      }
    }
  }
  const tgen::TestTemplate* seed = &merged_seed;

  flow::FlowConfig config;
  config.sample_templates = scaled(200);
  config.sample_sims = scaled(100);
  config.opt_directions = 12;
  config.opt_sims_per_point = scaled(150);
  config.opt_max_iterations = 20;
  config.harvest_sims = scaled(4000);
  config.seed = 8;

  // --- A: independent flows ---------------------------------------------
  const std::size_t sims_before_a = farm.total_simulations();
  flow::CdgRunner runner(io, farm, config);
  std::vector<double> independent_quality;
  for (const auto& target : targets) {
    const auto result = runner.run_from_template(target, *seed);
    independent_quality.push_back(
        target.real_value(result.harvest_phase.stats));
  }
  const std::size_t independent_sims = farm.total_simulations() - sims_before_a;

  // --- B: shared sampling --------------------------------------------------
  const std::size_t sims_before_b = farm.total_simulations();
  const auto shared = flow::run_multi_target(io, farm, config, targets, *seed);
  const std::size_t shared_sims = farm.total_simulations() - sims_before_b;

  util::Table table({"Target", "independent: real value",
                     "shared sampling: real value"});
  for (std::size_t t = 0; t < targets.size(); ++t) {
    table.add_row(
        {io.space().name(targets[t].targets()[0]),
         util::format_number(independent_quality[t], 4),
         util::format_number(targets[t].real_value(
                                 shared.per_target[t].harvest_phase.stats),
                             4)});
  }
  table.render(std::cout, bench::use_color());

  std::cout << "\nSimulation cost for " << targets.size() << " targets:\n"
            << "  independent flows: " << util::format_count(independent_sims)
            << " sims\n"
            << "  shared sampling:   " << util::format_count(shared_sims)
            << " sims (saved "
            << util::format_count(shared.sims_saved)
            << " by reusing the sampling phase)\n"
            << "Wall time: " << watch.seconds() << " s\n";
  return 0;
}
