// Ablation A1 (design choice §IV-A): approximated target vs. raw target.
//
// The paper's central trick is replacing the real objective — the hit
// rate of the *uncovered* events, which is identically zero everywhere
// the search can see — with a weighted family objective that has a
// usable gradient. This bench runs the same sampling+optimization
// budget on the L3 unit twice:
//
//   A. approximated target (whole byp_reqs family), and
//   B. raw target (only the uncovered tail events),
//
// then harvests both best templates and reports the real-target value
// (hit rate summed over the originally-uncovered events) each achieves.
// Expected shape: A finds templates that hit the uncovered events; B
// wanders in the flat zero landscape and harvests little or nothing.
//
// Pass a scale factor for a quick run: ./bench_ablation_target 0.25
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "duv/l3_cache.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "Ablation: approximated target vs. raw (uncovered-only) target",
      "the design rationale of paper §IV-A");

  const duv::L3Cache l3;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  // The SS-IV-A scenario is a target with a complete lack of evidence:
  // the deepest three events of the family (byp_reqs14..16), which
  // nothing short of a near-optimal template ever hits. The
  // approximated target backs them with the whole (distance-weighted)
  // family; the raw target is just the three events themselves — a flat
  // zero landscape almost everywhere the search can see.
  const auto family = l3.byp_family();
  std::vector<coverage::EventId> deep(family.end() - 3, family.end());
  std::vector<tac::WeightedEvent> weighted;
  for (std::size_t i = 0; i < family.size(); ++i) {
    const std::size_t dist =
        family.size() - 3 > i ? family.size() - 3 - i : 0;
    weighted.push_back(
        {family[i], dist == 0 ? 2.0 : 1.0 / (1.0 + static_cast<double>(dist))});
  }
  const neighbors::ApproximatedTarget approx(deep, weighted);
  std::vector<tac::WeightedEvent> raw_events;
  for (const auto event : deep) raw_events.push_back({event, 1.0});
  const neighbors::ApproximatedTarget raw(deep, raw_events);

  std::cout << "Target events (never hit without CDG):";
  for (const auto event : deep) std::cout << ' ' << l3.space().name(event);
  std::cout << "\n\n";

  const auto suite = l3.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& tmpl : suite) {
    if (tmpl.name() == "l3_nc_smoke") seed_tmpl = &tmpl;
  }
  if (seed_tmpl == nullptr) return 1;

  util::Table table({"Objective", "seed", "best T_N during opt",
                     "harvest: real-target value", "harvest: targets hit"});
  constexpr std::uint64_t kSeeds[3] = {11, 22, 33};
  for (const auto* variant : {"approximated", "raw"}) {
    const auto& target = std::string_view(variant) == "raw" ? raw : approx;
    for (const std::uint64_t seed : kSeeds) {
      flow::FlowConfig config;
      config.sample_templates = scaled(120);
      config.sample_sims = scaled(80);
      config.opt_directions = 10;
      config.opt_sims_per_point = scaled(100);
      config.opt_max_iterations = 20;
      config.harvest_sims = scaled(8000);
      config.seed = seed;
      flow::CdgRunner runner(l3, farm, config);
      const auto result = runner.run_from_template(target, *seed_tmpl);
      std::size_t hit_targets = 0;
      for (const auto event : approx.targets()) {
        if (result.harvest_phase.stats.hits(event) > 0) ++hit_targets;
      }
      table.add_row({std::string(variant), std::to_string(seed),
                     util::format_number(result.optimization.best_value, 4),
                     util::format_number(
                         approx.real_value(result.harvest_phase.stats), 4),
                     std::to_string(hit_targets) + "/" +
                         std::to_string(approx.targets().size())});
    }
    table.add_separator();
  }
  table.render(std::cout, bench::use_color());
  std::cout << "\nTotal simulations: "
            << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
