// Reproduces paper Fig. 3: "Hit statistics for a family of events in
// one of the I/O units".
//
// Paper budgets: Before CDG 669,000 sims; Sampling 200 tests x 100 sims;
// Optimization 7 iterations x 20 tests x 200 sims; Best test 10,000
// sims. We use the same budgets except the iteration count: our merged
// skeleton exposes 22 tunable settings, and the implicit-filtering
// search needs ~25 iterations (the paper's Fig. 4 budget) to walk that
// space to the deep tail; at 7 iterations it stops around crc_032.
// The Before column simulates the unit's 10-template regression suite
// 66,900 times each.
//
// Expected shape (not absolute numbers): the crc family starts with a
// steep gradient (crc_004 well hit, crc_032 lightly, crc_064/096 never);
// sampling nudges the tail, optimization turns most of it well-hit, and
// the harvested best test dominates per-sim, with crc_096 still the
// hardest.
//
// Pass a scale factor (0 < s <= 1) to shrink every budget for a quick
// run: ./bench_fig3_io_unit 0.1
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "duv/io_unit.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header("AS-CDG on the I/O unit: crc_* family closure",
                      "Fig. 3 of the paper");

  const duv::IoUnit io;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  // Before CDG: 669,000 sims across the regression suite.
  const auto repo =
      bench::build_before_repo(io, farm, scaled(66900), 0xF1603);

  const auto target =
      neighbors::family_target(io.space(), "crc", repo.total());
  std::cout << "Uncovered crc events before CDG: " << target.targets().size()
            << '\n';

  flow::FlowConfig config;
  config.sample_templates = scaled(200);
  config.sample_sims = scaled(100);
  config.opt_directions = 19;  // + center resample = 20 tests/iteration
  config.opt_sims_per_point = scaled(200);
  config.opt_max_iterations = 25;
  config.opt_min_step = 1e-4;
  config.harvest_sims = scaled(10000);
  config.seed = 3;

  flow::CdgRunner runner(io, farm, config);
  const auto suite = io.suite();
  const auto result = runner.run(target, repo, suite);

  std::cout << "Seed template (coarse search): " << result.seed_template
            << "\n"
            << report::phase_caption(result) << "\n\n";

  const auto family = io.crc_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  report::phase_table(io.space(), events, result)
      .render(std::cout, bench::use_color());

  std::cout << "\nStatus summary per phase:\n";
  report::status_table(io.space(), events, result)
      .render(std::cout, bench::use_color());

  std::cout << "\nHarvested test-template:\n"
            << tgen::to_text(result.best_template) << '\n'
            << "Total simulations: " << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
