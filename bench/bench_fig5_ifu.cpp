// Reproduces paper Fig. 5: "Event status while running AS-CDG on a
// cross-product (IFU)" — 256 events = entry(0-7) x thread(0-3) x
// sector(0-3) x branch(0-1), shown as a per-phase status histogram.
//
// Expected shape: many events uncovered before CDG; the sampling phase
// hits a large fraction of them; the optimization phase makes most
// events well hit; exactly 32 events (all entry7) remain uncovered at
// the end of the flow — they are out of the unit's capabilities
// (structural credit cap at 7 buffer entries).
//
// Pass a scale factor for a quick run: ./bench_fig5_ifu 0.1
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "duv/ifu.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "AS-CDG on the IFU: 256-event cross-product closure",
      "Fig. 5 of the paper");

  const duv::Ifu ifu;
  exec::ThreadFarm farm;
  bench::Stopwatch watch;

  // ~40k regression sims: enough to cover what the suite can cover
  // while leaving the cross product's hard corners red, as in the
  // paper's "Before CDG" bar.
  const auto repo = bench::build_before_repo(ifu, farm, scaled(5000), 0xF165);
  const auto target =
      neighbors::family_target(ifu.space(), "ifu", repo.total());
  const auto family = ifu.space().family_events("ifu");
  std::cout << "Cross product events: " << family.size()
            << "; uncovered before CDG: " << target.targets().size() << '\n';

  flow::FlowConfig config;
  config.sample_templates = scaled(150);
  config.sample_sims = scaled(100);
  config.opt_directions = 14;  // + center resample = 15 tests/iteration
  config.opt_sims_per_point = scaled(150);
  config.opt_max_iterations = 12;
  config.opt_min_step = 1e-4;
  config.harvest_sims = scaled(10000);
  config.seed = 5;

  flow::CdgRunner runner(ifu, farm, config);
  const auto suite = ifu.suite();
  const auto result = runner.run(target, repo, suite);

  std::cout << "Seed template (coarse search): " << result.seed_template
            << "\n"
            << report::phase_caption(result) << "\n\n"
            << "Event status per phase (# never, = lightly, + well):\n";
  report::render_status_bars(std::cout, family, result, bench::use_color());
  std::cout << '\n';
  report::status_table(ifu.space(), family, result)
      .render(std::cout, bench::use_color());

  // End-of-flow cumulative coverage: everything the flow's own
  // simulations (sampling + optimization + harvest) hit. This is the
  // "at the end of the flow" status the paper's text describes.
  coverage::SimStats cumulative = result.sampling_phase.stats;
  cumulative.merge(result.optimization_phase.stats);
  cumulative.merge(result.harvest_phase.stats);
  const auto end_counts = report::count_status(cumulative, family);
  std::cout << "\nEnd of flow (cumulative over all flow phases): never="
            << end_counts.never << " lightly=" << end_counts.lightly
            << " well=" << end_counts.well << '\n';

  // The honest negative result: entry7 events stay at zero.
  const auto& cp = ifu.cross_product();
  std::size_t entry7_never = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::size_t coords[4] = {7, t, s, b};
        if (result.harvest_phase.stats.hits(
                ifu.space().cross_event(cp, coords)) == 0) {
          ++entry7_never;
        }
      }
    }
  }
  std::cout << "\nentry7 events never hit (paper: 32, out of unit "
               "capabilities): "
            << entry7_never << '\n'
            << "Total simulations: "
            << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
