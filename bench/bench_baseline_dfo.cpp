// Baseline comparison A4: implicit filtering vs. random search vs.
// coordinate (compass) search vs. Nelder-Mead, at equal evaluation
// budgets, on (a) the CDG-shaped synthetic BernoulliHill and (b) the
// real L3 bypass objective.
//
// This is the comparison that motivates the paper's optimizer choice
// (via Gal et al., "How to catch a lion in the desert" [5]): on noisy
// black-box objectives, implicit filtering should match or beat the
// baselines, with random search far behind at equal budget.
//
// Pass a scale factor for a quick run: ./bench_baseline_dfo 0.25
#include <cstdlib>

#include "exec/thread_farm.hpp"
#include "bench_common.hpp"
#include "cdg/cdg_objective.hpp"
#include "cdg/skeletonizer.hpp"
#include "duv/l3_cache.hpp"
#include "opt/baselines.hpp"
#include "opt/implicit_filtering.hpp"
#include "opt/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using namespace ascdg;

struct Outcome {
  double mean_best = 0.0;   ///< noisy observed best (winner's-curse biased)
  double mean_true = 0.0;   ///< clean re-evaluation of the returned point
  double mean_evals = 0.0;
};

// `true_value(objective, point)` must return a noise-free (or
// high-precision) assessment of the returned point — the honest metric;
// the observed best is also reported to show the winner's-curse gap.
template <typename MakeObjective, typename Runner, typename TrueValue>
Outcome average_over_seeds(MakeObjective make_objective, Runner run,
                           TrueValue true_value, int seeds) {
  Outcome outcome;
  for (int s = 0; s < seeds; ++s) {
    auto objective = make_objective(s);
    const auto result = run(*objective, static_cast<std::uint64_t>(s + 1));
    outcome.mean_best += result.best_value;
    outcome.mean_true += true_value(*objective, result.best_point);
    outcome.mean_evals += static_cast<double>(result.evaluations);
  }
  outcome.mean_best /= seeds;
  outcome.mean_true /= seeds;
  outcome.mean_evals /= seeds;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_header(
      "DFO baseline comparison at equal evaluation budget",
      "the optimizer-selection rationale of paper §IV-E / [5]");
  bench::Stopwatch watch;

  constexpr std::size_t kBudget = 200;  // objective evaluations per run
  constexpr int kSeeds = 5;

  // ---------------- (a) synthetic BernoulliHill -------------------------
  std::cout << "(a) BernoulliHill, dim 3, peak 0.6, N=100 per evaluation\n";
  const std::vector<double> x0{0.2, 0.8, 0.2};
  const auto make_hill = [](int) {
    return std::make_unique<opt::BernoulliHill>(
        std::vector<double>{0.75, 0.25, 0.6}, 0.6, 5.0, 100);
  };
  const auto hill_true = [](opt::Objective& objective,
                            const std::vector<double>& point) {
    return static_cast<opt::BernoulliHill&>(objective).hit_probability(point);
  };

  util::Table a_table({"Optimizer", "observed best", "true p at result",
                       "mean evaluations"});
  {
    const auto outcome = average_over_seeds(
        make_hill,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::ImplicitFilteringOptions options;
          options.directions = 10;
          options.max_iterations = 1000;
          options.max_evaluations = kBudget;
          options.min_step = 1e-6;
          options.seed = seed;
          return opt::implicit_filtering(objective, x0, options);
        },
        hill_true, kSeeds);
    a_table.add_row({"implicit filtering",
                     util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_hill,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::RandomSearchOptions options;
          options.samples = kBudget;
          options.seed = seed;
          return opt::random_search(objective, options);
        },
        hill_true, kSeeds);
    a_table.add_row({"random search", util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_hill,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::CoordinateSearchOptions options;
          options.max_iterations = 1000;
          options.max_evaluations = kBudget;
          options.min_step = 1e-6;
          options.seed = seed;
          return opt::coordinate_search(objective, x0, options);
        },
        hill_true, kSeeds);
    a_table.add_row({"coordinate search",
                     util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_hill,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::NelderMeadOptions options;
          options.max_iterations = 1000;
          options.max_evaluations = kBudget;
          options.tolerance = 0.0;  // run to the budget
          options.seed = seed;
          return opt::nelder_mead(objective, x0, options);
        },
        hill_true, kSeeds);
    a_table.add_row({"nelder-mead", util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  a_table.render(std::cout, bench::use_color());

  // ---------------- (b) real L3 bypass objective -------------------------
  std::cout << "\n(b) L3 byp_reqs objective (approximated target, N="
            << scaled(60) << " sims per evaluation, budget "
            << scaled(120) << " evaluations)\n";
  const duv::L3Cache l3;
  exec::ThreadFarm farm;
  const auto probe = farm.run(l3, l3.defaults(), scaled(2000), 31);
  const auto target = neighbors::family_target(l3.space(), "byp_reqs", probe);
  const auto suite = l3.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& tmpl : suite) {
    if (tmpl.name() == "l3_nc_smoke") seed_tmpl = &tmpl;
  }
  if (seed_tmpl == nullptr) return 1;
  const auto skeleton = cdg::Skeletonizer().skeletonize(*seed_tmpl);
  const std::size_t l3_budget = scaled(120);
  const std::size_t l3_sims = scaled(60);

  // Common random start for the local methods.
  util::Xoshiro256 start_rng(2024);
  std::vector<double> l3_x0(skeleton.mark_count());
  for (double& v : l3_x0) v = start_rng.uniform();

  const auto make_l3 = [&](int) {
    return std::make_unique<cdg::CdgObjective>(l3, farm, skeleton, target,
                                               l3_sims);
  };
  // Clean assessment: 3000 fresh simulations of the returned template.
  const auto l3_true = [&](opt::Objective&, const std::vector<double>& point) {
    const auto tmpl = skeleton.instantiate("dfo_assess", point);
    return target.value(farm.run(l3, tmpl, 3000, 0xA55E55ULL));
  };
  util::Table b_table({"Optimizer", "observed best T_N", "clean T_N at result",
                       "mean evaluations"});
  {
    const auto outcome = average_over_seeds(
        make_l3,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::ImplicitFilteringOptions options;
          options.directions = 10;
          options.max_iterations = 1000;
          options.max_evaluations = l3_budget;
          options.min_step = 1e-6;
          // The flow's configuration for template spaces (see
          // FlowConfig): sparse directions, patient step halving.
          options.direction_mode = opt::DirectionMode::kSparse;
          options.halve_patience = 3;
          options.initial_step = 0.4;
          options.seed = seed;
          return opt::implicit_filtering(objective, l3_x0, options);
        },
        l3_true, 3);
    b_table.add_row({"implicit filtering",
                     util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_l3,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::RandomSearchOptions options;
          options.samples = l3_budget;
          options.seed = seed;
          return opt::random_search(objective, options);
        },
        l3_true, 3);
    b_table.add_row({"random search", util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_l3,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::CoordinateSearchOptions options;
          options.max_iterations = 1000;
          options.max_evaluations = l3_budget;
          options.min_step = 1e-6;
          options.seed = seed;
          return opt::coordinate_search(objective, l3_x0, options);
        },
        l3_true, 3);
    b_table.add_row({"coordinate search",
                     util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_l3,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::NelderMeadOptions options;
          options.max_iterations = 1000;
          options.max_evaluations = l3_budget;
          options.tolerance = 0.0;
          options.seed = seed;
          return opt::nelder_mead(objective, l3_x0, options);
        },
        l3_true, 3);
    b_table.add_row({"nelder-mead", util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_l3,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::CrossEntropyOptions options;
          options.max_iterations = 1000;
          options.max_evaluations = l3_budget;
          options.population = 20;
          options.elite = 4;
          options.seed = seed;
          return opt::cross_entropy(objective, l3_x0, options);
        },
        l3_true, 3);
    b_table.add_row({"cross-entropy", util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  {
    const auto outcome = average_over_seeds(
        make_l3,
        [&](opt::Objective& objective, std::uint64_t seed) {
          opt::SimulatedAnnealingOptions options;
          options.max_evaluations = l3_budget;
          options.seed = seed;
          return opt::simulated_annealing(objective, l3_x0, options);
        },
        l3_true, 3);
    b_table.add_row({"simulated annealing",
                     util::format_number(outcome.mean_best, 4),
                     util::format_number(outcome.mean_true, 4),
                     util::format_number(outcome.mean_evals, 4)});
  }
  b_table.render(std::cout, bench::use_color());

  std::cout << "\nTotal sims (L3 part): "
            << util::format_count(farm.total_simulations())
            << "  |  wall time: " << watch.seconds() << " s\n";
  return 0;
}
