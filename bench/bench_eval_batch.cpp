// Benchmarks for the batched-evaluation protocol (google-benchmark):
// farm saturation as a function of dispatched batch size and worker
// count, plus the headline comparison — implicit filtering driving the
// CDG objective through scalar vs batched dispatch. With sims_per_point
// equal to one farm chunk, a scalar evaluation occupies a single worker
// no matter how many exist; batching a whole stencil is what lets the
// pool parallelize across the optimizer's candidates.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/thread_farm.hpp"
#include "cdg/cdg_objective.hpp"
#include "cdg/skeletonizer.hpp"
#include "duv/io_unit.hpp"
#include "neighbors/neighbors.hpp"
#include "opt/implicit_filtering.hpp"
#include "opt/synthetic.hpp"
#include "util/log.hpp"

namespace {

using namespace ascdg;

constexpr std::size_t kStencil = 8;
// Few sims per point (well under one farm chunk): a scalar evaluation
// is a single chunk on a single worker no matter how many exist, so any
// parallelism must come from batching whole stencils.
constexpr std::size_t kSimsPerPoint = 8;
// Per-simulation latency of the wrapped DUV. The paper's simulations
// are heavy external simulator runs whose latency dwarfs the dispatch
// path; modelling them as a sleep makes the benchmark measure *farm
// saturation* rather than the synthetic DUV's arithmetic, and keeps the
// comparison meaningful on single-core CI runners (sleeps overlap,
// compute does not).
constexpr auto kSimLatency = std::chrono::microseconds(100);

/// IoUnit with simulator-shaped latency added to every simulation.
class SlowIoUnit final : public duv::Duv {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "slow_io_unit";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return inner_.space();
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return inner_.defaults();
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override {
    std::this_thread::sleep_for(kSimLatency);
    return inner_.simulate(tmpl, seed);
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return inner_.suite();
  }

  [[nodiscard]] const duv::IoUnit& inner() const noexcept { return inner_; }

 private:
  duv::IoUnit inner_;
};

struct Problem {
  SlowIoUnit io;
  tgen::Skeleton skeleton;
  neighbors::ApproximatedTarget target;

  Problem()
      : skeleton(cdg::Skeletonizer().skeletonize(io.defaults())),
        target(neighbors::family_target(
            io.space(), "crc", coverage::SimStats(io.space().size()))) {}
};

const Problem& problem() {
  static const Problem instance;
  return instance;
}

// One evaluate_batch call of `batch` points: items/sec is simulation
// throughput, so the table reads directly as farm saturation.
void BM_EvalBatchDispatch(benchmark::State& state) {
  const auto& p = problem();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  exec::ThreadFarm farm(static_cast<std::size_t>(state.range(1)));
  cdg::CdgObjective objective(
      p.io, farm, p.skeleton, p.target, kSimsPerPoint,
      cdg::EvalCacheConfig{.enabled = false, .capacity = 0});

  const std::size_t dim = objective.dimension();
  std::vector<opt::Point> xs;
  for (std::size_t i = 0; i < batch; ++i) {
    xs.emplace_back(dim, static_cast<double>(i + 1) /
                             static_cast<double>(batch + 1));
  }
  std::vector<std::uint64_t> seeds(batch);
  std::uint64_t next_seed = 1;
  for (auto _ : state) {
    for (auto& seed : seeds) seed = next_seed++;
    benchmark::DoNotOptimize(objective.evaluate_batch(xs, seeds));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    batch * kSimsPerPoint));
}
BENCHMARK(BM_EvalBatchDispatch)
    ->ArgNames({"batch", "workers"})
    ->ArgsProduct({{1, kStencil, 4 * kStencil}, {1, 2, 4, 8}})
    ->UseRealTime();

void run_implicit_filtering(opt::Objective& objective, std::size_t dim) {
  opt::ImplicitFilteringOptions options;
  options.directions = kStencil;
  options.max_iterations = 6;
  options.initial_step = 0.2;
  options.min_step = 1e-9;
  options.seed = 11;
  (void)opt::implicit_filtering(objective, std::vector<double>(dim, 0.5),
                                options);
}

// Whole optimization runs, wall-clock: the acceptance comparison is
// Batched vs Scalar at workers=8.
void BM_ImplicitFilteringScalarDispatch(benchmark::State& state) {
  const auto& p = problem();
  exec::ThreadFarm farm(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    cdg::CdgObjective inner(p.io, farm, p.skeleton, p.target, kSimsPerPoint);
    opt::ScalarizedObjective scalar(inner);
    run_implicit_filtering(scalar, inner.dimension());
  }
}
BENCHMARK(BM_ImplicitFilteringScalarDispatch)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ImplicitFilteringBatchedDispatch(benchmark::State& state) {
  const auto& p = problem();
  exec::ThreadFarm farm(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    cdg::CdgObjective objective(p.io, farm, p.skeleton, p.target,
                                kSimsPerPoint);
    run_implicit_filtering(objective, objective.dimension());
  }
}
BENCHMARK(BM_ImplicitFilteringBatchedDispatch)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  ascdg::util::set_log_level(ascdg::util::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
