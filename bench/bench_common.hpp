// Shared plumbing for the figure-reproduction benches: build the
// "Before CDG" repository from a unit's regression suite, run the flow
// with a paper-budget config, and print the standard report blocks.
#pragma once

#include <chrono>
#include <iostream>
#include <vector>

#include "exec/backend.hpp"
#include "flow/runner.hpp"
#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ascdg::bench {

/// Simulates every suite template `sims_per_template` times and returns
/// the per-template repository — the paper's "mainstream unit
/// simulation for several weeks" baseline, compressed.
inline coverage::CoverageRepository build_before_repo(
    const duv::Duv& duv, exec::Backend& farm, std::size_t sims_per_template,
    std::uint64_t seed = 0xBEF0) {
  coverage::CoverageRepository repo(duv.space().size());
  const auto suite = duv.suite();
  std::vector<exec::Job> jobs;
  jobs.reserve(suite.size());
  for (std::size_t j = 0; j < suite.size(); ++j) {
    jobs.push_back({&suite[j], sims_per_template, seed + j});
  }
  const auto stats = farm.run_all(duv, jobs);
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), stats[j]);
  }
  return repo;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(std::string_view title, std::string_view paper_ref) {
  std::cout << "\n=============================================================="
               "==\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "================================================================"
               "\n\n";
}

inline bool use_color() { return util::stdout_supports_color(); }

}  // namespace ascdg::bench
