// Model-calibration dump: per-family hit rates for each unit under (a)
// each suite template, (b) the aggregated suite ("Before CDG"), and (c)
// a hand-tuned near-optimal template. Used when tuning the simulated
// units so the flow reproduces the paper's coverage shapes; kept in the
// repo because re-calibration is needed whenever a unit model changes.
//
//   $ ./calibrate [sims_per_template]
#include <cstdlib>
#include <iostream>

#include "batch/sim_farm.hpp"
#include "duv/ifu.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "report/report.hpp"
#include "tgen/parser.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace ascdg;

void dump_family(const duv::Duv& duv, batch::SimFarm& farm,
                 const std::vector<coverage::EventId>& family,
                 const tgen::TestTemplate& tuned, std::size_t sims) {
  std::cout << "\n### " << duv.name() << " ###\n";
  std::vector<std::string> headers{"template"};
  for (const auto event : family) headers.push_back(duv.space().name(event));
  util::Table table(headers);

  coverage::SimStats total(duv.space().size());
  for (const auto& tmpl : duv.suite()) {
    const auto stats = farm.run(duv, tmpl, sims, 1);
    std::vector<util::Cell> row{tmpl.name()};
    for (const auto event : family) {
      row.push_back(util::format_number(stats.hit_rate(event), 3));
    }
    table.add_row(std::move(row));
    total.merge(stats);
  }
  table.add_separator();
  {
    std::vector<util::Cell> row{"SUITE TOTAL"};
    for (const auto event : family) {
      row.push_back(util::format_number(total.hit_rate(event), 3));
    }
    table.add_row(std::move(row));
  }
  {
    const auto stats = farm.run(duv, tuned, sims, 2);
    std::vector<util::Cell> row{"TUNED"};
    for (const auto event : family) {
      row.push_back(util::format_number(stats.hit_rate(event), 3));
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout, false);
}

void dump_ifu_statuses(const duv::Ifu& ifu, batch::SimFarm& farm,
                       const tgen::TestTemplate& tuned, std::size_t sims) {
  const auto family = ifu.space().family_events("ifu");
  coverage::SimStats total(ifu.space().size());
  for (const auto& tmpl : ifu.suite()) {
    total.merge(farm.run(ifu, tmpl, sims, 1));
  }
  const auto suite_counts = report::count_status(total, family);
  std::cout << "\nifu suite total (" << total.sims()
            << " sims): never=" << suite_counts.never
            << " lightly=" << suite_counts.lightly
            << " well=" << suite_counts.well << '\n';
  const auto tuned_stats = farm.run(ifu, tuned, sims, 2);
  const auto tuned_counts = report::count_status(tuned_stats, family);
  std::cout << "ifu tuned (" << tuned_stats.sims()
            << " sims): never=" << tuned_counts.never
            << " lightly=" << tuned_counts.lightly
            << " well=" << tuned_counts.well << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t sims =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4000;
  batch::SimFarm farm;

  const duv::IoUnit io;
  dump_family(io, farm, io.crc_family(), tgen::parse_template(R"(
    template io_tuned {
      weight Cmd { crc_write: 88, crc_done: 6, read: 6, write: 0, ctrl: 0, nop: 0, abort: 0 }
      subrange BurstLen { [1, 4]: 0, [5, 8]: 1 }
      subrange GapDelay { [0, 7]: 0, [8, 20]: 1, [21, 63]: 0 }
      weight ErrInject { off: 1, crc_err: 0, parity_err: 0 }
      subrange NumOps { [60, 130]: 0, [131, 160]: 1 }
      subrange CreditLimit { [4, 7]: 0, [8, 8]: 1 }
    }
  )"), sims);

  const duv::L3Cache l3;
  dump_family(l3, farm, l3.byp_family(), tgen::parse_template(R"(
    template l3_tuned {
      weight ReqType { nc_read: 50, dma: 48, read: 2, write: 0, prefetch: 0, castout: 0 }
      subrange InterArrival { [0, 2]: 1, [3, 31]: 0 }
      subrange RespDelay { [8, 79]: 0, [80, 96]: 1 }
      subrange NumReqs { [100, 250]: 0, [251, 300]: 1 }
    }
  )"), sims);

  const duv::Ifu ifu;
  const auto ifu_tuned = tgen::parse_template(R"(
    template ifu_tuned {
      subrange FetchGap { [2, 3]: 1, [4, 15]: 0 }
      weight ICache { hit: 2, miss: 98 }
      subrange MissLatency { [8, 26]: 0, [27, 30]: 1 }
      weight BranchDir { not_taken: 85, taken: 15 }
      weight Redirect { off: 1, on: 0 }
      weight ThreadSel { 0: 1, 1: 1, 2: 1, 3: 1 }
      weight SectorSel { 0: 1, 1: 1, 2: 1, 3: 1 }
    }
  )");
  dump_ifu_statuses(ifu, farm, ifu_tuned, sims);
  return 0;
}
