// ascdg — command-line front end for the AS-CDG flow on the bundled
// simulated units.
//
//   ascdg units
//   ascdg events <unit> [prefix]
//   ascdg suite <unit> [--out FILE]
//   ascdg skeletonize <template-file> [--subranges N] [--geometric]
//                     [--mark-zeros] [--out FILE]
//   ascdg before <unit> [--sims N] [--csv FILE]
//   ascdg policy <unit> [--sims N]
//   ascdg holes <unit> --family F [--sims N] [--max-order K]
//   ascdg run <unit> --family F [--before-sims N] [--samples N]
//             [--sample-sims N] [--iterations N] [--directions N]
//             [--point-sims N] [--harvest N] [--seed S] [--refine]
//             [--backend=thread|process[:N]] [--session DIR] [--resume]
//             [--save-best FILE] [--csv FILE] [--metrics FILE]
//             [--serve[=PORT]] [--watchdog=SECS] [--flight-recorder=K]
//   ascdg campaign <unit> --families F1,F2,... [budget flags as `run`]
//             [--seed-template NAME] [--session DIR] [--resume]
//             [--save-best FILE] [--timeline[=MS]]
//   ascdg inspect <session-dir> [--compare DIR2] [--json]
//   ascdg metrics-dump [unit] [--sims N] [--json]
//
// Unknown flags are rejected (exit 1) rather than silently ignored.
// Exit codes: 0 success, 1 usage error, 2 runtime error.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/backend.hpp"
#include "flow/campaign.hpp"
#include "flow/runner.hpp"
#include "cdg/skeletonizer.hpp"
#include "coverage/holes.hpp"
#include "coverage/repository_io.hpp"
#include "duv/registry.hpp"
#include "neighbors/neighbors.hpp"
#include "flow/artifacts.hpp"
#include "flow/session.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/run_state.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "obs/trace_profile.hpp"
#include "obs/watchdog.hpp"
#include "report/report.hpp"
#include "stimgen/profile.hpp"
#include "tac/tac.hpp"
#include "tgen/file_io.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace {

using namespace ascdg;

int usage() {
  std::cerr <<
      R"(usage: ascdg <command> [options]

commands:
  units                             list the bundled simulated units
  events <unit> [prefix]            list coverage events (optionally filtered)
  suite <unit> [--out FILE]         print/save the unit's regression suite
  skeletonize <template-file>       print the skeleton of a template
      [--subranges N] [--geometric] [--mark-zeros] [--out FILE]
  before <unit> [--sims N]          simulate the suite; TAC coverage summary
      [--csv FILE]
  policy <unit> [--sims N]          suggest a minimal regression policy
  profile <unit> [--sims N]         per-parameter draw counts (SS-III)
  holes <unit> --family F           cross-product hole analysis
      [--sims N] [--max-order K]
  run <unit> --family F             the full AS-CDG flow on a family
      [--before-sims N] [--samples N] [--sample-sims N] [--iterations N]
      [--directions N] [--point-sims N] [--harvest N] [--seed S]
      [--eval-cache=on|off] (default on: reuse (point, seed) results)
      [--refine] [--save-best FILE] [--csv FILE] [--report FILE.md]
      [--backend=thread|process[:N]] (execution backend, default thread;
                       process forks N worker processes — also accepted
                       by before/policy/holes/campaign/metrics-dump)
      [--session DIR] (checkpoint every stage boundary and optimizer
                       iteration into a durable session directory)
      [--resume] (restart from DIR's last checkpoint after a crash)
      [--save-before FILE.csv] [--before-csv FILE.csv]
      [--trace[ FILE.jsonl]] (bare --trace with --session writes
                              DIR/trace.jsonl for `ascdg inspect`)
      [--metrics FILE.json]
      [--serve[=PORT]] (live HTTP introspection on 127.0.0.1; bare
                        --serve picks an ephemeral port)
      [--watchdog=SECS] (flip /healthz to degraded after SECS without
                         progress while work is outstanding)
      [--flight-recorder=K] (keep the last K trace records in memory;
                             dumped on stall, crash, or /flightrecorder)
      [--timeline[=MS]] (periodic telemetry sampling into the session's
                         telemetry.jsonl + /timeseries; bare --timeline
                         samples once a second)
  campaign <unit> --families F1,F2,...  multi-target flow: one shared
      [budget flags as `run`]        sampling phase, per-target
      [--seed-template NAME]         optimization + harvest
      [--session DIR] [--resume]     (independently resumable per target)
      [--save-best FILE] [--timeline[=MS]]
  inspect <session-dir>              offline analysis of a durable session
      [--compare DIR2]               (or campaign root): stage costs,
      [--json]                       coverage convergence, telemetry
                                     timeline, span-trace profile;
                                     --compare prints the A/B delta
  metrics-dump [unit] [--sims N]     run a small workload and dump the
      [--json]                       metrics registry (Prometheus text,
                                     or one JSON object with --json)
)";
  return 1;
}

std::unique_ptr<duv::Duv> make_unit(const std::string& name) {
  return duv::make_unit(name);
}

/// Tiny argv cursor: flag/value extraction with error reporting.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// First non-flag positional argument, consumed.
  std::optional<std::string> positional() {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!args_[i].starts_with("--")) {
        std::string value = args_[i];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return value;
      }
    }
    return std::nullopt;
  }

  bool flag(const char* name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  /// Accepts both "--name VALUE" and "--name=VALUE".
  std::optional<std::string> value(const char* name) {
    const std::string joined = std::string(name) + "=";
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].starts_with(joined)) {
        std::string out = args_[i].substr(joined.size());
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return out;
      }
      if (i + 1 < args_.size() && args_[i] == name) {
        std::string out = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return out;
      }
    }
    return std::nullopt;
  }

  /// An on/off switch ("--name=on|off" or "--name on|off"); returns
  /// `fallback` when absent, throws on any other value.
  bool onoff_value(const char* name, bool fallback) {
    const auto text = value(name);
    if (!text.has_value()) return fallback;
    if (*text == "on") return true;
    if (*text == "off") return false;
    throw util::ConfigError(std::string(name) + " must be 'on' or 'off', got '" +
                            *text + "'");
  }

  std::size_t size_value(const char* name, std::size_t fallback) {
    const auto text = value(name);
    if (!text.has_value()) return fallback;
    const auto parsed = util::parse_int(*text);
    if (!parsed.has_value() || *parsed < 0) {
      throw util::ConfigError(std::string("bad value for ") + name + ": '" +
                              *text + "'");
    }
    return static_cast<std::size_t>(*parsed);
  }

  /// Remaining unconsumed arguments (should be empty at the end).
  [[nodiscard]] const std::vector<std::string>& rest() const { return args_; }

 private:
  std::vector<std::string> args_;
};

/// Consumes --backend[=SPEC] and builds the execution backend (thread
/// farm by default). A spec that does not parse is a usage error: the
/// message lands on stderr and nullptr comes back, so callers `return
/// 1` instead of letting the exception reach main's runtime-error path
/// (exit 2). Callers must construct the result BEFORE starting any
/// helper thread (HTTP server, watchdog, timeline sampler): the
/// process backend forks its workers here, and fork + threads do not
/// mix (see docs/backends.md).
std::unique_ptr<ascdg::exec::Backend> backend_from_args(
    Args& args, ascdg::exec::BackendConfig* out = nullptr) {
  ascdg::exec::BackendConfig config;
  if (const auto spec = args.value("--backend"); spec.has_value()) {
    try {
      config = ascdg::exec::parse_backend_spec(*spec);
    } catch (const util::ConfigError& err) {
      std::cerr << "error: " << err.what() << '\n';
      return nullptr;
    }
  }
  if (out != nullptr) *out = config;
  obs::run_state().set_backend(ascdg::exec::to_string(config));
  return ascdg::exec::make_backend(config);
}

coverage::CoverageRepository simulate_suite(const duv::Duv& unit,
                                            exec::Backend& farm,
                                            std::size_t sims) {
  coverage::CoverageRepository repo(unit.space().size());
  const auto suite = unit.suite();
  std::vector<exec::Job> jobs;
  for (std::size_t j = 0; j < suite.size(); ++j) {
    jobs.push_back({&suite[j], sims, 0xC11 + j});
  }
  const auto stats = farm.run_all(unit, jobs);
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), stats[j]);
  }
  return repo;
}

int cmd_units() {
  for (const auto& name : duv::unit_names()) {
    std::cout << name << std::string(name.size() < 10 ? 10 - name.size() : 1, ' ')
              << duv::unit_description(name) << '\n';
  }
  return 0;
}

int cmd_events(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const auto prefix = args.positional().value_or("");
  const auto& space = unit->space();
  std::size_t shown = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const coverage::EventId id{static_cast<std::uint32_t>(i)};
    if (!space.name(id).starts_with(prefix)) continue;
    std::cout << space.name(id) << '\n';
    ++shown;
  }
  std::cerr << shown << " events";
  if (!prefix.empty()) std::cerr << " matching '" << prefix << "'";
  std::cerr << "; families:";
  for (const auto& family : space.family_names()) std::cerr << ' ' << family;
  std::cerr << '\n';
  return 0;
}

int cmd_suite(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const auto suite = unit->suite();
  if (const auto out = args.value("--out"); out.has_value()) {
    tgen::save_templates(*out, suite);
    std::cerr << "wrote " << suite.size() << " templates to " << *out << '\n';
    return 0;
  }
  for (const auto& tmpl : suite) std::cout << tgen::to_text(tmpl) << '\n';
  return 0;
}

int cmd_skeletonize(Args& args) {
  const auto file = args.positional();
  if (!file.has_value()) return usage();
  cdg::SkeletonizerOptions options;
  options.subranges = args.size_value("--subranges", options.subranges);
  if (args.flag("--geometric")) {
    options.spacing = cdg::SubrangeSpacing::kGeometric;
  }
  options.mark_zero_weights = args.flag("--mark-zeros");
  const auto tmpl = tgen::load_template(*file);
  const auto skeleton = cdg::Skeletonizer(options).skeletonize(tmpl);
  if (const auto out = args.value("--out"); out.has_value()) {
    tgen::save_skeleton(*out, skeleton);
    std::cerr << "wrote skeleton (" << skeleton.mark_count() << " marks) to "
              << *out << '\n';
  } else {
    std::cout << tgen::to_text(skeleton);
    std::cerr << skeleton.mark_count() << " marks\n";
  }
  return 0;
}

int cmd_before(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const std::size_t sims = args.size_value("--sims", 2000);
  const auto farm = backend_from_args(args);
  if (farm == nullptr) return 1;
  const auto repo = simulate_suite(*unit, *farm, sims);

  util::Table table({"template", "sims", "events hit", "uncovered after"});
  const tac::Tac tac_view(repo);
  coverage::SimStats cumulative(unit->space().size());
  for (const auto& name : repo.template_names()) {
    const auto& stats = repo.stats(name);
    std::size_t hit = 0;
    for (std::size_t e = 0; e < stats.event_count(); ++e) {
      if (stats.hits(coverage::EventId{static_cast<std::uint32_t>(e)}) > 0) {
        ++hit;
      }
    }
    cumulative.merge(stats);
    std::size_t uncovered = 0;
    for (std::size_t e = 0; e < cumulative.event_count(); ++e) {
      if (cumulative.hits(coverage::EventId{static_cast<std::uint32_t>(e)}) ==
          0) {
        ++uncovered;
      }
    }
    table.add_row({name, util::format_count(stats.sims()),
                   std::to_string(hit), std::to_string(uncovered)});
  }
  table.render(std::cout, util::stdout_supports_color());
  const auto uncovered = tac_view.uncovered_events();
  std::cout << "\nuncovered events (" << uncovered.size() << "):";
  for (const auto event : uncovered) {
    std::cout << ' ' << unit->space().name(event);
  }
  std::cout << '\n';
  if (const auto csv = args.value("--csv"); csv.has_value()) {
    std::ofstream out(*csv);
    table.render_csv(out);
    std::cerr << "wrote " << *csv << '\n';
  }
  return 0;
}

int cmd_policy(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const std::size_t sims = args.size_value("--sims", 2000);
  const auto farm = backend_from_args(args);
  if (farm == nullptr) return 1;
  const auto repo = simulate_suite(*unit, *farm, sims);
  const tac::Tac tac_view(repo);
  const auto policy = tac_view.suggest_regression_policy();
  std::cout << "suggested regression policy (" << policy.size() << " of "
            << repo.template_names().size() << " templates, in value order):\n";
  for (const auto& name : policy) std::cout << "  " << name << '\n';
  return 0;
}

int cmd_profile(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const std::size_t sims = args.size_value("--sims", 500);
  stimgen::ScopedDrawProfiler profiler;
  for (std::size_t i = 0; i < sims; ++i) {
    (void)unit->simulate(unit->defaults(), 0xF0F1A + i);
  }
  util::Table table({"parameter", "total draws", "draws per simulation"});
  for (const auto& [name, count] : profiler.counts()) {
    table.add_row({name, util::format_count(count),
                   util::format_number(static_cast<double>(count) /
                                           static_cast<double>(sims),
                                       4)});
  }
  table.render(std::cout, util::stdout_supports_color());
  std::cout << "(" << sims << " simulations of the default template; "
            << "consult frequencies differ per parameter exactly as the "
               "paper's SS-III describes)\n";
  return 0;
}

int cmd_holes(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const auto family = args.value("--family");
  if (!family.has_value()) {
    std::cerr << "holes: --family is required\n";
    return 1;
  }
  const auto* cp = unit->space().find_cross_product(*family);
  if (cp == nullptr) {
    std::cerr << "'" << *family << "' is not a cross product on this unit\n";
    return 1;
  }
  const std::size_t sims = args.size_value("--sims", 2000);
  const std::size_t max_order = args.size_value("--max-order", 2);
  const auto farm = backend_from_args(args);
  if (farm == nullptr) return 1;
  const auto repo = simulate_suite(*unit, *farm, sims);
  const auto holes =
      coverage::find_holes(unit->space(), *cp, repo.total(), max_order);
  std::cout << holes.size() << " maximal holes (order <= " << max_order
            << ") after " << util::format_count(repo.total_sims())
            << " suite sims:\n";
  for (const auto& hole : holes) {
    std::cout << "  " << coverage::describe(*cp, hole) << '\n';
  }
  return 0;
}

int cmd_run(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const auto family = args.value("--family");
  if (!family.has_value()) {
    std::cerr << "run: --family is required\n";
    return 1;
  }
  if (unit->space().family_events(*family).empty()) {
    std::cerr << "unknown family '" << *family << "'; families:";
    for (const auto& name : unit->space().family_names()) {
      std::cerr << ' ' << name;
    }
    std::cerr << '\n';
    return 1;
  }

  flow::FlowConfig config;
  const std::size_t before_sims = args.size_value("--before-sims", 5000);
  config.sample_templates = args.size_value("--samples", 200);
  config.sample_sims = args.size_value("--sample-sims", 100);
  config.opt_max_iterations = args.size_value("--iterations", 25);
  config.opt_directions = args.size_value("--directions", 19);
  config.opt_sims_per_point = args.size_value("--point-sims", 200);
  config.harvest_sims = args.size_value("--harvest", 10000);
  config.seed = args.size_value("--seed", 2021);
  config.eval_cache = args.onoff_value("--eval-cache", true);
  config.refine_with_real_target = args.flag("--refine");
  if (const auto session = args.value("--session"); session.has_value()) {
    config.session_dir = *session;
  }
  config.resume = args.flag("--resume");

  // The backend forks its worker processes (when --backend=process)
  // right here — before the trace/watchdog/timeline/HTTP helper
  // threads below exist, because fork + threads do not mix
  // (docs/backends.md).
  const auto farm = backend_from_args(args, &config.backend);
  if (farm == nullptr) return 1;

  // Live introspection. Bare `--serve` (consumed first so value() below
  // cannot eat the next flag as a port) means "ephemeral port"; the
  // spelled form must be `--serve=PORT`.
  if (args.flag("--serve")) {
    config.serve_port = 0;
  } else if (const auto port = args.value("--serve"); port.has_value()) {
    const auto parsed = util::parse_int(*port);
    if (!parsed.has_value() || *parsed < 0 || *parsed > 65535) {
      throw util::ConfigError("bad value for --serve: '" + *port + "'");
    }
    config.serve_port = static_cast<std::uint16_t>(*parsed);
  }
  config.watchdog_stall_secs = args.size_value("--watchdog", 0);
  config.flight_recorder_records = args.size_value("--flight-recorder", 0);
  // Bare --timeline samples once a second; --timeline=MS tunes it.
  if (args.flag("--timeline")) {
    config.timeline_interval_ms = 1000;
  } else {
    config.timeline_interval_ms = args.size_value("--timeline", 0);
  }

  // The telemetry sinks below (--trace, --timeline) may live inside the
  // session directory, which Session::create would otherwise only make
  // after the flow starts.
  if (!config.session_dir.empty()) {
    std::filesystem::create_directories(config.session_dir);
  }

  // Declared before the tracer so it outlives the mirror (destruction
  // runs in reverse order).
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::Tracer> trace;
  std::string trace_path;
  if (const auto path = args.value("--trace"); path.has_value()) {
    trace_path = *path;
  } else if (args.flag("--trace") && !config.session_dir.empty()) {
    // Bare --trace (no FILE) drops the sink into the session directory,
    // where `ascdg inspect` picks it up.
    trace_path = (std::filesystem::path(config.session_dir) /
                  std::filesystem::path(flow::kTraceFile))
                     .string();
  }
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::Tracer>(trace_path);
    config.trace = trace.get();
  }
  const auto metrics_path = args.value("--metrics");

  // The recorder mirrors the trace stream, so it needs a Tracer even
  // when no --trace file was asked for (a sink-less one records only
  // into the ring).
  if (config.flight_recorder_records != 0) {
    recorder =
        std::make_unique<obs::FlightRecorder>(config.flight_recorder_records);
    if (trace == nullptr) {
      trace = std::make_unique<obs::Tracer>();
      config.trace = trace.get();
    }
    trace->mirror_to(recorder.get());
    obs::set_flight_recorder(recorder.get());
    obs::install_crash_dump();
  }
  // Clear the crash-dump pointer before `recorder` dies (this guard is
  // declared after it), so a late fatal signal never chases a dangling
  // ring.
  const struct RecorderGuard {
    ~RecorderGuard() { obs::set_flight_recorder(nullptr); }
  } recorder_guard{};
  std::unique_ptr<obs::Watchdog> watchdog;
  if (config.watchdog_stall_secs != 0) {
    obs::WatchdogConfig wd_config;
    wd_config.stall_after =
        std::chrono::seconds(config.watchdog_stall_secs);
    wd_config.trace = config.trace;
    watchdog = std::make_unique<obs::Watchdog>(obs::registry(), wd_config);
  }
  // Declared before the server so the /timeseries route never outlives
  // the ring it reads.
  std::unique_ptr<obs::TimeSeriesRecorder> timeline;
  if (config.timeline_interval_ms != 0) {
    obs::TimeSeriesConfig ts_config;
    ts_config.sample_interval =
        std::chrono::milliseconds(config.timeline_interval_ms);
    ts_config.append = config.resume;
    if (!config.session_dir.empty()) {
      const std::filesystem::path session_dir = config.session_dir;
      ts_config.jsonl_path = session_dir / flow::kTelemetryFile;
      ts_config.index_path = session_dir / flow::kTelemetryIndexFile;
    }
    timeline = std::make_unique<obs::TimeSeriesRecorder>(ts_config);
  }
  std::unique_ptr<obs::HttpServer> server;
  if (config.serve_port.has_value()) {
    obs::HttpServerConfig http_config;
    http_config.port = *config.serve_port;
    http_config.watchdog = watchdog.get();
    http_config.recorder = recorder.get();
    http_config.timeline = timeline.get();
    server = std::make_unique<obs::HttpServer>(http_config);
    std::cerr << "serving live introspection on http://127.0.0.1:"
              << server->port()
              << " (/metrics /metrics.json /healthz /runz /flightrecorder"
              << " /timeseries)\n";
  }

  coverage::CoverageRepository repo(unit->space().size());
  if (const auto csv = args.value("--before-csv"); csv.has_value()) {
    repo = coverage::load_repository(*csv, unit->space());
    std::cerr << "loaded before-CDG coverage from " << *csv << " ("
              << util::format_count(repo.total_sims()) << " sims)\n";
  } else {
    repo = simulate_suite(*unit, *farm, before_sims);
  }
  if (const auto csv = args.value("--save-before"); csv.has_value()) {
    coverage::save_repository(*csv, unit->space(), repo);
    std::cerr << "wrote before-CDG coverage to " << *csv << '\n';
  }
  const auto target =
      neighbors::family_target(unit->space(), *family, repo.total());
  std::cout << "targets (" << target.targets().size() << "):";
  for (const auto event : target.targets()) {
    std::cout << ' ' << unit->space().name(event);
  }
  std::cout << '\n';

  flow::CdgRunner runner(*unit, *farm, config);
  const auto suite = unit->suite();
  const auto result = runner.run(target, repo, suite);

  const auto events = unit->space().family_events(*family);
  const bool color = util::stdout_supports_color();
  std::cout << "seed template: " << result.seed_template << "\n"
            << report::phase_caption(result) << "\n\n";
  if (events.size() <= 24) {
    report::phase_table(unit->space(), events, result).render(std::cout, color);
  } else {
    report::render_status_bars(std::cout, events, result, color);
    std::cout << '\n';
    report::status_table(unit->space(), events, result)
        .render(std::cout, color);
  }
  std::cout << "\ntotal simulations: "
            << util::format_count(farm->total_simulations()) << '\n';
  if (runner.session_summary().has_value()) {
    const auto& session = *runner.session_summary();
    std::cout << "session: " << session.dir;
    if (!session.resumed_from.empty()) {
      std::cout << " (resume #" << session.resumes << ", picked up after '"
                << session.resumed_from << "')";
    }
    std::cout << '\n';
  }

  if (const auto out = args.value("--save-best"); out.has_value()) {
    tgen::save_template(*out, result.best_template);
    std::cerr << "wrote best template to " << *out << '\n';
  }
  if (const auto csv = args.value("--csv"); csv.has_value()) {
    std::ofstream out(*csv);
    report::phase_table(unit->space(), events, result).render_csv(out);
    std::cerr << "wrote " << *csv << '\n';
  }
  if (const auto md = args.value("--report"); md.has_value()) {
    const auto farm_stats = farm->telemetry();
    const auto& session = runner.session_summary();
    report::write_flow_markdown(*md, unit->space(), events, result,
                                &farm_stats,
                                session.has_value() ? &*session : nullptr);
    std::cerr << "wrote " << *md << '\n';
  }
  if (metrics_path.has_value()) {
    report::write_metrics_json(*metrics_path, unit->space(), result,
                               obs::registry().snapshot());
    std::cerr << "wrote metrics snapshot to " << *metrics_path << '\n';
  }
  if (trace != nullptr) {
    std::cerr << "wrote " << trace->lines() << " trace events to "
              << trace_path << '\n';
  }
  if (timeline != nullptr) {
    timeline->stop();
    std::cerr << "recorded " << timeline->samples_taken()
              << " telemetry samples";
    if (!config.session_dir.empty()) {
      std::cerr << " in " << config.session_dir << '/' << flow::kTelemetryFile;
    }
    std::cerr << '\n';
  }
  return 0;
}

int cmd_campaign(Args& args) {
  const auto unit_name = args.positional();
  if (!unit_name.has_value()) return usage();
  const auto unit = make_unit(*unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << *unit_name << "'\n";
    return 1;
  }
  const auto families_arg = args.value("--families");
  if (!families_arg.has_value()) {
    std::cerr << "campaign: --families F1,F2,... is required\n";
    return 1;
  }

  flow::FlowConfig config;
  const std::size_t before_sims = args.size_value("--before-sims", 5000);
  config.sample_templates = args.size_value("--samples", 200);
  config.sample_sims = args.size_value("--sample-sims", 100);
  config.opt_max_iterations = args.size_value("--iterations", 25);
  config.opt_directions = args.size_value("--directions", 19);
  config.opt_sims_per_point = args.size_value("--point-sims", 200);
  config.harvest_sims = args.size_value("--harvest", 10000);
  config.seed = args.size_value("--seed", 2021);
  config.eval_cache = args.onoff_value("--eval-cache", true);
  if (const auto session = args.value("--session"); session.has_value()) {
    config.session_dir = *session;
  }
  config.resume = args.flag("--resume");
  // Construct the backend before the timeline sampler thread below:
  // the process backend forks, and fork + threads do not mix.
  const auto farm = backend_from_args(args, &config.backend);
  if (farm == nullptr) return 1;
  if (args.flag("--timeline")) {
    config.timeline_interval_ms = 1000;
  } else {
    config.timeline_interval_ms = args.size_value("--timeline", 0);
  }
  // The campaign timeline lives at the campaign root, spanning every
  // per-target sub-session; without a session directory there is no
  // durable home (or live server) for it, so it stays off.
  std::unique_ptr<obs::TimeSeriesRecorder> timeline;
  if (config.timeline_interval_ms != 0 && !config.session_dir.empty()) {
    obs::TimeSeriesConfig ts_config;
    ts_config.sample_interval =
        std::chrono::milliseconds(config.timeline_interval_ms);
    ts_config.append = config.resume;
    const std::filesystem::path root = config.session_dir;
    ts_config.jsonl_path = root / flow::kTelemetryFile;
    ts_config.index_path = root / flow::kTelemetryIndexFile;
    timeline = std::make_unique<obs::TimeSeriesRecorder>(ts_config);
  }

  const auto repo = simulate_suite(*unit, *farm, before_sims);

  std::vector<neighbors::ApproximatedTarget> targets;
  std::vector<std::string> family_names;
  for (const auto family : util::split(*families_arg, ',')) {
    if (family.empty()) continue;
    const std::string name(family);
    if (unit->space().family_events(name).empty()) {
      std::cerr << "unknown family '" << name << "'; families:";
      for (const auto& f : unit->space().family_names()) std::cerr << ' ' << f;
      std::cerr << '\n';
      return 1;
    }
    family_names.push_back(name);
    targets.push_back(
        neighbors::family_target(unit->space(), name, repo.total()));
  }
  if (targets.empty()) {
    std::cerr << "campaign: --families lists no usable family\n";
    return 1;
  }

  // Seed template: explicit --seed-template NAME, or the coarse
  // search's top pick for the first family.
  const auto suite = unit->suite();
  std::string wanted;
  if (const auto name = args.value("--seed-template"); name.has_value()) {
    wanted = *name;
  } else {
    wanted = flow::coarse_search(targets.front(), repo, 1).front().name;
  }
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& tmpl : suite) {
    if (tmpl.name() == wanted) {
      seed_tmpl = &tmpl;
      break;
    }
  }
  if (seed_tmpl == nullptr) {
    std::cerr << "campaign: seed template '" << wanted
              << "' is not in the unit's suite\n";
    return 1;
  }

  const auto result =
      flow::run_multi_target(*unit, *farm, config, targets, *seed_tmpl);

  std::cout << "campaign: " << targets.size() << " targets, shared sampling of "
            << util::format_count(result.sampling.simulations)
            << " sims saved " << util::format_count(result.sims_saved)
            << " sims\nseed template: " << seed_tmpl->name() << "\n\n";
  util::Table table({"family", "opt best value", "flow sims", "targets hit"});
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const auto& flow_result = result.per_target[t];
    const auto& harvest = flow_result.harvest_phase.stats;
    std::size_t hit = 0;
    for (const auto event : targets[t].targets()) {
      if (harvest.sims() != 0 && event.value < harvest.event_count() &&
          harvest.hits(event) > 0) {
        ++hit;
      }
    }
    table.add_row(
        {family_names[t],
         util::format_number(flow_result.optimization.best_value, 4),
         util::format_count(flow_result.flow_sims()),
         std::to_string(hit) + "/" +
             std::to_string(targets[t].targets().size())});
  }
  table.render(std::cout, util::stdout_supports_color());
  std::cout << "\ntotal simulations: "
            << util::format_count(farm->total_simulations()) << '\n';
  if (!result.session_dir.empty()) {
    std::cout << "campaign session: " << result.session_dir << " ("
              << result.sessions.size() << " sub-sessions)\n";
  }

  if (const auto out = args.value("--save-best"); out.has_value()) {
    std::vector<tgen::TestTemplate> bests;
    bests.reserve(result.per_target.size());
    for (const auto& fr : result.per_target) bests.push_back(fr.best_template);
    tgen::save_templates(*out, bests);
    std::cerr << "wrote " << bests.size() << " best templates to " << *out
              << '\n';
  }
  if (timeline != nullptr) {
    timeline->stop();
    std::cerr << "recorded " << timeline->samples_taken()
              << " telemetry samples in " << config.session_dir << '/'
              << flow::kTelemetryFile << '\n';
  }
  return 0;
}

// --- ascdg inspect: offline analysis of a durable session ----------------

/// Everything `inspect` extracts from one session directory (or
/// campaign root, whose sub-sessions are merged into one view).
struct InspectData {
  std::string dir;
  bool campaign = false;
  std::uint64_t seed = 0;
  std::uint64_t resumes = 0;
  std::string resumed_from;

  struct StageRow {
    std::string session;  ///< sub-session name; "" for a single session
    std::string name;
    std::string status;
    std::size_t sims = 0;
    double wall_ms = 0.0;
  };
  std::vector<StageRow> stages;

  /// Coverage convergence: cumulative (sims, covered events) after each
  /// completed phase artifact, in execution order.
  struct Point {
    std::string label;
    std::size_t sims = 0;
    std::size_t covered = 0;
  };
  std::vector<Point> convergence;
  std::size_t total_sims = 0;
  std::size_t covered_events = 0;
  double wall_ms = 0.0;  ///< summed stage wall time
  std::optional<opt::OptResult> optimization;  ///< first target's curve

  bool has_telemetry = false;
  std::uint64_t telemetry_samples = 0;
  std::uint64_t telemetry_last_t_ms = 0;
  std::uint64_t telemetry_peak_rss = 0;
  double telemetry_max_sims_per_sec = 0.0;

  bool has_trace = false;
  obs::TraceProfile profile;

  /// The headline efficiency number: flow simulations spent per event
  /// the flow covered (0 when nothing was covered).
  [[nodiscard]] double sims_per_covered_event() const noexcept {
    return covered_events == 0 ? 0.0
                               : static_cast<double>(total_sims) /
                                     static_cast<double>(covered_events);
  }

  /// The throughput headline: flow simulations per second of summed
  /// stage wall time (0 when no stage recorded any wall time). This is
  /// the number `--compare` turns into a speedup, so the batched-kernel
  /// win between two sessions is visible from the artifacts alone.
  [[nodiscard]] double sims_per_sec() const noexcept {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(total_sims) * 1000.0 / wall_ms;
  }
};

void merge_hits(std::vector<unsigned char>& hit_flags,
                const coverage::SimStats& stats) {
  if (stats.event_count() > hit_flags.size()) {
    hit_flags.resize(stats.event_count(), 0);
  }
  for (std::size_t e = 0; e < stats.event_count(); ++e) {
    if (stats.hits(coverage::EventId{static_cast<std::uint32_t>(e)}) > 0) {
      hit_flags[e] = 1;
    }
  }
}

std::optional<flow::PhaseOutcome> read_phase_artifact(
    const std::filesystem::path& file) {
  if (!std::filesystem::exists(file)) return std::nullopt;
  return flow::phase_outcome_from_json(flow::read_json_file(file).at("phase"));
}

/// Folds one session directory's manifest + phase artifacts into
/// `data`, accumulating the covered-event union in `hit_flags`.
void gather_session(const std::filesystem::path& dir,
                    const std::string& session_label, InspectData& data,
                    std::vector<unsigned char>& hit_flags) {
  const util::JsonValue manifest =
      flow::read_json_file(dir / "manifest.json");
  if (manifest.at("schema").as_string() != flow::kSessionSchema) {
    throw util::Error("'" + dir.string() + "' has unknown manifest schema '" +
                      manifest.at("schema").as_string() + "'");
  }
  if (session_label.empty()) {
    data.seed = flow::parse_hex_u64(manifest.at("seed"));
    data.resumed_from = manifest.at("resumed_from").as_string();
  }
  data.resumes += manifest.at("resumes").as_uint64();
  for (const auto& entry : manifest.at("stages").as_array()) {
    InspectData::StageRow row;
    row.session = session_label;
    row.name = entry.at("name").as_string();
    row.status = entry.at("status").as_string();
    row.sims = entry.at("sims").as_size();
    row.wall_ms = entry.at("wall_ms").as_double();
    data.wall_ms += row.wall_ms;
    data.stages.push_back(std::move(row));
  }

  const auto add_point = [&](const flow::PhaseOutcome& phase) {
    data.total_sims += phase.sims;
    merge_hits(hit_flags, phase.stats);
    std::size_t covered = 0;
    for (const unsigned char flag : hit_flags) covered += flag;
    std::string label = phase.name;
    if (!session_label.empty()) label = session_label + ": " + label;
    data.convergence.push_back({std::move(label), data.total_sims, covered});
  };
  if (const auto phase = read_phase_artifact(dir / "sampling.json")) {
    add_point(*phase);
  }
  // refinement.json supersedes optimization.json: its "phase" is the
  // optimization phase with the refinement sims folded in.
  const std::filesystem::path refinement = dir / "refinement.json";
  const std::filesystem::path optimization = dir / "optimization.json";
  if (std::filesystem::exists(refinement)) {
    add_point(flow::phase_outcome_from_json(
        flow::read_json_file(refinement).at("phase")));
  } else if (const auto phase = read_phase_artifact(optimization)) {
    add_point(*phase);
  }
  if (!data.optimization.has_value() &&
      std::filesystem::exists(optimization)) {
    data.optimization = flow::opt_result_from_json(
        flow::read_json_file(optimization).at("optimization"));
  }
  if (const auto phase = read_phase_artifact(dir / "harvest.json")) {
    add_point(*phase);
  }
}

/// Summarizes the session's telemetry.jsonl (when present). Malformed
/// lines — say, the torn tail of a crashed run — are skipped.
void gather_telemetry(const std::filesystem::path& dir, InspectData& data) {
  std::ifstream in(dir / std::filesystem::path(flow::kTelemetryFile));
  if (!in) return;
  data.has_telemetry = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const util::JsonValue doc = util::json_parse(line);
      ++data.telemetry_samples;
      data.telemetry_last_t_ms = doc.at("t_ms").as_uint64();
      if (const auto* rate = doc.find("sims_per_sec");
          rate != nullptr && rate->is_number()) {
        data.telemetry_max_sims_per_sec =
            std::max(data.telemetry_max_sims_per_sec, rate->as_double());
      }
      for (const char* key : {"rss_bytes", "max_rss_bytes"}) {
        if (const auto* rss = doc.find(key);
            rss != nullptr && rss->is_number()) {
          data.telemetry_peak_rss =
              std::max(data.telemetry_peak_rss, rss->as_uint64());
        }
      }
    } catch (const std::exception&) {
      // torn tail of a crashed run — the rest of the file still counts
    }
  }
}

InspectData inspect_dir(const std::filesystem::path& dir) {
  InspectData data;
  data.dir = dir.string();
  std::vector<unsigned char> hit_flags;
  if (std::filesystem::exists(dir / "manifest.json")) {
    gather_session(dir, "", data, hit_flags);
  } else if (std::filesystem::exists(dir / "campaign.json")) {
    data.campaign = true;
    const util::JsonValue doc = flow::read_json_file(dir / "campaign.json");
    data.seed = flow::parse_hex_u64(doc.at("seed"));
    std::vector<std::filesystem::path> subs;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_directory() &&
          std::filesystem::exists(entry.path() / "manifest.json")) {
        subs.push_back(entry.path());
      }
    }
    std::sort(subs.begin(), subs.end());
    // The shared sampling session ran first; two-digit target dirs
    // otherwise keep execution order lexicographically.
    std::stable_partition(subs.begin(), subs.end(),
                          [](const std::filesystem::path& p) {
                            return p.filename() == "shared";
                          });
    for (const auto& sub : subs) {
      gather_session(sub, sub.filename().string(), data, hit_flags);
    }
  } else {
    throw util::Error("'" + dir.string() +
                      "' is not a session directory (no manifest.json or "
                      "campaign.json)");
  }
  std::size_t covered = 0;
  for (const unsigned char flag : hit_flags) covered += flag;
  data.covered_events = covered;

  gather_telemetry(dir, data);
  const std::filesystem::path trace =
      dir / std::filesystem::path(flow::kTraceFile);
  if (std::filesystem::exists(trace)) {
    data.has_trace = true;
    data.profile = obs::TraceProfile::from_jsonl(trace);
  }
  return data;
}

void render_inspection(std::ostream& os, const InspectData& data) {
  os << (data.campaign ? "campaign" : "session") << ": " << data.dir
     << "\nseed: " << data.seed << "  resumes: " << data.resumes;
  if (!data.resumed_from.empty()) {
    os << " (last picked up after '" << data.resumed_from << "')";
  }
  os << '\n';

  util::Table stage_table({"session", "stage", "status", "sims", "wall ms"});
  for (const auto& row : data.stages) {
    stage_table.add_row({row.session.empty() ? "-" : row.session, row.name,
                         row.status, util::format_count(row.sims),
                         util::format_number(row.wall_ms, 4)});
  }
  os << '\n';
  stage_table.render(os, false);

  if (data.optimization.has_value() && !data.optimization->trace.empty()) {
    os << "\noptimization convergence (best value per iteration):\n";
    report::render_trace(os, *data.optimization);
  }

  os << "\ncoverage convergence (cumulative sims -> covered events):\n";
  util::Table curve({"phase", "cumulative sims", "covered events"});
  for (const auto& point : data.convergence) {
    curve.add_row({point.label, util::format_count(point.sims),
                   std::to_string(point.covered)});
  }
  curve.render(os, false);
  os << "covered events: " << data.covered_events
     << "  flow sims: " << util::format_count(data.total_sims)
     << "  sims per covered event: "
     << util::format_number(data.sims_per_covered_event(), 3)
     << "\nwall time (stages): " << util::format_number(data.wall_ms, 4)
     << " ms  throughput: " << util::format_number(data.sims_per_sec(), 3)
     << " sims/sec\n";

  if (data.has_telemetry) {
    os << "\ntelemetry (" << flow::kTelemetryFile
       << "): " << data.telemetry_samples << " samples over "
       << data.telemetry_last_t_ms << " ms";
    if (data.telemetry_peak_rss != 0) {
      os << ", peak RSS "
         << util::format_number(
                static_cast<double>(data.telemetry_peak_rss) / (1024.0 * 1024.0),
                1)
         << " MiB";
    }
    if (data.telemetry_max_sims_per_sec > 0.0) {
      os << ", peak "
         << util::format_number(data.telemetry_max_sims_per_sec, 3)
         << " sims/s";
    }
    os << '\n';
  }

  if (data.has_trace) {
    os << "\nspan-trace profile (" << flow::kTraceFile << ", "
       << data.profile.spans() << " spans):\n";
    data.profile.render(os);
  }
}

std::string inspection_json(const InspectData& data) {
  util::JsonObject obj;
  obj.add("dir", data.dir)
      .add("campaign", data.campaign)
      .add("seed", data.seed)
      .add("resumes", data.resumes)
      .add("total_sims", data.total_sims)
      .add("covered_events", data.covered_events)
      .add("sims_per_covered_event", data.sims_per_covered_event())
      .add("sims_per_sec", data.sims_per_sec())
      .add("wall_ms", data.wall_ms);
  std::string curve = "[";
  for (std::size_t i = 0; i < data.convergence.size(); ++i) {
    if (i != 0) curve += ',';
    curve += util::JsonObject{}
                 .add("phase", data.convergence[i].label)
                 .add("sims", data.convergence[i].sims)
                 .add("covered", data.convergence[i].covered)
                 .str();
  }
  curve += ']';
  obj.add_raw("convergence", curve);
  if (data.has_telemetry) {
    obj.add_raw("telemetry",
                util::JsonObject{}
                    .add("samples", data.telemetry_samples)
                    .add("wall_ms", data.telemetry_last_t_ms)
                    .add("peak_rss_bytes", data.telemetry_peak_rss)
                    .add("max_sims_per_sec", data.telemetry_max_sims_per_sec)
                    .str());
  }
  if (data.has_trace) {
    std::string spans = "[";
    bool first = true;
    for (const auto& node : data.profile.flatten()) {
      if (!first) spans += ',';
      first = false;
      spans += util::JsonObject{}
                   .add("name", node.name)
                   .add("depth", node.depth)
                   .add("count", node.count)
                   .add("total_us", node.total_us)
                   .add("self_us", node.self_us)
                   .add("p50_us", node.p50_us)
                   .add("p95_us", node.p95_us)
                   .add("p99_us", node.p99_us)
                   .str();
    }
    spans += ']';
    obj.add_raw("profile", spans);
  }
  return obj.str();
}

int cmd_inspect(Args& args) {
  const auto dir = args.positional();
  if (!dir.has_value()) {
    std::cerr << "inspect: a session directory is required\n";
    return 1;
  }
  const bool as_json = args.flag("--json");
  const auto compare_dir = args.value("--compare");

  const InspectData a = inspect_dir(*dir);
  if (!compare_dir.has_value()) {
    if (as_json) {
      std::cout << util::JsonObject{}
                       .add("schema", "ascdg-inspect-v1")
                       .add_raw("session", inspection_json(a))
                       .str()
                << '\n';
    } else {
      render_inspection(std::cout, a);
    }
    return 0;
  }

  const InspectData b = inspect_dir(*compare_dir);
  const double delta_spce =
      b.sims_per_covered_event() - a.sims_per_covered_event();
  // B over A; 0 when A recorded no throughput (nothing to compare to).
  const double speedup = a.sims_per_sec() > 0.0
                             ? b.sims_per_sec() / a.sims_per_sec()
                             : 0.0;
  if (as_json) {
    std::cout << util::JsonObject{}
                     .add("schema", "ascdg-inspect-v1")
                     .add_raw("session", inspection_json(a))
                     .add_raw("compare", inspection_json(b))
                     .add("delta_sims_per_covered_event", delta_spce)
                     .add("delta_covered_events",
                          static_cast<std::int64_t>(b.covered_events) -
                              static_cast<std::int64_t>(a.covered_events))
                     .add("delta_total_sims",
                          static_cast<std::int64_t>(b.total_sims) -
                              static_cast<std::int64_t>(a.total_sims))
                     .add("delta_wall_ms", b.wall_ms - a.wall_ms)
                     .add("delta_sims_per_sec",
                          b.sims_per_sec() - a.sims_per_sec())
                     .add("sims_per_sec_speedup", speedup)
                     .add("delta_peak_rss_bytes",
                          static_cast<std::int64_t>(b.telemetry_peak_rss) -
                              static_cast<std::int64_t>(a.telemetry_peak_rss))
                     .str()
              << '\n';
    return 0;
  }

  render_inspection(std::cout, a);
  std::cout << "\n=== compared against " << b.dir << " ===\n";
  render_inspection(std::cout, b);
  util::Table delta({"metric", "A", "B", "delta (B-A)"});
  delta.add_row({"sims per covered event",
                 util::format_number(a.sims_per_covered_event(), 2),
                 util::format_number(b.sims_per_covered_event(), 2),
                 util::format_number(delta_spce, 2)});
  delta.add_row({"covered events", std::to_string(a.covered_events),
                 std::to_string(b.covered_events),
                 std::to_string(static_cast<std::int64_t>(b.covered_events) -
                                static_cast<std::int64_t>(a.covered_events))});
  delta.add_row({"flow sims", util::format_count(a.total_sims),
                 util::format_count(b.total_sims),
                 std::to_string(static_cast<std::int64_t>(b.total_sims) -
                                static_cast<std::int64_t>(a.total_sims))});
  delta.add_row({"wall ms", util::format_number(a.wall_ms, 4),
                 util::format_number(b.wall_ms, 4),
                 util::format_number(b.wall_ms - a.wall_ms, 4)});
  delta.add_row(
      {"sims/sec", util::format_number(a.sims_per_sec(), 3),
       util::format_number(b.sims_per_sec(), 3),
       speedup > 0.0 ? util::format_number(speedup, 2) + "x"
                     : util::format_number(
                           b.sims_per_sec() - a.sims_per_sec(), 3)});
  delta.add_row(
      {"peak RSS bytes", std::to_string(a.telemetry_peak_rss),
       std::to_string(b.telemetry_peak_rss),
       std::to_string(static_cast<std::int64_t>(b.telemetry_peak_rss) -
                      static_cast<std::int64_t>(a.telemetry_peak_rss))});
  std::cout << "\ndelta (B - A):\n";
  delta.render(std::cout, false);
  return 0;
}

int cmd_metrics_dump(Args& args) {
  const auto unit_name = args.positional().value_or("io_unit");
  const auto unit = make_unit(unit_name);
  if (unit == nullptr) {
    std::cerr << "unknown unit '" << unit_name << "'\n";
    return 1;
  }
  const std::size_t sims = args.size_value("--sims", 200);
  const bool as_json = args.flag("--json");

  // Exercise the farm + TAC so the registry has something to show:
  // every metric family a real run would touch gets registered here.
  const auto farm = backend_from_args(args);
  if (farm == nullptr) return 1;
  const auto repo = simulate_suite(*unit, *farm, sims);
  const tac::Tac tac_view(repo);
  (void)tac_view.best_templates(tac_view.uncovered_events(), 3);

  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  if (as_json) {
    obs::write_json(std::cout, snapshot);
  } else {
    std::cout << obs::to_prometheus(snapshot);
  }
  std::cerr << snapshot.samples.size() << " metric series after "
            << util::format_count(farm->total_simulations())
            << " simulations on " << unit_name << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  util::set_log_level(util::LogLevel::kWarn);
  try {
    // Arm fault-injection points before any IO so the fuzz harness can
    // hit the very first manifest write; a malformed spec is fatal.
    util::FailurePoint::install_from_env();
    int rc;
    if (command == "units") {
      rc = cmd_units();
    } else if (command == "events") {
      rc = cmd_events(args);
    } else if (command == "suite") {
      rc = cmd_suite(args);
    } else if (command == "skeletonize") {
      rc = cmd_skeletonize(args);
    } else if (command == "before") {
      rc = cmd_before(args);
    } else if (command == "policy") {
      rc = cmd_policy(args);
    } else if (command == "profile") {
      rc = cmd_profile(args);
    } else if (command == "holes") {
      rc = cmd_holes(args);
    } else if (command == "run") {
      rc = cmd_run(args);
    } else if (command == "campaign") {
      rc = cmd_campaign(args);
    } else if (command == "inspect") {
      rc = cmd_inspect(args);
    } else if (command == "metrics-dump") {
      rc = cmd_metrics_dump(args);
    } else {
      return usage();
    }
    if (rc == 0 && !args.rest().empty()) {
      // Unknown flags fail the command: a typo like --wachdog=30 that
      // silently no-ops is worse than an error.
      std::cerr << "error: unrecognized argument(s):";
      for (const auto& arg : args.rest()) std::cerr << ' ' << arg;
      std::cerr << "\nrun `ascdg` without arguments for usage\n";
      return 1;
    }
    return rc;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 2;
  }
}
