#!/usr/bin/env python3
"""Folds google-benchmark JSON output into BENCH_summary.json.

CI runs several bench binaries and archives each raw JSON; this script
reduces them to the handful of headline numbers a human (or a trend
dashboard) actually tracks per commit:

  * batched simulation throughput (wall-clock sims/sec) at 1 worker and
    at 8 workers, from BM_FarmRunAllBatched — the batch-of-seeds kernel
    path, the repo's primary throughput headline;
  * the batched-vs-scalar-dispatch speedup (BM_FarmRunAllBatched over
    BM_FarmRunAllScalar at 8 workers);
  * the fork-based process backend's wall-clock sims/sec at 1 and 8
    workers (BM_ProcessFarmRunAll) — informational, no regression gate:
    the pipe-protocol overhead is the price of crash isolation, and its
    cost profile is workload-shaped rather than code-shaped;
  * cpu-time sims/sec at 1 and 8 workers from the BM_FarmRun scaling
    sweep, plus the farm's full worker-scaling curve;
  * the --timeline sampling cost (BM_TimeSeriesSample);
  * per-benchmark medians (real time + items/sec) across every input
    file, so repeated or re-run benches aggregate instead of clobbering.

Stdlib only — CI must not need a pip install. Exits non-zero when a
required headline benchmark is missing from the inputs, so a silently
renamed bench fails the pipeline instead of producing a hollow summary —
and when the batched farm path is slower than the scalar-dispatch
baseline, so a regression that undoes the batching win fails the build.

Usage: bench_summary.py -o BENCH_summary.json BENCH_a.json [BENCH_b.json ...]
"""

import argparse
import json
import re
import statistics
import sys

SCHEMA = "ascdg-bench-summary-v1"

# Headline benches the summary cannot do without. The batched farm pair
# carries google-benchmark's /real_time suffix (UseRealTime): wall-clock
# sims/sec is the headline, not summed-CPU-time throughput.
REQUIRED = [
    "BM_FarmRun/1",
    "BM_FarmRun/8",
    "BM_FarmRunAllBatched/1/real_time",
    "BM_FarmRunAllBatched/8/real_time",
    "BM_FarmRunAllScalar/8/real_time",
    "BM_TimeSeriesSample",
]

# google-benchmark appends aggregate suffixes when repetitions are on;
# fold them into the base name and let the median handle the rest.
AGGREGATE_RE = re.compile(r"_(mean|median|stddev|cv|min|max)$")


def load_entries(paths):
    """Yields (name, entry) for every non-aggregate benchmark record."""
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        for entry in doc.get("benchmarks", []):
            if entry.get("run_type") == "aggregate":
                continue
            name = AGGREGATE_RE.sub("", entry["name"])
            yield name, entry


def median_of(entries, key):
    values = [e[key] for e in entries if key in e]
    return statistics.median(values) if values else None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="benchmark JSON files")
    parser.add_argument("-o", "--output", default="BENCH_summary.json")
    args = parser.parse_args(argv)

    by_name = {}
    for name, entry in load_entries(args.inputs):
        by_name.setdefault(name, []).append(entry)
    if not by_name:
        print("bench_summary: no benchmark records in inputs", file=sys.stderr)
        return 1

    missing = [name for name in REQUIRED if name not in by_name]
    if missing:
        print(
            "bench_summary: required benchmarks missing: " + ", ".join(missing),
            file=sys.stderr,
        )
        return 1

    medians = {}
    for name in sorted(by_name):
        entries = by_name[name]
        record = {
            "runs": len(entries),
            "real_time": median_of(entries, "real_time"),
            "time_unit": entries[0].get("time_unit", "ns"),
        }
        items = median_of(entries, "items_per_second")
        if items is not None:
            record["items_per_second"] = items
        medians[name] = record

    farm_scaling = {}
    for name, entries in by_name.items():
        match = re.fullmatch(r"BM_FarmRun/(\d+)", name)
        if match:
            farm_scaling[match.group(1)] = median_of(entries, "items_per_second")

    def batched(workers):
        return median_of(
            by_name["BM_FarmRunAllBatched/%d/real_time" % workers],
            "items_per_second",
        )

    def scalar(workers):
        return median_of(
            by_name["BM_FarmRunAllScalar/%d/real_time" % workers],
            "items_per_second",
        )

    # Optional: the process backend rides along when its bench ran (it
    # is not in REQUIRED — older branches predate exec::ProcessFarm).
    def process_farm(workers):
        entries = by_name.get("BM_ProcessFarmRunAll/%d/real_time" % workers)
        return median_of(entries, "items_per_second") if entries else None

    batched_8w = batched(8)
    scalar_8w = scalar(8)
    batched_speedup = (
        batched_8w / scalar_8w if batched_8w and scalar_8w else None
    )

    summary = {
        "schema": SCHEMA,
        "inputs": args.inputs,
        # The headline: wall-clock simulations per second through the
        # batched (simulate_batch) farm path, serially and at the
        # paper's 8-worker configuration.
        "batched_sims_per_sec_1_worker": batched(1),
        "batched_sims_per_sec_8_workers": batched_8w,
        # Scalar-dispatch baseline (one simulate() per instance, no
        # shared compiled tables) and the batched-over-scalar ratio.
        "scalar_sims_per_sec_8_workers": scalar_8w,
        "batched_speedup_8_workers": batched_speedup,
        # Fork-based process backend throughput (None when the bench did
        # not run). Tracked for trend visibility only — never gated.
        "process_sims_per_sec_1_worker": process_farm(1),
        "process_sims_per_sec_8_workers": process_farm(8),
        # Legacy cpu-time headlines from the BM_FarmRun sweep (kept for
        # trend continuity with pre-batching summaries).
        "sims_per_sec_1_worker": farm_scaling.get("1"),
        "sims_per_sec_8_workers": farm_scaling.get("8"),
        "farm_sims_per_sec_by_workers": farm_scaling,
        "timeline_sample_ns": median_of(
            by_name["BM_TimeSeriesSample"], "real_time"
        ),
        "medians": medians,
    }

    if batched_speedup is not None and batched_speedup < 1.0:
        print(
            "bench_summary: batched farm path regressed below the scalar "
            "baseline (%.0f vs %.0f sims/s at 8 workers, speedup %.2fx)"
            % (batched_8w, scalar_8w, batched_speedup),
            file=sys.stderr,
        )
        return 1

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=False)
        handle.write("\n")
    process_8w = summary["process_sims_per_sec_8_workers"]
    print(
        "bench_summary: %d benchmarks -> %s "
        "(batched 1w %.0f sims/s, 8w %.0f sims/s, %.2fx over scalar%s)"
        % (
            len(medians),
            args.output,
            summary["batched_sims_per_sec_1_worker"] or 0.0,
            summary["batched_sims_per_sec_8_workers"] or 0.0,
            batched_speedup or 0.0,
            ", process 8w %.0f sims/s" % process_8w if process_8w else "",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
