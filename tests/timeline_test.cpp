// TimeSeriesRecorder + TraceProfile: the historical layer of the
// observability stack. The load-bearing invariants are (a) the ring,
// the telemetry.jsonl file, and the /timeseries endpoint all serve the
// SAME rendered bytes — an offline replay of the file is bit-identical
// to what a live scrape saw — and (b) append-mode resume continues the
// sequence where the previous process stopped.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/run_state.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_profile.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace ascdg;
using namespace ascdg::obs;

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ascdg_timeline_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// A recorder config with the sampler thread off: tests drive
/// sample_now() themselves for determinism.
TimeSeriesConfig manual_config(Registry& reg, RunState& run) {
  TimeSeriesConfig config;
  config.start_thread = false;
  config.registry = &reg;
  config.run_state = &run;
  config.sample_resources = false;  // keep lines deterministic
  config.mirror_to_recorder = false;
  return config;
}

TEST(TimeSeries, SampleLineCarriesCoreFields) {
  Registry reg;
  reg.counter("ascdg_farm_simulations_total", {{"farm", "a"}}).add(100);
  reg.counter("ascdg_farm_simulations_total", {{"farm", "b"}}).add(50);
  reg.counter("ascdg_eval_cache_hits_total").add(30);
  reg.counter("ascdg_eval_cache_misses_total").add(10);
  reg.gauge("ascdg_farm_worker_busy_fraction", {{"farm", "a"}}).set(600'000);
  RunState run;
  run.start_flow("tmpl_a");
  run.enter_phase("optimization");
  run.set_optimizer(3, 0.25);

  TimeSeriesRecorder recorder(manual_config(reg, run));
  recorder.sample_now();

  const auto ring = recorder.ring();
  ASSERT_EQ(ring.size(), 1u);
  const util::JsonValue doc = util::json_parse(ring.front());
  EXPECT_EQ(doc.at("seq").as_uint64(), 0u);
  EXPECT_EQ(doc.at("phase").as_string(), "optimization");
  EXPECT_EQ(doc.at("sims").as_uint64(), 150u);  // summed across farms
  EXPECT_EQ(doc.at("sims_per_sec").as_double(), 0.0);  // no previous sample
  EXPECT_EQ(doc.at("opt_iteration").as_uint64(), 3u);
  EXPECT_EQ(doc.at("opt_best_value").as_double(), 0.25);
  EXPECT_EQ(doc.at("eval_cache_hits").as_uint64(), 30u);
  EXPECT_EQ(doc.at("eval_cache_misses").as_uint64(), 10u);
  EXPECT_EQ(doc.at("eval_cache_hit_rate").as_double(), 0.75);
  EXPECT_EQ(doc.at("worker_busy_ppm").as_int64(), 600'000);
  // Resources were disabled; the fields must be absent, not zero.
  EXPECT_EQ(doc.find("rss_bytes"), nullptr);
  EXPECT_EQ(doc.find("cpu_user_ms"), nullptr);
}

TEST(TimeSeries, DerivedSimsPerSecUsesTheDeltaBetweenSamples) {
  Registry reg;
  auto& sims = reg.counter("ascdg_farm_simulations_total");
  RunState run;
  TimeSeriesRecorder recorder(manual_config(reg, run));

  sims.add(100);
  recorder.sample_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sims.add(500);
  recorder.sample_now();

  const auto ring = recorder.ring();
  ASSERT_EQ(ring.size(), 2u);
  const util::JsonValue second = util::json_parse(ring.back());
  EXPECT_GT(second.at("sims_per_sec").as_double(), 0.0);
  EXPECT_EQ(second.at("sims").as_uint64(), 600u);
}

TEST(TimeSeries, RingWrapKeepsTheNewestSamplesInOrder) {
  Registry reg;
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.ring_capacity = 4;
  TimeSeriesRecorder recorder(config);

  for (int i = 0; i < 7; ++i) recorder.sample_now();

  EXPECT_EQ(recorder.samples_taken(), 7u);
  const auto ring = recorder.ring();
  ASSERT_EQ(ring.size(), 4u);
  std::uint64_t expected_seq = 3;  // oldest retained sample
  for (const auto& line : ring) {
    EXPECT_EQ(util::json_parse(line).at("seq").as_uint64(), expected_seq);
    ++expected_seq;
  }
}

TEST(TimeSeries, FileIsTheRingsSupersetBitForBit) {
  const fs::path dir = scratch_dir("replay");
  Registry reg;
  auto& sims = reg.counter("ascdg_farm_simulations_total");
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.ring_capacity = 3;
  config.jsonl_path = dir / "telemetry.jsonl";
  TimeSeriesRecorder recorder(config);
  ASSERT_TRUE(recorder.writing_file());

  for (int i = 0; i < 6; ++i) {
    sims.add(7);
    recorder.sample_now();
  }

  // The file holds the full history; the ring holds its tail — the
  // shared rendered string makes an offline replay of the file
  // bit-identical to what the live endpoint served.
  const auto lines = read_lines(config.jsonl_path);
  ASSERT_EQ(lines.size(), 6u);
  const auto ring = recorder.ring();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_TRUE(std::equal(ring.begin(), ring.end(), lines.end() - 3));
}

TEST(TimeSeries, StopTakesAFinalSampleAndFinalizesTheIndex) {
  const fs::path dir = scratch_dir("final");
  Registry reg;
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.jsonl_path = dir / "telemetry.jsonl";
  config.index_path = dir / "telemetry.index.json";
  config.sample_interval = std::chrono::milliseconds(60'000);
  TimeSeriesRecorder recorder(config);

  recorder.stop();
  recorder.stop();  // idempotent

  // Even a run far shorter than one interval records its end state.
  EXPECT_EQ(recorder.samples_taken(), 1u);
  EXPECT_EQ(read_lines(config.jsonl_path).size(), 1u);
  const auto index_lines = read_lines(config.index_path);
  ASSERT_EQ(index_lines.size(), 1u);
  const util::JsonValue index = util::json_parse(index_lines.front());
  EXPECT_EQ(index.at("schema").as_string(), kTimeSeriesSchema);
  EXPECT_EQ(index.at("samples").as_uint64(), 1u);
  EXPECT_EQ(index.at("file").as_string(), "telemetry.jsonl");
  EXPECT_TRUE(index.at("final").as_bool());
}

TEST(TimeSeries, AppendModeContinuesTheSequenceAcrossProcesses) {
  const fs::path dir = scratch_dir("append");
  Registry reg;
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.jsonl_path = dir / "telemetry.jsonl";

  {
    TimeSeriesRecorder first(config);
    first.sample_now();
    first.sample_now();
    first.stop();  // +1 final sample -> 3 lines on disk
  }
  ASSERT_EQ(read_lines(config.jsonl_path).size(), 3u);

  config.append = true;
  TimeSeriesRecorder resumed(config);
  // The file tail was preloaded: the ring shows one continuous history.
  EXPECT_EQ(resumed.samples_taken(), 3u);
  EXPECT_EQ(resumed.ring().size(), 3u);

  resumed.sample_now();
  const auto ring = resumed.ring();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(util::json_parse(ring.back()).at("seq").as_uint64(), 3u);
  const auto lines = read_lines(config.jsonl_path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines, ring);
}

TEST(TimeSeries, AppendPreloadOnlyKeepsTheTailWhenTheFileIsLong) {
  const fs::path dir = scratch_dir("append_wrap");
  Registry reg;
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.jsonl_path = dir / "telemetry.jsonl";
  config.ring_capacity = 2;
  {
    TimeSeriesRecorder first(config);
    for (int i = 0; i < 5; ++i) first.sample_now();
  }

  config.append = true;
  TimeSeriesRecorder resumed(config);
  EXPECT_EQ(resumed.samples_taken(), 6u);  // 5 + the dtor's final sample
  const auto ring = resumed.ring();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(util::json_parse(ring.front()).at("seq").as_uint64(), 4u);
  EXPECT_EQ(util::json_parse(ring.back()).at("seq").as_uint64(), 5u);
}

TEST(TimeSeries, UnwritableSinkDegradesToMemoryOnly) {
  const fs::path dir = scratch_dir("degrade");
  // The sink's parent "directory" is a regular file, so the sink can
  // never open. The recorder must keep sampling in memory, not throw.
  std::ofstream(dir / "blocker").put('\n');
  Registry reg;
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.jsonl_path = dir / "blocker" / "telemetry.jsonl";
  config.index_path = dir / "blocker" / "telemetry.index.json";
  TimeSeriesRecorder recorder(config);

  EXPECT_FALSE(recorder.writing_file());
  recorder.sample_now();
  EXPECT_EQ(recorder.ring().size(), 1u);
  recorder.stop();
  EXPECT_EQ(recorder.samples_taken(), 2u);
}

TEST(TimeSeries, ToJsonWrapsTheRingInTheV1Envelope) {
  Registry reg;
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.sample_interval = std::chrono::milliseconds(250);
  TimeSeriesRecorder recorder(config);
  recorder.sample_now();
  recorder.sample_now();

  const util::JsonValue doc = util::json_parse(recorder.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), kTimeSeriesSchema);
  EXPECT_EQ(doc.at("interval_ms").as_uint64(), 250u);
  EXPECT_EQ(doc.at("samples").as_uint64(), 2u);
  ASSERT_EQ(doc.at("ring").as_array().size(), 2u);
  EXPECT_EQ(doc.at("ring").as_array()[1].at("seq").as_uint64(), 1u);
}

TEST(TimeSeries, ExtrasAreSampledByFullSeriesKey) {
  Registry reg;
  reg.counter("ascdg_opt_iterations_total").add(4);
  reg.counter("ascdg_farm_chunks_total", {{"farm", "a"}}).add(9);
  RunState run;
  TimeSeriesConfig config = manual_config(reg, run);
  config.extra_metrics = {"ascdg_opt_iterations_total",
                          "ascdg_farm_chunks_total{farm=\"a\"}",
                          "ascdg_absent_metric"};
  TimeSeriesRecorder recorder(config);
  recorder.sample_now();

  const util::JsonValue doc = util::json_parse(recorder.ring().front());
  const util::JsonValue& extras = doc.at("extras");
  EXPECT_EQ(extras.at("ascdg_opt_iterations_total").as_uint64(), 4u);
  EXPECT_EQ(extras.at("ascdg_farm_chunks_total{farm=\"a\"}").as_uint64(), 9u);
  EXPECT_EQ(extras.find("ascdg_absent_metric"), nullptr);
}

TEST(TimeSeries, HttpEndpointServesTheRecorderVerbatim) {
  Registry reg;
  RunState run;
  TimeSeriesRecorder recorder(manual_config(reg, run));
  recorder.sample_now();

  HttpServerConfig http;
  http.registry = &reg;
  http.timeline = &recorder;
  HttpServer server(http);
  const std::string response = server.handle("GET", "/timeseries");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find(recorder.to_json()), std::string::npos);

  HttpServerConfig bare;
  bare.registry = &reg;
  HttpServer without(bare);
  const std::string missing = without.handle("GET", "/timeseries");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(missing.find("--timeline"), std::string::npos);
}

// ------------------------------------------------------------ profile

std::string span_line(const char* name, std::uint64_t id,
                      std::uint64_t parent, std::uint64_t dur_us) {
  std::ostringstream os;
  os << R"({"event":"span","span":")" << name << R"(","span_id":)" << id
     << ",\"parent_id\":" << parent << ",\"start_us\":0,\"dur_us\":" << dur_us
     << "}";
  return os.str();
}

TEST(TraceProfile, FoldsTheSpanStreamBackIntoATree) {
  // Children end (and are written) before their parent — the profile
  // must reassemble the tree from span_id/parent_id.
  std::string text;
  text += span_line("eval_batch", 3, 2, 40) + "\n";
  text += span_line("eval_batch", 4, 2, 60) + "\n";
  text += span_line("optimization", 2, 1, 150) + "\n";
  text += span_line("sampling", 5, 1, 50) + "\n";
  text += span_line("flow", 1, 0, 300) + "\n";

  const TraceProfile profile = TraceProfile::from_text(text);
  EXPECT_EQ(profile.spans(), 5u);
  EXPECT_EQ(profile.skipped_lines(), 0u);
  ASSERT_EQ(profile.roots().size(), 1u);
  const TraceProfileNode& flow = profile.roots().front();
  EXPECT_EQ(flow.name, "flow");
  EXPECT_EQ(flow.count, 1u);
  EXPECT_EQ(flow.total_us, 300u);
  EXPECT_EQ(flow.self_us, 100u);  // 300 - (150 + 50)
  EXPECT_EQ(profile.total_us(), 300u);

  // Children are sorted by total time, heaviest first.
  ASSERT_EQ(flow.children.size(), 2u);
  EXPECT_EQ(flow.children[0].name, "optimization");
  EXPECT_EQ(flow.children[0].depth, 1u);
  EXPECT_EQ(flow.children[1].name, "sampling");

  const TraceProfileNode& opt = flow.children[0];
  ASSERT_EQ(opt.children.size(), 1u);
  EXPECT_EQ(opt.children[0].name, "eval_batch");
  EXPECT_EQ(opt.children[0].count, 2u);
  EXPECT_EQ(opt.children[0].total_us, 100u);
  EXPECT_EQ(opt.self_us, 50u);  // 150 - 100

  // flatten() walks parents before children.
  const auto flat = profile.flatten();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0].name, "flow");
  EXPECT_EQ(flat[1].name, "optimization");
  EXPECT_EQ(flat[2].name, "eval_batch");
  EXPECT_EQ(flat[3].name, "sampling");
}

TEST(TraceProfile, QuantilesAreNearestRankOverEachNamePath) {
  std::string text;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    text += span_line("chunk", i, 0, i) + "\n";
  }
  const TraceProfile profile = TraceProfile::from_text(text);
  ASSERT_EQ(profile.roots().size(), 1u);
  const TraceProfileNode& chunk = profile.roots().front();
  EXPECT_EQ(chunk.count, 100u);
  EXPECT_EQ(chunk.p50_us, 50u);
  EXPECT_EQ(chunk.p95_us, 95u);
  EXPECT_EQ(chunk.p99_us, 99u);
}

TEST(TraceProfile, ToleratesGarbageOrphansAndForeignEvents) {
  std::string text;
  text += span_line("work", 7, 999, 25) + "\n";  // parent never written
  text += "{\"event\":\"flow_end\",\"sims\":12}\n";  // non-span: ignored
  text += "{\"event\":\"span\",\"span\":\"torn";     // crash-truncated
  text += "\nnot json at all\n";

  const TraceProfile profile = TraceProfile::from_text(text);
  EXPECT_EQ(profile.spans(), 1u);
  EXPECT_EQ(profile.skipped_lines(), 2u);
  // The orphan is promoted to a root rather than dropped: a truncated
  // trace (parent span lost in the crash) still profiles its children.
  ASSERT_EQ(profile.roots().size(), 1u);
  EXPECT_EQ(profile.roots().front().name, "work");
  EXPECT_EQ(profile.roots().front().total_us, 25u);
}

TEST(TraceProfile, RenderPrintsTheIndentedTree) {
  std::string text;
  text += span_line("child", 2, 1, 30) + "\n";
  text += span_line("root", 1, 0, 100) + "\n";
  const TraceProfile profile = TraceProfile::from_text(text);
  std::ostringstream os;
  profile.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("root"), std::string::npos);
  EXPECT_NE(out.find("  child"), std::string::npos);
  EXPECT_NE(out.find("n=1"), std::string::npos);
  EXPECT_NE(out.find("(30%)"), std::string::npos);

  std::ostringstream empty_os;
  TraceProfile::from_text("").render(empty_os);
  EXPECT_NE(empty_os.str().find("(no spans)"), std::string::npos);
}

TEST(TraceProfile, FromJsonlThrowsOnMissingFileOnly) {
  EXPECT_THROW(
      (void)TraceProfile::from_jsonl("/nonexistent/ascdg-trace.jsonl"),
      util::Error);
}

}  // namespace
