// Tests for the TAC query layer: per-template hit probabilities,
// best-template ranking (weighted and unweighted), uncovered-event
// queries, and behaviour on the real units' regression suites.
#include <gtest/gtest.h>

#include <vector>

#include "batch/sim_farm.hpp"
#include "coverage/repository.hpp"
#include "duv/io_unit.hpp"
#include "tac/tac.hpp"
#include "util/error.hpp"

namespace ascdg::tac {
namespace {

using coverage::CoverageRepository;
using coverage::CoverageVector;
using coverage::EventId;
using coverage::SimStats;

/// Repository with hand-crafted hit rates:
///   t_a: hits e0 always, e1 half the time.
///   t_b: hits e1 always.
///   t_c: hits nothing.
CoverageRepository make_repo() {
  CoverageRepository repo(3);
  for (int i = 0; i < 10; ++i) {
    CoverageVector vec(3);
    vec.hit(EventId{0});
    if (i < 5) vec.hit(EventId{1});
    repo.record("t_a", vec);
  }
  for (int i = 0; i < 10; ++i) {
    CoverageVector vec(3);
    vec.hit(EventId{1});
    repo.record("t_b", vec);
  }
  for (int i = 0; i < 10; ++i) {
    repo.record("t_c", CoverageVector(3));
  }
  return repo;
}

TEST(Tac, HitProbability) {
  const auto repo = make_repo();
  const Tac tac(repo);
  EXPECT_DOUBLE_EQ(tac.hit_probability("t_a", EventId{0}), 1.0);
  EXPECT_DOUBLE_EQ(tac.hit_probability("t_a", EventId{1}), 0.5);
  EXPECT_DOUBLE_EQ(tac.hit_probability("t_b", EventId{0}), 0.0);
  EXPECT_THROW((void)tac.hit_probability("missing", EventId{0}),
               util::NotFoundError);
}

TEST(Tac, BestTemplatesRanksBySummedRate) {
  const auto repo = make_repo();
  const Tac tac(repo);
  const std::vector<EventId> events{EventId{0}, EventId{1}};
  const auto ranked = tac.best_templates(events, 10);
  ASSERT_EQ(ranked.size(), 2u);  // t_c scores zero -> omitted
  EXPECT_EQ(ranked[0].name, "t_a");  // 1.0 + 0.5
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.5);
  EXPECT_EQ(ranked[1].name, "t_b");  // 1.0
  EXPECT_EQ(ranked[0].sims, 10u);
}

TEST(Tac, BestTemplatesRespectsWeights) {
  const auto repo = make_repo();
  const Tac tac(repo);
  // Heavily weight e1: t_b (1.0 on e1) must now beat t_a (0.5 on e1 +
  // small contribution from e0).
  const std::vector<WeightedEvent> events{{EventId{0}, 0.1}, {EventId{1}, 10.0}};
  const auto ranked = tac.best_templates(events, 10);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "t_b");
}

TEST(Tac, BestTemplatesTruncatesToN) {
  const auto repo = make_repo();
  const Tac tac(repo);
  const std::vector<EventId> events{EventId{0}, EventId{1}};
  EXPECT_EQ(tac.best_templates(events, 1).size(), 1u);
}

TEST(Tac, BestTemplatesEmptyWhenNoEvidence) {
  const auto repo = make_repo();
  const Tac tac(repo);
  const std::vector<EventId> events{EventId{2}};  // nobody hits e2
  EXPECT_TRUE(tac.best_templates(events, 5).empty());
}

TEST(Tac, UncoveredEvents) {
  const auto repo = make_repo();
  const Tac tac(repo);
  const auto uncovered = tac.uncovered_events();
  ASSERT_EQ(uncovered.size(), 1u);
  EXPECT_EQ(uncovered[0], EventId{2});
}

TEST(Tac, TemplatesHittingRanked) {
  const auto repo = make_repo();
  const Tac tac(repo);
  const auto hitting = tac.templates_hitting(EventId{1});
  ASSERT_EQ(hitting.size(), 2u);
  EXPECT_EQ(hitting[0].name, "t_b");
  EXPECT_EQ(hitting[1].name, "t_a");
}

// On the real I/O unit: the coarse-grained search must identify the CRC
// smoke template as the best one for the crc family — that is the whole
// point of phase 1 (paper §IV-B).
TEST(Tac, FindsCrcTemplateOnIoUnit) {
  const duv::IoUnit io;
  batch::SimFarm farm(2);
  CoverageRepository repo(io.space().size());
  const auto suite = io.suite();
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm.run(io, suite[j], 300, 100 + j));
  }
  const Tac tac(repo);
  const auto family = io.crc_family();
  const std::vector<EventId> events(family.begin(), family.end());
  const auto ranked = tac.best_templates(events, 3);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].name, "io_crc_smoke");
}

TEST(Tac, RegressionPolicyCoversEverythingCoverable) {
  const auto repo = make_repo();
  const Tac tac(repo);
  const auto policy = tac.suggest_regression_policy();
  // t_a (2 events) is picked first, then t_b adds nothing new (e1
  // already covered by t_a) -> policy is exactly {t_a}.
  ASSERT_EQ(policy.size(), 1u);
  EXPECT_EQ(policy[0], "t_a");
}

TEST(Tac, RegressionPolicyPicksComplementaryTemplates) {
  CoverageRepository repo(3);
  const auto record = [&repo](const char* name, std::vector<std::uint32_t> hits) {
    CoverageVector vec(3);
    for (const auto e : hits) vec.hit(EventId{e});
    repo.record(name, vec);
  };
  record("covers_01", {0, 1});
  record("covers_2", {2});
  record("covers_1", {1});
  const Tac tac(repo);
  const auto policy = tac.suggest_regression_policy();
  ASSERT_EQ(policy.size(), 2u);
  EXPECT_EQ(policy[0], "covers_01");
  EXPECT_EQ(policy[1], "covers_2");
}

TEST(Tac, RegressionPolicyEmptyRepo) {
  const CoverageRepository repo(2);
  const Tac tac(repo);
  EXPECT_TRUE(tac.suggest_regression_policy().empty());
}

TEST(Tac, ReliablyCoveredEventsHonorsThreshold) {
  const auto repo = make_repo();
  const Tac tac(repo);
  // e0 at rate 1.0 (t_a), e1 at rate 1.0 (t_b), e2 never.
  const auto strict = tac.reliably_covered_events(0.9);
  ASSERT_EQ(strict.size(), 2u);
  EXPECT_EQ(strict[0], EventId{0});
  // Raising above any single-template rate empties the set for e1?
  // both e0/e1 have a 1.0 template, so only an impossible threshold
  // excludes them.
  EXPECT_EQ(tac.reliably_covered_events(0.4).size(), 2u);
}

}  // namespace
}  // namespace ascdg::tac
