// Fault-injection layer: FailurePoint trigger semantics, the durable
// atomic writer under injected ENOSPC/short-write/rename failures,
// stale-temp reaping on session open, and the HTTP server's EINTR
// handling (both injected deterministically and via a real interval-
// timer signal storm).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/artifacts.hpp"
#include "flow/session.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/fs.hpp"

namespace {

namespace fs = std::filesystem;
using ascdg::util::Durability;
using ascdg::util::FailurePoint;
using Id = ascdg::util::FailurePoint::Id;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ascdg_fault_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

bool has_tmp_files(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().ends_with(".tmp")) return true;
  }
  return false;
}

/// Every test leaves the process with nothing armed.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FailurePoint::disarm_all(); }
};

// ------------------------------------------------ trigger semantics

TEST_F(FaultTest, DisarmedCheckIsFreeAndCountsNothing) {
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteFsync), 0);
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteFsync), 0);
  // The disarmed fast path must not touch any state.
  EXPECT_EQ(FailurePoint::checks(Id::kAtomicWriteFsync), 0u);
  EXPECT_EQ(FailurePoint::fires(Id::kAtomicWriteFsync), 0u);
}

TEST_F(FaultTest, OneShotFiresExactlyOnceWithItsErrno) {
  FailurePoint::prime_one_shot(Id::kAtomicWriteRename, ENOSPC);
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteRename), ENOSPC);
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteRename), 0);
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteRename), 0);
  EXPECT_EQ(FailurePoint::fires(Id::kAtomicWriteRename), 1u);
}

TEST_F(FaultTest, OneShotPointsAreIndependent) {
  FailurePoint::prime_one_shot(Id::kHttpRecv, EINTR);
  FailurePoint::prime_one_shot(Id::kHttpSend, ECONNRESET);
  EXPECT_EQ(FailurePoint::check(Id::kHttpSend), ECONNRESET);
  EXPECT_EQ(FailurePoint::check(Id::kHttpRecv), EINTR);
  EXPECT_EQ(FailurePoint::check(Id::kHttpSend), 0);
  EXPECT_EQ(FailurePoint::check(Id::kHttpRecv), 0);
}

TEST_F(FaultTest, EveryNthFiresOnExactMultiples) {
  FailurePoint::prime_every_nth(Id::kAtomicWriteWrite, 3, EIO);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(FailurePoint::check(Id::kAtomicWriteWrite) != 0);
  }
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FailurePoint::checks(Id::kAtomicWriteWrite), 9u);
  EXPECT_EQ(FailurePoint::fires(Id::kAtomicWriteWrite), 3u);
}

TEST_F(FaultTest, EveryFirstFiresAlways) {
  FailurePoint::prime_every_nth(Id::kArtifactRead, 1, ENOENT);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(FailurePoint::check(Id::kArtifactRead), ENOENT);
  }
}

TEST_F(FaultTest, ProbabilisticScheduleReplaysExactlyUnderASeed) {
  const auto draw_sequence = [](std::uint64_t seed) {
    FailurePoint::prime_probability(Id::kHttpAccept, 0.5, seed, EINTR);
    std::vector<bool> fired;
    for (int i = 0; i < 128; ++i) {
      fired.push_back(FailurePoint::check(Id::kHttpAccept) != 0);
    }
    FailurePoint::disarm(Id::kHttpAccept);
    return fired;
  };
  const std::vector<bool> first = draw_sequence(42);
  const std::vector<bool> replay = draw_sequence(42);
  EXPECT_EQ(first, replay);
  // p = 0.5 over 128 draws: both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultTest, ProbabilityExtremesNeverAndAlwaysFire) {
  FailurePoint::prime_probability(Id::kHttpRecv, 0.0, 1, EINTR);
  FailurePoint::prime_probability(Id::kHttpSend, 1.0, 1, EINTR);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(FailurePoint::check(Id::kHttpRecv), 0);
    EXPECT_EQ(FailurePoint::check(Id::kHttpSend), EINTR);
  }
}

TEST_F(FaultTest, DisarmAllResetsEverything) {
  FailurePoint::prime_every_nth(Id::kAtomicWriteOpen, 1, EIO);
  EXPECT_NE(FailurePoint::check(Id::kAtomicWriteOpen), 0);
  FailurePoint::disarm_all();
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteOpen), 0);
  EXPECT_EQ(FailurePoint::checks(Id::kAtomicWriteOpen), 0u);
  EXPECT_EQ(FailurePoint::fires(Id::kAtomicWriteOpen), 0u);
}

TEST_F(FaultTest, NamesRoundTripThroughFind) {
  for (int i = 0; i < FailurePoint::kIdCount; ++i) {
    const auto id = static_cast<Id>(i);
    const auto found = FailurePoint::find(FailurePoint::name(id));
    ASSERT_TRUE(found.has_value()) << FailurePoint::name(id);
    EXPECT_EQ(*found, id);
  }
  EXPECT_FALSE(FailurePoint::find("no.such.point").has_value());
}

// ------------------------------------------------ env spec parsing

TEST_F(FaultTest, InstallArmsMultipleEntries) {
  FailurePoint::install(
      "atomic_write.fsync=nth:2,errno=ENOSPC;http.recv=once,errno=EINTR");
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteFsync), 0);
  EXPECT_EQ(FailurePoint::check(Id::kAtomicWriteFsync), ENOSPC);
  EXPECT_EQ(FailurePoint::check(Id::kHttpRecv), EINTR);
  EXPECT_EQ(FailurePoint::check(Id::kHttpRecv), 0);
}

TEST_F(FaultTest, InstallAcceptsNumericErrnoAndProbabilitySeed) {
  FailurePoint::install("http.send=prob:1.0,errno=104,seed=7");
  EXPECT_EQ(FailurePoint::check(Id::kHttpSend), 104);  // ECONNRESET
}

TEST_F(FaultTest, MalformedSpecsAreFatalNotSilent) {
  const char* bad_specs[] = {
      "no.such.point=once",
      "atomic_write.fsync",
      "atomic_write.fsync=maybe",
      "atomic_write.fsync=nth:abc",
      "atomic_write.fsync=nth:0",
      "atomic_write.fsync=prob:1.5",
      "atomic_write.fsync=once,errno=EWHATEVER",
      "atomic_write.fsync=once,flavor=spicy",
  };
  for (const char* spec : bad_specs) {
    EXPECT_THROW(FailurePoint::install(spec), ascdg::util::ConfigError)
        << spec;
    FailurePoint::disarm_all();
  }
}

// ------------------------------------------------ durable atomic writes

TEST_F(FaultTest, AtomicWriteOpenFailureLeavesNothingBehind) {
  const fs::path dir = scratch_dir("open_fail");
  FailurePoint::prime_one_shot(Id::kAtomicWriteOpen, EMFILE);
  EXPECT_THROW(ascdg::util::atomic_write_file(dir / "a.json", "data"),
               ascdg::util::Error);
  EXPECT_FALSE(fs::exists(dir / "a.json"));
  EXPECT_FALSE(has_tmp_files(dir));
}

TEST_F(FaultTest, ShortWriteCleansTempAndKeepsPreviousCheckpoint) {
  const fs::path dir = scratch_dir("short_write");
  const fs::path file = dir / "ckpt.json";
  ascdg::util::atomic_write_file(file, "previous checkpoint");
  FailurePoint::prime_one_shot(Id::kAtomicWriteWrite, ENOSPC);
  const std::string next(4096, 'x');
  EXPECT_THROW(ascdg::util::atomic_write_file(file, next),
               ascdg::util::Error);
  EXPECT_EQ(read_file(file), "previous checkpoint");
  EXPECT_FALSE(has_tmp_files(dir));
}

TEST_F(FaultTest, FsyncFailureCleansTempAndKeepsPreviousCheckpoint) {
  const fs::path dir = scratch_dir("fsync_fail");
  const fs::path file = dir / "ckpt.json";
  ascdg::util::atomic_write_file(file, "previous checkpoint");
  FailurePoint::prime_one_shot(Id::kAtomicWriteFsync, ENOSPC);
  EXPECT_THROW(ascdg::util::atomic_write_file(file, "torn"),
               ascdg::util::Error);
  EXPECT_EQ(read_file(file), "previous checkpoint");
  EXPECT_FALSE(has_tmp_files(dir));
}

TEST_F(FaultTest, RenameFailureCleansTempAndKeepsPreviousCheckpoint) {
  const fs::path dir = scratch_dir("rename_fail");
  const fs::path file = dir / "ckpt.json";
  ascdg::util::atomic_write_file(file, "previous checkpoint");
  FailurePoint::prime_one_shot(Id::kAtomicWriteRename, EIO);
  EXPECT_THROW(ascdg::util::atomic_write_file(file, "torn"),
               ascdg::util::Error);
  EXPECT_EQ(read_file(file), "previous checkpoint");
  EXPECT_FALSE(has_tmp_files(dir));
}

TEST_F(FaultTest, DirFsyncFailureSurfacesButTheRenameStands) {
  const fs::path dir = scratch_dir("dir_fsync_fail");
  const fs::path file = dir / "ckpt.json";
  FailurePoint::prime_one_shot(Id::kAtomicWriteDirFsync, EIO);
  // The rename already committed when the directory fsync fails; the
  // caller sees the failure (durability not guaranteed) but the file
  // content is the complete new version — never torn.
  EXPECT_THROW(ascdg::util::atomic_write_file(file, "new"),
               ascdg::util::Error);
  EXPECT_EQ(read_file(file), "new");
  EXPECT_FALSE(has_tmp_files(dir));
}

TEST_F(FaultTest, DirFsyncEinvalIsTolerated) {
  // Filesystems that cannot fsync a directory report EINVAL; that is
  // not an error the caller can act on.
  const fs::path dir = scratch_dir("dir_fsync_einval");
  FailurePoint::prime_one_shot(Id::kAtomicWriteDirFsync, EINVAL);
  EXPECT_NO_THROW(ascdg::util::atomic_write_file(dir / "a.json", "data"));
  EXPECT_EQ(read_file(dir / "a.json"), "data");
}

TEST_F(FaultTest, NoFsyncDurabilityNeverReachesTheFsyncSites) {
  const fs::path dir = scratch_dir("no_fsync");
  FailurePoint::prime_one_shot(Id::kAtomicWriteFsync, EIO);
  FailurePoint::prime_one_shot(Id::kAtomicWriteDirFsync, EIO);
  EXPECT_NO_THROW(ascdg::util::atomic_write_file(dir / "a.json", "data",
                                                 Durability::kNoFsync));
  EXPECT_EQ(read_file(dir / "a.json"), "data");
  EXPECT_EQ(FailurePoint::fires(Id::kAtomicWriteFsync), 0u);
  EXPECT_EQ(FailurePoint::fires(Id::kAtomicWriteDirFsync), 0u);
}

// ------------------------------------------------ session integration

TEST_F(FaultTest, SessionOpenReapsStaleTempFiles) {
  const fs::path dir = scratch_dir("stale_open");
  const std::vector<std::string> stages = {"alpha", "beta"};
  ascdg::flow::Session::create(dir, 0xF00D, 5, stages);
  std::ofstream(dir / "optimization.ckpt.json.tmp") << "torn by SIGKILL";
  std::ofstream(dir / "manifest.json.tmp") << "torn by SIGKILL";
  ascdg::flow::Session::open(dir, 0xF00D, stages);
  EXPECT_FALSE(fs::exists(dir / "optimization.ckpt.json.tmp"));
  EXPECT_FALSE(fs::exists(dir / "manifest.json.tmp"));
  EXPECT_TRUE(fs::exists(dir / "manifest.json"));
}

TEST_F(FaultTest, SessionCreateReapsStaleTempFiles) {
  const fs::path dir = scratch_dir("stale_create");
  std::ofstream(dir / "sampling.json.tmp") << "torn";
  ascdg::flow::Session::create(dir, 0xF00D, 5,
                               std::vector<std::string>{"alpha"});
  EXPECT_FALSE(fs::exists(dir / "sampling.json.tmp"));
}

TEST_F(FaultTest, ManifestReadFailureIsInjectable) {
  const fs::path dir = scratch_dir("manifest_read");
  const std::vector<std::string> stages = {"alpha"};
  ascdg::flow::Session::create(dir, 0xF00D, 5, stages);
  FailurePoint::prime_one_shot(Id::kManifestRead, EIO);
  EXPECT_THROW(ascdg::flow::Session::open(dir, 0xF00D, stages),
               ascdg::util::Error);
  // Injection consumed; the next open succeeds.
  EXPECT_NO_THROW(ascdg::flow::Session::open(dir, 0xF00D, stages));
}

TEST_F(FaultTest, ArtifactReadFailureIsInjectable) {
  const fs::path dir = scratch_dir("artifact_read");
  ascdg::util::atomic_write_file(dir / "a.json", R"({"a":1})");
  FailurePoint::prime_one_shot(Id::kArtifactRead, EIO);
  EXPECT_THROW((void)ascdg::flow::read_json_file(dir / "a.json"),
               ascdg::util::Error);
  EXPECT_EQ(ascdg::flow::read_json_file(dir / "a.json").at("a").as_size(),
            1u);
}

// ------------------------------------------------ HTTP EINTR handling

/// Minimal EINTR-robust HTTP client — the *test* must survive the
/// signal storm too.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    if (errno == EINTR || errno == EALREADY) continue;
    if (errno == EISCONN) break;
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(FaultTest, HttpServerRetriesInjectedEintrOnEveryPath) {
  ascdg::obs::Registry reg;
  reg.counter("ascdg_fault_probe_total").add(1);
  ascdg::obs::HttpServerConfig config;
  config.registry = &reg;
  ascdg::obs::HttpServer server(config);
  ASSERT_NE(server.port(), 0);

  // Every second accept/recv/send syscall "returns" EINTR. Before the
  // retry fix each of these dropped the connection or truncated the
  // response mid-flight.
  FailurePoint::prime_every_nth(Id::kHttpAccept, 2, EINTR);
  FailurePoint::prime_every_nth(Id::kHttpRecv, 2, EINTR);
  FailurePoint::prime_every_nth(Id::kHttpSend, 2, EINTR);

  for (int i = 0; i < 8; ++i) {
    const std::string response = http_get(server.port(), "/metrics");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << i;
    EXPECT_NE(response.find("ascdg_fault_probe_total 1"), std::string::npos)
        << i;
  }
  EXPECT_GT(FailurePoint::fires(Id::kHttpRecv), 0u);
  EXPECT_GT(FailurePoint::fires(Id::kHttpSend), 0u);
}

void sigalrm_noop(int) {}

TEST_F(FaultTest, HttpServerSurvivesAnIntervalTimerEintrStorm) {
  ascdg::obs::Registry reg;
  reg.counter("ascdg_fault_storm_total").add(1);
  ascdg::obs::HttpServerConfig config;
  config.registry = &reg;
  ascdg::obs::HttpServer server(config);
  ASSERT_NE(server.port(), 0);

  // A real signal storm: SIGALRM every 2 ms, installed *without*
  // SA_RESTART so blocking syscalls in whichever thread takes the
  // signal actually return EINTR.
  struct sigaction action = {};
  action.sa_handler = sigalrm_noop;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous = {};
  ASSERT_EQ(sigaction(SIGALRM, &action, &previous), 0);
  itimerval timer = {};
  timer.it_interval.tv_usec = 2000;
  timer.it_value.tv_usec = 2000;
  itimerval previous_timer = {};
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, &previous_timer), 0);

  int ok = 0;
  constexpr int kRequests = 100;
  for (int i = 0; i < kRequests; ++i) {
    const std::string response = http_get(server.port(), "/metrics");
    if (response.find("HTTP/1.1 200 OK") != std::string::npos &&
        response.find("ascdg_fault_storm_total 1") != std::string::npos) {
      ++ok;
    }
  }

  setitimer(ITIMER_REAL, &previous_timer, nullptr);
  sigaction(SIGALRM, &previous, nullptr);
  EXPECT_EQ(ok, kRequests);
}

}  // namespace
