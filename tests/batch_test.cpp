// Tests for the batch simulation farm: determinism across worker
// counts, job batching, accounting, edge cases (zero counts), and the
// v2 guarantees — exception propagation, drain-on-destruct, work
// stealing telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "batch/sim_farm.hpp"
#include "cdg/cdg_objective.hpp"
#include "exec/thread_farm.hpp"
#include "cdg/skeletonizer.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "neighbors/neighbors.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::batch {
namespace {

/// Forwards to an inner unit but throws after `fail_after` simulations —
/// models a crashing RTL simulator inside the farm.
class ThrowingDuv final : public duv::Duv {
 public:
  explicit ThrowingDuv(const duv::Duv& inner, std::size_t fail_after = 0)
      : inner_(&inner), fail_after_(fail_after) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "throwing";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return inner_->space();
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return inner_->defaults();
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) >= fail_after_) {
      throw util::Error("injected DUV failure");
    }
    return inner_->simulate(tmpl, seed);
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return inner_->suite();
  }

 private:
  const duv::Duv* inner_;
  std::size_t fail_after_;
  mutable std::atomic<std::size_t> calls_{0};
};

/// Forwards to an inner unit with an artificial per-simulation delay,
/// so tests can observe the farm with work still queued.
class SlowDuv final : public duv::Duv {
 public:
  explicit SlowDuv(const duv::Duv& inner) : inner_(&inner) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "slow";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return inner_->space();
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return inner_->defaults();
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return inner_->simulate(tmpl, seed);
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return inner_->suite();
  }

 private:
  const duv::Duv* inner_;
};

TEST(SimFarm, ResultIndependentOfWorkerCount) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  coverage::SimStats reference;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    SimFarm farm(workers);
    const auto stats = farm.run(io, tmpl, 500, 42);
    if (workers == 1) {
      reference = stats;
    } else {
      EXPECT_EQ(stats, reference) << "workers=" << workers;
    }
  }
}

TEST(SimFarm, RunAllIndependentOfWorkerCount) {
  const duv::L3Cache l3;
  const auto suite = l3.suite();
  ASSERT_GE(suite.size(), 2u);
  std::vector<SimFarm::Job> jobs{{&suite[0], 150, 7}, {&suite[1], 90, 8}};
  std::vector<coverage::SimStats> reference;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    SimFarm farm(workers);
    auto batch = farm.run_all(l3, jobs);
    if (workers == 1) {
      reference = std::move(batch);
    } else {
      EXPECT_EQ(batch, reference) << "workers=" << workers;
    }
  }
}

TEST(SimFarm, MatchesDirectSerialSimulation) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(3);
  const auto farm_stats = farm.run(io, tmpl, 200, 7);

  coverage::SimStats direct(io.space().size());
  const util::SeedStream seeds(7);
  for (std::size_t i = 0; i < 200; ++i) {
    direct.record(io.simulate(tmpl, seeds.at(i)));
  }
  EXPECT_EQ(farm_stats, direct);
}

TEST(SimFarm, RunAllPreservesJobOrderAndSeeds) {
  const duv::L3Cache l3;
  const auto suite = l3.suite();
  ASSERT_GE(suite.size(), 3u);
  SimFarm farm(2);
  std::vector<SimFarm::Job> jobs;
  for (std::size_t j = 0; j < 3; ++j) {
    jobs.push_back({&suite[j], 100, 1000 + j});
  }
  const auto batch = farm.run_all(l3, jobs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto solo = farm.run(l3, suite[j], 100, 1000 + j);
    EXPECT_EQ(batch[j], solo) << "job " << j;
  }
}

TEST(SimFarm, DifferentSeedsGiveDifferentStats) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const auto a = farm.run(io, io.defaults(), 300, 1);
  const auto b = farm.run(io, io.defaults(), 300, 2);
  EXPECT_FALSE(a == b);
}

TEST(SimFarm, CountsSimulations) {
  const duv::IoUnit io;
  SimFarm farm(2);
  EXPECT_EQ(farm.total_simulations(), 0u);
  (void)farm.run(io, io.defaults(), 130, 5);
  EXPECT_EQ(farm.total_simulations(), 130u);
  (void)farm.run(io, io.defaults(), 70, 5);
  EXPECT_EQ(farm.total_simulations(), 200u);
}

TEST(SimFarm, ZeroCountJobReturnsEmptyStats) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const auto stats = farm.run(io, io.defaults(), 0, 5);
  EXPECT_EQ(stats.sims(), 0u);
}

TEST(SimFarm, RunAllWithEmptyJobList) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const auto results = farm.run_all(io, {});
  EXPECT_TRUE(results.empty());
}

TEST(SimFarm, StatsSimsMatchRequestedCount) {
  const duv::IoUnit io;
  SimFarm farm(4);
  // Non-multiple of the internal chunk size.
  const auto stats = farm.run(io, io.defaults(), 257, 3);
  EXPECT_EQ(stats.sims(), 257u);
}

TEST(SimFarm, DefaultWorkerCountIsPositive) {
  SimFarm farm;
  EXPECT_GE(farm.worker_count(), 1u);
}

TEST(SimFarm, ManySmallJobsComplete) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(2);
  std::vector<SimFarm::Job> jobs(40, SimFarm::Job{&tmpl, 5, 0});
  for (std::size_t j = 0; j < jobs.size(); ++j) jobs[j].seed_root = j;
  const auto results = farm.run_all(io, jobs);
  ASSERT_EQ(results.size(), 40u);
  for (const auto& stats : results) EXPECT_EQ(stats.sims(), 5u);
}

// Chunk-boundary property: the farm's result must be independent of how
// the internal chunking slices the work.
class ChunkBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkBoundary, CountsAroundChunkSizeAreExact) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const std::size_t count = GetParam();
  const auto stats = farm.run(io, io.defaults(), count, 11);
  EXPECT_EQ(stats.sims(), count);

  // And identical to a serial reference.
  coverage::SimStats direct(io.space().size());
  const util::SeedStream seeds(11);
  for (std::size_t i = 0; i < count; ++i) {
    direct.record(io.simulate(io.defaults(), seeds.at(i)));
  }
  EXPECT_EQ(stats, direct);
}

INSTANTIATE_TEST_SUITE_P(Batch, ChunkBoundary,
                         ::testing::Values(1u, 63u, 64u, 65u, 127u, 128u, 200u));

TEST(SimFarm, ConcurrentCallersShareThePool) {
  const duv::IoUnit io;
  SimFarm farm(2);
  coverage::SimStats a, b;
  std::thread caller([&] { a = farm.run(io, io.defaults(), 100, 21); });
  b = farm.run(io, io.defaults(), 100, 22);
  caller.join();
  EXPECT_EQ(a.sims(), 100u);
  EXPECT_EQ(b.sims(), 100u);
  EXPECT_FALSE(a == b);  // different seeds
  // Each equals its serial reference.
  const auto check = [&](const coverage::SimStats& got, std::uint64_t seed) {
    coverage::SimStats direct(io.space().size());
    const util::SeedStream seeds(seed);
    for (std::size_t i = 0; i < 100; ++i) {
      direct.record(io.simulate(io.defaults(), seeds.at(i)));
    }
    EXPECT_EQ(got, direct);
  };
  check(a, 21);
  check(b, 22);
}

// ------------------------------------------------------- v2 guarantees --

TEST(SimFarmV2, ThrowingSimulationPropagatesInsteadOfHanging) {
  const duv::IoUnit io;
  const ThrowingDuv bad(io, /*fail_after=*/0);
  SimFarm farm(2);
  EXPECT_THROW((void)farm.run(bad, io.defaults(), 200, 1), util::Error);
}

TEST(SimFarmV2, ThrowMidRunStillPropagates) {
  const duv::IoUnit io;
  // Several chunks complete before the failure hits.
  const ThrowingDuv bad(io, /*fail_after=*/150);
  SimFarm farm(2);
  EXPECT_THROW((void)farm.run(bad, io.defaults(), 512, 1), util::Error);
  EXPECT_GE(farm.telemetry().exceptions, 1u);
}

TEST(SimFarmV2, ExceptionMessageSurvives) {
  const duv::IoUnit io;
  const ThrowingDuv bad(io);
  SimFarm farm(2);
  try {
    (void)farm.run(bad, io.defaults(), 64, 1);
    FAIL() << "run() must rethrow the DUV exception";
  } catch (const util::Error& e) {
    EXPECT_STREQ(e.what(), "injected DUV failure");
  }
}

TEST(SimFarmV2, FarmUsableAfterException) {
  const duv::IoUnit io;
  const ThrowingDuv bad(io);
  SimFarm farm(2);
  EXPECT_THROW((void)farm.run(bad, io.defaults(), 128, 1), util::Error);
  const auto stats = farm.run(io, io.defaults(), 100, 5);
  EXPECT_EQ(stats.sims(), 100u);
}

TEST(SimFarmV2, RunAllWithZeroCountJobsMixedIn) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(2);
  std::vector<SimFarm::Job> jobs{
      {&tmpl, 100, 1}, {&tmpl, 0, 2}, {&tmpl, 70, 3}, {&tmpl, 0, 4}};
  const auto results = farm.run_all(io, jobs);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].sims(), 100u);
  EXPECT_EQ(results[1].sims(), 0u);
  EXPECT_EQ(results[2].sims(), 70u);
  EXPECT_EQ(results[3].sims(), 0u);
  EXPECT_EQ(results[0], farm.run(io, tmpl, 100, 1));
  EXPECT_EQ(results[2], farm.run(io, tmpl, 70, 3));
}

TEST(SimFarmV2, JobsFarExceedWorkers) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(2);
  std::vector<SimFarm::Job> jobs(300, SimFarm::Job{&tmpl, 3, 0});
  for (std::size_t j = 0; j < jobs.size(); ++j) jobs[j].seed_root = j;
  const auto results = farm.run_all(io, jobs);
  ASSERT_EQ(results.size(), 300u);
  for (const auto& stats : results) EXPECT_EQ(stats.sims(), 3u);
  // Spot-check against serial references.
  for (const std::size_t j : {0u, 150u, 299u}) {
    coverage::SimStats direct(io.space().size());
    const util::SeedStream seeds(j);
    for (std::size_t i = 0; i < 3; ++i) {
      direct.record(io.simulate(tmpl, seeds.at(i)));
    }
    EXPECT_EQ(results[j], direct) << "job " << j;
  }
}

TEST(SimFarmV2, TelemetryCountersAreConsistent) {
  const duv::IoUnit io;
  SimFarm farm(2);
  (void)farm.run(io, io.defaults(), 130, 5);  // 3 chunks (64+64+2)
  const auto& tmpl = io.defaults();
  std::vector<SimFarm::Job> jobs{{&tmpl, 64, 1}, {&tmpl, 64, 2}};
  (void)farm.run_all(io, jobs);  // 2 chunks

  const TelemetrySnapshot snap = farm.telemetry();
  EXPECT_EQ(snap.simulations, 258u);
  EXPECT_EQ(snap.simulations, farm.total_simulations());
  EXPECT_EQ(snap.chunks, 5u);
  EXPECT_EQ(snap.enqueued, 5u);
  EXPECT_EQ(snap.runs, 2u);
  EXPECT_EQ(snap.exceptions, 0u);
  EXPECT_GE(snap.max_queue_depth, 1u);
  EXPECT_LE(snap.steals, snap.chunks);
  EXPECT_GT(snap.busy_ns, 0u);
  std::size_t histogram_total = 0;
  for (const std::size_t count : snap.chunk_latency) histogram_total += count;
  EXPECT_EQ(histogram_total, snap.chunks);
  EXPECT_GT(snap.mean_chunk_us(), 0.0);
}

TEST(SimFarmV2, DestructorDrainsInFlightRun) {
  const duv::IoUnit io;
  const SlowDuv slow(io);
  auto farm = std::make_unique<SimFarm>(2);
  // The helper thread must not touch the unique_ptr itself — reset()
  // below writes it concurrently; only the pointee is synchronized.
  SimFarm* const raw = farm.get();
  coverage::SimStats stats;
  std::thread caller(
      [&stats, raw, &slow, &io] { stats = raw->run(slow, io.defaults(), 256, 3); });
  // Wait until all 4 chunks are queued, then tear the farm down while
  // they are still in flight: v2 drains instead of dropping them.
  while (raw->telemetry().enqueued < 4) std::this_thread::yield();
  farm.reset();
  caller.join();
  EXPECT_EQ(stats.sims(), 256u);
}

// Regression: the pre-registry queue-depth gauge was updated with a
// non-atomic read-modify-write racing enqueue against steal, so after a
// run it could drift away from zero and the recorded peak could be
// garbage. The obs::Gauge keeps one atomic cell with matched inc/dec,
// so an idle farm must read exactly zero — under concurrent run_all
// callers too (this test runs under TSan in CI).
TEST(SimFarmV2, QueueDepthGaugeIsConsistentUnderConcurrentRuns) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(4);
  constexpr std::size_t kCallers = 4;
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&farm, &io, &tmpl, t] {
      std::vector<SimFarm::Job> jobs(8, SimFarm::Job{&tmpl, 16, 0});
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].seed_root = t * 100 + j;
      }
      for (int round = 0; round < 5; ++round) (void)farm.run_all(io, jobs);
    });
  }
  for (auto& caller : callers) caller.join();

  const TelemetrySnapshot snap = farm.telemetry();
  // Matched inc/dec: nothing queued once every run_all returned.
  EXPECT_EQ(snap.queue_depth, 0u);
  // 4 callers x 5 rounds x 8 jobs, one chunk each (16 < chunk size).
  EXPECT_EQ(snap.enqueued, kCallers * 5u * 8u);
  EXPECT_EQ(snap.chunks, snap.enqueued);
  EXPECT_GE(snap.max_queue_depth, 1u);
  EXPECT_LE(snap.max_queue_depth, snap.enqueued);
  EXPECT_EQ(snap.simulations, kCallers * 5u * 8u * 16u);
}

// Batched objective evaluation through the shared farm, under TSan in
// CI: several optimizer threads, each with its own CdgObjective,
// dispatch whole stencils as single run_all calls against one pool.
// The farm is the only shared state; results must match a lone caller.
TEST(SimFarmV2, ConcurrentBatchedEvaluationsAreRaceFreeAndDeterministic) {
  const duv::IoUnit io;
  tgen::TestTemplate seed_tmpl;
  for (const auto& tmpl : io.suite()) {
    if (tmpl.name() == "io_crc_smoke") seed_tmpl = tmpl;
  }
  ASSERT_FALSE(seed_tmpl.name().empty());
  const tgen::Skeleton skeleton =
      cdg::Skeletonizer().skeletonize(seed_tmpl);
  const coverage::SimStats none(io.space().size());
  const neighbors::ApproximatedTarget target =
      neighbors::family_target(io.space(), "crc", none);

  const std::size_t dim = skeleton.mark_count();
  std::vector<opt::Point> xs;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 12; ++i) {
    xs.emplace_back(dim, 0.05 * static_cast<double>(i + 1));
    seeds.push_back(5000 + i);
  }

  exec::ThreadFarm farm(4);
  // Reference: a single caller evaluating the same batch.
  cdg::CdgObjective reference(io, farm, skeleton, target, 20);
  const std::vector<double> expected = reference.evaluate_batch(xs, seeds);

  constexpr std::size_t kCallers = 4;
  std::vector<std::vector<double>> got(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      cdg::CdgObjective objective(io, farm, skeleton, target, 20);
      for (int round = 0; round < 3; ++round) {
        got[t] = objective.evaluate_batch(xs, seeds);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(got[t], expected) << "caller " << t;
  }
}

TEST(SimFarmV2, ExceptionInOneJobOfManyRetiresTheWholeCall) {
  const duv::IoUnit io;
  const ThrowingDuv bad(io, /*fail_after=*/40);
  const auto& tmpl = io.defaults();
  SimFarm farm(4);
  std::vector<SimFarm::Job> jobs(10, SimFarm::Job{&tmpl, 64, 0});
  for (std::size_t j = 0; j < jobs.size(); ++j) jobs[j].seed_root = j;
  EXPECT_THROW((void)farm.run_all(bad, jobs), util::Error);
  // Every chunk retired (nothing left queued): an immediate clean run
  // works and the counters balance.
  const auto stats = farm.run(io, tmpl, 64, 9);
  EXPECT_EQ(stats.sims(), 64u);
  const TelemetrySnapshot snap = farm.telemetry();
  EXPECT_EQ(snap.enqueued, 11u);
  EXPECT_GE(snap.exceptions, 1u);
}

}  // namespace
}  // namespace ascdg::batch
