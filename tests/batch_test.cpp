// Tests for the batch simulation farm: determinism across worker
// counts, job batching, accounting, and edge cases (zero counts).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "batch/sim_farm.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "util/rng.hpp"

namespace ascdg::batch {
namespace {

TEST(SimFarm, ResultIndependentOfWorkerCount) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  coverage::SimStats reference;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SimFarm farm(workers);
    const auto stats = farm.run(io, tmpl, 500, 42);
    if (workers == 1) {
      reference = stats;
    } else {
      EXPECT_EQ(stats, reference) << "workers=" << workers;
    }
  }
}

TEST(SimFarm, MatchesDirectSerialSimulation) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(3);
  const auto farm_stats = farm.run(io, tmpl, 200, 7);

  coverage::SimStats direct(io.space().size());
  const util::SeedStream seeds(7);
  for (std::size_t i = 0; i < 200; ++i) {
    direct.record(io.simulate(tmpl, seeds.at(i)));
  }
  EXPECT_EQ(farm_stats, direct);
}

TEST(SimFarm, RunAllPreservesJobOrderAndSeeds) {
  const duv::L3Cache l3;
  const auto suite = l3.suite();
  ASSERT_GE(suite.size(), 3u);
  SimFarm farm(2);
  std::vector<SimFarm::Job> jobs;
  for (std::size_t j = 0; j < 3; ++j) {
    jobs.push_back({&suite[j], 100, 1000 + j});
  }
  const auto batch = farm.run_all(l3, jobs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto solo = farm.run(l3, suite[j], 100, 1000 + j);
    EXPECT_EQ(batch[j], solo) << "job " << j;
  }
}

TEST(SimFarm, DifferentSeedsGiveDifferentStats) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const auto a = farm.run(io, io.defaults(), 300, 1);
  const auto b = farm.run(io, io.defaults(), 300, 2);
  EXPECT_FALSE(a == b);
}

TEST(SimFarm, CountsSimulations) {
  const duv::IoUnit io;
  SimFarm farm(2);
  EXPECT_EQ(farm.total_simulations(), 0u);
  (void)farm.run(io, io.defaults(), 130, 5);
  EXPECT_EQ(farm.total_simulations(), 130u);
  (void)farm.run(io, io.defaults(), 70, 5);
  EXPECT_EQ(farm.total_simulations(), 200u);
}

TEST(SimFarm, ZeroCountJobReturnsEmptyStats) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const auto stats = farm.run(io, io.defaults(), 0, 5);
  EXPECT_EQ(stats.sims(), 0u);
}

TEST(SimFarm, RunAllWithEmptyJobList) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const auto results = farm.run_all(io, {});
  EXPECT_TRUE(results.empty());
}

TEST(SimFarm, StatsSimsMatchRequestedCount) {
  const duv::IoUnit io;
  SimFarm farm(4);
  // Non-multiple of the internal chunk size.
  const auto stats = farm.run(io, io.defaults(), 257, 3);
  EXPECT_EQ(stats.sims(), 257u);
}

TEST(SimFarm, DefaultWorkerCountIsPositive) {
  SimFarm farm;
  EXPECT_GE(farm.worker_count(), 1u);
}

TEST(SimFarm, ManySmallJobsComplete) {
  const duv::IoUnit io;
  const auto& tmpl = io.defaults();
  SimFarm farm(2);
  std::vector<SimFarm::Job> jobs(40, SimFarm::Job{&tmpl, 5, 0});
  for (std::size_t j = 0; j < jobs.size(); ++j) jobs[j].seed_root = j;
  const auto results = farm.run_all(io, jobs);
  ASSERT_EQ(results.size(), 40u);
  for (const auto& stats : results) EXPECT_EQ(stats.sims(), 5u);
}

// Chunk-boundary property: the farm's result must be independent of how
// the internal chunking slices the work.
class ChunkBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkBoundary, CountsAroundChunkSizeAreExact) {
  const duv::IoUnit io;
  SimFarm farm(2);
  const std::size_t count = GetParam();
  const auto stats = farm.run(io, io.defaults(), count, 11);
  EXPECT_EQ(stats.sims(), count);

  // And identical to a serial reference.
  coverage::SimStats direct(io.space().size());
  const util::SeedStream seeds(11);
  for (std::size_t i = 0; i < count; ++i) {
    direct.record(io.simulate(io.defaults(), seeds.at(i)));
  }
  EXPECT_EQ(stats, direct);
}

INSTANTIATE_TEST_SUITE_P(Batch, ChunkBoundary,
                         ::testing::Values(1u, 63u, 64u, 65u, 127u, 128u, 200u));

TEST(SimFarm, ConcurrentCallersShareThePool) {
  const duv::IoUnit io;
  SimFarm farm(2);
  coverage::SimStats a, b;
  std::thread caller([&] { a = farm.run(io, io.defaults(), 100, 21); });
  b = farm.run(io, io.defaults(), 100, 22);
  caller.join();
  EXPECT_EQ(a.sims(), 100u);
  EXPECT_EQ(b.sims(), 100u);
  EXPECT_FALSE(a == b);  // different seeds
  // Each equals its serial reference.
  const auto check = [&](const coverage::SimStats& got, std::uint64_t seed) {
    coverage::SimStats direct(io.space().size());
    const util::SeedStream seeds(seed);
    for (std::size_t i = 0; i < 100; ++i) {
      direct.record(io.simulate(io.defaults(), seeds.at(i)));
    }
    EXPECT_EQ(got, direct);
  };
  check(a, 21);
  check(b, 22);
}

}  // namespace
}  // namespace ascdg::batch
