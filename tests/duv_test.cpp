// Tests for the simulated units: determinism, thread safety of the
// const interface, coverage-space structure, suite validity, and —
// critically — the *coverage physics* each unit must exhibit for the
// paper's experiments to be reproducible (family gradients, parameter
// sensitivity, structurally unhittable events).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "coverage/repository.hpp"
#include "duv/ifu.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "duv/lsu.hpp"
#include "duv/registry.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {
namespace {

coverage::SimStats run_many(const Duv& duv, const tgen::TestTemplate& tmpl,
                            std::size_t n, std::uint64_t seed = 1) {
  coverage::SimStats stats(duv.space().size());
  const util::SeedStream seeds(seed);
  for (std::size_t i = 0; i < n; ++i) {
    stats.record(duv.simulate(tmpl, seeds.at(i)));
  }
  return stats;
}

// Generic per-unit contract, parameterized over the three units.
class UnitContract : public ::testing::TestWithParam<const char*> {
 protected:
  static std::unique_ptr<Duv> make(const std::string& name) {
    if (name == "io_unit") return std::make_unique<IoUnit>();
    if (name == "l3_cache") return std::make_unique<L3Cache>();
    if (name == "lsu") return std::make_unique<Lsu>();
    return std::make_unique<Ifu>();
  }
};

TEST_P(UnitContract, SimulateIsDeterministic) {
  const auto duv = make(GetParam());
  const auto& tmpl = duv->defaults();
  for (std::uint64_t seed : {1ULL, 42ULL, 0xFFFFULL}) {
    const auto a = duv->simulate(tmpl, seed);
    const auto b = duv->simulate(tmpl, seed);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST_P(UnitContract, DifferentSeedsGiveDifferentCoverage) {
  const auto duv = make(GetParam());
  const auto& tmpl = duv->defaults();
  int distinct = 0;
  const auto reference = duv->simulate(tmpl, 0);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (!(duv->simulate(tmpl, seed) == reference)) ++distinct;
  }
  EXPECT_GT(distinct, 10);
}

TEST_P(UnitContract, SuiteTemplatesAreValidAndNamed) {
  const auto duv = make(GetParam());
  const auto suite = duv->suite();
  EXPECT_GE(suite.size(), 8u);
  for (const auto& tmpl : suite) {
    EXPECT_FALSE(tmpl.name().empty());
    EXPECT_FALSE(tmpl.empty());
    // Every suite parameter must exist in the defaults (same name).
    for (const auto& name : tmpl.parameter_names()) {
      EXPECT_TRUE(duv->defaults().contains(name))
          << tmpl.name() << " sets unknown parameter " << name;
    }
    // And simulating it must work.
    EXPECT_NO_THROW((void)duv->simulate(tmpl, 7));
  }
}

TEST_P(UnitContract, SuiteNamesAreUnique) {
  const auto duv = make(GetParam());
  const auto suite = duv->suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name(), suite[j].name());
    }
  }
}

TEST_P(UnitContract, ConcurrentSimulationMatchesSerial) {
  const auto duv = make(GetParam());
  const auto& tmpl = duv->defaults();
  constexpr std::size_t kSims = 64;
  const auto serial = run_many(*duv, tmpl, kSims, 99);

  coverage::SimStats parallel_a(duv->space().size());
  coverage::SimStats parallel_b(duv->space().size());
  const util::SeedStream seeds(99);
  std::thread worker([&] {
    for (std::size_t i = 0; i < kSims / 2; ++i) {
      parallel_a.record(duv->simulate(tmpl, seeds.at(i)));
    }
  });
  for (std::size_t i = kSims / 2; i < kSims; ++i) {
    parallel_b.record(duv->simulate(tmpl, seeds.at(i)));
  }
  worker.join();
  parallel_a.merge(parallel_b);
  EXPECT_EQ(parallel_a, serial);
}

TEST_P(UnitContract, SimulationHitsAtLeastOneEvent) {
  const auto duv = make(GetParam());
  const auto vec = duv->simulate(duv->defaults(), 5);
  EXPECT_GT(vec.popcount(), 0u);
}

TEST_P(UnitContract, UnknownParametersInTemplateAreIgnored) {
  const auto duv = make(GetParam());
  const auto tmpl = tgen::parse_template(
      "template weird { weight TotallyUnknownKnob { a: 1, b: 2 } }");
  EXPECT_NO_THROW((void)duv->simulate(tmpl, 3));
}

INSTANTIATE_TEST_SUITE_P(Duv, UnitContract,
                         ::testing::Values("io_unit", "l3_cache", "ifu", "lsu"),
                         [](const auto& info) { return std::string(info.param); });

// ------------------------------------------------------------ registry --

TEST(Registry, AllUnitsConstructible) {
  const auto names = unit_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    const auto unit = make_unit(name);
    ASSERT_NE(unit, nullptr) << name;
    EXPECT_EQ(unit->name(), name);
    EXPECT_FALSE(unit_description(name).empty());
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(make_unit("not_a_unit"), nullptr);
  EXPECT_TRUE(unit_description("not_a_unit").empty());
}

// ------------------------------------------------------------- io unit --

TEST(IoUnitPhysics, CrcFamilyDeclaredInOrder) {
  const IoUnit io;
  const auto& family = io.crc_family();
  ASSERT_EQ(family.size(), 6u);
  EXPECT_EQ(io.space().name(family[0]), "crc_004");
  EXPECT_EQ(io.space().name(family[5]), "crc_096");
}

TEST(IoUnitPhysics, FamilyIsMonotoneWithinSimulation) {
  // Invariant: crc_k hit implies crc_j hit for all j < k (thresholds on
  // the same accumulator).
  const IoUnit io;
  const auto tmpl = tgen::parse_template(R"(
    template crc_pusher {
      weight Cmd { crc_write: 80, crc_done: 10, read: 10, write: 0, ctrl: 0, nop: 0, abort: 0 }
      range GapDelay [0, 10]
      weight ErrInject { off: 1, crc_err: 0, parity_err: 0 }
    }
  )");
  const util::SeedStream seeds(11);
  for (std::size_t i = 0; i < 300; ++i) {
    const auto vec = io.simulate(tmpl, seeds.at(i));
    const auto& family = io.crc_family();
    for (std::size_t k = 1; k < family.size(); ++k) {
      if (vec.was_hit(family[k])) {
        EXPECT_TRUE(vec.was_hit(family[k - 1]))
            << "crc threshold " << k << " hit without " << k - 1;
      }
    }
  }
}

TEST(IoUnitPhysics, DefaultsRarelyReachDeepCrc) {
  const IoUnit io;
  const auto stats = run_many(io, io.defaults(), 2000);
  // The deep tail must be (essentially) unreachable with defaults.
  EXPECT_EQ(stats.hits(io.crc_family()[5]), 0u);          // crc_096
  EXPECT_LE(stats.hits(io.crc_family()[4]), 2u);          // crc_064
  // But the shallow end must have some evidence (neighbors exist).
  EXPECT_GT(stats.hits(io.crc_family()[0]), 0u);          // crc_004
}

TEST(IoUnitPhysics, TunedTemplateReachesDeepCrc) {
  const IoUnit io;
  // A hand-written near-optimal template: the existence proof that the
  // hard events are hittable at all (and the shape the optimizer should
  // find automatically).
  const auto tuned = tgen::parse_template(R"(
    template crc_tuned {
      weight Cmd { crc_write: 88, crc_done: 6, read: 6, write: 0, ctrl: 0, nop: 0, abort: 0 }
      subrange BurstLen { [1, 4]: 0, [5, 8]: 1 }
      subrange GapDelay { [0, 7]: 0, [8, 20]: 1, [21, 63]: 0 }
      weight ErrInject { off: 1, crc_err: 0, parity_err: 0 }
      subrange NumOps { [60, 130]: 0, [131, 160]: 1 }
      subrange CreditLimit { [4, 7]: 0, [8, 8]: 1 }
    }
  )");
  const auto stats = run_many(io, tuned, 1000);
  EXPECT_GT(stats.hit_rate(io.crc_family()[3]), 0.3);  // crc_032 well-hit
  EXPECT_GT(stats.hits(io.crc_family()[4]), 0u);       // crc_064 reachable
  // Gradient: deeper events are strictly rarer (allowing small noise).
  for (std::size_t k = 1; k < 6; ++k) {
    EXPECT_LE(stats.hits(io.crc_family()[k]),
              stats.hits(io.crc_family()[k - 1]));
  }
}

TEST(IoUnitPhysics, ErrorInjectionKillsTransfers) {
  const IoUnit io;
  const auto noisy = tgen::parse_template(R"(
    template crc_errs {
      weight Cmd { crc_write: 88, crc_done: 7, read: 5, write: 0, ctrl: 0, nop: 0, abort: 0 }
      subrange GapDelay { [0, 16]: 1, [17, 63]: 0 }
      weight ErrInject { off: 50, crc_err: 25, parity_err: 25 }
    }
  )");
  const auto clean = tgen::parse_template(R"(
    template crc_clean {
      weight Cmd { crc_write: 88, crc_done: 7, read: 5, write: 0, ctrl: 0, nop: 0, abort: 0 }
      subrange GapDelay { [0, 16]: 1, [17, 63]: 0 }
      weight ErrInject { off: 1, crc_err: 0, parity_err: 0 }
    }
  )");
  const auto noisy_stats = run_many(io, noisy, 800);
  const auto clean_stats = run_many(io, clean, 800);
  // Heavy error injection must materially reduce deep-crc coverage.
  EXPECT_LT(noisy_stats.hits(io.crc_family()[3]),
            clean_stats.hits(io.crc_family()[3]) / 2 + 1);
}

TEST(IoUnitPhysics, GapDelayMatters) {
  const IoUnit io;
  const auto short_gaps = tgen::parse_template(R"(
    template g1 {
      weight Cmd { crc_write: 75, crc_done: 8, read: 17, write: 0, ctrl: 0, nop: 0, abort: 0 }
      subrange GapDelay { [0, 20]: 1, [21, 63]: 0 }
      weight ErrInject { off: 1, crc_err: 0, parity_err: 0 }
    }
  )");
  const auto long_gaps = tgen::parse_template(R"(
    template g2 {
      weight Cmd { crc_write: 75, crc_done: 8, read: 17, write: 0, ctrl: 0, nop: 0, abort: 0 }
      subrange GapDelay { [0, 20]: 0, [21, 63]: 1 }
      weight ErrInject { off: 1, crc_err: 0, parity_err: 0 }
    }
  )");
  const auto short_stats = run_many(io, short_gaps, 600);
  const auto long_stats = run_many(io, long_gaps, 600);
  EXPECT_GT(short_stats.hits(io.crc_family()[2]),
            long_stats.hits(io.crc_family()[2]));
}

// ------------------------------------------------------------- l3 unit --

TEST(L3Physics, BypFamilyMonotoneWithinSimulation) {
  const L3Cache l3;
  const auto tmpl = tgen::parse_template(R"(
    template byp_pusher {
      weight ReqType { nc_read: 50, dma: 45, read: 5, write: 0, prefetch: 0, castout: 0 }
      range InterArrival [1, 3]
      range RespDelay [80, 96]
    }
  )");
  const util::SeedStream seeds(13);
  for (std::size_t i = 0; i < 200; ++i) {
    const auto vec = l3.simulate(tmpl, seeds.at(i));
    const auto& family = l3.byp_family();
    for (std::size_t k = 1; k < family.size(); ++k) {
      if (vec.was_hit(family[k])) EXPECT_TRUE(vec.was_hit(family[k - 1]));
    }
  }
}

TEST(L3Physics, DefaultsLeaveDeepTailUncovered) {
  const L3Cache l3;
  const auto stats = run_many(l3, l3.defaults(), 2000);
  const auto& family = l3.byp_family();
  EXPECT_GT(stats.hits(family[0]), 0u);          // byp_reqs01 reachable
  EXPECT_EQ(stats.hits(family[12]), 0u);         // byp_reqs13 not with defaults
  EXPECT_EQ(stats.hits(family[15]), 0u);         // byp_reqs16 certainly not
}

TEST(L3Physics, TunedTemplateSustainsHighConcurrency) {
  const L3Cache l3;
  const auto tuned = tgen::parse_template(R"(
    template byp_tuned {
      weight ReqType { nc_read: 50, dma: 48, read: 2, write: 0, prefetch: 0, castout: 0 }
      subrange InterArrival { [1, 2]: 1, [3, 31]: 0 }
      subrange RespDelay { [8, 79]: 0, [80, 96]: 1 }
      subrange NumReqs { [80, 200]: 0, [201, 240]: 1 }
    }
  )");
  const auto stats = run_many(l3, tuned, 1000);
  const auto& family = l3.byp_family();
  EXPECT_GT(stats.hit_rate(family[7]), 0.3);   // byp_reqs08 well hit
  EXPECT_GT(stats.hits(family[11]), 0u);       // byp_reqs12 reachable
  // Gradient along the family.
  for (std::size_t k = 1; k < family.size(); ++k) {
    EXPECT_LE(stats.hits(family[k]), stats.hits(family[k - 1]));
  }
}

TEST(L3Physics, RespDelayDrivesConcurrency) {
  const L3Cache l3;
  const auto slow = tgen::parse_template(R"(
    template s {
      weight ReqType { nc_read: 90, dma: 10, read: 0, write: 0, prefetch: 0, castout: 0 }
      range InterArrival [1, 4]
      subrange RespDelay { [8, 16]: 0, [80, 96]: 1 }
    }
  )");
  const auto fast = tgen::parse_template(R"(
    template f {
      weight ReqType { nc_read: 90, dma: 10, read: 0, write: 0, prefetch: 0, castout: 0 }
      range InterArrival [1, 4]
      subrange RespDelay { [8, 16]: 1, [80, 96]: 0 }
    }
  )");
  const auto slow_stats = run_many(l3, slow, 500);
  const auto fast_stats = run_many(l3, fast, 500);
  EXPECT_GT(slow_stats.hits(l3.byp_family()[9]),
            fast_stats.hits(l3.byp_family()[9]));
}

TEST(L3Physics, WriteQueueFamilyExists) {
  const L3Cache l3;
  const auto wrq = l3.space().family_events("l3_wrq");
  ASSERT_EQ(wrq.size(), L3Cache::kWriteQueueDepth);
  const auto tmpl = tgen::parse_template(R"(
    template w {
      weight ReqType { write: 70, castout: 30, read: 0, prefetch: 0, nc_read: 0, dma: 0 }
      range InterArrival [0, 2]
    }
  )");
  const auto stats = run_many(l3, tmpl, 300);
  EXPECT_GT(stats.hits(wrq[3]), 0u);
}

// ----------------------------------------------------------------- ifu --

TEST(IfuPhysics, CrossProductShape) {
  const Ifu ifu;
  const auto& cp = ifu.cross_product();
  EXPECT_EQ(cp.count, 256u);
  ASSERT_EQ(cp.features.size(), 4u);
  EXPECT_EQ(cp.features[0].name, "entry");
  EXPECT_EQ(cp.features[0].cardinality, 8u);
  EXPECT_EQ(cp.features[3].cardinality, 2u);
}

TEST(IfuPhysics, Entry7IsStructurallyUnhittable) {
  const Ifu ifu;
  // Even a maximally aggressive template must never allocate entry 7.
  const auto aggressive = tgen::parse_template(R"(
    template deep {
      subrange FetchGap { [2, 2]: 1, [3, 15]: 0 }
      weight ICache { hit: 0, miss: 1 }
      subrange MissLatency { [8, 26]: 0, [27, 30]: 1 }
      weight BranchDir { not_taken: 1, taken: 0 }
      weight ThreadSel { 0: 1, 1: 1, 2: 1, 3: 1 }
      weight SectorSel { 0: 1, 1: 1, 2: 1, 3: 1 }
    }
  )");
  const auto stats = run_many(ifu, aggressive, 500);
  const auto& space = ifu.space();
  const auto& cp = ifu.cross_product();
  std::size_t entry7_hits = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::size_t coords[4] = {7, t, s, b};
        entry7_hits += stats.hits(space.cross_event(cp, coords));
      }
    }
  }
  EXPECT_EQ(entry7_hits, 0u);
  // ... while entry 6 IS reachable under this pressure.
  std::size_t entry6_hits = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::size_t coords[4] = {6, t, s, b};
        entry6_hits += stats.hits(space.cross_event(cp, coords));
      }
    }
  }
  EXPECT_GT(entry6_hits, 0u);
}

TEST(IfuPhysics, DefaultsCoverOnlyShallowCorners) {
  const Ifu ifu;
  const auto stats = run_many(ifu, ifu.defaults(), 1500);
  const auto& space = ifu.space();
  const auto& cp = ifu.cross_product();
  // Shallow popular corner: entry0/thread0/sector0/not-taken.
  const std::size_t easy[4] = {0, 0, 0, 0};
  EXPECT_GT(stats.hit_rate(space.cross_event(cp, easy)), 0.5);
  // Deep rare corner: entry6/thread3/sector3/taken never hit by defaults.
  const std::size_t hard[4] = {6, 3, 3, 1};
  EXPECT_EQ(stats.hits(space.cross_event(cp, hard)), 0u);
}

TEST(IfuPhysics, TakenBranchRedirectLimitsDepth) {
  const Ifu ifu;
  const auto branchy = tgen::parse_template(R"(
    template b {
      subrange FetchGap { [2, 3]: 1, [4, 15]: 0 }
      weight ICache { hit: 20, miss: 80 }
      weight BranchDir { not_taken: 20, taken: 80 }
      weight Redirect { off: 0, on: 1 }
    }
  )");
  const auto straight = tgen::parse_template(R"(
    template s {
      subrange FetchGap { [2, 3]: 1, [4, 15]: 0 }
      weight ICache { hit: 20, miss: 80 }
      weight BranchDir { not_taken: 1, taken: 0 }
    }
  )");
  const auto branchy_stats = run_many(ifu, branchy, 400);
  const auto straight_stats = run_many(ifu, straight, 400);
  // Count deep-entry (>= 5) hits under both.
  const auto deep_hits = [&](const coverage::SimStats& stats) {
    std::size_t total = 0;
    for (std::size_t e = 5; e <= 6; ++e) {
      for (std::size_t t = 0; t < 4; ++t) {
        for (std::size_t s = 0; s < 4; ++s) {
          for (std::size_t b = 0; b < 2; ++b) {
            const std::size_t coords[4] = {e, t, s, b};
            total += stats.hits(
                ifu.space().cross_event(ifu.cross_product(), coords));
          }
        }
      }
    }
    return total;
  };
  EXPECT_LT(deep_hits(branchy_stats), deep_hits(straight_stats));
}

// ----------------------------------------------------------------- lsu --

TEST(LsuPhysics, FwdqFamilyMonotoneWithinSimulation) {
  const Lsu lsu;
  const auto tmpl = tgen::parse_template(R"(
    template fwd_pusher {
      weight Mnemonic { load: 30, store: 60, add: 0, sync: 10 }
      weight AddrPattern { same_line: 80, stride: 10, random: 10 }
      range CacheDelay [500, 1000]
    }
  )");
  const util::SeedStream seeds(17);
  for (std::size_t i = 0; i < 200; ++i) {
    const auto vec = lsu.simulate(tmpl, seeds.at(i));
    const auto& family = lsu.fwdq_family();
    for (std::size_t k = 1; k < family.size(); ++k) {
      if (vec.was_hit(family[k])) EXPECT_TRUE(vec.was_hit(family[k - 1]));
    }
  }
}

TEST(LsuPhysics, SuiteContainsTheFigureOneTemplate) {
  // Fig. 1(a) of the paper is a first-class member of the LSU's suite.
  const Lsu lsu;
  const auto suite = lsu.suite();
  const auto it =
      std::find_if(suite.begin(), suite.end(), [](const tgen::TestTemplate& t) {
        return t.name() == "lsu_stress";
      });
  ASSERT_NE(it, suite.end());
  const auto* mnemonic = it->find_weight("Mnemonic");
  ASSERT_NE(mnemonic, nullptr);
  ASSERT_EQ(mnemonic->entries.size(), 4u);
  EXPECT_EQ(mnemonic->entries[2].value.as_symbol(), "add");
  EXPECT_DOUBLE_EQ(mnemonic->entries[2].weight, 0.0);
  const auto* delay = it->find_range("CacheDelay");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->lo, 0);
  EXPECT_EQ(delay->hi, 1000);
}

TEST(LsuPhysics, DefaultsLeaveDeepForwardingUncovered) {
  const Lsu lsu;
  const auto stats = run_many(lsu, lsu.defaults(), 2000);
  const auto& family = lsu.fwdq_family();
  EXPECT_GT(stats.hits(family[0]), 0u);   // shallow forwarding happens
  EXPECT_EQ(stats.hits(family[11]), 0u);  // 12-deep never with defaults
}

TEST(LsuPhysics, TunedTemplateReachesDeepForwarding) {
  const Lsu lsu;
  const auto tuned = tgen::parse_template(R"(
    template fwd_tuned {
      weight Mnemonic { load: 25, store: 70, add: 0, sync: 5 }
      weight AddrPattern { same_line: 95, stride: 0, random: 5 }
      subrange CacheDelay { [0, 750]: 0, [751, 1000]: 1 }
      subrange NumInstr { [100, 250]: 0, [251, 300]: 1 }
    }
  )");
  const auto stats = run_many(lsu, tuned, 800);
  const auto& family = lsu.fwdq_family();
  EXPECT_GT(stats.hit_rate(family[7]), 0.2);  // 8-deep well reachable
  EXPECT_GT(stats.hits(family[10]), 0u);      // 11-deep reachable
  for (std::size_t k = 1; k < family.size(); ++k) {
    EXPECT_LE(stats.hits(family[k]), stats.hits(family[k - 1]));
  }
}

TEST(LsuPhysics, SyncDrainsKillForwardingDepth) {
  const Lsu lsu;
  const auto syncy = tgen::parse_template(R"(
    template s {
      weight Mnemonic { load: 20, store: 40, add: 0, sync: 40 }
      weight AddrPattern { same_line: 90, stride: 0, random: 10 }
      range CacheDelay [500, 1000]
    }
  )");
  const auto calm = tgen::parse_template(R"(
    template c {
      weight Mnemonic { load: 20, store: 40, add: 40, sync: 0 }
      weight AddrPattern { same_line: 90, stride: 0, random: 10 }
      range CacheDelay [500, 1000]
    }
  )");
  const auto syncy_stats = run_many(lsu, syncy, 500);
  const auto calm_stats = run_many(lsu, calm, 500);
  EXPECT_LT(syncy_stats.hits(lsu.fwdq_family()[5]),
            calm_stats.hits(lsu.fwdq_family()[5]));
}

}  // namespace
}  // namespace ascdg::duv
