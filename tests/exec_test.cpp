// The execution-backend seam: spec parsing, backend construction, and
// the contract both implementations must share — bit-identical results
// for any backend and worker count, clean error-and-heal behavior when
// a worker process dies (really or via injected pipe faults), and the
// registry-resolvable-unit precondition of the process backend.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "coverage/repository.hpp"
#include "duv/registry.hpp"
#include "exec/backend.hpp"
#include "exec/process_farm.hpp"
#include "exec/thread_farm.hpp"
#include "flow/session.hpp"
#include "flow/types.hpp"
#include "tgen/test_template.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/rng.hpp"

namespace ascdg::exec {
namespace {

// --- --backend spec parsing ------------------------------------------

TEST(BackendSpec, ParsesValidSpecs) {
  EXPECT_EQ(parse_backend_spec("thread"),
            (BackendConfig{BackendConfig::Kind::kThread, 0}));
  EXPECT_EQ(parse_backend_spec("process"),
            (BackendConfig{BackendConfig::Kind::kProcess, 0}));
  EXPECT_EQ(parse_backend_spec("thread:4"),
            (BackendConfig{BackendConfig::Kind::kThread, 4}));
  EXPECT_EQ(parse_backend_spec("process:8"),
            (BackendConfig{BackendConfig::Kind::kProcess, 8}));
}

TEST(BackendSpec, ToStringIsCanonical) {
  EXPECT_EQ(to_string(BackendConfig{}), "thread");
  EXPECT_EQ(to_string(parse_backend_spec("process:8")), "process:8");
  EXPECT_EQ(to_string(parse_backend_spec("thread:2")), "thread:2");
}

TEST(BackendSpec, RejectsGarbage) {
  for (const char* spec : {"", "bogus", "Process", "process:", "process:0",
                           "process:abc", "process:8x", "process:-1", ":4"}) {
    EXPECT_THROW((void)parse_backend_spec(spec), util::ConfigError) << spec;
  }
  // The message carries the accepted forms — it doubles as the CLI hint.
  try {
    (void)parse_backend_spec("bogus");
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& err) {
    EXPECT_NE(std::string(err.what()).find("thread|process[:N]"),
              std::string::npos)
        << err.what();
  }
}

TEST(BackendSpec, MakeBackendConstructsTheConfiguredKind) {
  const auto thread_backend = make_backend(parse_backend_spec("thread:2"));
  EXPECT_EQ(thread_backend->kind(), "thread");
  EXPECT_EQ(thread_backend->worker_count(), 2u);
  const auto process_backend = make_backend(parse_backend_spec("process:2"));
  EXPECT_EQ(process_backend->kind(), "process");
  EXPECT_EQ(process_backend->worker_count(), 2u);
}

// --- Cross-backend bit-identity --------------------------------------

/// Every template worth sweeping for a unit (mirrors duv_batch_test):
/// the whole regression suite plus the defaults.
std::vector<tgen::TestTemplate> templates_under_test(const duv::Duv& duv) {
  std::vector<tgen::TestTemplate> tmpls = duv.suite();
  tmpls.push_back(duv.defaults());
  return tmpls;
}

/// Jobs over the unit's template matrix with deliberately awkward
/// counts: zero, sub-chunk, exactly one chunk, and a few chunks plus a
/// remainder (kChunk is 64 on both backends).
std::vector<Job> jobs_for(const std::vector<tgen::TestTemplate>& tmpls) {
  constexpr std::size_t kCounts[] = {0, 33, 64, 150};
  std::vector<Job> jobs;
  for (std::size_t j = 0; j < tmpls.size(); ++j) {
    jobs.push_back(
        {&tmpls[j], kCounts[j % std::size(kCounts)], 0xC11 + j, j});
  }
  return jobs;
}

class BackendEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendEquivalence, ProcessMatchesThreadAtAllWorkerCounts) {
  const auto duv = duv::make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  const auto tmpls = templates_under_test(*duv);
  const auto jobs = jobs_for(tmpls);

  ThreadFarm thread_farm(3);
  const auto expected = thread_farm.run_all(*duv, jobs);
  ASSERT_EQ(expected.size(), jobs.size());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ProcessFarm process_farm(workers);
    const auto got = process_farm.run_all(*duv, jobs);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      EXPECT_EQ(got[j], expected[j])
          << duv->name() << "/" << tmpls[j].name() << " with " << workers
          << " workers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllUnits, BackendEquivalence,
                         ::testing::Values("ifu", "lsu", "io_unit",
                                           "l3_cache"));

TEST(ProcessBackend, ZeroCountBatchReturnsEmptyStatsPerJob) {
  const auto duv = duv::make_unit("io_unit");
  ASSERT_NE(duv, nullptr);
  const tgen::TestTemplate tmpl = duv->defaults();
  const std::vector<Job> jobs = {{&tmpl, 0, 1}, {&tmpl, 0, 2}};
  ProcessFarm farm(2);
  const auto stats = farm.run_all(*duv, jobs);
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.sims(), 0u);
    EXPECT_EQ(s.event_count(), duv->space().size());
  }
  EXPECT_EQ(farm.total_simulations(), 0u);
}

TEST(ProcessBackend, RunConvenienceMatchesThreadBackend) {
  const auto duv = duv::make_unit("lsu");
  ASSERT_NE(duv, nullptr);
  ThreadFarm thread_farm(2);
  ProcessFarm process_farm(2);
  const auto expected = thread_farm.run(*duv, duv->defaults(), 137, 0xFEED);
  EXPECT_EQ(process_farm.run(*duv, duv->defaults(), 137, 0xFEED), expected);
  EXPECT_EQ(process_farm.total_simulations(), 137u);
  EXPECT_EQ(process_farm.telemetry().simulations, 137u);
  EXPECT_EQ(process_farm.telemetry().runs, 1u);
}

// --- Worker-death semantics ------------------------------------------

TEST(ProcessBackend, WorkerKilledBetweenRunsHealsSilently) {
  const auto duv = duv::make_unit("io_unit");
  ASSERT_NE(duv, nullptr);
  ProcessFarm farm(2);
  const auto expected = farm.run(*duv, duv->defaults(), 100, 7);

  const auto pids = farm.worker_pids();
  ASSERT_EQ(pids.size(), 2u);
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
  // Give the kernel a beat to turn the child into a reapable zombie.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The next run reaps and respawns the dead slot before scheduling —
  // no error surfaces and results stay bit-identical.
  EXPECT_EQ(farm.run(*duv, duv->defaults(), 100, 7), expected);
  EXPECT_GE(farm.respawns(), 1u);
}

/// One attempt at catching a worker mid-batch with SIGKILL: returns
/// true when the kill landed while the batch was still in flight (the
/// run_all raised). A fast machine can finish `count` simulations
/// before the signal lands, so the caller escalates the count.
bool mid_run_kill_raised(const duv::Duv& duv, std::size_t count) {
  ProcessFarm farm(1);
  const auto pids = farm.worker_pids();  // stable: captured before the run
  EXPECT_EQ(pids.size(), 1u);
  const tgen::TestTemplate tmpl = duv.defaults();
  const Job job{&tmpl, count, 42};

  std::atomic<bool> threw{false};
  std::string message;
  std::thread runner([&] {
    try {
      (void)farm.run_all(duv, std::span<const Job>(&job, 1));
    } catch (const util::Error& err) {
      threw = true;
      message = err.what();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)::kill(pids[0], SIGKILL);
  runner.join();
  if (!threw) return false;

  // The error is a clean per-batch diagnostic, and the farm stays
  // usable: the next run respawns the killed worker and succeeds.
  EXPECT_NE(message.find("process backend: worker"), std::string::npos)
      << message;
  const auto after = farm.run(duv, tmpl, 50, 9);
  EXPECT_EQ(after.sims(), 50u);
  EXPECT_GE(farm.respawns(), 1u);
  return true;
}

TEST(ProcessBackend, WorkerKilledMidBatchRaisesCleanErrorAndFarmStaysUsable) {
  const auto duv = duv::make_unit("io_unit");
  ASSERT_NE(duv, nullptr);
  bool raised = false;
  for (const std::size_t count : {std::size_t{1} << 20, std::size_t{1} << 22,
                                  std::size_t{1} << 24}) {
    if (mid_run_kill_raised(*duv, count)) {
      raised = true;
      break;
    }
  }
  EXPECT_TRUE(raised)
      << "SIGKILL never landed mid-batch, even at 16M simulations";
}

/// Disarms every failure point on scope exit, pass or fail.
struct FailPointGuard {
  ~FailPointGuard() { util::FailurePoint::disarm_all(); }
};

TEST(ProcessBackend, InjectedPipeWriteFailureRaisesAndHeals) {
  const FailPointGuard guard;
  const auto duv = duv::make_unit("io_unit");
  ASSERT_NE(duv, nullptr);
  ProcessFarm farm(2);
  const auto expected = farm.run(*duv, duv->defaults(), 100, 3);

  // Same spelling the CLI fuzz harness uses via ASCDG_FAIL_POINTS.
  util::FailurePoint::install("exec.pipe_write=once,errno=EPIPE");
  try {
    (void)farm.run(*duv, duv->defaults(), 100, 3);
    FAIL() << "expected util::Error";
  } catch (const util::Error& err) {
    EXPECT_NE(std::string(err.what()).find("died while receiving work"),
              std::string::npos)
        << err.what();
  }
  EXPECT_EQ(util::FailurePoint::fires(util::FailurePoint::Id::kExecPipeWrite),
            1u);

  // The (healthy) worker was retired on the failed write; the next run
  // respawns it and the farm is whole again.
  EXPECT_EQ(farm.run(*duv, duv->defaults(), 100, 3), expected);
  EXPECT_GE(farm.respawns(), 1u);
}

TEST(ProcessBackend, InjectedPipeReadFailureRaisesAndHeals) {
  const FailPointGuard guard;
  const auto duv = duv::make_unit("io_unit");
  ASSERT_NE(duv, nullptr);
  ProcessFarm farm(2);
  const auto expected = farm.run(*duv, duv->defaults(), 100, 3);

  util::FailurePoint::prime_one_shot(util::FailurePoint::Id::kExecPipeRead,
                                     ECONNRESET);
  try {
    (void)farm.run(*duv, duv->defaults(), 100, 3);
    FAIL() << "expected util::Error";
  } catch (const util::Error& err) {
    EXPECT_NE(std::string(err.what()).find("died mid-batch"),
              std::string::npos)
        << err.what();
  }
  EXPECT_EQ(farm.run(*duv, duv->defaults(), 100, 3), expected);
  EXPECT_GE(farm.respawns(), 1u);
}

// --- Registry-resolvable-unit precondition ---------------------------

/// A Duv the registry does not know: workers rebuild units by name, so
/// the process backend must refuse it up front (the thread backend
/// keeps running such units in-process — the custom_duv example).
class UnregisteredDuv final : public duv::Duv {
 public:
  UnregisteredDuv() : defaults_("unregistered_defaults") {
    for (int e = 0; e < 4; ++e) {
      events_.push_back(space_.declare_event("ev" + std::to_string(e)));
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "not_in_registry";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate&, std::uint64_t seed) const override {
    coverage::CoverageVector vec(space_.size());
    util::Xoshiro256 rng(seed);
    vec.hit(events_[static_cast<std::size_t>(
        rng.uniform_i64(0, static_cast<std::int64_t>(events_.size()) - 1))]);
    return vec;
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return {defaults_};
  }

 private:
  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  std::vector<coverage::EventId> events_;
};

TEST(ProcessBackend, RefusesUnitsTheRegistryCannotResolve) {
  const UnregisteredDuv duv;
  // The thread backend happily runs it...
  ThreadFarm thread_farm(2);
  EXPECT_EQ(thread_farm.run(duv, duv.defaults(), 10, 1).sims(), 10u);
  // ...the process backend refuses before shipping any work.
  ProcessFarm process_farm(1);
  try {
    (void)process_farm.run(duv, duv.defaults(), 10, 1);
    FAIL() << "expected util::ConfigError";
  } catch (const util::ConfigError& err) {
    EXPECT_NE(std::string(err.what()).find("not_in_registry"),
              std::string::npos)
        << err.what();
  }
  // The refusal is a precondition failure, not a farm failure: the
  // workers were never touched and a registry unit still runs.
  const auto io = duv::make_unit("io_unit");
  ASSERT_NE(io, nullptr);
  EXPECT_EQ(process_farm.run(*io, io->defaults(), 10, 1).sims(), 10u);
}

// --- Session interplay -----------------------------------------------

TEST(BackendSeam, BackendChoiceIsExcludedFromTheSessionFingerprint) {
  flow::FlowConfig on_thread;
  flow::FlowConfig on_process;
  on_process.backend = parse_backend_spec("process:8");
  // Backends are bit-identical by contract, so a session started on one
  // may resume on another — the fingerprint must not see the choice.
  EXPECT_EQ(flow::config_fingerprint(on_thread, "io_unit/crc"),
            flow::config_fingerprint(on_process, "io_unit/crc"));
  // ...while knobs that do change results still split the fingerprint.
  flow::FlowConfig other_seed;
  other_seed.seed = 4242;
  EXPECT_NE(flow::config_fingerprint(on_thread, "io_unit/crc"),
            flow::config_fingerprint(other_seed, "io_unit/crc"));
}

}  // namespace
}  // namespace ascdg::exec
