// Tests for the coverage model: event declaration, families, cross
// products (coordinate round trips), coverage vectors, hit statistics,
// repository semantics, and the IBM status-classification convention.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "coverage/event.hpp"
#include "coverage/holes.hpp"
#include "coverage/repository.hpp"
#include "coverage/repository_io.hpp"
#include "coverage/space.hpp"
#include "coverage/vector.hpp"
#include "util/error.hpp"

namespace ascdg::coverage {
namespace {

using util::NotFoundError;
using util::ValidationError;

// ---------------------------------------------------------------- space --

TEST(Space, DeclareAndFind) {
  CoverageSpace space;
  const EventId a = space.declare_event("alpha");
  const EventId b = space.declare_event("beta");
  EXPECT_EQ(space.size(), 2u);
  EXPECT_EQ(space.name(a), "alpha");
  EXPECT_EQ(space.find("beta"), b);
  EXPECT_FALSE(space.find("gamma").has_value());
}

TEST(Space, DuplicateNameThrows) {
  CoverageSpace space;
  space.declare_event("x");
  EXPECT_THROW(space.declare_event("x"), ValidationError);
}

TEST(Space, InvalidNameThrows) {
  CoverageSpace space;
  EXPECT_THROW(space.declare_event(""), ValidationError);
  EXPECT_THROW(space.declare_event("9bad"), ValidationError);
  EXPECT_THROW(space.declare_event("has space"), ValidationError);
}

TEST(Space, FamilyDeclaration) {
  CoverageSpace space;
  const std::array<std::string, 3> suffixes{"004", "008", "016"};
  const auto events = space.declare_family("crc", suffixes);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(space.name(events[0]), "crc_004");
  EXPECT_EQ(space.name(events[2]), "crc_016");
  EXPECT_EQ(space.family_events("crc"), events);
  EXPECT_TRUE(space.family_events("nope").empty());
  const auto names = space.family_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "crc");
}

TEST(Space, EmptyFamilyThrows) {
  CoverageSpace space;
  const std::vector<std::string> none;
  EXPECT_THROW((void)space.declare_family("f", none), ValidationError);
}

TEST(Space, EventsWithPrefix) {
  CoverageSpace space;
  space.declare_event("crc_004");
  space.declare_event("crc_008");
  space.declare_event("io_cmd_read");
  EXPECT_EQ(space.events_with_prefix("crc_").size(), 2u);
  EXPECT_EQ(space.events_with_prefix("io_").size(), 1u);
  EXPECT_EQ(space.events_with_prefix("zz").size(), 0u);
}

TEST(Space, CrossProductDeclaresAllTuples) {
  CoverageSpace space;
  const auto& cp = space.declare_cross_product(
      "ifu", {{"entry", 2}, {"thread", 3}});
  EXPECT_EQ(cp.count, 6u);
  EXPECT_EQ(space.size(), 6u);
  EXPECT_TRUE(space.find("ifu_entry0_thread0").has_value());
  EXPECT_TRUE(space.find("ifu_entry1_thread2").has_value());
}

TEST(Space, CrossProductCoordinateRoundTrip) {
  CoverageSpace space;
  const auto& cp = space.declare_cross_product(
      "x", {{"a", 3}, {"b", 4}, {"c", 2}});
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      for (std::size_t c = 0; c < 2; ++c) {
        const std::array<std::size_t, 3> coords{a, b, c};
        const EventId id = space.cross_event(cp, coords);
        const auto back = space.coords_of(cp, id);
        EXPECT_EQ(back[0], a);
        EXPECT_EQ(back[1], b);
        EXPECT_EQ(back[2], c);
        // Name encodes the coordinates.
        EXPECT_EQ(space.name(id), "x_a" + std::to_string(a) + "_b" +
                                      std::to_string(b) + "_c" +
                                      std::to_string(c));
      }
    }
  }
}

TEST(Space, CrossProductOfMembership) {
  CoverageSpace space;
  const EventId plain = space.declare_event("plain");
  const auto& cp = space.declare_cross_product("x", {{"a", 2}});
  EXPECT_EQ(space.cross_product_of(plain), nullptr);
  EXPECT_EQ(space.cross_product_of(cp.first), &cp);
  EXPECT_EQ(space.find_cross_product("x"), &cp);
  EXPECT_EQ(space.find_cross_product("y"), nullptr);
}

TEST(Space, CrossProductBadCoordsThrow) {
  CoverageSpace space;
  const auto& cp = space.declare_cross_product("x", {{"a", 2}, {"b", 2}});
  const std::array<std::size_t, 1> too_few{0};
  EXPECT_THROW((void)space.cross_event(cp, too_few), ValidationError);
  const std::array<std::size_t, 2> out_of_range{0, 5};
  EXPECT_THROW((void)space.cross_event(cp, out_of_range), ValidationError);
}

TEST(Space, CoordsOfForeignEventThrows) {
  CoverageSpace space;
  const EventId plain = space.declare_event("plain");
  const auto& cp = space.declare_cross_product("x", {{"a", 2}});
  EXPECT_THROW((void)space.coords_of(cp, plain), ValidationError);
}

TEST(Space, CrossProductRegistersAsFamily) {
  CoverageSpace space;
  space.declare_cross_product("ifu", {{"e", 2}, {"t", 2}});
  EXPECT_EQ(space.family_events("ifu").size(), 4u);
}

TEST(Space, CrossProductReferenceStableAcrossDeclarations) {
  CoverageSpace space;
  const auto& first = space.declare_cross_product("a", {{"x", 2}});
  const EventId probe = first.first;
  for (int i = 0; i < 10; ++i) {
    space.declare_cross_product("b" + std::to_string(i), {{"x", 3}});
  }
  // The reference taken before later declarations must still be valid.
  EXPECT_EQ(first.family, "a");
  EXPECT_EQ(space.cross_product_of(probe), &first);
}

TEST(Space, ZeroCardinalityThrows) {
  CoverageSpace space;
  EXPECT_THROW(space.declare_cross_product("x", {{"a", 0}}), ValidationError);
  EXPECT_THROW(space.declare_cross_product("x", {}), ValidationError);
}

// --------------------------------------------------------------- vector --

TEST(Vector, HitAndQuery) {
  CoverageVector vec(130);  // multiple words + partial word
  EXPECT_EQ(vec.popcount(), 0u);
  vec.hit(EventId{0});
  vec.hit(EventId{64});
  vec.hit(EventId{129});
  EXPECT_TRUE(vec.was_hit(EventId{0}));
  EXPECT_TRUE(vec.was_hit(EventId{64}));
  EXPECT_TRUE(vec.was_hit(EventId{129}));
  EXPECT_FALSE(vec.was_hit(EventId{1}));
  EXPECT_EQ(vec.popcount(), 3u);
}

TEST(Vector, DoubleHitIsIdempotent) {
  CoverageVector vec(10);
  vec.hit(EventId{3});
  vec.hit(EventId{3});
  EXPECT_EQ(vec.popcount(), 1u);
}

TEST(Vector, OutOfRangeHitIgnored) {
  CoverageVector vec(10);
  vec.hit(EventId{100});
  EXPECT_EQ(vec.popcount(), 0u);
  EXPECT_FALSE(vec.was_hit(EventId{100}));
}

TEST(Vector, MergeIsUnion) {
  CoverageVector a(70), b(70);
  a.hit(EventId{1});
  b.hit(EventId{65});
  a.merge(b);
  EXPECT_TRUE(a.was_hit(EventId{1}));
  EXPECT_TRUE(a.was_hit(EventId{65}));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(Vector, ClearResets) {
  CoverageVector vec(10);
  vec.hit(EventId{2});
  vec.clear();
  EXPECT_EQ(vec.popcount(), 0u);
}

// ---------------------------------------------------------------- stats --

TEST(SimStatsTest, RecordAccumulates) {
  SimStats stats(4);
  CoverageVector vec(4);
  vec.hit(EventId{1});
  stats.record(vec);
  stats.record(vec);
  CoverageVector other(4);
  other.hit(EventId{1});
  other.hit(EventId{3});
  stats.record(other);
  EXPECT_EQ(stats.sims(), 3u);
  EXPECT_EQ(stats.hits(EventId{1}), 3u);
  EXPECT_EQ(stats.hits(EventId{3}), 1u);
  EXPECT_EQ(stats.hits(EventId{0}), 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(EventId{1}), 1.0);
  EXPECT_DOUBLE_EQ(stats.hit_rate(EventId{3}), 1.0 / 3.0);
}

TEST(SimStatsTest, MergeIsAssociativeAndCommutative) {
  const auto make = [](std::size_t sims, std::size_t hits1) {
    SimStats s(2);
    for (std::size_t i = 0; i < sims; ++i) {
      CoverageVector vec(2);
      if (i < hits1) vec.hit(EventId{1});
      s.record(vec);
    }
    return s;
  };
  const SimStats a = make(10, 3), b = make(20, 7), c = make(5, 5);
  SimStats ab = a;
  ab.merge(b);
  SimStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  SimStats ab_c = ab;
  ab_c.merge(c);
  SimStats bc = b;
  bc.merge(c);
  SimStats a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.sims(), 35u);
  EXPECT_EQ(ab_c.hits(EventId{1}), 15u);
}

TEST(SimStatsTest, TargetValueSumsHitRates) {
  SimStats stats(3);
  for (int i = 0; i < 10; ++i) {
    CoverageVector vec(3);
    if (i < 5) vec.hit(EventId{0});
    if (i < 2) vec.hit(EventId{2});
    stats.record(vec);
  }
  const std::vector<EventId> events{EventId{0}, EventId{2}};
  EXPECT_DOUBLE_EQ(stats.target_value(events), 0.5 + 0.2);
}

TEST(SimStatsTest, EmptyStatsAreNeutral) {
  SimStats empty;
  SimStats stats(2);
  CoverageVector vec(2);
  vec.hit(EventId{0});
  stats.record(vec);
  SimStats merged = stats;
  merged.merge(empty);
  EXPECT_EQ(merged, stats);
  empty.merge(stats);
  EXPECT_EQ(empty, stats);
}

// --------------------------------------------------------------- status --

TEST(Status, ClassificationConvention) {
  // Paper: <100 hits or <1% rate -> lightly; 0 -> never.
  EXPECT_EQ(classify_hits(0, 1000), HitStatus::kNever);
  EXPECT_EQ(classify_hits(99, 100), HitStatus::kLightly);   // count < 100
  EXPECT_EQ(classify_hits(100, 100), HitStatus::kWell);     // 100 hits, 100%
  EXPECT_EQ(classify_hits(500, 100000), HitStatus::kLightly);  // 0.5% rate
  EXPECT_EQ(classify_hits(1000, 100000), HitStatus::kWell);    // 1% rate
  EXPECT_EQ(classify_hits(12, 669000), HitStatus::kLightly);   // crc_032 row
  EXPECT_EQ(classify_hits(69048, 669000), HitStatus::kWell);   // crc_004 row
}

TEST(Status, ToString) {
  EXPECT_STREQ(to_string(HitStatus::kNever), "never-hit");
  EXPECT_STREQ(to_string(HitStatus::kLightly), "lightly-hit");
  EXPECT_STREQ(to_string(HitStatus::kWell), "well-hit");
}

// ----------------------------------------------------------- repository --

TEST(Repository, RecordAndQuery) {
  CoverageRepository repo(3);
  CoverageVector vec(3);
  vec.hit(EventId{0});
  repo.record("t1", vec);
  repo.record("t1", vec);
  vec.hit(EventId{1});
  repo.record("t2", vec);
  EXPECT_TRUE(repo.contains("t1"));
  EXPECT_FALSE(repo.contains("t3"));
  EXPECT_EQ(repo.stats("t1").sims(), 2u);
  EXPECT_EQ(repo.stats("t2").hits(EventId{1}), 1u);
  EXPECT_EQ(repo.total_sims(), 3u);
  const auto names = repo.template_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "t1");
}

TEST(Repository, UnknownTemplateThrows) {
  const CoverageRepository repo(2);
  EXPECT_THROW((void)repo.stats("missing"), NotFoundError);
}

TEST(Repository, TotalAggregatesAllTemplates) {
  CoverageRepository repo(2);
  SimStats s1(2), s2(2);
  CoverageVector v1(2), v2(2);
  v1.hit(EventId{0});
  v2.hit(EventId{1});
  for (int i = 0; i < 3; ++i) s1.record(v1);
  for (int i = 0; i < 4; ++i) s2.record(v2);
  repo.record("a", s1);
  repo.record("b", s2);
  const SimStats total = repo.total();
  EXPECT_EQ(total.sims(), 7u);
  EXPECT_EQ(total.hits(EventId{0}), 3u);
  EXPECT_EQ(total.hits(EventId{1}), 4u);
}

TEST(Repository, RecordStatsMergesWithExisting) {
  CoverageRepository repo(1);
  SimStats s(1);
  CoverageVector v(1);
  v.hit(EventId{0});
  s.record(v);
  repo.record("t", s);
  repo.record("t", s);
  EXPECT_EQ(repo.stats("t").sims(), 2u);
  EXPECT_EQ(repo.stats("t").hits(EventId{0}), 2u);
}

TEST(Repository, FirstHitOrdinalsTrackClosureProgress) {
  CoverageRepository repo(3);
  EXPECT_EQ(repo.records(), 0u);
  EXPECT_EQ(repo.events_hit(), 0u);
  EXPECT_EQ(repo.events_remaining(), 3u);
  EXPECT_FALSE(repo.first_hit_record(EventId{0}).has_value());

  CoverageVector miss(3);
  repo.record("t1", miss);  // record 1: hits nothing

  CoverageVector hit0(3);
  hit0.hit(EventId{0});
  repo.record("t1", hit0);  // record 2: first hit of event 0
  repo.record("t1", hit0);  // record 3: event 0 again — ordinal sticks

  CoverageVector hit01(3);
  hit01.hit(EventId{0});
  hit01.hit(EventId{1});
  repo.record("t2", hit01);  // record 4: first hit of event 1

  EXPECT_EQ(repo.records(), 4u);
  EXPECT_EQ(repo.events_hit(), 2u);
  EXPECT_EQ(repo.events_remaining(), 1u);
  EXPECT_EQ(repo.first_hit_record(EventId{0}), 2u);
  EXPECT_EQ(repo.first_hit_record(EventId{1}), 4u);
  EXPECT_FALSE(repo.first_hit_record(EventId{2}).has_value());
}

TEST(Repository, FirstHitOrdinalsCoverPreAggregatedFolds) {
  CoverageRepository repo(2);
  SimStats s(2);
  CoverageVector v(2);
  v.hit(EventId{1});
  s.record(v);
  repo.record("bulk", s);  // one fold, even though it holds many sims
  EXPECT_EQ(repo.records(), 1u);
  EXPECT_EQ(repo.first_hit_record(EventId{1}), 1u);
  EXPECT_FALSE(repo.first_hit_record(EventId{0}).has_value());
  EXPECT_EQ(repo.events_hit(), 1u);
}

// ----------------------------------------------------------- persistence --

class RepositoryIo : public ::testing::Test {
 protected:
  CoverageSpace space_;
  std::filesystem::path dir_;

  void SetUp() override {
    space_.declare_event("ev_a");
    space_.declare_event("ev_b");
    space_.declare_event("ev_c");
    dir_ = std::filesystem::temp_directory_path() /
           ("ascdg_repo_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  CoverageRepository sample_repo() {
    CoverageRepository repo(3);
    SimStats a = SimStats::from_counts(100, {40, 0, 7});
    SimStats b = SimStats::from_counts(50, {0, 0, 0});
    repo.record("tmpl_a", a);
    repo.record("tmpl_idle", b);
    return repo;
  }
};

TEST_F(RepositoryIo, RoundTrip) {
  const auto repo = sample_repo();
  const auto path = dir_ / "before.csv";
  save_repository(path, space_, repo);
  const auto loaded = load_repository(path, space_);
  ASSERT_EQ(loaded.template_names(), repo.template_names());
  for (const auto& name : repo.template_names()) {
    EXPECT_EQ(loaded.stats(name), repo.stats(name)) << name;
  }
  EXPECT_EQ(loaded.total_sims(), 150u);
}

TEST_F(RepositoryIo, ZeroHitTemplateKeepsSimCount) {
  const auto repo = sample_repo();
  const auto path = dir_ / "before.csv";
  save_repository(path, space_, repo);
  const auto loaded = load_repository(path, space_);
  EXPECT_EQ(loaded.stats("tmpl_idle").sims(), 50u);
  EXPECT_EQ(loaded.stats("tmpl_idle").hits(EventId{0}), 0u);
}

TEST_F(RepositoryIo, BadHeaderThrows) {
  const auto path = dir_ / "bad.csv";
  std::ofstream(path) << "nope,nope\n";
  EXPECT_THROW((void)load_repository(path, space_), util::Error);
}

TEST_F(RepositoryIo, UnknownEventThrows) {
  const auto path = dir_ / "bad.csv";
  std::ofstream(path) << "template,sims,event,hits\nt,10,not_an_event,3\n";
  EXPECT_THROW((void)load_repository(path, space_), util::Error);
}

TEST_F(RepositoryIo, InconsistentSimsThrows) {
  const auto path = dir_ / "bad.csv";
  std::ofstream(path) << "template,sims,event,hits\nt,10,ev_a,3\nt,20,ev_b,1\n";
  EXPECT_THROW((void)load_repository(path, space_), util::Error);
}

TEST_F(RepositoryIo, MissingFileThrows) {
  EXPECT_THROW((void)load_repository(dir_ / "nope.csv", space_), util::Error);
}

TEST(SimStatsFromCounts, ValidatesBounds) {
  EXPECT_NO_THROW((void)SimStats::from_counts(10, {10, 0, 5}));
  EXPECT_THROW((void)SimStats::from_counts(10, {11}), util::ValidationError);
  const auto stats = SimStats::from_counts(10, {4, 0});
  EXPECT_EQ(stats.sims(), 10u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(EventId{0}), 0.4);
}

// ---------------------------------------------------------------- holes --

class HoleAnalysis : public ::testing::Test {
 protected:
  CoverageSpace space_;
  const CrossProduct* cp_ = nullptr;

  void SetUp() override {
    cp_ = &space_.declare_cross_product("x", {{"a", 3}, {"b", 2}, {"c", 2}});
  }

  /// Stats where exactly the given coordinate tuples are uncovered.
  SimStats stats_with_uncovered(
      const std::vector<std::vector<std::size_t>>& uncovered) {
    std::vector<bool> skip(space_.size(), false);
    for (const auto& coords : uncovered) {
      skip[space_.cross_event(*cp_, coords).value] = true;
    }
    CoverageVector vec(space_.size());
    for (std::size_t i = 0; i < space_.size(); ++i) {
      if (!skip[i]) vec.hit(EventId{static_cast<std::uint32_t>(i)});
    }
    SimStats out(space_.size());
    out.record(vec);
    return out;
  }
};

TEST_F(HoleAnalysis, FullyCoveredHasNoHoles) {
  const auto stats = stats_with_uncovered({});
  EXPECT_TRUE(find_holes(space_, *cp_, stats, 3).empty());
}

TEST_F(HoleAnalysis, SingleUncoveredTupleIsAnOrder3Hole) {
  const auto stats = stats_with_uncovered({{1, 0, 1}});
  const auto holes = find_holes(space_, *cp_, stats, 3);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0].order(), 3u);
  EXPECT_EQ(holes[0].size, 1u);
  const std::vector<std::size_t> expected{1, 0, 1};
  EXPECT_EQ(holes[0].assignment, expected);
}

TEST_F(HoleAnalysis, ProjectedHoleSubsumesItsTuples) {
  // Everything with a=2 uncovered -> one order-1 hole, no order-2/3
  // sub-holes reported.
  std::vector<std::vector<std::size_t>> uncovered;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 2; ++c) uncovered.push_back({2, b, c});
  }
  const auto stats = stats_with_uncovered(uncovered);
  const auto holes = find_holes(space_, *cp_, stats, 3);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0].order(), 1u);
  EXPECT_EQ(holes[0].size, 4u);
  EXPECT_EQ(holes[0].assignment[0], 2u);
  EXPECT_EQ(holes[0].assignment[1], Hole::kWildcard);
}

TEST_F(HoleAnalysis, MaxOrderLimitsReporting) {
  const auto stats = stats_with_uncovered({{1, 0, 1}});
  // The only hole needs order 3; at max_order 2 nothing is reported.
  EXPECT_TRUE(find_holes(space_, *cp_, stats, 2).empty());
}

TEST_F(HoleAnalysis, MixedHolesSortedByOrderThenSize) {
  // a=0 fully uncovered (order 1, size 4) plus the lone tuple (2,1,0)
  // (order 3, size 1).
  std::vector<std::vector<std::size_t>> uncovered;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 2; ++c) uncovered.push_back({0, b, c});
  }
  uncovered.push_back({2, 1, 0});
  const auto stats = stats_with_uncovered(uncovered);
  const auto holes = find_holes(space_, *cp_, stats, 3);
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0].order(), 1u);
  EXPECT_EQ(holes[1].order(), 3u);
}

TEST_F(HoleAnalysis, DescribeFormatsAssignment) {
  Hole hole;
  hole.assignment = {2, Hole::kWildcard, 1};
  hole.size = 2;
  EXPECT_EQ(describe(*cp_, hole), "a=2, b=*, c=1  (2 events)");
}

}  // namespace
}  // namespace ascdg::coverage
