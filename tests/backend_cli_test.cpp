// End-to-end backend parity against the real CLI binary: the same flow
// run on --backend=thread and --backend=process:8 must produce
// byte-identical coverage artifacts (CSV phase table, saved best
// template) and the same simulation count — wall-clock is the only
// thing allowed to differ. Also pins the strict --backend parsing
// contract: a bad spec is a usage error (exit 1) with a hint, never a
// runtime error (exit 2) or a silent fallback.
//
// The binary path arrives via the ASCDG_CLI_PATH compile definition
// (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef ASCDG_CLI_PATH
#error "ASCDG_CLI_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int exit_code = -1;  ///< WEXITSTATUS
  std::string output;  ///< stdout + stderr
};

CliResult run_cli(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// A small fixed-seed flow writing its coverage artifacts under `dir`.
std::string flow_command(const fs::path& dir, const std::string& backend) {
  return std::string(ASCDG_CLI_PATH) +
         " run io_unit --family crc --before-sims 50 --samples 10"
         " --sample-sims 20 --iterations 2 --point-sims 20 --harvest 500"
         " --seed 5 --backend=" + backend +
         " --csv " + (dir / "phases.csv").string() +
         " --save-best " + (dir / "best.tmpl").string();
}

/// The "total simulations: N" line — the cost metric both backends
/// must agree on.
std::string total_simulations_line(const std::string& output) {
  const auto pos = output.find("total simulations:");
  EXPECT_NE(pos, std::string::npos) << output;
  if (pos == std::string::npos) return {};
  return output.substr(pos, output.find('\n', pos) - pos);
}

class BackendCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ascdg_backend_cli_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(BackendCli, ProcessBackendIsBitIdenticalToThreadBackend) {
  const fs::path thread_dir = dir_ / "thread";
  const fs::path process_dir = dir_ / "process";
  fs::create_directories(thread_dir);
  fs::create_directories(process_dir);

  const CliResult on_thread = run_cli(flow_command(thread_dir, "thread"));
  ASSERT_EQ(on_thread.exit_code, 0) << on_thread.output;
  const CliResult on_process = run_cli(flow_command(process_dir, "process:8"));
  ASSERT_EQ(on_process.exit_code, 0) << on_process.output;

  EXPECT_EQ(slurp(thread_dir / "phases.csv"),
            slurp(process_dir / "phases.csv"));
  EXPECT_EQ(slurp(thread_dir / "best.tmpl"),
            slurp(process_dir / "best.tmpl"));
  EXPECT_EQ(total_simulations_line(on_thread.output),
            total_simulations_line(on_process.output));
}

TEST_F(BackendCli, UnknownBackendNameIsAUsageErrorWithHint) {
  const CliResult result = run_cli(flow_command(dir_, "bogus"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("unknown backend 'bogus'"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("thread|process[:N]"), std::string::npos)
      << result.output;
}

TEST_F(BackendCli, GarbageWorkerCountIsAUsageError) {
  for (const char* spec : {"process:abc", "process:0", "process:",
                           "thread:1x"}) {
    const CliResult result = run_cli(flow_command(dir_, spec));
    EXPECT_EQ(result.exit_code, 1) << spec << ": " << result.output;
    EXPECT_NE(result.output.find("backend"), std::string::npos)
        << result.output;
  }
}

TEST_F(BackendCli, BareBackendFlagWithoutSpecIsRejected) {
  // `--backend` with no value eats nothing: the stray token fails the
  // run under the unknown-flag contract (exit 1), not silently.
  const CliResult result = run_cli(
      std::string(ASCDG_CLI_PATH) +
      " before io_unit --sims 50 --backend");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("--backend"), std::string::npos)
      << result.output;
}

TEST_F(BackendCli, ProcessBackendWorksOnAuxiliaryCommands) {
  const CliResult result = run_cli(std::string(ASCDG_CLI_PATH) +
                                   " before io_unit --sims 50"
                                   " --backend=process:2");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  const CliResult reference = run_cli(std::string(ASCDG_CLI_PATH) +
                                      " before io_unit --sims 50");
  EXPECT_EQ(reference.exit_code, 0) << reference.output;
  EXPECT_EQ(result.output, reference.output);
}

}  // namespace
