// Tests for the biased-random parameter sampler: override/default
// fallback, draw semantics per parameter kind, and distribution
// correctness (chi-square goodness of fit).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "stimgen/profile.hpp"
#include "stimgen/sampler.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ascdg::stimgen {
namespace {

using tgen::parse_template;
using tgen::TestTemplate;
using tgen::Value;
using util::NotFoundError;
using util::ValidationError;

TestTemplate defaults_template() {
  return parse_template(R"(
    template defaults {
      weight Cmd { read: 50, write: 50 }
      range Delay [0, 9]
      weight Thr { 0: 1, 1: 1 }
      subrange Size { [1, 4]: 3, [5, 8]: 1 }
    }
  )");
}

TEST(Sampler, FallsBackToDefaults) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(1);
  ParameterSampler sampler(nullptr, defaults, rng);
  EXPECT_TRUE(sampler.has("Cmd"));
  const Value v = sampler.draw("Cmd");
  EXPECT_TRUE(v.as_symbol() == "read" || v.as_symbol() == "write");
}

TEST(Sampler, OverrideShadowsDefault) {
  const auto defaults = defaults_template();
  const auto overrides =
      parse_template("template o { weight Cmd { write: 1 } }");
  util::Xoshiro256 rng(2);
  ParameterSampler sampler(&overrides, defaults, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.draw("Cmd").as_symbol(), "write");
  }
}

TEST(Sampler, OverrideDoesNotHideOtherDefaults) {
  const auto defaults = defaults_template();
  const auto overrides =
      parse_template("template o { weight Cmd { write: 1 } }");
  util::Xoshiro256 rng(3);
  ParameterSampler sampler(&overrides, defaults, rng);
  const std::int64_t d = sampler.draw_range("Delay");
  EXPECT_GE(d, 0);
  EXPECT_LE(d, 9);
}

TEST(Sampler, UnknownParameterThrows) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(4);
  ParameterSampler sampler(nullptr, defaults, rng);
  EXPECT_THROW((void)sampler.draw("Nope"), NotFoundError);
  EXPECT_THROW((void)sampler.draw_range("Nope"), NotFoundError);
  EXPECT_FALSE(sampler.has("Nope"));
}

TEST(Sampler, KindMismatchThrows) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(5);
  ParameterSampler sampler(nullptr, defaults, rng);
  EXPECT_THROW((void)sampler.draw("Delay"), ValidationError);      // range as weight
  EXPECT_THROW((void)sampler.draw_range("Cmd"), ValidationError);  // weight as range
}

TEST(Sampler, DrawIntValueOnSymbolThrows) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(6);
  ParameterSampler sampler(nullptr, defaults, rng);
  EXPECT_THROW((void)sampler.draw_int_value("Cmd"), ValidationError);
  const std::int64_t t = sampler.draw_int_value("Thr");
  EXPECT_TRUE(t == 0 || t == 1);
}

TEST(Sampler, RangeDrawUniform) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(7);
  ParameterSampler sampler(nullptr, defaults, rng);
  std::vector<std::size_t> counts(10, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(sampler.draw_range("Delay"))];
  }
  const std::vector<double> expected(10, 0.1);
  EXPECT_LT(util::chi_square_statistic(counts, expected),
            util::chi_square_critical(9, 0.001));
}

TEST(Sampler, SubrangeDrawHonorsWeightsAndUniformWithin) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(8);
  ParameterSampler sampler(nullptr, defaults, rng);
  // Size: [1,4] weight 3, [5,8] weight 1 -> per-value probability is
  // (3/4)/4 for 1..4 and (1/4)/4 for 5..8.
  std::vector<std::size_t> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(sampler.draw_range("Size") - 1)];
  }
  std::vector<double> expected;
  for (int v = 1; v <= 4; ++v) expected.push_back(3.0 / 16.0);
  for (int v = 5; v <= 8; ++v) expected.push_back(1.0 / 16.0);
  EXPECT_LT(util::chi_square_statistic(counts, expected),
            util::chi_square_critical(7, 0.001));
}

TEST(Sampler, WeightedDrawMatchesDistribution) {
  const auto tmpl = parse_template(
      "template t { weight W { a: 10, b: 30, c: 60, d: 0 } }");
  util::Xoshiro256 rng(9);
  ParameterSampler sampler(nullptr, tmpl, rng);
  std::map<std::string, std::size_t> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.draw("W").as_symbol()];
  EXPECT_EQ(counts.count("d"), 0u);  // zero weight never drawn
  const std::vector<std::size_t> observed{counts["a"], counts["b"], counts["c"]};
  const std::vector<double> expected{10, 30, 60};
  EXPECT_LT(util::chi_square_statistic(observed, expected),
            util::chi_square_critical(2, 0.001));
}

TEST(Sampler, DeterministicGivenSeed) {
  const auto defaults = defaults_template();
  std::vector<std::int64_t> first, second;
  for (auto* out : {&first, &second}) {
    util::Xoshiro256 rng(99);
    ParameterSampler sampler(nullptr, defaults, rng);
    for (int i = 0; i < 50; ++i) out->push_back(sampler.draw_range("Delay"));
  }
  EXPECT_EQ(first, second);
}

TEST(DrawFrom, RangeSingleton) {
  util::Xoshiro256 rng(10);
  const tgen::RangeParameter p{"R", 5, 5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(draw_from(p, rng), 5);
}

TEST(DrawFrom, NegativeRange) {
  util::Xoshiro256 rng(11);
  const tgen::RangeParameter p{"R", -10, -1};
  for (int i = 0; i < 1000; ++i) {
    const auto v = draw_from(p, rng);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -1);
  }
}

TEST(DrawFrom, ZeroTotalWeightThrows) {
  util::Xoshiro256 rng(12);
  const tgen::WeightParameter w{"W", {{Value{"a"}, 0.0}}};
  EXPECT_THROW((void)draw_from(w, rng), ValidationError);
  const tgen::SubrangeParameter s{"S", {{0, 1, 0.0}}};
  EXPECT_THROW((void)draw_from(s, rng), ValidationError);
}

// Parameterized sweep: sampled frequencies track template weights for a
// spread of weight shapes (property-style).
struct WeightShape {
  const char* label;
  std::vector<double> weights;
};

class WeightFidelity : public ::testing::TestWithParam<WeightShape> {};

TEST_P(WeightFidelity, ChiSquareWithinCritical) {
  const auto& shape = GetParam();
  tgen::WeightParameter param{"W", {}};
  for (std::size_t i = 0; i < shape.weights.size(); ++i) {
    param.entries.push_back(
        {Value{static_cast<std::int64_t>(i)}, shape.weights[i]});
  }
  util::Xoshiro256 rng(1234);
  std::vector<std::size_t> counts(shape.weights.size(), 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(draw_from(param, rng).as_int())];
  }
  std::size_t dof = 0;
  for (const double w : shape.weights) {
    if (w > 0) ++dof;
  }
  ASSERT_GE(dof, 2u);
  EXPECT_LT(util::chi_square_statistic(counts, shape.weights),
            util::chi_square_critical(dof - 1, 0.001));
}

INSTANTIATE_TEST_SUITE_P(
    Sampler, WeightFidelity,
    ::testing::Values(WeightShape{"uniform", {1, 1, 1, 1}},
                      WeightShape{"skewed", {100, 10, 1}},
                      WeightShape{"with_zeros", {0, 5, 0, 5}},
                      WeightShape{"tiny_fractions", {0.001, 0.002, 0.003}},
                      WeightShape{"two_values", {7, 3}},
                      WeightShape{"extreme_skew", {10000, 1}}),
    [](const auto& info) { return info.param.label; });

// ------------------------------------------------------------ profiler --

TEST(Profiler, CountsDrawsPerParameter) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(31);
  ParameterSampler sampler(nullptr, defaults, rng);
  ScopedDrawProfiler profiler;
  for (int i = 0; i < 10; ++i) (void)sampler.draw("Cmd");
  for (int i = 0; i < 3; ++i) (void)sampler.draw_range("Delay");
  EXPECT_EQ(profiler.counts().at("Cmd"), 10u);
  EXPECT_EQ(profiler.counts().at("Delay"), 3u);
  EXPECT_EQ(profiler.total(), 13u);
  profiler.reset();
  EXPECT_EQ(profiler.total(), 0u);
}

TEST(Profiler, InactiveByDefault) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(32);
  ParameterSampler sampler(nullptr, defaults, rng);
  // No active profiler: draws must not crash and leave no trace.
  (void)sampler.draw("Cmd");
  ScopedDrawProfiler profiler;
  EXPECT_TRUE(profiler.counts().empty());
}

TEST(Profiler, NestingRestoresOuter) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(33);
  ParameterSampler sampler(nullptr, defaults, rng);
  ScopedDrawProfiler outer;
  (void)sampler.draw("Cmd");
  {
    ScopedDrawProfiler inner;
    (void)sampler.draw("Cmd");
    (void)sampler.draw("Cmd");
    EXPECT_EQ(inner.counts().at("Cmd"), 2u);
  }
  (void)sampler.draw("Cmd");
  // Outer saw its own draws only (1 before + 1 after the inner scope).
  EXPECT_EQ(outer.counts().at("Cmd"), 2u);
}

TEST(Profiler, FailedDrawsAreStillCounted) {
  const auto defaults = defaults_template();
  util::Xoshiro256 rng(34);
  ParameterSampler sampler(nullptr, defaults, rng);
  ScopedDrawProfiler profiler;
  EXPECT_THROW((void)sampler.draw("Missing"), util::NotFoundError);
  // The consult attempt is what the profiler measures.
  EXPECT_EQ(profiler.counts().at("Missing"), 1u);
}

}  // namespace
}  // namespace ascdg::stimgen
