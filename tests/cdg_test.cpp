// Tests for the CDG flow components: Skeletonizer rules (paper §IV-C),
// range splitting, the CDG objective adapter, the random-sampling
// phase, the coarse-grained search, and CdgRunner configuration and
// failure handling.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_farm.hpp"
#include "cdg/cdg_objective.hpp"
#include "flow/campaign.hpp"
#include "cdg/random_sample.hpp"
#include "flow/runner.hpp"
#include "cdg/skeletonizer.hpp"
#include "duv/io_unit.hpp"
#include "neighbors/neighbors.hpp"
#include "obs/trace.hpp"
#include "opt/baselines.hpp"
#include "opt/implicit_filtering.hpp"
#include "opt/synthetic.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"

namespace ascdg::cdg {
namespace {

// The flow-level driver types moved from cdg/runner.hpp to flow/ when
// the runner was decomposed into stages; this file tests both layers.
using namespace ascdg::flow;  // NOLINT

using tgen::parse_template;
using util::ConfigError;
using util::NotFoundError;
using util::ValidationError;

// ---------------------------------------------------------- skeletonizer --

TEST(SkeletonizerRules, MarksPositiveWeightsKeepsZeros) {
  // The paper's Fig. 1 example: add has weight 0 and must stay fixed.
  const auto tmpl = parse_template(R"(
    template lsu_stress {
      weight Mnemonic { load: 40, store: 40, add: 0, sync: 20 }
    }
  )");
  const Skeletonizer skeletonizer;
  const auto skel = skeletonizer.skeletonize(tmpl);
  EXPECT_EQ(skel.name(), "lsu_stress_skel");
  EXPECT_EQ(skel.mark_count(), 3u);
  const auto* wp =
      std::get_if<tgen::SkeletonWeightParameter>(&skel.parameters()[0]);
  ASSERT_NE(wp, nullptr);
  EXPECT_FALSE(wp->entries[0].weight.has_value());  // load marked
  ASSERT_TRUE(wp->entries[2].weight.has_value());   // add fixed
  EXPECT_DOUBLE_EQ(*wp->entries[2].weight, 0.0);
}

TEST(SkeletonizerRules, MarkZeroWeightsOption) {
  const auto tmpl = parse_template(
      "template t { weight W { a: 1, b: 0 } }");
  SkeletonizerOptions options;
  options.mark_zero_weights = true;
  const Skeletonizer skeletonizer(options);
  EXPECT_EQ(skeletonizer.skeletonize(tmpl).mark_count(), 2u);
}

TEST(SkeletonizerRules, RangeBecomesMarkedSubranges) {
  const auto tmpl = parse_template("template t { range CacheDelay [0, 1000] }");
  SkeletonizerOptions options;
  options.subranges = 3;
  const Skeletonizer skeletonizer(options);
  const auto skel = skeletonizer.skeletonize(tmpl);
  EXPECT_EQ(skel.mark_count(), 3u);
  const auto* sp =
      std::get_if<tgen::SkeletonSubrangeParameter>(&skel.parameters()[0]);
  ASSERT_NE(sp, nullptr);
  ASSERT_EQ(sp->entries.size(), 3u);
  // Subranges must tile [0, 1000] exactly.
  EXPECT_EQ(sp->entries.front().lo, 0);
  EXPECT_EQ(sp->entries.back().hi, 1000);
  for (std::size_t i = 1; i < sp->entries.size(); ++i) {
    EXPECT_EQ(sp->entries[i].lo, sp->entries[i - 1].hi + 1);
  }
}

TEST(SkeletonizerRules, SubrangeParameterWeightsMarked) {
  const auto tmpl = parse_template(
      "template t { subrange S { [0, 4]: 2, [5, 9]: 0 } }");
  const Skeletonizer skeletonizer;
  const auto skel = skeletonizer.skeletonize(tmpl);
  EXPECT_EQ(skel.mark_count(), 1u);  // zero-weight subrange stays fixed
}

TEST(SkeletonizerRules, NoTunableSettingsThrows) {
  // All weights zero except... a template whose only parameter is an
  // all-zero-weight weight param cannot exist (validation), so use a
  // weight param with zeros only marked off -> no: simplest impossible
  // case is an empty template.
  tgen::TestTemplate empty("empty");
  const Skeletonizer skeletonizer;
  EXPECT_THROW((void)skeletonizer.skeletonize(empty), ValidationError);
}

TEST(SkeletonizerRules, ZeroSubrangesConfigThrows) {
  SkeletonizerOptions options;
  options.subranges = 0;
  EXPECT_THROW(Skeletonizer{options}, ConfigError);
}

TEST(SkeletonizerRules, SkeletonInstantiatesAgainstOriginalShape) {
  const duv::IoUnit io;
  const auto suite = io.suite();
  const Skeletonizer skeletonizer;
  for (const auto& tmpl : suite) {
    const auto skel = skeletonizer.skeletonize(tmpl);
    const std::vector<double> w(skel.mark_count(), 0.5);
    const auto inst = skel.instantiate("x", w);
    // Same parameter names, in order.
    EXPECT_EQ(inst.parameter_names(), tmpl.parameter_names()) << tmpl.name();
  }
}

// ------------------------------------------------------------ split_range --

TEST(SplitRange, UniformTilesExactly) {
  const auto parts = split_range(0, 9, 3, SubrangeSpacing::kUniform);
  ASSERT_EQ(parts.size(), 3u);
  const std::pair<std::int64_t, std::int64_t> expected0{0, 3};
  const std::pair<std::int64_t, std::int64_t> expected1{4, 6};
  const std::pair<std::int64_t, std::int64_t> expected2{7, 9};
  EXPECT_EQ(parts[0], expected0);
  EXPECT_EQ(parts[1], expected1);
  EXPECT_EQ(parts[2], expected2);
}

TEST(SplitRange, FewerValuesThanSubranges) {
  const auto parts = split_range(5, 6, 8, SubrangeSpacing::kUniform);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].first, 5);
  EXPECT_EQ(parts[0].second, 5);
  EXPECT_EQ(parts[1].first, 6);
  EXPECT_EQ(parts[1].second, 6);
}

TEST(SplitRange, SingletonRange) {
  const auto parts = split_range(7, 7, 4, SubrangeSpacing::kUniform);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].first, 7);
  EXPECT_EQ(parts[0].second, 7);
}

TEST(SplitRange, NegativeBounds) {
  const auto parts = split_range(-10, -1, 2, SubrangeSpacing::kUniform);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].first, -10);
  EXPECT_EQ(parts[1].second, -1);
  EXPECT_EQ(parts[1].first, parts[0].second + 1);
}

class SplitRangeProperty
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::size_t, SubrangeSpacing>> {
};

TEST_P(SplitRangeProperty, TilesWithoutGapsOrOverlap) {
  const auto [lo, hi, count, spacing] = GetParam();
  const auto parts = split_range(lo, hi, count, spacing);
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().first, lo);
  EXPECT_EQ(parts.back().second, hi);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_LE(parts[i].first, parts[i].second);
    if (i > 0) EXPECT_EQ(parts[i].first, parts[i - 1].second + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cdg, SplitRangeProperty,
    ::testing::Combine(::testing::Values<std::int64_t>(0, -50, 17),
                       ::testing::Values<std::int64_t>(63, 1000, 17),
                       ::testing::Values<std::size_t>(1, 2, 4, 7, 16),
                       ::testing::Values(SubrangeSpacing::kUniform,
                                         SubrangeSpacing::kGeometric)));

TEST(SplitRange, GeometricWidthsGrow) {
  const auto parts = split_range(0, 1000, 4, SubrangeSpacing::kGeometric);
  ASSERT_EQ(parts.size(), 4u);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto w_prev = parts[i - 1].second - parts[i - 1].first;
    const auto w_cur = parts[i].second - parts[i].first;
    EXPECT_GE(w_cur, w_prev);
  }
}

// --------------------------------------------------------- cdg objective --

class CdgObjectiveTest : public ::testing::Test {
 protected:
  duv::IoUnit io_;
  exec::ThreadFarm farm_{2};

  tgen::Skeleton crc_skeleton() {
    const auto suite = io_.suite();
    for (const auto& tmpl : suite) {
      if (tmpl.name() == "io_crc_smoke") {
        return Skeletonizer().skeletonize(tmpl);
      }
    }
    throw std::runtime_error("io_crc_smoke not found");
  }

  neighbors::ApproximatedTarget crc_target() {
    coverage::SimStats none(io_.space().size());
    return neighbors::family_target(io_.space(), "crc", none);
  }
};

TEST_F(CdgObjectiveTest, EvaluateReturnsTargetValueAndAccumulates) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 50);
  EXPECT_EQ(objective.dimension(), skel.mark_count());
  const std::vector<double> x(skel.mark_count(), 0.5);
  const double v = objective.evaluate(x, 1);
  EXPECT_GE(v, 0.0);
  EXPECT_EQ(objective.simulations(), 50u);
  EXPECT_EQ(objective.combined().sims(), 50u);
  (void)objective.evaluate(x, 2);
  EXPECT_EQ(objective.simulations(), 100u);
  EXPECT_TRUE(objective.has_best());
}

TEST_F(CdgObjectiveTest, TracksBestPoint) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 50);
  std::vector<double> good(skel.mark_count(), 0.9);
  std::vector<double> bad(skel.mark_count(), 0.0);
  const double vg = objective.evaluate(good, 1);
  const double vb = objective.evaluate(bad, 2);
  EXPECT_DOUBLE_EQ(objective.best_value(), std::max(vg, vb));
}

TEST_F(CdgObjectiveTest, ZeroSimsThrows) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  EXPECT_THROW(CdgObjective(io_, farm_, skel, target, 0), ConfigError);
}

// ------------------------------------------------------ batched dispatch --

TEST_F(CdgObjectiveTest, BatchMatchesScalarEvaluationBitIdentical) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective scalar(io_, farm_, skel, target, 30);
  CdgObjective batched(io_, farm_, skel, target, 30);

  std::vector<opt::Point> xs;
  for (const double w : {0.1, 0.4, 0.7, 1.0}) {
    xs.emplace_back(skel.mark_count(), w);
  }
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};
  std::vector<double> scalar_values;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    scalar_values.push_back(scalar.evaluate(xs[i], seeds[i]));
  }
  const auto batch_values = batched.evaluate_batch(xs, seeds);
  EXPECT_EQ(batch_values, scalar_values);
  EXPECT_EQ(batched.simulations(), scalar.simulations());
  EXPECT_EQ(batched.combined(), scalar.combined());
  EXPECT_EQ(batched.best_value(), scalar.best_value());
  EXPECT_EQ(batched.best_point(), scalar.best_point());
}

TEST_F(CdgObjectiveTest, BatchResultsIndependentOfWorkerCount) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  exec::ThreadFarm farm1(1);
  exec::ThreadFarm farm8(8);
  CdgObjective obj1(io_, farm1, skel, target, 25);
  CdgObjective obj8(io_, farm8, skel, target, 25);

  std::vector<opt::Point> xs;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 9; ++i) {
    xs.emplace_back(skel.mark_count(), 0.1 * static_cast<double>(i + 1));
    seeds.push_back(100 + i);
  }
  EXPECT_EQ(obj1.evaluate_batch(xs, seeds), obj8.evaluate_batch(xs, seeds));
  EXPECT_EQ(obj1.simulations(), obj8.simulations());
  EXPECT_EQ(obj1.combined(), obj8.combined());
}

TEST_F(CdgObjectiveTest, MismatchedBatchSpansThrow) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 10);
  const std::vector<opt::Point> xs{opt::Point(skel.mark_count(), 0.5)};
  const std::vector<std::uint64_t> seeds{1, 2};
  EXPECT_THROW((void)objective.evaluate_batch(xs, seeds), ConfigError);
  const std::vector<opt::Point> bad_dim{opt::Point(skel.mark_count() + 1, 0.5)};
  const std::vector<std::uint64_t> one_seed{1};
  EXPECT_THROW((void)objective.evaluate_batch(bad_dim, one_seed), ConfigError);
}

// ------------------------------------------------------- evaluation cache --

TEST_F(CdgObjectiveTest, CacheHitSkipsSimulationAndRepeatsValue) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 40);
  const std::vector<double> x(skel.mark_count(), 0.5);

  const double v1 = objective.evaluate(x, 9);
  EXPECT_EQ(objective.simulations(), 40u);
  EXPECT_EQ(objective.cache_misses(), 1u);
  EXPECT_EQ(objective.cache_hits(), 0u);

  const double v2 = objective.evaluate(x, 9);  // same (point, seed)
  EXPECT_EQ(v2, v1);
  EXPECT_EQ(objective.simulations(), 40u);  // no resimulation
  EXPECT_EQ(objective.cache_hits(), 1u);
  // The hit still merges its stats: combined coverage matches a
  // cache-free run of the same evaluation sequence.
  EXPECT_EQ(objective.combined().sims(), 80u);

  const double v3 = objective.evaluate(x, 10);  // new seed -> miss
  (void)v3;
  EXPECT_EQ(objective.simulations(), 80u);
  EXPECT_EQ(objective.cache_misses(), 2u);
}

TEST_F(CdgObjectiveTest, CacheOffResimulatesButValuesStillAgree) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 40,
                         EvalCacheConfig{.enabled = false, .capacity = 0});
  const std::vector<double> x(skel.mark_count(), 0.5);
  const double v1 = objective.evaluate(x, 9);
  const double v2 = objective.evaluate(x, 9);
  EXPECT_EQ(v1, v2);  // determinism comes from the seed, not the cache
  EXPECT_EQ(objective.simulations(), 80u);
  EXPECT_EQ(objective.cache_hits(), 0u);
  EXPECT_EQ(objective.cache_misses(), 0u);
}

TEST_F(CdgObjectiveTest, DuplicatePairInOneBatchSimulatesOnce) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 40);
  const opt::Point x(skel.mark_count(), 0.5);
  const std::vector<opt::Point> xs{x, x};
  const std::vector<std::uint64_t> seeds{7, 7};
  const auto values = objective.evaluate_batch(xs, seeds);
  EXPECT_EQ(values[0], values[1]);
  EXPECT_EQ(objective.simulations(), 40u);  // one farm job for the pair
  EXPECT_EQ(objective.cache_misses(), 1u);
  EXPECT_EQ(objective.cache_hits(), 1u);
  // Both evaluations still count toward combined coverage.
  EXPECT_EQ(objective.combined().sims(), 80u);
}

TEST_F(CdgObjectiveTest, CacheEvictsLeastRecentlyUsed) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective objective(io_, farm_, skel, target, 20,
                         EvalCacheConfig{.enabled = true, .capacity = 1});
  const std::vector<double> a(skel.mark_count(), 0.2);
  const std::vector<double> b(skel.mark_count(), 0.8);
  (void)objective.evaluate(a, 1);  // miss, cached
  (void)objective.evaluate(a, 1);  // hit: resident
  (void)objective.evaluate(b, 2);  // miss, evicts (a, 1)
  (void)objective.evaluate(b, 2);  // hit: resident
  (void)objective.evaluate(a, 1);  // miss again: was evicted
  EXPECT_EQ(objective.cache_misses(), 3u);
  EXPECT_EQ(objective.cache_hits(), 2u);
  EXPECT_EQ(objective.simulations(), 60u);
}

// Regression: each objective instance must emit globally unique template
// names. Two objectives over the same skeleton used to both name their
// probes "<skeleton>_probe<ordinal>", colliding in shared telemetry and
// coverage-by-template attribution.
TEST_F(CdgObjectiveTest, ProbeNamePrefixUniquePerObjective) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  CdgObjective a(io_, farm_, skel, target, 10);
  CdgObjective b(io_, farm_, skel, target, 10);
  EXPECT_NE(a.probe_prefix(), b.probe_prefix());
  EXPECT_TRUE(a.probe_prefix().starts_with(skel.name()));
  EXPECT_TRUE(b.probe_prefix().starts_with(skel.name()));
}

// ------------------------------------- optimizer x dispatch equivalence --
//
// Satellite guarantee of the batched-evaluation protocol: for every
// optimizer, running against the native batched CdgObjective and against
// a scalarized wrapper (default scalar evaluate loop) yields the same
// OptResult bit for bit, at one worker and at eight.

void expect_same_opt_result(const opt::OptResult& a, const opt::OptResult& b) {
  EXPECT_EQ(a.best_point, b.best_point);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.reason, b.reason);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].center_value, b.trace[i].center_value);
    EXPECT_EQ(a.trace[i].best_value, b.trace[i].best_value);
    EXPECT_EQ(a.trace[i].evaluations, b.trace[i].evaluations);
    EXPECT_EQ(a.trace[i].moved, b.trace[i].moved);
  }
}

class CdgDispatchEquivalence : public CdgObjectiveTest {
 protected:
  // Runs `run` against the native batch path and the scalarized path on
  // farms of 1 and 8 workers; all four OptResults must be identical.
  template <typename Run>
  void check(Run run) {
    const auto skel = crc_skeleton();
    const auto target = crc_target();
    std::vector<opt::OptResult> results;
    std::vector<std::size_t> sims;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
      exec::ThreadFarm farm(workers);
      CdgObjective native(io_, farm, skel, target, 20);
      results.push_back(run(native, skel.mark_count()));
      sims.push_back(native.simulations());

      CdgObjective inner(io_, farm, skel, target, 20);
      opt::ScalarizedObjective scalar(inner);
      results.push_back(run(scalar, skel.mark_count()));
      sims.push_back(inner.simulations());
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      expect_same_opt_result(results[0], results[i]);
      EXPECT_EQ(sims[0], sims[i]);
    }
  }
};

TEST_F(CdgDispatchEquivalence, ImplicitFiltering) {
  check([](opt::Objective& o, std::size_t dim) {
    opt::ImplicitFilteringOptions options;
    options.max_iterations = 4;
    options.directions = 6;
    options.seed = 301;
    return opt::implicit_filtering(o, std::vector<double>(dim, 0.5), options);
  });
}

TEST_F(CdgDispatchEquivalence, RandomSearch) {
  check([](opt::Objective& o, std::size_t) {
    opt::RandomSearchOptions options;
    options.samples = 24;
    options.seed = 303;
    return opt::random_search(o, options);
  });
}

TEST_F(CdgDispatchEquivalence, CoordinateSearch) {
  check([](opt::Objective& o, std::size_t dim) {
    opt::CoordinateSearchOptions options;
    options.max_iterations = 4;
    options.seed = 307;
    return opt::coordinate_search(o, std::vector<double>(dim, 0.5), options);
  });
}

TEST_F(CdgDispatchEquivalence, NelderMead) {
  check([](opt::Objective& o, std::size_t dim) {
    opt::NelderMeadOptions options;
    options.max_iterations = 8;
    options.tolerance = 1e-12;
    options.max_evaluations = 30;
    options.seed = 311;
    return opt::nelder_mead(o, std::vector<double>(dim, 0.4), options);
  });
}

TEST_F(CdgDispatchEquivalence, CrossEntropy) {
  check([](opt::Objective& o, std::size_t dim) {
    opt::CrossEntropyOptions options;
    options.population = 12;
    options.elite = 3;
    options.max_iterations = 3;
    options.seed = 313;
    return opt::cross_entropy(o, std::vector<double>(dim, 0.5), options);
  });
}

TEST_F(CdgDispatchEquivalence, SimulatedAnnealing) {
  check([](opt::Objective& o, std::size_t dim) {
    opt::SimulatedAnnealingOptions options;
    options.max_evaluations = 30;
    options.seed = 317;
    return opt::simulated_annealing(o, std::vector<double>(dim, 0.5), options);
  });
}

// ---------------------------------------------------------- random sample --

TEST_F(CdgObjectiveTest, RandomSampleShapes) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  RandomSampleOptions options;
  options.templates = 20;
  options.sims_per_template = 25;
  options.seed = 5;
  const auto result = random_sample(io_, farm_, skel, target, options);
  ASSERT_EQ(result.samples.size(), 20u);
  EXPECT_EQ(result.simulations, 500u);
  EXPECT_EQ(result.combined.sims(), 500u);
  EXPECT_LT(result.best_index, result.samples.size());
  for (const auto& sample : result.samples) {
    EXPECT_EQ(sample.point.size(), skel.mark_count());
    EXPECT_EQ(sample.stats.sims(), 25u);
    EXPECT_LE(sample.target_value, result.best().target_value);
  }
}

TEST_F(CdgObjectiveTest, RandomSampleDeterministic) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  RandomSampleOptions options;
  options.templates = 10;
  options.sims_per_template = 20;
  options.seed = 77;
  const auto a = random_sample(io_, farm_, skel, target, options);
  const auto b = random_sample(io_, farm_, skel, target, options);
  EXPECT_EQ(a.best_index, b.best_index);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].point, b.samples[i].point);
    EXPECT_EQ(a.samples[i].stats, b.samples[i].stats);
  }
}

TEST_F(CdgObjectiveTest, RandomSampleZeroBudgetThrows) {
  const auto skel = crc_skeleton();
  const auto target = crc_target();
  RandomSampleOptions options;
  options.templates = 0;
  EXPECT_THROW((void)random_sample(io_, farm_, skel, target, options),
               ConfigError);
}

// ---------------------------------------------------------- coarse search --

TEST(CoarseSearch, RanksAndThrowsWhenEmpty) {
  coverage::CoverageRepository repo(2);
  coverage::CoverageVector vec(2);
  vec.hit(coverage::EventId{0});
  repo.record("good", vec);
  repo.record("idle", coverage::CoverageVector(2));

  const neighbors::ApproximatedTarget target(
      {coverage::EventId{1}},
      {{coverage::EventId{0}, 1.0}, {coverage::EventId{1}, 2.0}});
  const auto ranked = coarse_search(target, repo, 5);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].name, "good");

  // A target with no evidence anywhere must throw.
  const neighbors::ApproximatedTarget dark({coverage::EventId{1}},
                                           {{coverage::EventId{1}, 1.0}});
  EXPECT_THROW((void)coarse_search(dark, repo, 5), NotFoundError);
}

// ---------------------------------------------------------------- runner --

TEST(Runner, ConfigValidation) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  FlowConfig config;
  config.sample_templates = 0;
  EXPECT_THROW(CdgRunner(io, farm, config), ConfigError);
  config = FlowConfig{};
  config.opt_directions = 0;
  EXPECT_THROW(CdgRunner(io, farm, config), ConfigError);
}

TEST(Runner, RunFromTemplateSmallBudget) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  FlowConfig config;
  config.sample_templates = 15;
  config.sample_sims = 20;
  config.opt_directions = 4;
  config.opt_sims_per_point = 20;
  config.opt_max_iterations = 3;
  config.harvest_sims = 100;
  config.seed = 9;
  CdgRunner runner(io, farm, config);

  coverage::SimStats none(io.space().size());
  const auto target = neighbors::family_target(io.space(), "crc", none);
  const auto suite = io.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& t : suite) {
    if (t.name() == "io_crc_smoke") seed_tmpl = &t;
  }
  ASSERT_NE(seed_tmpl, nullptr);

  const auto result = runner.run_from_template(target, *seed_tmpl);
  EXPECT_EQ(result.seed_template, "io_crc_smoke");
  EXPECT_GT(result.skeleton.mark_count(), 0u);
  EXPECT_EQ(result.sampling_phase.sims, 15u * 20u);
  EXPECT_GT(result.optimization_phase.sims, 0u);
  EXPECT_EQ(result.harvest_phase.sims, 100u);
  EXPECT_EQ(result.harvest_phase.stats.sims(), 100u);
  EXPECT_EQ(result.flow_sims(), result.sampling_phase.sims +
                                    result.optimization_phase.sims +
                                    result.harvest_phase.sims);
  // The harvested template instantiates the skeleton.
  EXPECT_FALSE(result.best_template.empty());
  EXPECT_LE(result.optimization.trace.size(), 3u);
}

namespace {
/// Pulls the unsigned integer that follows `"key":` in a JSONL line;
/// returns false when the key is absent.
bool extract_uint_field(const std::string& line, const std::string& key,
                        std::size_t* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::stoull(line.substr(pos + needle.size()));
  return true;
}
}  // namespace

TEST(Runner, TraceJsonlPhaseSimsSumToFarmTotal) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  std::ostringstream trace;
  obs::Tracer sink(trace);

  FlowConfig config;
  config.sample_templates = 10;
  config.sample_sims = 20;
  config.opt_directions = 4;
  config.opt_sims_per_point = 20;
  config.opt_max_iterations = 2;
  config.harvest_sims = 100;
  config.seed = 11;
  config.trace = &sink;
  CdgRunner runner(io, farm, config);

  coverage::SimStats none(io.space().size());
  const auto target = neighbors::family_target(io.space(), "crc", none);
  const auto result = runner.run_from_template(target, io.suite().front());

  // flow_start, three phases, flow_end — plus the span records, the
  // per-iteration opt_iter series, and one first_hit per target event.
  std::istringstream lines(trace.str());
  std::string line;
  std::size_t phase_lines = 0;
  std::size_t span_lines = 0;
  std::size_t eval_batch_spans = 0;
  std::size_t opt_iter_lines = 0;
  std::size_t first_hit_lines = 0;
  std::size_t sims_total = 0;
  std::size_t farm_total_in_trace = 0;
  std::size_t flow_end_lines = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"event\":\"phase\"") != std::string::npos) {
      ++phase_lines;
      std::size_t sims = 0;
      ASSERT_TRUE(extract_uint_field(line, "sims", &sims)) << line;
      sims_total += sims;
      EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos) << line;
    }
    if (line.find("\"event\":\"span\"") != std::string::npos) {
      if (line.find("\"span\":\"eval_batch\"") != std::string::npos) {
        ++eval_batch_spans;
      } else {
        ++span_lines;
      }
    }
    if (line.find("\"event\":\"opt_iter\"") != std::string::npos) {
      ++opt_iter_lines;
    }
    if (line.find("\"event\":\"first_hit\"") != std::string::npos) {
      ++first_hit_lines;
    }
    if (line.find("\"event\":\"flow_end\"") != std::string::npos) {
      ++flow_end_lines;
      ASSERT_TRUE(
          extract_uint_field(line, "farm_total_sims", &farm_total_in_trace))
          << line;
    }
  }
  EXPECT_EQ(phase_lines, 3u);
  EXPECT_EQ(flow_end_lines, 1u);
  // flow + skeletonize + sampling + optimization + harvest.
  EXPECT_EQ(span_lines, 5u);
  // One eval_batch span per optimizer dispatch: the initial center,
  // then one whole-stencil batch per iteration.
  EXPECT_EQ(eval_batch_spans, 1u + result.optimization.trace.size());
  EXPECT_EQ(opt_iter_lines, result.optimization.trace.size());
  EXPECT_EQ(first_hit_lines, target.targets().size());
  EXPECT_EQ(result.first_hits.size(), target.targets().size());
  EXPECT_EQ(sink.lines(), 5u + span_lines + eval_batch_spans + opt_iter_lines +
                              first_hit_lines);

  // The paper's cost metric must reconcile: per-phase sims sum to the
  // farm's books (the farm was fresh, so flow sims are all its sims).
  EXPECT_EQ(sims_total, result.flow_sims());
  EXPECT_EQ(sims_total, farm.total_simulations());
  EXPECT_EQ(farm_total_in_trace, farm.total_simulations());

  // Phase wall times were measured.
  EXPECT_GT(result.sampling_phase.wall_ms, 0.0);
  EXPECT_GT(result.optimization_phase.wall_ms, 0.0);
  EXPECT_GT(result.harvest_phase.wall_ms, 0.0);
}

TEST(Runner, FullRunUsesCoarseSearch) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  // Build a small "before" repository from the suite.
  coverage::CoverageRepository repo(io.space().size());
  const auto suite = io.suite();
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm.run(io, suite[j], 150, 500 + j));
  }
  FlowConfig config;
  config.sample_templates = 10;
  config.sample_sims = 20;
  config.opt_directions = 4;
  config.opt_sims_per_point = 20;
  config.opt_max_iterations = 2;
  config.harvest_sims = 50;
  CdgRunner runner(io, farm, config);
  const auto target =
      neighbors::family_target(io.space(), "crc", repo.total());
  const auto result = runner.run(target, repo, suite);
  // The merged seed is led by the best-ranked template.
  EXPECT_TRUE(result.seed_template.starts_with("io_crc_smoke"))
      << result.seed_template;
  EXPECT_EQ(result.before.sims, repo.total_sims());
}

TEST(Runner, HarvestCanBeDisabled) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  FlowConfig config;
  config.sample_templates = 5;
  config.sample_sims = 10;
  config.opt_directions = 2;
  config.opt_sims_per_point = 10;
  config.opt_max_iterations = 1;
  config.harvest_sims = 0;
  CdgRunner runner(io, farm, config);
  coverage::SimStats none(io.space().size());
  const auto target = neighbors::family_target(io.space(), "crc", none);
  const auto result =
      runner.run_from_template(target, io.suite().front());
  EXPECT_EQ(result.harvest_phase.sims, 0u);
  EXPECT_EQ(result.harvest_phase.stats.sims(), 0u);
}

TEST(Runner, CorrelationExpansionGrowsObjective) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  coverage::CoverageRepository repo(io.space().size());
  const auto suite = io.suite();
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm.run(io, suite[j], 200, 900 + j));
  }
  flow::FlowConfig config;
  config.sample_templates = 8;
  config.sample_sims = 10;
  config.opt_directions = 2;
  config.opt_sims_per_point = 10;
  config.opt_max_iterations = 1;
  config.harvest_sims = 0;
  config.expand_target_by_correlation = true;
  config.correlation_min_similarity = 0.7;
  CdgRunner runner(io, farm, config);
  const auto target =
      neighbors::family_target(io.space(), "crc", repo.total());
  // Expansion happens inside run(); it must complete and the flow must
  // still produce a valid skeleton/template.
  const auto result = runner.run(target, repo, suite);
  EXPECT_GT(result.skeleton.mark_count(), 0u);
  EXPECT_FALSE(result.best_template.empty());
}

// ----------------------------------------------------------- refinement --

TEST(Refinement, RunsWhenEvidenceExists) {
  // Target an event the seed template hits reliably -> evidence after
  // the optimization phase is certain, so the refinement stage must run.
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  FlowConfig config;
  config.sample_templates = 10;
  config.sample_sims = 15;
  config.opt_directions = 4;
  config.opt_sims_per_point = 30;
  config.opt_max_iterations = 2;
  config.refine_with_real_target = true;
  config.refine_threshold = 0.001;
  config.refine_max_iterations = 2;
  config.harvest_sims = 100;
  CdgRunner runner(io, farm, config);

  const auto family = io.crc_family();
  // crc_004 as "target": plenty of evidence everywhere.
  const neighbors::ApproximatedTarget target(
      {family[0]}, {{family[0], 2.0}, {family[1], 0.5}});
  const auto suite = io.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& t : suite) {
    if (t.name() == "io_crc_smoke") seed_tmpl = &t;
  }
  ASSERT_NE(seed_tmpl, nullptr);
  const auto result = runner.run_from_template(target, *seed_tmpl);
  ASSERT_TRUE(result.refinement.has_value());
  EXPECT_LE(result.refinement->trace.size(), 2u);
  // Refinement sims are accounted in the optimization phase.
  EXPECT_GT(result.optimization_phase.sims,
            (result.optimization.evaluations) * 30);
}

TEST(Refinement, SkippedWithoutEvidence) {
  // Target the unhittable deep tail with a tiny budget: no evidence,
  // refinement must be skipped.
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  FlowConfig config;
  config.sample_templates = 5;
  config.sample_sims = 10;
  config.opt_directions = 2;
  config.opt_sims_per_point = 10;
  config.opt_max_iterations = 1;
  config.refine_with_real_target = true;
  config.refine_threshold = 0.5;  // effectively unreachable
  config.harvest_sims = 0;
  CdgRunner runner(io, farm, config);
  const auto family = io.crc_family();
  const neighbors::ApproximatedTarget target(
      {family[5]}, {{family[0], 1.0}, {family[5], 2.0}});
  const auto result =
      runner.run_from_template(target, io.suite().front());
  EXPECT_FALSE(result.refinement.has_value());
}

TEST(Refinement, OffByDefault) {
  const FlowConfig config;
  EXPECT_FALSE(config.refine_with_real_target);
}

// ---------------------------------------------------------- multi-target --

class MultiTargetTest : public ::testing::Test {
 protected:
  duv::IoUnit io_;
  exec::ThreadFarm farm_{2};

  FlowConfig small_config() {
    FlowConfig config;
    config.sample_templates = 20;
    config.sample_sims = 20;
    config.opt_directions = 4;
    config.opt_sims_per_point = 30;
    config.opt_max_iterations = 2;
    config.harvest_sims = 50;
    config.seed = 77;
    return config;
  }

  const tgen::TestTemplate* crc_smoke(const std::vector<tgen::TestTemplate>& suite) {
    for (const auto& t : suite) {
      if (t.name() == "io_crc_smoke") return &t;
    }
    return nullptr;
  }
};

TEST_F(MultiTargetTest, SharesSamplingAcrossTargets) {
  const auto family = io_.crc_family();
  const std::vector<neighbors::ApproximatedTarget> targets{
      neighbors::ApproximatedTarget({family[2]},
                                    {{family[0], 0.5}, {family[2], 2.0}}),
      neighbors::ApproximatedTarget({family[3]},
                                    {{family[1], 0.5}, {family[3], 2.0}}),
      neighbors::ApproximatedTarget({family[4]},
                                    {{family[2], 0.5}, {family[4], 2.0}}),
  };
  const auto suite = io_.suite();
  const auto* seed = crc_smoke(suite);
  ASSERT_NE(seed, nullptr);
  const auto result =
      run_multi_target(io_, farm_, small_config(), targets, *seed);

  ASSERT_EQ(result.per_target.size(), 3u);
  // One shared sampling phase: 20 x 20 sims, attributed once.
  EXPECT_EQ(result.sampling.simulations, 400u);
  EXPECT_EQ(result.per_target[0].sampling_phase.sims, 400u);
  EXPECT_EQ(result.per_target[1].sampling_phase.sims, 0u);
  EXPECT_EQ(result.per_target[2].sampling_phase.sims, 0u);
  EXPECT_EQ(result.sims_saved, 2u * 400u);
  // Each target optimized and harvested.
  for (const auto& flow : result.per_target) {
    EXPECT_GT(flow.optimization_phase.sims, 0u);
    EXPECT_EQ(flow.harvest_phase.sims, 50u);
    EXPECT_FALSE(flow.best_template.empty());
  }
}

TEST_F(MultiTargetTest, PerTargetBestSampleDiffers) {
  const auto family = io_.crc_family();
  const std::vector<neighbors::ApproximatedTarget> targets{
      neighbors::ApproximatedTarget({family[0]}, {{family[0], 1.0}}),
      neighbors::ApproximatedTarget({family[2]}, {{family[2], 1.0}}),
  };
  const auto suite = io_.suite();
  const auto* seed = crc_smoke(suite);
  ASSERT_NE(seed, nullptr);
  const auto result =
      run_multi_target(io_, farm_, small_config(), targets, *seed);
  // Each target's sampling view re-scored its own best index over the
  // SAME stats.
  for (std::size_t t = 0; t < targets.size(); ++t) {
    EXPECT_EQ(result.per_target[t].sampling.best_index,
              best_sample_for(result.sampling, targets[t]));
    EXPECT_EQ(result.per_target[t].sampling.samples.size(),
              result.sampling.samples.size());
  }
}

TEST_F(MultiTargetTest, EmptyTargetsThrows) {
  const auto suite = io_.suite();
  const auto* seed = crc_smoke(suite);
  ASSERT_NE(seed, nullptr);
  const std::vector<neighbors::ApproximatedTarget> none;
  EXPECT_THROW(
      (void)run_multi_target(io_, farm_, small_config(), none, *seed),
      ConfigError);
}

TEST(BestSampleFor, PicksArgmaxForTarget) {
  RandomSampleResult sampling;
  for (int i = 0; i < 3; ++i) {
    Sample sample;
    sample.stats = coverage::SimStats(2);
    coverage::CoverageVector vec(2);
    if (i == 1) vec.hit(coverage::EventId{0});
    if (i == 2) vec.hit(coverage::EventId{1});
    sample.stats.record(vec);
    sampling.samples.push_back(std::move(sample));
  }
  const neighbors::ApproximatedTarget t0({coverage::EventId{0}},
                                         {{coverage::EventId{0}, 1.0}});
  const neighbors::ApproximatedTarget t1({coverage::EventId{1}},
                                         {{coverage::EventId{1}, 1.0}});
  EXPECT_EQ(best_sample_for(sampling, t0), 1u);
  EXPECT_EQ(best_sample_for(sampling, t1), 2u);
}

}  // namespace
}  // namespace ascdg::cdg
