// Randomized kill-and-resume fuzz harness against the real CLI binary.
//
// The sweep injects a failure (ENOSPC on fsync, short write, rename
// failure — via ASCDG_FAIL_POINTS) at every Nth atomic-write point of a
// sessioned `ascdg run`, for a swept set of N, then resumes without
// injection and asserts the final artifacts are bit-identical to an
// uninterrupted baseline run. A second sweep SIGKILLs the process at
// the Nth completed write (ASCDG_CRASH_AFTER_WRITES) and asserts the
// same. Either way, an interrupted durable session must converge to
// exactly the result a crash-free run produces.
//
// Budget knobs: ASCDG_FUZZ_FULL=1 (the CI fault-injection job) adds a
// second seed to the matrix; the default keeps local ctest fast.
//
// The binary path arrives via the ASCDG_CLI_PATH compile definition
// (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef ASCDG_CLI_PATH
#error "ASCDG_CLI_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int exit_code = -1;  ///< WEXITSTATUS (137 = killed by SIGKILL)
  std::string output;  ///< stdout + stderr
};

CliResult run_cli(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

/// The sessioned run the whole sweep shares: tiny budgets, fixed seed.
std::string run_command(const fs::path& session, std::uint64_t seed,
                        const std::string& extra) {
  return std::string(ASCDG_CLI_PATH) +
         " run io_unit --family crc --before-sims 50 --samples 10"
         " --sample-sims 20 --iterations 3 --point-sims 20 --harvest 100"
         " --seed " +
         std::to_string(seed) + " --session " + session.string() + " " + extra;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Zeroes every "wall_ms":<number> in a JSON artifact. Wall-clock cost
/// is telemetry, not result: it legitimately differs between a crashed
/// + resumed run and an uninterrupted one. Everything else (points,
/// values, traces, hit counts, RNG-driven trajectories) must match to
/// the last bit.
std::string scrub_wall_ms(std::string text) {
  const std::string key = "\"wall_ms\":";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    std::size_t end = pos;
    while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
    text.replace(pos, end - pos, "0");
    ++pos;
  }
  return text;
}

/// The session outputs that define "the final result". The manifest is
/// excluded on purpose: its resume counter legitimately differs.
struct FinalArtifacts {
  std::string best_template;
  std::string optimization;
  std::string harvest;
};

FinalArtifacts read_final_artifacts(const fs::path& session) {
  return {read_file(session / "best_template.tmpl"),
          scrub_wall_ms(read_file(session / "optimization.json")),
          scrub_wall_ms(read_file(session / "harvest.json"))};
}

void expect_identical(const FinalArtifacts& got, const FinalArtifacts& want,
                      const std::string& label) {
  EXPECT_FALSE(want.best_template.empty()) << label;
  EXPECT_EQ(got.best_template, want.best_template) << label;
  EXPECT_EQ(got.optimization, want.optimization) << label;
  EXPECT_EQ(got.harvest, want.harvest) << label;
}

bool has_tmp_files(const fs::path& dir) {
  if (!fs::exists(dir)) return false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().ends_with(".tmp")) return true;
  }
  return false;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ascdg_fault_cli_" + name);
  fs::remove_all(dir);
  return dir;
}

std::vector<std::uint64_t> seed_matrix() {
  const char* full = std::getenv("ASCDG_FUZZ_FULL");
  if (full != nullptr && *full == '1') return {5, 11};
  return {5};
}

/// One fuzz case: run with the given injection env, then drive the
/// session to completion without injection and return its artifacts.
FinalArtifacts run_interrupt_and_converge(const fs::path& session,
                                          std::uint64_t seed,
                                          const std::string& env,
                                          const std::string& label) {
  const CliResult injected = run_cli(env + " " + run_command(session, seed, ""));
  if (injected.exit_code != 0) {
    // The injected failure may land before the first manifest write, in
    // which case there is nothing to resume — start over clean.
    EXPECT_FALSE(has_tmp_files(session)) << label << ": leaked temp file";
    const bool resumable = fs::exists(session / "manifest.json");
    const CliResult finished = run_cli(
        run_command(session, seed, resumable ? "--resume" : ""));
    EXPECT_EQ(finished.exit_code, 0)
        << label << " (recovery run): " << finished.output;
  }
  return read_final_artifacts(session);
}

TEST(FaultFuzz, InjectedWriteFailuresResumeBitIdentical) {
  // Kind rotates with N so the sweep covers every failure flavor at
  // several depths without a full (and slow) cross product.
  const std::vector<std::string> kinds = {
      "atomic_write.write=nth:%N%,errno=ENOSPC",   // short write + ENOSPC
      "atomic_write.fsync=nth:%N%,errno=ENOSPC",   // data never durable
      "atomic_write.rename=nth:%N%,errno=EIO",     // commit step fails
  };
  const std::vector<int> sweep = {1, 2, 3, 5, 8, 12, 17, 23};

  for (const std::uint64_t seed : seed_matrix()) {
    const fs::path baseline_dir =
        scratch_dir("baseline_s" + std::to_string(seed));
    const CliResult baseline =
        run_cli(run_command(baseline_dir, seed, ""));
    ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
    const FinalArtifacts want = read_final_artifacts(baseline_dir);

    for (std::size_t i = 0; i < sweep.size(); ++i) {
      std::string spec = kinds[i % kinds.size()];
      spec.replace(spec.find("%N%"), 3, std::to_string(sweep[i]));
      const std::string label =
          "seed=" + std::to_string(seed) + " spec=" + spec;
      const fs::path session = scratch_dir(
          "inject_s" + std::to_string(seed) + "_n" + std::to_string(sweep[i]));
      const FinalArtifacts got = run_interrupt_and_converge(
          session, seed, "ASCDG_FAIL_POINTS='" + spec + "'", label);
      expect_identical(got, want, label);
    }
  }
}

TEST(FaultFuzz, SigkillSweepResumesBitIdentical) {
  const std::vector<int> sweep = {3, 7, 12, 18};
  for (const std::uint64_t seed : seed_matrix()) {
    const fs::path baseline_dir =
        scratch_dir("kill_baseline_s" + std::to_string(seed));
    const CliResult baseline =
        run_cli(run_command(baseline_dir, seed, ""));
    ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
    const FinalArtifacts want = read_final_artifacts(baseline_dir);

    for (const int n : sweep) {
      const std::string label =
          "seed=" + std::to_string(seed) + " kill_after=" + std::to_string(n);
      const fs::path session = scratch_dir(
          "kill_s" + std::to_string(seed) + "_n" + std::to_string(n));
      const CliResult killed =
          run_cli("ASCDG_CRASH_AFTER_WRITES=" + std::to_string(n) + " " +
                  run_command(session, seed, ""));
      ASSERT_EQ(killed.exit_code, 137) << label << ": " << killed.output;
      EXPECT_FALSE(has_tmp_files(session)) << label << ": leaked temp file";
      const CliResult resumed =
          run_cli(run_command(session, seed, "--resume"));
      ASSERT_EQ(resumed.exit_code, 0) << label << ": " << resumed.output;
      expect_identical(read_final_artifacts(session), want, label);
    }
  }
}

TEST(FaultFuzz, GarbageCrashAfterWritesEnvIsFatal) {
  // std::atol would have read "12abc" as 12 and "abc" as 0 (hook
  // silently off) — both must now refuse to run.
  for (const char* garbage : {"12abc", "abc", "-3", ""}) {
    const fs::path session = scratch_dir("garbage_env");
    const CliResult result =
        run_cli("ASCDG_CRASH_AFTER_WRITES='" + std::string(garbage) + "' " +
                run_command(session, 5, ""));
    EXPECT_NE(result.exit_code, 0) << garbage;
    EXPECT_NE(result.output.find("ASCDG_CRASH_AFTER_WRITES"),
              std::string::npos)
        << garbage << ": " << result.output;
  }
}

TEST(FaultFuzz, MalformedFailPointSpecIsFatal) {
  const fs::path session = scratch_dir("garbage_spec");
  const CliResult result =
      run_cli("ASCDG_FAIL_POINTS='no.such.point=once' " +
              run_command(session, 5, ""));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown failure point"), std::string::npos)
      << result.output;
}

}  // namespace
