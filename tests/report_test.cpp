// Tests for the report module: status counting, table shapes, color
// coding by hit status, and the ASCII trace/status renderers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "report/report.hpp"

namespace ascdg::report {
namespace {

using coverage::CoverageVector;
using coverage::EventId;
using coverage::SimStats;

/// A fabricated flow result with controlled per-phase hit counts for
/// three events.
flow::FlowResult fake_flow() {
  flow::FlowResult flow;
  const auto stats_with = [](std::size_t sims, std::size_t h0, std::size_t h1,
                             std::size_t h2) {
    SimStats stats(3);
    for (std::size_t i = 0; i < sims; ++i) {
      CoverageVector vec(3);
      if (i < h0) vec.hit(EventId{0});
      if (i < h1) vec.hit(EventId{1});
      if (i < h2) vec.hit(EventId{2});
      stats.record(vec);
    }
    return stats;
  };
  flow.before = {"Before CDG", 10000, stats_with(10000, 5000, 50, 0)};
  flow.sampling_phase = {"Sampling phase", 2000, stats_with(2000, 1500, 400, 20)};
  flow.optimization_phase = {"Optimization phase", 3000,
                             stats_with(3000, 2500, 1500, 500)};
  flow.harvest_phase = {"Running best test", 1000,
                        stats_with(1000, 950, 800, 400)};
  // Minimal optimization trace for render_trace.
  for (std::size_t i = 0; i < 7; ++i) {
    flow.optimization.trace.push_back(
        {i, 0.1 * static_cast<double>(i), 0.12 * static_cast<double>(i), 0.25,
         (i + 1) * 10, true});
  }
  return flow;
}

coverage::CoverageSpace three_event_space() {
  coverage::CoverageSpace space;
  space.declare_event("fam_a");
  space.declare_event("fam_b");
  space.declare_event("fam_c");
  return space;
}

TEST(CountStatus, ClassifiesPerConvention) {
  const auto flow = fake_flow();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  const auto before = count_status(flow.before.stats, events);
  EXPECT_EQ(before.well, 1u);     // e0: 5000/10000
  EXPECT_EQ(before.lightly, 1u);  // e1: 50 hits (< 100)
  EXPECT_EQ(before.never, 1u);    // e2: 0
  EXPECT_EQ(before.total(), 3u);

  const auto harvest = count_status(flow.harvest_phase.stats, events);
  EXPECT_EQ(harvest.well, 3u);
}

TEST(CountStatus, EmptyStatsAllNever) {
  const SimStats empty(3);
  const std::vector<EventId> events{EventId{0}, EventId{1}};
  const auto counts = count_status(empty, events);
  EXPECT_EQ(counts.never, 2u);
}

TEST(PhaseTable, ShapeAndContent) {
  const auto flow = fake_flow();
  const auto space = three_event_space();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  const auto table = phase_table(space, events, flow);
  EXPECT_EQ(table.column_count(), 1u + 4u * 2u);  // name + 4 phases x 2
  EXPECT_EQ(table.row_count(), 3u);
  std::ostringstream os;
  table.render(os, false);
  const std::string text = os.str();
  EXPECT_NE(text.find("fam_a"), std::string::npos);
  EXPECT_NE(text.find("5,000"), std::string::npos);
  EXPECT_NE(text.find("50.000%"), std::string::npos);
}

TEST(PhaseTable, ColorsFollowStatus) {
  const auto flow = fake_flow();
  const auto space = three_event_space();
  const std::vector<EventId> events{EventId{2}};
  const auto table = phase_table(space, events, flow);
  std::ostringstream os;
  table.render(os, true);
  const std::string text = os.str();
  EXPECT_NE(text.find("\x1b[31m"), std::string::npos);  // never -> red
  EXPECT_NE(text.find("\x1b[32m"), std::string::npos);  // well -> green
}

TEST(StatusTable, OneRowPerPhase) {
  const auto flow = fake_flow();
  const auto space = three_event_space();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  const auto table = status_table(space, events, flow);
  EXPECT_EQ(table.row_count(), 4u);
  std::ostringstream os;
  table.render(os, false);
  EXPECT_NE(os.str().find("Optimization phase"), std::string::npos);
}

TEST(StatusBars, RendersOneBarPerPhase) {
  const auto flow = fake_flow();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  std::ostringstream os;
  render_status_bars(os, events, flow, false);
  const std::string text = os.str();
  EXPECT_NE(text.find("Before CDG"), std::string::npos);
  EXPECT_NE(text.find("Running best test"), std::string::npos);
  EXPECT_NE(text.find("never=1"), std::string::npos);
  // 4 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(StatusBars, EmptyEventsNoOutput) {
  const auto flow = fake_flow();
  std::ostringstream os;
  render_status_bars(os, {}, flow, false);
  EXPECT_TRUE(os.str().empty());
}

TEST(Trace, RendersAllIterations) {
  const auto flow = fake_flow();
  std::ostringstream os;
  render_trace(os, flow.optimization, 8);
  const std::string text = os.str();
  // One star per iteration.
  EXPECT_EQ(std::count(text.begin(), text.end(), '*'), 7);
  EXPECT_NE(text.find("(iteration)"), std::string::npos);
}

TEST(Trace, EmptyTraceHandled) {
  opt::OptResult empty;
  std::ostringstream os;
  render_trace(os, empty);
  EXPECT_NE(os.str().find("no optimization iterations"), std::string::npos);
}

TEST(Trace, FlatTraceDoesNotDivideByZero) {
  opt::OptResult flat;
  for (std::size_t i = 0; i < 3; ++i) {
    flat.trace.push_back({i, 0.5, 0.5, 0.1, i + 1, false});
  }
  std::ostringstream os;
  EXPECT_NO_THROW(render_trace(os, flat));
}

TEST(Caption, MentionsAllPhases) {
  const auto flow = fake_flow();
  const auto caption = phase_caption(flow);
  EXPECT_NE(caption.find("Before CDG (10,000 sims)"), std::string::npos);
  EXPECT_NE(caption.find("Optimization"), std::string::npos);
  EXPECT_NE(caption.find("Best test (1,000 sims)"), std::string::npos);
}

TEST(Markdown, WriteFlowReport) {
  const auto flow = fake_flow();
  const auto space = three_event_space();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  const auto path = std::filesystem::temp_directory_path() /
                    ("ascdg_report_" + std::to_string(::getpid())) /
                    "flow.md";
  write_flow_markdown(path, space, events, flow);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# AS-CDG flow report"), std::string::npos);
  EXPECT_NE(text.find("| fam_a |"), std::string::npos);
  EXPECT_NE(text.find("## Optimization progress"), std::string::npos);
  EXPECT_NE(text.find("```"), std::string::npos);
  std::error_code ec;
  std::filesystem::remove_all(path.parent_path(), ec);
}

TEST(Telemetry, TableCoversFlowPhasesAndTotal) {
  auto flow = fake_flow();
  flow.sampling_phase.wall_ms = 100.0;
  flow.optimization_phase.wall_ms = 300.0;
  flow.harvest_phase.wall_ms = 100.0;
  std::ostringstream os;
  telemetry_table(flow).render_markdown(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Sampling phase"), std::string::npos);
  EXPECT_NE(text.find("Optimization phase"), std::string::npos);
  EXPECT_NE(text.find("Running best test"), std::string::npos);
  EXPECT_NE(text.find("Flow total"), std::string::npos);
  // 2,000 of 6,000 flow sims -> 33.3% share; 2,000 sims / 0.1 s.
  EXPECT_NE(text.find("33.3%"), std::string::npos);
  EXPECT_NE(text.find("20,000"), std::string::npos);
}

TEST(Telemetry, MarkdownReportIncludesFarmCounters) {
  const auto flow = fake_flow();
  const auto space = three_event_space();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  batch::TelemetrySnapshot farm;
  farm.simulations = 6000;
  farm.chunks = 94;
  farm.steals = 3;
  farm.enqueued = 94;
  farm.max_queue_depth = 10;
  farm.runs = 3;
  farm.busy_ns = 94'000'000;  // 1,000 us mean chunk
  farm.chunk_latency[9] = 94;
  const auto path = std::filesystem::temp_directory_path() /
                    ("ascdg_report_tele_" + std::to_string(::getpid())) /
                    "flow.md";
  write_flow_markdown(path, space, events, flow, &farm);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("## Run telemetry"), std::string::npos);
  EXPECT_NE(text.find("Farm counters: 6,000 sims in 94 chunks"),
            std::string::npos);
  EXPECT_NE(text.find("3 stolen"), std::string::npos);
  EXPECT_NE(text.find("Mean chunk wall time: 1000.0 us"), std::string::npos);
  EXPECT_NE(text.find("| [512, 1024) us | 94 |"), std::string::npos);
  std::error_code ec;
  std::filesystem::remove_all(path.parent_path(), ec);
}

TEST(Convergence, SectionRendersCurveAndCoverageProgress) {
  auto flow = fake_flow();
  flow.first_hits = {{EventId{0}, "before"},
                     {EventId{1}, "optimization"},
                     {EventId{2}, "never"}};
  const auto space = three_event_space();
  std::ostringstream os;
  render_convergence(os, space, flow);
  const std::string text = os.str();
  EXPECT_NE(text.find("## Convergence"), std::string::npos);
  EXPECT_NE(text.find("```"), std::string::npos);  // fenced ASCII curve
  EXPECT_NE(text.find("| phase | newly hit | cumulative |"),
            std::string::npos);
  EXPECT_NE(text.find("| before | 1 | 1 |"), std::string::npos);
  EXPECT_NE(text.find("| sampling | 0 | 1 |"), std::string::npos);
  EXPECT_NE(text.find("| optimization | 1 | 2 |"), std::string::npos);
  EXPECT_NE(text.find("| never | 1 |"), std::string::npos);
  // Small event sets get the per-event first-hit table.
  EXPECT_NE(text.find("| `fam_b` | optimization |"), std::string::npos);
}

TEST(Convergence, MarkdownReportIncludesConvergenceSection) {
  auto flow = fake_flow();
  flow.first_hits = {{EventId{0}, "sampling"}};
  const auto space = three_event_space();
  const std::vector<EventId> events{EventId{0}, EventId{1}, EventId{2}};
  const auto path = std::filesystem::temp_directory_path() /
                    ("ascdg_report_conv_" + std::to_string(::getpid())) /
                    "flow.md";
  write_flow_markdown(path, space, events, flow);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("## Convergence"), std::string::npos);
  EXPECT_NE(text.find("Coverage progress"), std::string::npos);
  // The extended optimization-progress table carries the telemetry
  // columns.
  EXPECT_NE(text.find("| resampled | halved |"), std::string::npos);
  std::error_code ec;
  std::filesystem::remove_all(path.parent_path(), ec);
}

TEST(MetricsJson, CarriesOptSeriesFirstHitsAndRegistry) {
  auto flow = fake_flow();
  flow.seed_template = "seed_tmpl";
  flow.first_hits = {{EventId{0}, "sampling"}, {EventId{2}, "never"}};
  flow.optimization.trace.clear();
  flow.optimization.trace.push_back(
      {0, 0.25, 0.3, 0.4, 12, true, 0, false});
  flow.optimization.trace.push_back(
      {1, 0.3, 0.31, 0.4, 24, false, 1, true});
  const auto space = three_event_space();

  obs::Registry reg;
  reg.counter("ascdg_test_series_total").add(5);
  const auto path = std::filesystem::temp_directory_path() /
                    ("ascdg_report_metrics_" + std::to_string(::getpid())) /
                    "m.json";
  write_metrics_json(path, space, flow, reg.snapshot());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"schema\":\"ascdg-run-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"seed_template\":\"seed_tmpl\""), std::string::npos);
  // Per-iteration implicit-filtering series: objective, step, resamples.
  EXPECT_NE(text.find("\"opt_series\":[{\"iter\":0,\"objective\":0.25,"
                      "\"best\":0.3,\"step\":0.4,\"evals\":12,\"moved\":true,"
                      "\"resamples\":0,\"halved\":false}"),
            std::string::npos);
  EXPECT_NE(text.find("\"resamples\":1,\"halved\":true"), std::string::npos);
  // Per-event first-hit data.
  EXPECT_NE(
      text.find("{\"event\":\"fam_a\",\"event_id\":0,\"phase\":\"sampling\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("{\"event\":\"fam_c\",\"event_id\":2,\"phase\":\"never\"}"),
      std::string::npos);
  // The registry snapshot rides along under "registry".
  EXPECT_NE(text.find("\"registry\":{\"schema\":\"ascdg-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"name\":\"ascdg_test_series_total\""),
            std::string::npos);
  std::error_code ec;
  std::filesystem::remove_all(path.parent_path(), ec);
}

}  // namespace
}  // namespace ascdg::report
