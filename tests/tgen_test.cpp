// Tests for the test-template object model, the DSL parser/printer, and
// skeletons: validation rules, parse/print round trips over a corpus,
// mark bookkeeping, and instantiation semantics.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "tgen/file_io.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"
#include "tgen/skeleton.hpp"
#include "tgen/test_template.hpp"
#include "util/error.hpp"

namespace ascdg::tgen {
namespace {

using util::ParseError;
using util::ValidationError;

WeightParameter cmd_param() {
  return WeightParameter{"Cmd",
                         {{Value{"load"}, 40},
                          {Value{"store"}, 40},
                          {Value{"add"}, 0},
                          {Value{"sync"}, 20}}};
}

// ---------------------------------------------------------- parameters --

TEST(Parameter, WeightValidationAcceptsGood) {
  EXPECT_NO_THROW(validate(Parameter{cmd_param()}));
}

TEST(Parameter, WeightRejectsEmptyEntries) {
  EXPECT_THROW(validate(Parameter{WeightParameter{"W", {}}}), ValidationError);
}

TEST(Parameter, WeightRejectsNegativeWeight) {
  EXPECT_THROW(
      validate(Parameter{WeightParameter{"W", {{Value{"a"}, -1.0}}}}),
      ValidationError);
}

TEST(Parameter, WeightRejectsAllZero) {
  EXPECT_THROW(
      validate(Parameter{WeightParameter{
          "W", {{Value{"a"}, 0.0}, {Value{"b"}, 0.0}}}}),
      ValidationError);
}

TEST(Parameter, WeightRejectsDuplicateValues) {
  EXPECT_THROW(
      validate(Parameter{WeightParameter{
          "W", {{Value{"a"}, 1.0}, {Value{"a"}, 2.0}}}}),
      ValidationError);
}

TEST(Parameter, WeightRejectsNonFiniteWeight) {
  EXPECT_THROW(
      validate(Parameter{WeightParameter{
          "W", {{Value{"a"}, std::numeric_limits<double>::infinity()}}}}),
      ValidationError);
}

TEST(Parameter, WeightRejectsBadName) {
  EXPECT_THROW(
      validate(Parameter{WeightParameter{"9bad", {{Value{"a"}, 1.0}}}}),
      ValidationError);
}

TEST(Parameter, RangeValidation) {
  EXPECT_NO_THROW(validate(Parameter{RangeParameter{"R", 0, 10}}));
  EXPECT_NO_THROW(validate(Parameter{RangeParameter{"R", 5, 5}}));
  EXPECT_THROW(validate(Parameter{RangeParameter{"R", 10, 0}}),
               ValidationError);
}

TEST(Parameter, SubrangeValidation) {
  EXPECT_NO_THROW(validate(
      Parameter{SubrangeParameter{"S", {{0, 4, 1.0}, {5, 9, 2.0}}}}));
  // Overlap.
  EXPECT_THROW(
      validate(Parameter{SubrangeParameter{"S", {{0, 5, 1.0}, {5, 9, 2.0}}}}),
      ValidationError);
  // Out of order.
  EXPECT_THROW(
      validate(Parameter{SubrangeParameter{"S", {{5, 9, 1.0}, {0, 4, 2.0}}}}),
      ValidationError);
  // Inverted subrange.
  EXPECT_THROW(validate(Parameter{SubrangeParameter{"S", {{4, 0, 1.0}}}}),
               ValidationError);
  // Zero total weight.
  EXPECT_THROW(validate(Parameter{SubrangeParameter{"S", {{0, 4, 0.0}}}}),
               ValidationError);
}

TEST(Parameter, TotalWeightIgnoresNegatives) {
  // Validation rejects negatives, but total_weight() itself must be
  // defensive for intermediate states.
  WeightParameter p{"W", {{Value{"a"}, 2.0}, {Value{"b"}, 3.0}}};
  EXPECT_DOUBLE_EQ(p.total_weight(), 5.0);
}

// ------------------------------------------------------------ template --

TEST(TestTemplate, AddAndLookup) {
  TestTemplate tmpl("t");
  tmpl.add(cmd_param());
  tmpl.add(RangeParameter{"CacheDelay", 0, 1000});
  EXPECT_EQ(tmpl.size(), 2u);
  EXPECT_TRUE(tmpl.contains("Cmd"));
  EXPECT_NE(tmpl.find_weight("Cmd"), nullptr);
  EXPECT_EQ(tmpl.find_weight("CacheDelay"), nullptr);  // wrong kind
  EXPECT_NE(tmpl.find_range("CacheDelay"), nullptr);
  EXPECT_EQ(tmpl.find("nope"), nullptr);
}

TEST(TestTemplate, DuplicateParameterThrows) {
  TestTemplate tmpl("t");
  tmpl.add(cmd_param());
  EXPECT_THROW(tmpl.add(cmd_param()), ValidationError);
}

TEST(TestTemplate, SetReplacesInPlace) {
  TestTemplate tmpl("t");
  tmpl.add(RangeParameter{"R", 0, 10});
  tmpl.set(RangeParameter{"R", 5, 20});
  EXPECT_EQ(tmpl.size(), 1u);
  EXPECT_EQ(tmpl.find_range("R")->lo, 5);
  tmpl.set(RangeParameter{"R2", 1, 2});
  EXPECT_EQ(tmpl.size(), 2u);
}

TEST(TestTemplate, ParameterNamesInDeclarationOrder) {
  TestTemplate tmpl("t");
  tmpl.add(RangeParameter{"Z", 0, 1});
  tmpl.add(RangeParameter{"A", 0, 1});
  const auto names = tmpl.parameter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "Z");
  EXPECT_EQ(names[1], "A");
}

// -------------------------------------------------------------- parser --

TEST(Parser, ParsesFigureOneTemplate) {
  // The paper's Fig. 1(a) example, transcribed into the DSL.
  const auto tmpl = parse_template(R"(
    template lsu_stress {
      weight Mnemonic { load: 40, store: 40, add: 0, sync: 20 }
      range CacheDelay [0, 1000]
    }
  )");
  EXPECT_EQ(tmpl.name(), "lsu_stress");
  const auto* mnemonic = tmpl.find_weight("Mnemonic");
  ASSERT_NE(mnemonic, nullptr);
  ASSERT_EQ(mnemonic->entries.size(), 4u);
  EXPECT_EQ(mnemonic->entries[0].value.as_symbol(), "load");
  EXPECT_DOUBLE_EQ(mnemonic->entries[0].weight, 40.0);
  EXPECT_DOUBLE_EQ(mnemonic->entries[2].weight, 0.0);
  const auto* delay = tmpl.find_range("CacheDelay");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->lo, 0);
  EXPECT_EQ(delay->hi, 1000);
}

TEST(Parser, ParsesIntegerValuesAndFloatWeights) {
  const auto tmpl = parse_template(
      "template t { weight Thr { 0: 1.5, 1: 2e1, 2: 0.25 } }");
  const auto* thr = tmpl.find_weight("Thr");
  ASSERT_NE(thr, nullptr);
  EXPECT_EQ(thr->entries[0].value.as_int(), 0);
  EXPECT_DOUBLE_EQ(thr->entries[1].weight, 20.0);
  EXPECT_DOUBLE_EQ(thr->entries[2].weight, 0.25);
}

TEST(Parser, ParsesSubrangeParameter) {
  const auto tmpl = parse_template(
      "template t { subrange D { [0, 9]: 5, [10, 99]: 1 } }");
  const auto* d = tmpl.find_subrange("D");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->entries.size(), 2u);
  EXPECT_EQ(d->entries[1].lo, 10);
  EXPECT_DOUBLE_EQ(d->entries[0].weight, 5.0);
}

TEST(Parser, ParsesNegativeRangeBounds) {
  const auto tmpl = parse_template("template t { range R [-10, -2] }");
  EXPECT_EQ(tmpl.find_range("R")->lo, -10);
  EXPECT_EQ(tmpl.find_range("R")->hi, -2);
}

TEST(Parser, CommentsAndWhitespaceIgnored) {
  const auto all = parse_templates(R"(
    # leading comment
    template a { range R [0, 1] }  # trailing comment
    # between templates
    template b { range R [2, 3] }
  )");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name(), "a");
  EXPECT_EQ(all[1].name(), "b");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_template("template t {\n  range R [0 1]\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
  }
}

struct MalformedCase {
  const char* label;
  const char* text;
};

class MalformedInput : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedInput, Throws) {
  EXPECT_THROW((void)parse_templates(GetParam().text), util::Error);
}

INSTANTIATE_TEST_SUITE_P(
    Parser, MalformedInput,
    ::testing::Values(
        MalformedCase{"missing_brace", "template t { range R [0, 1]"},
        MalformedCase{"bad_keyword", "template t { wight W { a: 1 } }"},
        MalformedCase{"missing_colon", "template t { weight W { a 1 } }"},
        MalformedCase{"mark_in_template", "template t { weight W { a: <W> } }"},
        MalformedCase{"garbage", "%%%%"},
        MalformedCase{"no_name", "template { range R [0, 1] }"},
        MalformedCase{"empty_weight", "template t { weight W { } }"},
        MalformedCase{"float_range_bound", "template t { range R [0.5, 2] }"},
        MalformedCase{"duplicate_param",
                      "template t { range R [0, 1] range R [2, 3] }"},
        MalformedCase{"skeleton_in_templates", "skeleton s { range R [0, 1] }"},
        MalformedCase{"inverted_range", "template t { range R [9, 1] }"},
        MalformedCase{"trailing_junk", "template t { range R [0, 1] } junk"}),
    [](const auto& info) { return info.param.label; });

// Round-trip property: parse(print(t)) == t over a corpus of templates.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParsePrintParse) {
  const auto parsed = parse_template(GetParam());
  const std::string printed = to_text(parsed);
  const auto reparsed = parse_template(printed);
  EXPECT_EQ(parsed, reparsed) << printed;
  // Printing must also be a fixed point.
  EXPECT_EQ(printed, to_text(reparsed));
}

INSTANTIATE_TEST_SUITE_P(
    Parser, RoundTrip,
    ::testing::Values(
        "template a { weight W { x: 1, y: 2.5, z: 0 } }",
        "template b { range R [0, 1000] }",
        "template c { subrange S { [0, 3]: 1, [4, 9]: 0.5 } }",
        "template d { weight W { 0: 10, 1: 20 } range R [-5, 5] }",
        "template e { weight A { on: 1 } weight B { off: 2 } range C [1, 2] "
        "subrange D { [1, 1]: 3 } }"));

// ------------------------------------------------------------ skeleton --

Skeleton fig1_skeleton() {
  return parse_skeleton(R"(
    skeleton lsu_skel {
      weight Mnemonic { load: <W>, store: <W>, add: 0, sync: <W> }
      subrange CacheDelay { [0, 333]: <W>, [334, 666]: <W>, [667, 1000]: <W> }
    }
  )");
}

TEST(Skeleton, MarkCountAndDescriptions) {
  const auto skel = fig1_skeleton();
  EXPECT_EQ(skel.mark_count(), 6u);
  const auto marks = skel.marks();
  ASSERT_EQ(marks.size(), 6u);
  EXPECT_EQ(marks[0].to_string(), "Mnemonic[load]");
  EXPECT_EQ(marks[2].to_string(), "Mnemonic[sync]");
  EXPECT_EQ(marks[3].to_string(), "CacheDelay[0..333]");
}

TEST(Skeleton, InstantiateAssignsMarksInOrder) {
  const auto skel = fig1_skeleton();
  const std::vector<double> w{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const auto tmpl = skel.instantiate("inst", w);
  EXPECT_EQ(tmpl.name(), "inst");
  const auto* mnemonic = tmpl.find_weight("Mnemonic");
  ASSERT_NE(mnemonic, nullptr);
  EXPECT_DOUBLE_EQ(mnemonic->entries[0].weight, 0.1);
  EXPECT_DOUBLE_EQ(mnemonic->entries[1].weight, 0.2);
  EXPECT_DOUBLE_EQ(mnemonic->entries[2].weight, 0.0);  // fixed zero kept
  EXPECT_DOUBLE_EQ(mnemonic->entries[3].weight, 0.3);
  const auto* delay = tmpl.find_subrange("CacheDelay");
  ASSERT_NE(delay, nullptr);
  EXPECT_DOUBLE_EQ(delay->entries[2].weight, 0.6);
}

TEST(Skeleton, InstantiateWrongArityThrows) {
  const auto skel = fig1_skeleton();
  const std::vector<double> w{0.1, 0.2};
  EXPECT_THROW((void)skel.instantiate("x", w), ValidationError);
}

TEST(Skeleton, NegativeWeightsClampToZero) {
  const auto skel = fig1_skeleton();
  const std::vector<double> w{-1.0, 0.5, -0.1, 0.2, 0.2, 0.2};
  const auto tmpl = skel.instantiate("x", w);
  EXPECT_DOUBLE_EQ(tmpl.find_weight("Mnemonic")->entries[0].weight, 0.0);
}

TEST(Skeleton, AllZeroParameterFallsBackToUniform) {
  const auto skel = fig1_skeleton();
  const std::vector<double> w{0, 0, 0, 1, 1, 1};
  const auto tmpl = skel.instantiate("x", w);
  // All marked entries bumped to 1.0; the fixed zero stays zero.
  const auto* mnemonic = tmpl.find_weight("Mnemonic");
  EXPECT_DOUBLE_EQ(mnemonic->entries[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(mnemonic->entries[1].weight, 1.0);
  EXPECT_DOUBLE_EQ(mnemonic->entries[2].weight, 0.0);
  EXPECT_DOUBLE_EQ(mnemonic->entries[3].weight, 1.0);
  // The instantiated template must be valid (generatable).
  for (const auto& p : tmpl.parameters()) EXPECT_NO_THROW(validate(p));
}

TEST(Skeleton, InstantiatedTemplatesAlwaysValid) {
  // Property: any weight vector in [-1, 2]^d instantiates to a valid
  // template (clamping + uniform fallback).
  const auto skel = fig1_skeleton();
  util::Xoshiro256 rng(7);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> w(skel.mark_count());
    for (double& v : w) v = rng.uniform(-1.0, 2.0);
    const auto tmpl = skel.instantiate("x", w);
    for (const auto& p : tmpl.parameters()) {
      EXPECT_NO_THROW(validate(p));
    }
  }
}

TEST(Skeleton, RoundTripThroughText) {
  const auto skel = fig1_skeleton();
  const auto reparsed = parse_skeleton(to_text(skel));
  EXPECT_EQ(skel, reparsed);
}

TEST(Skeleton, FixedRangeParameterPassesThrough) {
  const auto skel = parse_skeleton(
      "skeleton s { weight W { a: <W> } range R [3, 7] }");
  EXPECT_EQ(skel.mark_count(), 1u);
  const std::vector<double> w{0.5};
  const auto tmpl = skel.instantiate("x", w);
  ASSERT_NE(tmpl.find_range("R"), nullptr);
  EXPECT_EQ(tmpl.find_range("R")->lo, 3);
}

TEST(Skeleton, DuplicateParameterThrows) {
  Skeleton skel("s");
  skel.add(SkeletonWeightParameter{"W", {{Value{"a"}, std::nullopt}}});
  EXPECT_THROW(
      skel.add(SkeletonWeightParameter{"W", {{Value{"b"}, std::nullopt}}}),
      ValidationError);
}

TEST(Skeleton, MixedMarkedAndFixedWeights) {
  const auto skel = parse_skeleton(
      "skeleton s { weight W { a: <W>, b: 5, c: <W> } }");
  EXPECT_EQ(skel.mark_count(), 2u);
  const std::vector<double> w{0.0, 0.0};
  const auto tmpl = skel.instantiate("x", w);
  // Fixed weight 5 keeps the parameter generatable; no fallback bump.
  const auto* wp = tmpl.find_weight("W");
  EXPECT_DOUBLE_EQ(wp->entries[0].weight, 0.0);
  EXPECT_DOUBLE_EQ(wp->entries[1].weight, 5.0);
  EXPECT_DOUBLE_EQ(wp->entries[2].weight, 0.0);
}

// Robustness: random token soup must either parse or throw a typed
// ascdg error — never crash, hang, or throw anything else.
TEST(Parser, RandomTokenSoupNeverCrashes) {
  static constexpr const char* kTokens[] = {
      "template", "skeleton", "weight",  "range", "subrange", "{", "}",
      "[",        "]",        ":",       ",",     "<W>",      "a", "b9",
      "0",        "-3",       "2.5",     "1e9",   "#x\n",     " ", "\n",
      "_id",      "99999999999999999999", ".",    "-",        "<", ">"};
  util::Xoshiro256 rng(20210301);
  for (int rep = 0; rep < 3000; ++rep) {
    std::string text;
    const auto len = rng.uniform_u64(0, 40);
    for (std::uint64_t i = 0; i < len; ++i) {
      text += kTokens[rng.uniform_u64(0, std::size(kTokens) - 1)];
      text += ' ';
    }
    try {
      const auto parsed = parse_templates(text);
      // If it parsed, printing and reparsing must agree.
      for (const auto& tmpl : parsed) {
        EXPECT_EQ(parse_template(to_text(tmpl)), tmpl);
      }
    } catch (const util::Error&) {
      // typed failure: fine
    } catch (const std::bad_variant_access&) {
      FAIL() << "untyped failure on: " << text;
    }
    try {
      (void)parse_skeletons(text);
    } catch (const util::Error&) {
    }
  }
}

// ------------------------------------------------------------- file io --

class FileIo : public ::testing::Test {
 protected:
  std::filesystem::path dir_;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ascdg_tgen_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
};

TEST_F(FileIo, TemplateRoundTrip) {
  const auto tmpl = parse_template(
      "template t { weight W { a: 1, b: 2 } range R [0, 9] }");
  const auto path = dir_ / "t.tmpl";
  save_template(path, tmpl);
  EXPECT_EQ(load_template(path), tmpl);
}

TEST_F(FileIo, MultiTemplateRoundTrip) {
  const auto all = parse_templates(
      "template a { range R [0, 1] } template b { range R [2, 3] }");
  const auto path = dir_ / "suite.tmpl";
  save_templates(path, all);
  const auto loaded = load_templates(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], all[0]);
  EXPECT_EQ(loaded[1], all[1]);
}

TEST_F(FileIo, SkeletonRoundTrip) {
  const auto skel = parse_skeleton(
      "skeleton s { weight W { a: <W>, b: 0 } subrange R { [0, 4]: <W> } }");
  const auto path = dir_ / "s.skel";
  save_skeleton(path, skel);
  EXPECT_EQ(load_skeleton(path), skel);
}

TEST_F(FileIo, CreatesParentDirectories) {
  const auto tmpl = parse_template("template t { range R [0, 1] }");
  const auto path = dir_ / "nested" / "deeper" / "t.tmpl";
  EXPECT_NO_THROW(save_template(path, tmpl));
  EXPECT_EQ(load_template(path), tmpl);
}

TEST_F(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)load_template(dir_ / "nope.tmpl"), util::Error);
}

TEST_F(FileIo, MalformedFileThrowsParseError) {
  const auto path = dir_ / "bad.tmpl";
  std::ofstream(path) << "template { oops";
  EXPECT_THROW((void)load_template(path), util::Error);
}

// --------------------------------------------------------------- value --

TEST(Value, IntAndSymbol) {
  const Value i{std::int64_t{42}};
  const Value s{"load"};
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_symbol());
  EXPECT_EQ(i.as_int(), 42);
  EXPECT_EQ(s.as_symbol(), "load");
  EXPECT_EQ(i.to_string(), "42");
  EXPECT_EQ(s.to_string(), "load");
  EXPECT_NE(i, s);
  EXPECT_EQ(i, Value{std::int64_t{42}});
}

}  // namespace
}  // namespace ascdg::tgen
