// Batch-of-seeds regression suite: Duv::simulate_batch must be
// bit-identical to the scalar simulate() path — for every unit, at every
// batch width, with and without precompiled tables, and through the
// SimFarm at any worker count. This is the non-negotiable determinism
// contract of the SoA lane kernels: instance i's coverage is a pure
// function of (seed_root, i), and batching is an execution detail, never
// an observable one.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "batch/sim_farm.hpp"
#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "duv/registry.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {
namespace {

constexpr std::uint64_t kSeedRoot = 0xB5;

/// The batch widths every equivalence test sweeps: a single lane, a
/// width that is neither 1 nor a power of two, and the farm's full
/// chunk width.
constexpr std::size_t kWidths[] = {1, 7, 64};

std::vector<std::uint64_t> make_seeds(std::size_t n,
                                      std::uint64_t root = kSeedRoot) {
  const util::SeedStream stream(root);
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = stream.at(i);
  return seeds;
}

std::vector<coverage::CoverageVector> run_batch(
    const Duv& duv, const tgen::TestTemplate& tmpl,
    const Duv::Compiled* compiled, std::span<const std::uint64_t> seeds) {
  std::vector<coverage::CoverageVector> out(seeds.size());
  duv.simulate_batch(tmpl, compiled, seeds,
                     std::span<coverage::CoverageVector>(out));
  return out;
}

/// Every template worth sweeping for a unit: the defaults plus the
/// whole regression suite (which exercises weight/range overrides,
/// zero-weight entries, and int-valued weights).
std::vector<tgen::TestTemplate> templates_under_test(const Duv& duv) {
  std::vector<tgen::TestTemplate> tmpls = duv.suite();
  tmpls.push_back(duv.defaults());
  return tmpls;
}

class BatchEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchEquivalence, BatchMatchesScalarAtAllWidths) {
  const auto duv = make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  for (const tgen::TestTemplate& tmpl : templates_under_test(*duv)) {
    for (const std::size_t width : kWidths) {
      const auto seeds = make_seeds(width);
      const auto batch = run_batch(*duv, tmpl, nullptr, seeds);
      for (std::size_t i = 0; i < width; ++i) {
        EXPECT_EQ(batch[i], duv->simulate(tmpl, seeds[i]))
            << duv->name() << "/" << tmpl.name() << " width " << width
            << " lane " << i;
      }
    }
  }
}

TEST_P(BatchEquivalence, PrecompiledTablesMatchScalar) {
  const auto duv = make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  for (const tgen::TestTemplate& tmpl : templates_under_test(*duv)) {
    const auto compiled = duv->compile(tmpl);
    ASSERT_NE(compiled, nullptr) << duv->name() << " should compile tables";
    for (const std::size_t width : kWidths) {
      const auto seeds = make_seeds(width);
      const auto batch = run_batch(*duv, tmpl, compiled.get(), seeds);
      for (std::size_t i = 0; i < width; ++i) {
        EXPECT_EQ(batch[i], duv->simulate(tmpl, seeds[i]))
            << duv->name() << "/" << tmpl.name() << " width " << width
            << " lane " << i;
      }
    }
  }
}

TEST_P(BatchEquivalence, CompiledTablesAreReusableAcrossBatches) {
  const auto duv = make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  const tgen::TestTemplate tmpl = duv->defaults();
  const auto compiled = duv->compile(tmpl);
  // Two disjoint seed ranges through the same tables, back to back —
  // the farm reuses one compile() result for every chunk of a job.
  const auto first = make_seeds(7, 11);
  const auto second = make_seeds(7, 22);
  const auto batch_a = run_batch(*duv, tmpl, compiled.get(), first);
  const auto batch_b = run_batch(*duv, tmpl, compiled.get(), second);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(batch_a[i], duv->simulate(tmpl, first[i]));
    EXPECT_EQ(batch_b[i], duv->simulate(tmpl, second[i]));
  }
}

TEST_P(BatchEquivalence, BatchOverwritesStaleOutputState) {
  const auto duv = make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  const tgen::TestTemplate tmpl = duv->defaults();
  const auto stale = make_seeds(7, 99);
  const auto seeds = make_seeds(7);
  // Dirty the output vectors with another batch first: the second call
  // must fully overwrite them (the farm's per-worker arenas recycle the
  // same vectors chunk after chunk).
  std::vector<coverage::CoverageVector> out(7);
  duv->simulate_batch(tmpl, nullptr, stale,
                      std::span<coverage::CoverageVector>(out));
  duv->simulate_batch(tmpl, nullptr, seeds,
                      std::span<coverage::CoverageVector>(out));
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(out[i], duv->simulate(tmpl, seeds[i])) << "lane " << i;
  }
}

TEST_P(BatchEquivalence, FarmIsWorkerCountAndBatchInvariant) {
  const auto duv = make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  const tgen::TestTemplate tmpl = duv->defaults();
  // 150 sims: two full 64-wide chunks plus a 22-wide tail.
  constexpr std::size_t kCount = 150;

  coverage::SimStats reference(duv->space().size());
  const util::SeedStream stream(kSeedRoot);
  for (std::size_t i = 0; i < kCount; ++i) {
    reference.record(duv->simulate(tmpl, stream.at(i)));
  }

  batch::SimFarm one(1);
  batch::SimFarm eight(8);
  const coverage::SimStats serial = one.run(*duv, tmpl, kCount, kSeedRoot);
  const coverage::SimStats pooled = eight.run(*duv, tmpl, kCount, kSeedRoot);
  EXPECT_EQ(serial, reference);
  EXPECT_EQ(pooled, reference);
}

TEST_P(BatchEquivalence, FarmRunAllMatchesScalarReferencePerJob) {
  const auto duv = make_unit(GetParam());
  ASSERT_NE(duv, nullptr);
  const std::vector<tgen::TestTemplate> suite = duv->suite();
  ASSERT_FALSE(suite.empty());

  std::vector<batch::SimFarm::Job> jobs;
  for (std::size_t j = 0; j < suite.size(); ++j) {
    // Deliberately not a multiple of the chunk width.
    jobs.push_back({&suite[j], 70, kSeedRoot + j, j});
  }

  batch::SimFarm farm(8);
  const auto results = farm.run_all(*duv, jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    coverage::SimStats reference(duv->space().size());
    const util::SeedStream stream(jobs[j].seed_root);
    for (std::size_t i = 0; i < jobs[j].count; ++i) {
      reference.record(duv->simulate(*jobs[j].tmpl, stream.at(i)));
    }
    EXPECT_EQ(results[j], reference) << "job " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(AllUnits, BatchEquivalence,
                         ::testing::Values("ifu", "lsu", "io_unit",
                                           "l3_cache"));

// --- Scalar-fallback contract ----------------------------------------
// A wrapper around a real RTL simulator implements only simulate();
// the inherited simulate_batch must route through it unchanged and the
// farm must accept the nullptr compile() result (docs/porting.md).

class ScalarOnlyDuv final : public Duv {
 public:
  ScalarOnlyDuv() : defaults_("scalar_only_defaults") {
    for (int e = 0; e < 8; ++e) {
      events_.push_back(space_.declare_event("ev" + std::to_string(e)));
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "scalar_only";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate&, std::uint64_t seed) const override {
    coverage::CoverageVector vec(space_.size());
    util::Xoshiro256 rng(seed);
    vec.hit(events_[static_cast<std::size_t>(
        rng.uniform_i64(0, static_cast<std::int64_t>(events_.size()) - 1))]);
    return vec;
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return {defaults_};
  }

 private:
  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  std::vector<coverage::EventId> events_;
};

TEST(ScalarFallback, CompileReturnsNullAndBatchFallsBackToScalar) {
  const ScalarOnlyDuv duv;
  EXPECT_EQ(duv.compile(duv.defaults()), nullptr);
  const auto seeds = make_seeds(7);
  const auto batch = run_batch(duv, duv.defaults(), nullptr, seeds);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch[i], duv.simulate(duv.defaults(), seeds[i]));
  }
}

TEST(ScalarFallback, FarmRunsAScalarOnlyUnit) {
  const ScalarOnlyDuv duv;
  coverage::SimStats reference(duv.space().size());
  const util::SeedStream stream(kSeedRoot);
  for (std::size_t i = 0; i < 150; ++i) {
    reference.record(duv.simulate(duv.defaults(), stream.at(i)));
  }
  batch::SimFarm farm(8);
  EXPECT_EQ(farm.run(duv, duv.defaults(), 150, kSeedRoot), reference);
}

}  // namespace
}  // namespace ascdg::duv
