// End-to-end kill-and-resume test against the real CLI binary: a
// sessioned run is SIGKILLed mid-optimization via the
// ASCDG_CRASH_AFTER_WRITES hook, then resumed with --resume. Completed
// stages must replay from their artifacts (a second resume of the
// finished session re-simulates nothing beyond the before-CDG suite),
// and mismatched configurations must be refused.
//
// The binary path arrives via the ASCDG_CLI_PATH compile definition
// (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/json.hpp"

#ifndef ASCDG_CLI_PATH
#error "ASCDG_CLI_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int exit_code = -1;       ///< WEXITSTATUS (137 = killed by SIGKILL)
  std::string output;       ///< stdout + stderr
};

/// Runs `command` under the shell, capturing combined output. The shell
/// reports a SIGKILLed child as exit 128 + 9 = 137.
CliResult run_cli(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

/// The sessioned run all tests share; small budgets, fixed seed.
std::string run_command(const fs::path& session, const std::string& extra) {
  return std::string(ASCDG_CLI_PATH) +
         " run io_unit --family crc --before-sims 50 --samples 10"
         " --sample-sims 20 --iterations 3 --point-sims 20 --harvest 100"
         " --seed 5 --session " +
         session.string() + " " + extra;
}

std::size_t total_simulations(const std::string& output) {
  const std::string needle = "total simulations: ";
  const auto pos = output.find(needle);
  EXPECT_NE(pos, std::string::npos) << output;
  if (pos == std::string::npos) return 0;
  std::string digits;
  for (std::size_t i = pos + needle.size(); i < output.size(); ++i) {
    const char c = output[i];
    if (c >= '0' && c <= '9') {
      digits += c;
    } else if (c != ',') {
      break;
    }
  }
  return std::stoull(digits);
}

ascdg::util::JsonValue read_manifest(const fs::path& session) {
  FILE* f = std::fopen((session / "manifest.json").c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ascdg::util::json_parse(text);
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("ascdg_session_cli_" + name);
  fs::remove_all(dir);
  return dir;
}

TEST(SessionCli, KillMidOptimizationThenResume) {
  const fs::path session = scratch_dir("kill_resume");

  // 1. Crash hook: SIGKILL right after the 12th atomic write — for
  // these budgets that is mid-optimization, past the first iteration
  // checkpoints (verified: the manifest below asserts it).
  const CliResult killed = run_cli("ASCDG_CRASH_AFTER_WRITES=12 " +
                                   run_command(session, ""));
  EXPECT_EQ(killed.exit_code, 137) << killed.output;  // 128 + SIGKILL

  // The manifest survived atomically: sampling done, optimization
  // caught in flight with its iteration checkpoint on disk.
  const auto crashed = read_manifest(session);
  EXPECT_EQ(crashed.at("schema").as_string(), "ascdg-session-v1");
  bool opt_running = false;
  bool all_done = true;
  for (const auto& stage : crashed.at("stages").as_array()) {
    const bool done = stage.at("status").as_string() == "done";
    all_done = all_done && done;
    if (stage.at("name").as_string() == "optimization" && !done) {
      opt_running = true;
    }
  }
  EXPECT_TRUE(opt_running);
  EXPECT_FALSE(all_done);
  EXPECT_TRUE(fs::exists(session / "optimization.ckpt.json"));

  // 2. Resume finishes the run from the last checkpoint.
  const CliResult resumed = run_cli(run_command(session, "--resume"));
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("resume #1"), std::string::npos)
      << resumed.output;
  EXPECT_NE(resumed.output.find("picked up after 'sampling'"),
            std::string::npos)
      << resumed.output;
  const auto finished = read_manifest(session);
  for (const auto& stage : finished.at("stages").as_array()) {
    EXPECT_EQ(stage.at("status").as_string(), "done")
        << stage.at("name").as_string();
  }
  EXPECT_TRUE(fs::exists(session / "best_template.tmpl"));
  // The mid-flight checkpoint was retired with its stage.
  EXPECT_FALSE(fs::exists(session / "optimization.ckpt.json"));

  // 3. Resuming the completed session replays every stage from its
  // artifact: only the (unsessioned) before-CDG suite is simulated, so
  // the total drops below the partial resume's.
  const CliResult replay = run_cli(run_command(session, "--resume"));
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_NE(replay.output.find("resume #2"), std::string::npos)
      << replay.output;
  EXPECT_LT(total_simulations(replay.output),
            total_simulations(resumed.output));
}

TEST(SessionCli, ResumeRejectsChangedSeed) {
  const fs::path session = scratch_dir("seed_mismatch");
  const CliResult fresh = run_cli(run_command(session, ""));
  ASSERT_EQ(fresh.exit_code, 0) << fresh.output;

  std::string command = run_command(session, "--resume");
  command.replace(command.find("--seed 5"), 8, "--seed 9");
  const CliResult mismatched = run_cli(command);
  EXPECT_NE(mismatched.exit_code, 0);
  EXPECT_NE(mismatched.output.find("different configuration"),
            std::string::npos)
      << mismatched.output;
}

TEST(SessionCli, InspectRendersTheSessionAndSelfCompareIsZeroDelta) {
  const fs::path session = scratch_dir("inspect");
  const CliResult ran =
      run_cli(run_command(session, "--timeline=20 --trace"));
  ASSERT_EQ(ran.exit_code, 0) << ran.output;
  ASSERT_TRUE(fs::exists(session / "telemetry.jsonl"));
  ASSERT_TRUE(fs::exists(session / "trace.jsonl"));

  const CliResult inspected =
      run_cli(std::string(ASCDG_CLI_PATH) + " inspect " + session.string());
  EXPECT_EQ(inspected.exit_code, 0) << inspected.output;
  EXPECT_NE(inspected.output.find("sims per covered event"),
            std::string::npos)
      << inspected.output;
  EXPECT_NE(inspected.output.find("telemetry"), std::string::npos);
  EXPECT_NE(inspected.output.find("span-trace profile"), std::string::npos);

  const CliResult as_json = run_cli(std::string(ASCDG_CLI_PATH) +
                                    " inspect " + session.string() + " --json");
  EXPECT_EQ(as_json.exit_code, 0) << as_json.output;
  EXPECT_NE(as_json.output.find("\"schema\":\"ascdg-inspect-v1\""),
            std::string::npos)
      << as_json.output;

  // A session compared against itself must report exactly zero delta.
  const CliResult compared =
      run_cli(std::string(ASCDG_CLI_PATH) + " inspect " + session.string() +
              " --compare " + session.string() + " --json");
  EXPECT_EQ(compared.exit_code, 0) << compared.output;
  EXPECT_NE(compared.output.find("\"delta_sims_per_covered_event\":0"),
            std::string::npos)
      << compared.output;
  EXPECT_NE(compared.output.find("\"delta_total_sims\":0"), std::string::npos)
      << compared.output;
  // Throughput compares as a ratio: a session against itself is 1x.
  EXPECT_NE(compared.output.find("\"delta_sims_per_sec\":0"),
            std::string::npos)
      << compared.output;
  EXPECT_NE(compared.output.find("\"sims_per_sec_speedup\":1"),
            std::string::npos)
      << compared.output;
}

TEST(SessionCli, InspectRejectsADirectoryWithoutArtifacts) {
  const fs::path empty = scratch_dir("inspect_empty");
  fs::create_directories(empty);
  const CliResult result =
      run_cli(std::string(ASCDG_CLI_PATH) + " inspect " + empty.string());
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("not a session directory"), std::string::npos)
      << result.output;
}

TEST(SessionCli, TimelineSequenceSurvivesKillAndResume) {
  const fs::path session = scratch_dir("timeline_kill");
  // Same crash point as KillMidOptimizationThenResume: telemetry's own
  // index writes bypass the crash hook, so write #12 still lands
  // mid-optimization.
  const CliResult killed =
      run_cli("ASCDG_CRASH_AFTER_WRITES=12 " +
              run_command(session, "--timeline=10"));
  ASSERT_EQ(killed.exit_code, 137) << killed.output;
  ASSERT_TRUE(fs::exists(session / "telemetry.jsonl"));

  const CliResult resumed =
      run_cli(run_command(session, "--resume --timeline=10"));
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;

  // One continuous history across the crash: seq is gapless from 0,
  // exactly as a live /timeseries scrape would have replayed it.
  std::ifstream in(session / "telemetry.jsonl");
  std::string line;
  std::uint64_t expected_seq = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto doc = ascdg::util::json_parse(line);
    EXPECT_EQ(doc.at("seq").as_uint64(), expected_seq) << line;
    ++expected_seq;
  }
  EXPECT_GE(expected_seq, 2u);  // at least one sample per process

  // The index was finalized by the resumed process and counts every
  // line, including the crashed process's.
  const auto index = ascdg::util::json_parse([&] {
    std::ifstream idx(session / "telemetry.index.json");
    std::string text((std::istreambuf_iterator<char>(idx)),
                     std::istreambuf_iterator<char>());
    return text;
  }());
  EXPECT_EQ(index.at("schema").as_string(), "ascdg-timeseries-v1");
  EXPECT_TRUE(index.at("final").as_bool());
  EXPECT_EQ(index.at("samples").as_uint64(), expected_seq);
}

TEST(SessionCli, ResumeWithoutSessionIsAnError) {
  const CliResult result = run_cli(
      std::string(ASCDG_CLI_PATH) +
      " run io_unit --family crc --resume --before-sims 50 --samples 5"
      " --sample-sims 10 --iterations 1 --point-sims 10 --harvest 0");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("session"), std::string::npos)
      << result.output;
}

}  // namespace
