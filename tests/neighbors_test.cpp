// Tests for neighbor discovery and the approximated target: weights
// decay with distance, strategies respect structure, the composite
// takes maxima, and target evaluation matches hand computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "coverage/space.hpp"
#include "duv/ifu.hpp"
#include "neighbors/neighbors.hpp"
#include "util/error.hpp"

namespace ascdg::neighbors {
namespace {

using coverage::CoverageSpace;
using coverage::EventId;

CoverageSpace family_space() {
  CoverageSpace space;
  const std::vector<std::string> suffixes{"004", "008", "016", "032", "064",
                                          "096"};
  space.declare_family("crc", suffixes);
  space.declare_event("io_cmd_read");
  return space;
}

std::map<std::uint32_t, double> as_map(const std::vector<tac::WeightedEvent>& v) {
  std::map<std::uint32_t, double> out;
  for (const auto& [event, weight] : v) out[event.value] = weight;
  return out;
}

TEST(FamilyOrder, WeightsDecayWithDistance) {
  const auto space = family_space();
  const FamilyOrderStrategy strategy;
  // Target crc_096 (index 5): neighbors are the 5 other family members.
  const auto neighbors = strategy.neighbors(space, EventId{5});
  const auto weights = as_map(neighbors);
  ASSERT_EQ(weights.size(), 5u);
  EXPECT_DOUBLE_EQ(weights.at(4), 1.0 / 2.0);  // crc_064, distance 1
  EXPECT_DOUBLE_EQ(weights.at(3), 1.0 / 3.0);  // crc_032, distance 2
  EXPECT_DOUBLE_EQ(weights.at(0), 1.0 / 6.0);  // crc_004, distance 5
  EXPECT_EQ(weights.count(6), 0u);  // io_cmd_read is not family
}

TEST(FamilyOrder, MiddleTargetSeesBothSides) {
  const auto space = family_space();
  const FamilyOrderStrategy strategy;
  const auto weights = as_map(strategy.neighbors(space, EventId{2}));
  EXPECT_DOUBLE_EQ(weights.at(1), 0.5);
  EXPECT_DOUBLE_EQ(weights.at(3), 0.5);
}

TEST(FamilyOrder, NonFamilyEventHasNoNeighbors) {
  const auto space = family_space();
  const FamilyOrderStrategy strategy;
  EXPECT_TRUE(strategy.neighbors(space, EventId{6}).empty());
}

TEST(CrossProduct, HammingBallRadiusOne) {
  CoverageSpace space;
  const auto& cp =
      space.declare_cross_product("x", {{"a", 3}, {"b", 4}, {"c", 2}});
  const CrossProductStrategy strategy(1);
  const std::size_t coords[3] = {1, 2, 0};
  const EventId target = space.cross_event(cp, coords);
  const auto neighbors = strategy.neighbors(space, target);
  // Radius-1 ball: (3-1) + (4-1) + (2-1) = 6 neighbors.
  ASSERT_EQ(neighbors.size(), 6u);
  for (const auto& [event, weight] : neighbors) {
    EXPECT_DOUBLE_EQ(weight, 0.5);  // 1/(1+1)
    const auto c = space.coords_of(cp, event);
    std::size_t hamming = 0;
    for (std::size_t d = 0; d < 3; ++d) {
      if (c[d] != coords[d]) ++hamming;
    }
    EXPECT_EQ(hamming, 1u);
  }
}

TEST(CrossProduct, RadiusTwoIncludesFartherEvents) {
  CoverageSpace space;
  const auto& cp = space.declare_cross_product("x", {{"a", 2}, {"b", 2}, {"c", 2}});
  const std::size_t coords[3] = {0, 0, 0};
  const EventId target = space.cross_event(cp, coords);
  const auto r1 = CrossProductStrategy(1).neighbors(space, target);
  const auto r2 = CrossProductStrategy(2).neighbors(space, target);
  EXPECT_EQ(r1.size(), 3u);
  EXPECT_EQ(r2.size(), 6u);  // 3 at distance 1 + 3 at distance 2
  const auto weights = as_map(r2);
  std::size_t at_third = 0;
  for (const auto& [id, w] : weights) {
    if (w == 1.0 / 3.0) ++at_third;
  }
  EXPECT_EQ(at_third, 3u);
}

TEST(CrossProduct, NonCrossEventHasNoNeighbors) {
  CoverageSpace space;
  const EventId plain = space.declare_event("plain");
  space.declare_cross_product("x", {{"a", 2}});
  EXPECT_TRUE(CrossProductStrategy(1).neighbors(space, plain).empty());
}

TEST(NamePrefix, SharedPrefixScores) {
  const auto space = family_space();
  const NamePrefixStrategy strategy(4);
  // Target crc_096: all crc_* share "crc_0..." prefixes.
  const auto weights = as_map(strategy.neighbors(space, EventId{5}));
  EXPECT_GE(weights.size(), 5u);
  EXPECT_EQ(weights.count(6), 0u);  // io_cmd_read shares < 4 chars
  // crc_064 shares "crc_0" (5 chars) with crc_096; weight 5/7.
  EXPECT_NEAR(weights.at(4), 5.0 / 7.0, 1e-12);
}

TEST(NamePrefix, MinPrefixFilters) {
  const auto space = family_space();
  const NamePrefixStrategy strict(10);  // longer than any shared prefix
  EXPECT_TRUE(strict.neighbors(space, EventId{5}).empty());
}

TEST(Composite, TakesMaxWeightAcrossStrategies) {
  const auto space = family_space();
  std::vector<std::unique_ptr<NeighborStrategy>> strategies;
  strategies.push_back(std::make_unique<FamilyOrderStrategy>());
  strategies.push_back(std::make_unique<NamePrefixStrategy>(4));
  const CompositeStrategy composite(std::move(strategies));
  const auto weights = as_map(composite.neighbors(space, EventId{5}));
  // crc_064: family-order gives 0.5, name-prefix gives 5/7 -> max 5/7.
  EXPECT_NEAR(weights.at(4), 5.0 / 7.0, 1e-12);
  // crc_004: family-order 1/6, name-prefix "crc_0" 5/7 -> 5/7.
  EXPECT_NEAR(weights.at(0), 5.0 / 7.0, 1e-12);
}

TEST(BuildTarget, IncludesTargetsWithTopWeight) {
  const auto space = family_space();
  const FamilyOrderStrategy strategy;
  const std::vector<EventId> targets{EventId{5}};
  const auto target = build_target(space, targets, strategy, 2.0);
  EXPECT_EQ(target.targets(), targets);
  const auto weights = as_map(target.events());
  EXPECT_DOUBLE_EQ(weights.at(5), 2.0);
  EXPECT_DOUBLE_EQ(weights.at(4), 0.5);
  EXPECT_EQ(weights.size(), 6u);
}

TEST(BuildTarget, MultipleTargetsUnion) {
  const auto space = family_space();
  const FamilyOrderStrategy strategy;
  const std::vector<EventId> targets{EventId{4}, EventId{5}};
  const auto target = build_target(space, targets, strategy, 2.0);
  const auto weights = as_map(target.events());
  EXPECT_DOUBLE_EQ(weights.at(4), 2.0);  // target weight wins over neighbor
  EXPECT_DOUBLE_EQ(weights.at(5), 2.0);
  EXPECT_DOUBLE_EQ(weights.at(3), 0.5);  // closest to crc_032 is EventId{4}
}

TEST(BuildTarget, EmptyTargetsThrows) {
  const auto space = family_space();
  const FamilyOrderStrategy strategy;
  const std::vector<EventId> none;
  EXPECT_THROW((void)build_target(space, none, strategy), util::ValidationError);
}

TEST(ApproximatedTargetEval, ValueAndRealValue) {
  coverage::SimStats stats(3);
  for (int i = 0; i < 10; ++i) {
    coverage::CoverageVector vec(3);
    if (i < 4) vec.hit(EventId{0});
    if (i < 1) vec.hit(EventId{1});
    stats.record(vec);
  }
  const ApproximatedTarget target(
      {EventId{2}},
      {{EventId{0}, 0.5}, {EventId{1}, 1.0}, {EventId{2}, 2.0}});
  EXPECT_DOUBLE_EQ(target.value(stats), 0.5 * 0.4 + 1.0 * 0.1 + 2.0 * 0.0);
  EXPECT_DOUBLE_EQ(target.real_value(stats), 0.0);
}

TEST(FamilyTarget, TargetsAreUncoveredEvents) {
  const auto space = family_space();
  coverage::SimStats baseline(space.size());
  for (int i = 0; i < 200; ++i) {
    coverage::CoverageVector vec(space.size());
    vec.hit(EventId{0});
    if (i < 50) vec.hit(EventId{1});
    if (i < 2) vec.hit(EventId{2});
    baseline.record(vec);
  }
  const auto target =
      family_target(space, "crc", baseline, FamilyWeighting::kUniform);
  // Events 3,4,5 are uncovered -> targets.
  ASSERT_EQ(target.targets().size(), 3u);
  EXPECT_EQ(target.targets()[0], EventId{3});
  // All 6 family events participate with unit weight.
  EXPECT_EQ(target.events().size(), 6u);
  for (const auto& [event, weight] : target.events()) {
    EXPECT_DOUBLE_EQ(weight, 1.0);
  }
}

TEST(FamilyTarget, DistanceWeightingPullsTowardTargets) {
  const auto space = family_space();
  coverage::SimStats baseline(space.size());
  for (int i = 0; i < 200; ++i) {
    coverage::CoverageVector vec(space.size());
    vec.hit(EventId{0});
    if (i < 150) vec.hit(EventId{1});
    if (i < 120) vec.hit(EventId{2});
    baseline.record(vec);
  }
  // Targets are 3,4,5; default weighting is kDistance with weight 2 on
  // targets, 1/(1+dist to nearest target) elsewhere.
  const auto target = family_target(space, "crc", baseline);
  const auto weights = as_map(target.events());
  EXPECT_DOUBLE_EQ(weights.at(3), 2.0);
  EXPECT_DOUBLE_EQ(weights.at(4), 2.0);
  EXPECT_DOUBLE_EQ(weights.at(5), 2.0);
  EXPECT_DOUBLE_EQ(weights.at(2), 0.5);        // distance 1 from target 3
  EXPECT_DOUBLE_EQ(weights.at(1), 1.0 / 3.0);  // distance 2
  EXPECT_DOUBLE_EQ(weights.at(0), 0.25);       // distance 3
}

TEST(FamilyTarget, AllCoveredFallsBackToRarest) {
  const auto space = family_space();
  coverage::SimStats baseline(space.size());
  for (int i = 0; i < 100; ++i) {
    coverage::CoverageVector vec(space.size());
    for (std::uint32_t e = 0; e < 6; ++e) {
      if (e < 5 || i < 3) vec.hit(EventId{e});  // e5 hit only 3 times
    }
    baseline.record(vec);
  }
  const auto target = family_target(space, "crc", baseline);
  ASSERT_EQ(target.targets().size(), 1u);
  EXPECT_EQ(target.targets()[0], EventId{5});
}

TEST(FamilyTarget, UnknownFamilyThrows) {
  const auto space = family_space();
  const coverage::SimStats baseline(space.size());
  EXPECT_THROW((void)family_target(space, "nope", baseline),
               util::NotFoundError);
}

// ----------------------------------------------------- correlation --

class CorrelationTest : public ::testing::Test {
 protected:
  // 4 events, 3 templates:
  //   e0 and e1 hit by exactly the same templates (perfect correlation),
  //   e2 hit by a disjoint template, e3 never hit.
  coverage::CoverageRepository repo_{4};

  void SetUp() override {
    const auto record = [this](const char* name,
                               std::vector<std::uint32_t> hits,
                               std::size_t times) {
      coverage::SimStats stats(4);
      for (std::size_t i = 0; i < times; ++i) {
        coverage::CoverageVector vec(4);
        for (const auto e : hits) vec.hit(EventId{e});
        stats.record(vec);
      }
      repo_.record(name, stats);
    };
    record("alpha", {0, 1}, 10);
    record("beta", {0, 1}, 10);
    record("gamma", {2}, 10);
  }
};

TEST_F(CorrelationTest, PerfectlyCorrelatedEventJoins) {
  // Base target: e3 (uncovered) with e0 as its only known neighbor.
  const ApproximatedTarget base({EventId{3}},
                                {{EventId{0}, 1.0}, {EventId{3}, 2.0}});
  const CorrelationExpansion expansion(repo_, 0.9, 0.25);
  EXPECT_NEAR(expansion.similarity(base, EventId{1}), 1.0, 1e-9);
  EXPECT_NEAR(expansion.similarity(base, EventId{2}), 0.0, 1e-9);
  const auto expanded = expansion.expand(base);
  // e1 joined with weight 0.25 * 1.0; e2 did not.
  ASSERT_EQ(expanded.events().size(), 3u);
  bool found_e1 = false;
  for (const auto& [event, weight] : expanded.events()) {
    if (event == EventId{1}) {
      found_e1 = true;
      EXPECT_NEAR(weight, 0.25, 1e-9);
    }
    EXPECT_NE(event, EventId{2});
  }
  EXPECT_TRUE(found_e1);
}

TEST_F(CorrelationTest, ExistingEventsKeepTheirWeights) {
  const ApproximatedTarget base({EventId{3}},
                                {{EventId{0}, 1.0}, {EventId{3}, 2.0}});
  const CorrelationExpansion expansion(repo_, 0.9, 0.25);
  const auto expanded = expansion.expand(base);
  for (const auto& [event, weight] : expanded.events()) {
    if (event == EventId{0}) EXPECT_DOUBLE_EQ(weight, 1.0);
    if (event == EventId{3}) EXPECT_DOUBLE_EQ(weight, 2.0);
  }
  EXPECT_EQ(expanded.targets(), base.targets());
}

TEST_F(CorrelationTest, ThresholdFiltersWeakCorrelation) {
  // With an impossible threshold nothing joins.
  const ApproximatedTarget base({EventId{3}},
                                {{EventId{0}, 1.0}, {EventId{3}, 2.0}});
  const CorrelationExpansion strict(repo_, 1.1, 0.25);
  EXPECT_EQ(strict.expand(base).events().size(), base.events().size());
}

TEST_F(CorrelationTest, ZeroProfileSimilarityIsZero) {
  // A base made only of the never-hit target has a zero seed profile.
  const ApproximatedTarget dark({EventId{3}}, {{EventId{3}, 2.0}});
  const CorrelationExpansion expansion(repo_, 0.5, 0.25);
  EXPECT_DOUBLE_EQ(expansion.similarity(dark, EventId{0}), 0.0);
  EXPECT_EQ(expansion.expand(dark).events().size(), 1u);
}

TEST(Strategies, WorkOnRealIfuCrossProduct) {
  const duv::Ifu ifu;
  const auto& cp = ifu.cross_product();
  const std::size_t coords[4] = {6, 3, 3, 1};
  const EventId hard = ifu.space().cross_event(cp, coords);
  const CrossProductStrategy strategy(1);
  const auto neighbors = strategy.neighbors(ifu.space(), hard);
  // (8-1)+(4-1)+(4-1)+(2-1) = 14 radius-1 neighbors.
  EXPECT_EQ(neighbors.size(), 14u);
}

}  // namespace
}  // namespace ascdg::neighbors
