// Tests for the observability layer: metrics registry (concurrent
// counters/histograms, snapshot determinism, exposition formats) and
// the span tracer (parenting, schema, log correlation).
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ascdg::obs {
namespace {

TEST(Counter, ConcurrentAddsFromEightThreadsSumExactly) {
  Registry reg;
  Counter& counter = reg.counter("test_concurrent_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Histogram, ConcurrentObservationsFromEightThreadsAreLossless) {
  Registry reg;
  Histogram& hist = reg.histogram("test_latency_us");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.observe(t * 100 + 1);  // spread across several buckets
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += hist.bucket(i);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(Histogram, Log2Bucketing) {
  Registry reg;
  Histogram& hist = reg.histogram("test_buckets");
  hist.observe(0);  // bucket 0 absorbs zero
  hist.observe(1);  // bucket 0: [1, 2)
  hist.observe(2);  // bucket 1: [2, 4)
  hist.observe(3);  // bucket 1
  hist.observe(1024);  // bucket 10
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(1), 2u);
  EXPECT_EQ(hist.bucket(10), 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 0u + 1 + 2 + 3 + 1024);
}

TEST(Gauge, TracksValueAndPeakUnderConcurrentChurn) {
  Registry reg;
  Gauge& gauge = reg.gauge("test_depth");
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 10'000; ++i) {
        gauge.add(1);
        gauge.sub(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every increment was matched by a decrement; with a single atomic
  // cell the final value is exactly zero (this is the consistency the
  // old non-atomic farm gauge lacked).
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_GE(gauge.peak(), 1);
  EXPECT_LE(gauge.peak(), static_cast<std::int64_t>(kThreads));
}

TEST(Registry, SameSeriesReturnsSameHandleAndKindMismatchThrows) {
  Registry reg;
  Counter& a = reg.counter("test_handle", {{"unit", "io"}});
  Counter& b = reg.counter("test_handle", {{"unit", "io"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("test_handle", {{"unit", "lsu"}});
  EXPECT_NE(&a, &other);
  EXPECT_THROW((void)reg.gauge("test_handle", {{"unit", "io"}}), util::Error);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, SnapshotIsDeterministicallySorted) {
  Registry reg;
  // Register out of order; snapshots must come back sorted by
  // (name, labels) regardless.
  reg.counter("zeta_total").add(1);
  reg.gauge("alpha_depth").set(7);
  reg.counter("beta_total", {{"k", "2"}}).add(2);
  reg.counter("beta_total", {{"k", "1"}}).add(1);

  const MetricsSnapshot first = reg.snapshot();
  const MetricsSnapshot second = reg.snapshot();
  ASSERT_EQ(first.samples.size(), 4u);
  EXPECT_EQ(first.samples[0].name, "alpha_depth");
  EXPECT_EQ(first.samples[1].labels, "k=\"1\"");
  EXPECT_EQ(first.samples[2].labels, "k=\"2\"");
  EXPECT_EQ(first.samples[3].name, "zeta_total");
  for (std::size_t i = 0; i < first.samples.size(); ++i) {
    EXPECT_EQ(first.samples[i].name, second.samples[i].name);
    EXPECT_EQ(first.samples[i].labels, second.samples[i].labels);
    EXPECT_EQ(first.samples[i].counter, second.samples[i].counter);
  }

  const MetricSample* found = first.find("beta_total", "k=\"2\"");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->counter, 2u);
  EXPECT_EQ(first.find("missing"), nullptr);
}

TEST(Export, PrometheusGolden) {
  Registry reg;
  reg.counter("ascdg_demo_total", {{"farm", "0"}}).add(42);
  Gauge& gauge = reg.gauge("ascdg_demo_depth");
  gauge.add(5);
  gauge.sub(2);
  Histogram& hist = reg.histogram("ascdg_demo_us");
  hist.observe(3);
  hist.observe(3);
  hist.observe(100);

  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_EQ(text,
            "# TYPE ascdg_demo_depth gauge\n"
            "ascdg_demo_depth 3\n"
            "# TYPE ascdg_demo_depth_peak gauge\n"
            "ascdg_demo_depth_peak 5\n"
            "# TYPE ascdg_demo_total counter\n"
            "ascdg_demo_total{farm=\"0\"} 42\n"
            "# TYPE ascdg_demo_us histogram\n"
            "ascdg_demo_us_bucket{le=\"4\"} 2\n"
            "ascdg_demo_us_bucket{le=\"128\"} 3\n"
            "ascdg_demo_us_bucket{le=\"+Inf\"} 3\n"
            "ascdg_demo_us_sum 106\n"
            "ascdg_demo_us_count 3\n"
            "# TYPE ascdg_demo_us_p50 gauge\n"
            "ascdg_demo_us_p50 3.5\n"
            "# TYPE ascdg_demo_us_p95 gauge\n"
            "ascdg_demo_us_p95 96\n"
            "# TYPE ascdg_demo_us_p99 gauge\n"
            "ascdg_demo_us_p99 96\n");
}

TEST(Export, LabelValuesAreEscapedInPrometheusText) {
  Registry reg;
  // A hostile label value: backslash, double quote, newline. Unescaped,
  // any of these breaks the exposition line (the newline would even
  // smuggle in a fake series).
  reg.counter("ascdg_esc_total", {{"path", "a\\b\"c\nd"}}).add(1);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("ascdg_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos)
      << text;
  // The raw newline must not survive into the output body.
  EXPECT_EQ(text.find("c\nd"), std::string::npos) << text;
}

TEST(Export, EscapedLabelValuesStayValidJson) {
  Registry reg;
  reg.counter("ascdg_esc_total", {{"path", "a\"b\nc"}}).add(2);
  std::ostringstream os;
  write_json(os, reg.snapshot());
  const std::string text = os.str();
  // The JSON exporter re-escapes the rendered label string: the quote
  // arrives double-escaped, and no raw newline appears inside a string.
  EXPECT_NE(text.find("\\\\\\\""), std::string::npos) << text;
  EXPECT_NE(text.find("\\\\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("a\"b"), std::string::npos) << text;
}

TEST(Histogram, PowerOfTwoBoundariesLandInTheOpeningBucket) {
  Registry reg;
  Histogram& hist = reg.histogram("test_edges");
  // Bucket i spans [2^i, 2^(i+1)): every exact power of two opens its
  // own bucket, and the value one below it closes the previous one.
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    const std::uint64_t edge = 1ULL << i;
    hist.observe(edge);
    EXPECT_EQ(hist.bucket(i), 1u) << "edge 2^" << i;
    hist.observe(edge - 1);
    // Bucket i-1 holds the previous iteration's opening edge (2^(i-1))
    // plus this closing value — except bucket 0, which only sees 2^1-1.
    EXPECT_EQ(hist.bucket(i - 1), i == 1 ? 1u : 2u) << "below edge 2^" << i;
  }
}

TEST(Histogram, ZeroAndHugeValuesUseTheEndBuckets) {
  Registry reg;
  Histogram& hist = reg.histogram("test_extremes");
  hist.observe(0);
  EXPECT_EQ(hist.bucket(0), 1u);
  // Everything at or past 2^(kBuckets-1) belongs to the open-ended top
  // bucket, including the largest representable value.
  hist.observe(1ULL << (Histogram::kBuckets - 1));
  hist.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(hist.bucket(Histogram::kBuckets - 1), 2u);
  EXPECT_EQ(hist.count(), 3u);
  // The sum wraps modulo 2^64 by design (relaxed uint64 accumulator);
  // the count stays exact.
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(hist.bucket(i), 0u) << "bucket " << i;
  }
}

TEST(Registry, SnapshotIsDeterministicUnderConcurrentRegistration) {
  // Eight threads race to register disjoint and shared series while a
  // reader keeps snapshotting. Every snapshot must be internally
  // sorted (the determinism contract), and the final snapshot must
  // hold every series with its exact total.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kSeriesPerThread = 25;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      for (int s = 0; s < kSeriesPerThread; ++s) {
        reg.counter("race_total", {{"t", std::to_string(t)},
                                   {"s", std::to_string(s)}})
            .add(1);
        reg.counter("race_shared_total").add(1);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    for (std::size_t j = 1; j < snap.samples.size(); ++j) {
      const auto& a = snap.samples[j - 1];
      const auto& b = snap.samples[j];
      EXPECT_TRUE(a.name < b.name || (a.name == b.name && a.labels < b.labels))
          << a.name << '{' << a.labels << "} before " << b.name << '{'
          << b.labels << '}';
    }
  }
  for (auto& w : writers) w.join();

  const MetricsSnapshot final_snap = reg.snapshot();
  ASSERT_EQ(final_snap.samples.size(),
            static_cast<std::size_t>(kThreads * kSeriesPerThread + 1));
  const MetricSample* shared = final_snap.find("race_shared_total");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->counter,
            static_cast<std::uint64_t>(kThreads * kSeriesPerThread));
  // Two snapshots of a quiesced registry are identical.
  const MetricsSnapshot again = reg.snapshot();
  for (std::size_t j = 0; j < final_snap.samples.size(); ++j) {
    EXPECT_EQ(final_snap.samples[j].name, again.samples[j].name);
    EXPECT_EQ(final_snap.samples[j].labels, again.samples[j].labels);
    EXPECT_EQ(final_snap.samples[j].counter, again.samples[j].counter);
  }
}

TEST(Histogram, QuantileInterpolatesInsideTheLog2Bucket) {
  Registry reg;
  Histogram& hist = reg.histogram("ascdg_q_us");
  hist.observe(3);
  hist.observe(3);
  hist.observe(100);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* sample = snap.find("ascdg_q_us");
  ASSERT_NE(sample, nullptr);
  // rank(ceil(.5*3)=2) lands in bucket [2,4) holding 2 observations:
  // 2 + (2 - 0 - 0.5)/2 * 2 = 3.5. rank 3 lands in [64,128): 96.
  EXPECT_DOUBLE_EQ(histogram_quantile(*sample, 0.50), 3.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(*sample, 0.95), 96.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(*sample, 0.99), 96.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Registry reg;
  // Empty histogram: every quantile is 0, not NaN.
  const MetricsSnapshot empty = reg.snapshot();
  Histogram& hist = reg.histogram("ascdg_edge_us");
  {
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(histogram_quantile(*snap.find("ascdg_edge_us"), 0.5), 0.0);
  }
  (void)empty;

  // A single observation: every quantile lands in its bucket.
  hist.observe(0);  // bucket [0,2)
  {
    const MetricsSnapshot snap = reg.snapshot();
    const MetricSample* sample = snap.find("ascdg_edge_us");
    const double p50 = histogram_quantile(*sample, 0.50);
    EXPECT_GE(p50, 0.0);
    EXPECT_LT(p50, 2.0);
    EXPECT_EQ(histogram_quantile(*sample, 0.99),
              histogram_quantile(*sample, 0.01));
  }

  // Non-histogram samples report 0.
  reg.counter("ascdg_edge_total").add(5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(histogram_quantile(*snap.find("ascdg_edge_total"), 0.5), 0.0);
}

TEST(Export, JsonSnapshotCarriesHistogramQuantiles) {
  Registry reg;
  Histogram& hist = reg.histogram("ascdg_demo_us");
  hist.observe(3);
  hist.observe(3);
  hist.observe(100);
  std::ostringstream os;
  write_json(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"p50\":3.5"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p95\":96"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p99\":96"), std::string::npos) << text;
}

TEST(Export, JsonSnapshotShape) {
  Registry reg;
  reg.counter("ascdg_demo_total").add(7);
  (void)reg.histogram("ascdg_demo_us");
  std::ostringstream os;
  write_json(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"schema\":\"ascdg-metrics-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"ascdg_demo_total\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":7"), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\":[0,"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Metrics, DisabledMutatorsAreNoOps) {
  Registry reg;
  Counter& counter = reg.counter("test_disabled_total");
  Gauge& gauge = reg.gauge("test_disabled_depth");
  Histogram& hist = reg.histogram("test_disabled_us");
  counter.add(1);
  set_metrics_enabled(false);
  counter.add(100);
  gauge.add(100);
  hist.observe(100);
  set_metrics_enabled(true);
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(Tracer, StampsSequenceAndTimestampOnEveryLine) {
  std::ostringstream out;
  Tracer tracer(out);
  tracer.emit(util::JsonObject{}.add("event", "a"));
  tracer.emit(util::JsonObject{}.add("event", "b"));
  EXPECT_EQ(tracer.lines(), 2u);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t seq = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"seq\":" + std::to_string(seq)), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos) << line;
    ++seq;
  }
  EXPECT_EQ(seq, 2u);
}

TEST(Span, ParentChildNestingAndFields) {
  std::ostringstream out;
  Tracer tracer(out);
  {
    Span outer = tracer.span("outer");
    EXPECT_TRUE(outer.live());
    EXPECT_EQ(outer.parent(), 0u);
    {
      Span inner = tracer.span("inner");
      EXPECT_EQ(inner.parent(), outer.id());
      inner.fields().add("detail", 42);
    }
    // After the inner span ended, new spans parent to `outer` again.
    Span sibling = tracer.span("sibling");
    EXPECT_EQ(sibling.parent(), outer.id());
  }
  const std::string text = out.str();
  // Inner ends first: lines arrive inner, sibling, outer.
  std::istringstream lines(text);
  std::string inner_line, sibling_line, outer_line;
  ASSERT_TRUE(std::getline(lines, inner_line));
  ASSERT_TRUE(std::getline(lines, sibling_line));
  ASSERT_TRUE(std::getline(lines, outer_line));
  EXPECT_NE(inner_line.find("\"span\":\"inner\""), std::string::npos);
  EXPECT_NE(inner_line.find("\"detail\":42"), std::string::npos);
  EXPECT_NE(inner_line.find("\"dur_us\":"), std::string::npos);
  EXPECT_NE(inner_line.find("\"start_us\":"), std::string::npos);
  EXPECT_NE(sibling_line.find("\"span\":\"sibling\""), std::string::npos);
  EXPECT_NE(outer_line.find("\"span\":\"outer\""), std::string::npos);
  EXPECT_NE(outer_line.find("\"parent_id\":0"), std::string::npos);
}

TEST(Span, EndIsIdempotentAndInertSpansEmitNothing) {
  std::ostringstream out;
  Tracer tracer(out);
  Span span = make_span(&tracer, "explicit");
  span.end();
  span.end();
  EXPECT_EQ(tracer.lines(), 1u);

  Span inert = make_span(nullptr, "nothing");
  EXPECT_FALSE(inert.live());
  inert.end();  // no crash, no output
  EXPECT_EQ(tracer.lines(), 1u);
}

TEST(Span, IdDoublesAsLogContextForCorrelation) {
  std::ostringstream out;
  Tracer tracer(out);
  EXPECT_EQ(util::log_context(), 0u);
  {
    Span span = tracer.span("work");
    EXPECT_EQ(util::log_context(), span.id());
    {
      Span nested = tracer.span("nested");
      EXPECT_EQ(util::log_context(), nested.id());
    }
    EXPECT_EQ(util::log_context(), span.id());
  }
  EXPECT_EQ(util::log_context(), 0u);
}

TEST(Registry, GlobalRegistryIsProcessWideSingleton) {
  Registry& a = registry();
  Registry& b = registry();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace ascdg::obs
