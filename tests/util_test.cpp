// Unit and property tests for the util module: RNG determinism and
// statistical sanity, running statistics, intervals, string helpers,
// and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ascdg::util {
namespace {

// ---------------------------------------------------------------- RNG --

TEST(Xoshiro, SameSeedSameSequence) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Xoshiro, UniformI64CoversInclusiveRange) {
  Xoshiro256 rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_i64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values appear
}

TEST(Xoshiro, UniformI64SingletonRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_i64(17, 17), 17);
}

TEST(Xoshiro, UniformU64FullRangeDoesNotHang) {
  Xoshiro256 rng(9);
  const auto v = rng.uniform_u64(0, std::numeric_limits<std::uint64_t>::max());
  (void)v;  // any value is fine; just must terminate
}

TEST(Xoshiro, UniformU64IsUnbiasedAcrossBuckets) {
  Xoshiro256 rng(13);
  std::vector<std::size_t> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_u64(0, 9)];
  }
  const std::vector<double> expected(10, 0.1);
  const double stat = chi_square_statistic(counts, expected);
  EXPECT_LT(stat, chi_square_critical(9, 0.001));
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro, NormalMomentsMatch) {
  Xoshiro256 rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(Xoshiro, WeightedIndexRespectsWeights) {
  Xoshiro256 rng(29);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<std::size_t> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0u);  // zero weight never drawn
  const double stat = chi_square_statistic(counts, weights);
  EXPECT_LT(stat, chi_square_critical(2, 0.001));
}

TEST(Xoshiro, WeightedIndexAllZeroReturnsSize) {
  Xoshiro256 rng(31);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), weights.size());
}

TEST(Xoshiro, WeightedIndexNegativeTreatedAsZero) {
  Xoshiro256 rng(37);
  const std::vector<double> weights{-5.0, 2.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(SeedStream, AtIsPureFunction) {
  const SeedStream s(99);
  EXPECT_EQ(s.at(0), s.at(0));
  EXPECT_EQ(s.at(7), s.at(7));
  EXPECT_NE(s.at(0), s.at(1));
}

TEST(SeedStream, NextMatchesAt) {
  SeedStream s(123);
  const SeedStream pure(123);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(s.next(), pure.at(i));
}

TEST(SeedStream, ChildrenAreDistinct) {
  const SeedStream s(5);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(s.at(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SeedStream, DifferentRootsDifferentChildren) {
  const SeedStream a(1), b(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (a.at(i) == b.at(i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Shuffle, PreservesElements) {
  Xoshiro256 rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(std::span<int>(v), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------- stats --

TEST(RunningStats, EmptyIsZero) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Xoshiro256 rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    (i % 3 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(3.0);
  a.add(5.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
}

TEST(Wilson, ZeroTrialsIsVacuous) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(Wilson, ContainsTrueProportion) {
  // Property: across many repetitions, the 95% interval covers p at
  // least ~90% of the time (slack for the approximation).
  Xoshiro256 rng(47);
  const double p = 0.07;
  int covered = 0;
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    std::size_t hits = 0;
    constexpr std::size_t kTrials = 500;
    for (std::size_t i = 0; i < kTrials; ++i) {
      if (rng.bernoulli(p)) ++hits;
    }
    const auto ci = wilson_interval(hits, kTrials);
    if (p >= ci.lo && p <= ci.hi) ++covered;
  }
  EXPECT_GT(covered, kReps * 9 / 10);
}

TEST(Wilson, DegenerateCountsStayInUnitInterval) {
  const auto all = wilson_interval(100, 100);
  EXPECT_GT(all.lo, 0.9);
  EXPECT_NEAR(all.hi, 1.0, 1e-9);
  const auto none = wilson_interval(0, 100);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.1);
}

TEST(ChiSquare, CriticalValuesMatchTables) {
  // Reference values from standard chi-square tables (alpha = 0.05).
  EXPECT_NEAR(chi_square_critical(1, 0.05), 3.841, 0.01);
  EXPECT_NEAR(chi_square_critical(2, 0.05), 5.991, 0.01);
  EXPECT_NEAR(chi_square_critical(5, 0.05), 11.070, 0.1);
  EXPECT_NEAR(chi_square_critical(10, 0.05), 18.307, 0.1);
  EXPECT_NEAR(chi_square_critical(30, 0.05), 43.773, 0.2);
  EXPECT_NEAR(chi_square_critical(1, 0.001), 10.828, 0.01);
  EXPECT_NEAR(chi_square_critical(2, 0.001), 13.816, 0.01);
}

TEST(ChiSquare, StatisticZeroForPerfectFit) {
  const std::vector<std::size_t> observed{25, 25, 25, 25};
  const std::vector<double> expected{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(chi_square_statistic(observed, expected), 0.0);
}

TEST(ChiSquare, ZeroProbBinWithObservationsThrows) {
  const std::vector<std::size_t> observed{5, 1};
  const std::vector<double> expected{1.0, 0.0};
  EXPECT_THROW((void)chi_square_statistic(observed, expected), LogicError);
}

TEST(Argmax, FindsMaximum) {
  const std::vector<double> xs{1.0, 5.0, 3.0, 5.0};
  EXPECT_EQ(argmax(xs), 1u);  // first max wins
}

TEST(Argmax, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)argmax(xs), LogicError);
}

// ------------------------------------------------------------- strings --

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  foo  bar\tbaz\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int(" 5 "), 5);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc"));
  EXPECT_TRUE(is_identifier("_x9"));
  EXPECT_TRUE(is_identifier("crc_004"));
  EXPECT_TRUE(is_identifier("a.b"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("9abc"));
  EXPECT_FALSE(is_identifier("a b"));
  EXPECT_FALSE(is_identifier(".a"));
}

TEST(Strings, FormatNumber) {
  EXPECT_EQ(format_number(5.0), "5");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(2.5), "2.5");
  EXPECT_EQ(format_number(0.0), "0");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.10321), "10.321%");
  EXPECT_EQ(format_percent(0.0), "0.000%");
  EXPECT_EQ(format_percent(1.0), "100.000%");
}

TEST(Strings, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(1000000), "1,000,000");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

// --------------------------------------------------------------- table --

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.render(os, /*use_color=*/false);
  const std::string text = os.str();
  EXPECT_NE(text.find("| alpha |"), std::string::npos);
  EXPECT_NE(text.find("Value"), std::string::npos);
  // All lines between rules have equal width.
  std::size_t width = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, ArityMismatchThrows) {
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), ValidationError);
}

TEST(Table, ColorCodesOnlyWhenEnabled) {
  Table table({"X"});
  table.add_row(std::vector<Cell>{{"hot", CellColor::kRed}});
  std::ostringstream plain, colored;
  table.render(plain, false);
  table.render(colored, true);
  EXPECT_EQ(plain.str().find('\x1b'), std::string::npos);
  EXPECT_NE(colored.str().find("\x1b[31m"), std::string::npos);
}

TEST(Table, MarkdownOutput) {
  Table table({"H1", "H2"});
  table.add_row({"a", "b"});
  std::ostringstream os;
  table.render_markdown(os);
  EXPECT_NE(os.str().find("| H1 | H2 |"), std::string::npos);
  EXPECT_NE(os.str().find("| a | b |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table table({"A", "B"});
  table.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  table.render_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, SeparatorsAndAlignment) {
  Table table({"L", "R"});
  table.set_align(1, Align::kLeft);
  table.add_row({"a", "1"});
  table.add_separator();
  table.add_row({"b", "2"});
  std::ostringstream os;
  table.render(os, false);
  const std::string text = os.str();
  // Header rule + separator + top/bottom: 4 rule lines.
  std::size_t rules = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, SetAlignOutOfRangeThrows) {
  Table table({"A"});
  EXPECT_THROW(table.set_align(5, Align::kLeft), LogicError);
}

TEST(Log, LevelFilterWorks) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed beyond not throwing).
  EXPECT_NO_THROW(log_info("suppressed"));
  EXPECT_NO_THROW(log_error("emitted"));
  set_log_level(old_level);
}

TEST(Log, SinkReceivesLevelTimestampAndContext) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  struct Captured {
    LogLevel level;
    std::uint64_t mono_ns;
    std::uint64_t context;
    std::string message;
  };
  std::vector<Captured> captured;
  set_log_sink([&captured](const LogRecord& record) {
    captured.push_back({record.level, record.mono_ns, record.context,
                        std::string(record.message)});
  });

  const std::uint64_t before = monotonic_ns();
  log_info("plain line");
  {
    ScopedLogContext scope(42);
    log_warn("inside span ", 7);
  }
  log_info("after");
  set_log_sink({});  // restore stderr default
  set_log_level(old_level);

  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[0].context, 0u);
  EXPECT_EQ(captured[0].message, "plain line");
  EXPECT_GE(captured[0].mono_ns, before);
  EXPECT_EQ(captured[1].level, LogLevel::kWarn);
  EXPECT_EQ(captured[1].context, 42u);
  EXPECT_EQ(captured[1].message, "inside span 7");
  EXPECT_EQ(captured[2].context, 0u);
  EXPECT_GE(captured[2].mono_ns, captured[0].mono_ns);
}

TEST(Log, MonotonicClockNeverGoesBackwards) {
  std::uint64_t last = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    ASSERT_GE(now, last);
    last = now;
  }
}

TEST(Log, ScopedContextNestsAndRestores) {
  EXPECT_EQ(log_context(), 0u);
  {
    ScopedLogContext outer(1);
    EXPECT_EQ(log_context(), 1u);
    {
      ScopedLogContext inner(2);
      EXPECT_EQ(log_context(), 2u);
    }
    EXPECT_EQ(log_context(), 1u);
  }
  EXPECT_EQ(log_context(), 0u);
}

// --------------------------------------------------------------- error --

TEST(Error, AssertThrowsLogicError) {
  EXPECT_THROW(ASCDG_ASSERT(false, "boom"), LogicError);
  EXPECT_NO_THROW(ASCDG_ASSERT(true, "fine"));
}

TEST(Error, ParseErrorCarriesLine) {
  const ParseError err("bad token", 17);
  EXPECT_EQ(err.line(), 17u);
  EXPECT_NE(std::string(err.what()).find("line 17"), std::string::npos);
}

// -------------------------------------------------------------- jsonl --

TEST(Jsonl, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape("日本"), "日本");  // UTF-8 passes through
}

TEST(Jsonl, BuildsFlatObject) {
  JsonObject obj;
  obj.add("name", "sampling").add("sims", 2000u).add("ok", true);
  EXPECT_EQ(obj.str(), R"({"name":"sampling","sims":2000,"ok":true})");
}

TEST(Jsonl, EmptyObject) {
  const JsonObject obj;
  EXPECT_TRUE(obj.empty());
  EXPECT_EQ(obj.str(), "{}");
}

TEST(Jsonl, SignedAndUnsignedIntegers) {
  JsonObject obj;
  obj.add("neg", -42).add("big", std::uint64_t{18446744073709551615ULL});
  EXPECT_EQ(obj.str(), R"({"neg":-42,"big":18446744073709551615})");
}

TEST(Jsonl, DoublesRoundTripAndNonFiniteBecomeNull) {
  JsonObject obj;
  obj.add("half", 0.5)
      .add("nan", std::nan(""))
      .add("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(obj.str(), R"({"half":0.5,"nan":null,"inf":null})");
}

TEST(Jsonl, MergeAppendsFields) {
  JsonObject a;
  a.add("event", "phase");
  JsonObject b;
  b.add("sims", 10);
  a.merge(b);
  EXPECT_EQ(a.str(), R"({"event":"phase","sims":10})");
  JsonObject empty;
  a.merge(empty);
  EXPECT_EQ(a.str(), R"({"event":"phase","sims":10})");
}

TEST(Jsonl, RawSplicesVerbatim) {
  JsonObject obj;
  obj.add_raw("buckets", "[1,2,3]");
  EXPECT_EQ(obj.str(), R"({"buckets":[1,2,3]})");
}

TEST(Jsonl, KeysAreEscapedToo) {
  JsonObject obj;
  obj.add("we\"ird", 1);
  EXPECT_EQ(obj.str(), R"({"we\"ird":1})");
}

// --------------------------------------------------------------- json --
//
// json_parse must read back everything JsonObject can emit — the
// session layer round-trips every manifest and artifact through this
// pair.

TEST(Json, RoundTripsEveryJsonObjectShape) {
  JsonObject obj;
  obj.add("name", "sampling")
      .add("quoted", "a\"b\\c\nd")
      .add("flag", true)
      .add("off", false)
      .add("sims", 2000u)
      .add("neg", -42)
      .add("big", std::uint64_t{9007199254740991ULL})  // 2^53 - 1
      .add("half", 0.5)
      .add("tiny", 1e-300)
      .add("nan", std::nan(""))
      .add_raw("buckets", "[1,2.5,-3]")
      .add_raw("nested", R"({"inner":{"deep":[true,null]}})");
  const JsonValue doc = json_parse(obj.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").as_string(), "sampling");
  EXPECT_EQ(doc.at("quoted").as_string(), "a\"b\\c\nd");
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_FALSE(doc.at("off").as_bool());
  EXPECT_EQ(doc.at("sims").as_uint64(), 2000u);
  EXPECT_EQ(doc.at("neg").as_int64(), -42);
  EXPECT_EQ(doc.at("big").as_uint64(), 9007199254740991ULL);
  EXPECT_EQ(doc.at("half").as_double(), 0.5);
  EXPECT_EQ(doc.at("tiny").as_double(), 1e-300);
  // Non-finite doubles render as null; the reader surfaces that kind.
  EXPECT_TRUE(doc.at("nan").is_null());
  const auto& buckets = doc.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].as_int64(), 1);
  EXPECT_EQ(buckets[1].as_double(), 2.5);
  EXPECT_EQ(buckets[2].as_int64(), -3);
  const auto& deep = doc.at("nested").at("inner").at("deep").as_array();
  ASSERT_EQ(deep.size(), 2u);
  EXPECT_TRUE(deep[0].as_bool());
  EXPECT_TRUE(deep[1].is_null());
}

TEST(Json, ShortestRoundTripDoublesAreBitIdentical) {
  // The artifact writers rely on shortest-round-trip formatting: the
  // parsed double must equal the original bit for bit.
  const double values[] = {0.1,     1.0 / 3.0, 6.02214076e23, -2.5e-8,
                           1e308,   4.9e-324,  123456789.123456789};
  for (const double v : values) {
    JsonObject obj;
    obj.add("v", v);
    EXPECT_EQ(json_parse(obj.str()).at("v").as_double(), v);
  }
}

TEST(Json, EmptyContainersAndOrderPreserved) {
  const JsonValue doc = json_parse(R"({"b":1,"a":{},"z":[]})");
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "b");  // document order, not sorted
  EXPECT_EQ(members[1].first, "a");
  EXPECT_TRUE(members[1].second.as_object().empty());
  EXPECT_TRUE(members[2].second.as_array().empty());
}

TEST(Json, StringEscapesIncludingSurrogatePairs) {
  const JsonValue doc = json_parse(
      R"({"esc":"\" \\ \/ \b \f \n \r \t","bmp":"A\u00e9\u4e16",)"
      R"("pair":"\ud83d\ude00","raw":"日本"})");
  EXPECT_EQ(doc.at("esc").as_string(), "\" \\ / \b \f \n \r \t");
  EXPECT_EQ(doc.at("bmp").as_string(), "A\xc3\xa9\xe4\xb8\x96");  // A é 世
  EXPECT_EQ(doc.at("pair").as_string(), "\xf0\x9f\x98\x80");      // 😀
  EXPECT_EQ(doc.at("raw").as_string(), "日本");  // UTF-8 passes through
}

TEST(Json, NumberFormsAndExponents) {
  const JsonValue doc =
      json_parse(R"([0, -0, 12, -7, 3.25, 1e3, 1E-2, 2.5e+10, -0.125])");
  const auto& a = doc.as_array();
  ASSERT_EQ(a.size(), 9u);
  EXPECT_EQ(a[2].as_int64(), 12);
  EXPECT_EQ(a[3].as_int64(), -7);
  EXPECT_EQ(a[4].as_double(), 3.25);
  EXPECT_EQ(a[5].as_double(), 1000.0);
  EXPECT_EQ(a[6].as_double(), 0.01);
  EXPECT_EQ(a[7].as_double(), 2.5e10);
  EXPECT_EQ(a[8].as_double(), -0.125);
}

TEST(Json, ScalarDocumentsAndWhitespace) {
  EXPECT_TRUE(json_parse("  null \n").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_EQ(json_parse("\t42 ").as_int64(), 42);
  EXPECT_EQ(json_parse(R"("hi")").as_string(), "hi");
}

TEST(Json, AccessorKindMismatchThrows) {
  const JsonValue doc = json_parse(R"({"s":"x","n":1.5,"frac":0.5,"neg":-1})");
  EXPECT_THROW((void)doc.at("s").as_double(), Error);
  EXPECT_THROW((void)doc.at("n").as_string(), Error);
  EXPECT_THROW((void)doc.at("s").as_array(), Error);
  EXPECT_THROW((void)doc.as_bool(), Error);
  // Integer conversions reject inexact values.
  EXPECT_THROW((void)doc.at("frac").as_int64(), Error);
  EXPECT_THROW((void)doc.at("neg").as_uint64(), Error);
}

TEST(Json, FindAndAtLookup) {
  const JsonValue doc = json_parse(R"({"present":1})");
  ASSERT_NE(doc.find("present"), nullptr);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW((void)doc.at("absent"), NotFoundError);
  // find() on a non-object is a safe nullptr, not a throw.
  EXPECT_EQ(json_parse("3").find("x"), nullptr);
}

TEST(Json, ParseErrorsCarryLineNumbers) {
  const struct {
    const char* text;
    std::size_t line;
  } cases[] = {
      {"", 1},
      {"{\"a\":1,}", 1},
      {"{\"a\" 1}", 1},              // missing colon
      {"[1 2]", 1},                  // missing comma
      {"{\n\"a\": tru}", 2},         // bad literal on line 2
      {"{\n\n\"a\": \"unterminated", 3},
      {"{\"a\": 1} trailing", 1},    // trailing garbage
      {"[1, 01]", 1},                // leading zero
      {"\"bad \\q escape\"", 1},
      {"\"lone \\ud800 surrogate\"", 1},
      {"nan", 1},                    // not a JSON literal
  };
  for (const auto& c : cases) {
    try {
      (void)json_parse(c.text);
      FAIL() << "expected ParseError for: " << c.text;
    } catch (const ParseError& err) {
      EXPECT_EQ(err.line(), c.line) << c.text;
    }
  }
}

TEST(Json, DeepNestingRoundTrips) {
  std::string text;
  for (int i = 0; i < 64; ++i) text += R"({"k":)";
  text += "1";
  for (int i = 0; i < 64; ++i) text += "}";
  const JsonValue doc = json_parse(text);
  const JsonValue* v = &doc;
  for (int i = 0; i < 64; ++i) v = &v->at("k");
  EXPECT_EQ(v->as_int64(), 1);
}

}  // namespace
}  // namespace ascdg::util
