// Tests for the derivative-free optimizers: convergence on smooth and
// noisy synthetic objectives (property sweeps over hyperparameters),
// Algorithm-1 semantics (step halving, center resampling), stopping
// criteria, budget accounting, determinism, and config validation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "opt/baselines.hpp"
#include "opt/implicit_filtering.hpp"
#include "opt/synthetic.hpp"
#include "util/error.hpp"

namespace ascdg::opt {
namespace {

double distance(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(total);
}

// ------------------------------------------------- implicit filtering --

TEST(ImplicitFiltering, ConvergesOnNoiselessQuadratic) {
  const std::vector<double> optimum{0.7, 0.3};
  NoisyQuadratic objective(optimum, 0.0);
  ImplicitFilteringOptions options;
  options.max_iterations = 200;
  options.directions = 8;
  options.min_step = 1e-5;
  options.seed = 3;
  const std::vector<double> x0{0.1, 0.9};
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.05);
  EXPECT_GT(result.best_value, 0.99);
}

TEST(ImplicitFiltering, ConvergesUnderBernoulliNoise) {
  // The CDG-shaped noise model: empirical mean of Bernoulli draws.
  const std::vector<double> optimum{0.6, 0.4, 0.5};
  BernoulliHill objective(optimum, 0.8, 4.0, 200);
  ImplicitFilteringOptions options;
  options.max_iterations = 60;
  options.directions = 12;
  options.initial_step = 0.3;
  options.seed = 11;
  const std::vector<double> x0{0.1, 0.9, 0.1};
  const auto result = implicit_filtering(objective, x0, options);
  // Must end up close enough that the true probability is near peak.
  EXPECT_GT(objective.hit_probability(result.best_point), 0.55);
}

TEST(ImplicitFiltering, EmitsOneOptIterTraceEventPerIteration) {
  const std::vector<double> optimum{0.7, 0.3};
  NoisyQuadratic objective(optimum, 0.0);
  std::ostringstream out;
  obs::Tracer tracer(out);
  ImplicitFilteringOptions options;
  options.max_iterations = 6;
  options.directions = 4;
  options.seed = 5;
  options.trace = &tracer;
  options.trace_label = "unit-test";
  const std::vector<double> x0{0.1, 0.9};
  const auto result = implicit_filtering(objective, x0, options);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t iter_lines = 0;
  while (std::getline(lines, line)) {
    ASSERT_NE(line.find("\"event\":\"opt_iter\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"label\":\"unit-test\""), std::string::npos);
    EXPECT_NE(line.find("\"iter\":" + std::to_string(iter_lines)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"objective\":"), std::string::npos);
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
    EXPECT_NE(line.find("\"resamples\":"), std::string::npos);
    EXPECT_NE(line.find("\"halved\":"), std::string::npos);
    ++iter_lines;
  }
  EXPECT_EQ(iter_lines, result.trace.size());
  // The emitted series mirrors the in-memory IterationRecord trace.
  for (const auto& record : result.trace) {
    EXPECT_EQ(record.resamples, (options.resample_center &&
                                 record.iteration > 0)
                                    ? 1u
                                    : 0u);
  }
}

TEST(ImplicitFiltering, StepHalvesWhenCenterIsBest) {
  // At the exact optimum of a noiseless bowl, no stencil point improves,
  // so every iteration must halve h until min_step stops the run.
  const std::vector<double> optimum{0.5, 0.5};
  NoisyQuadratic objective(optimum, 0.0);
  ImplicitFilteringOptions options;
  options.initial_step = 0.2;
  options.min_step = 0.04;
  options.max_iterations = 100;
  options.directions = 6;
  options.seed = 5;
  const auto result = implicit_filtering(objective, optimum, options);
  EXPECT_EQ(result.reason, StopReason::kMinStep);
  // 0.2 -> 0.1 -> 0.05 -> 0.025 (<0.04): 3 halvings = 3 iterations.
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_DOUBLE_EQ(result.trace[0].step, 0.2);
  EXPECT_DOUBLE_EQ(result.trace[1].step, 0.1);
  EXPECT_DOUBLE_EQ(result.trace[2].step, 0.05);
  for (const auto& record : result.trace) EXPECT_FALSE(record.moved);
}

TEST(ImplicitFiltering, RespectsMaxEvaluations) {
  NoisyQuadratic objective({0.5}, 0.0);
  CountingObjective counting(objective);
  ImplicitFilteringOptions options;
  options.max_iterations = 1000;
  options.max_evaluations = 37;
  options.min_step = 1e-12;
  options.seed = 7;
  const std::vector<double> x0{0.0};
  const auto result = implicit_filtering(counting, x0, options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(counting.count(), 37u);  // exact: batches truncate to the budget
  EXPECT_EQ(result.evaluations, counting.count());
}

TEST(ImplicitFiltering, StopsAtTargetValue) {
  NoisyQuadratic objective({0.5, 0.5}, 0.0);
  ImplicitFilteringOptions options;
  options.target_value = 0.9;
  options.max_iterations = 500;
  options.min_step = 1e-9;
  options.seed = 9;
  const std::vector<double> x0{0.05, 0.05};
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_EQ(result.reason, StopReason::kTargetReached);
  EXPECT_GE(result.best_value, 0.9);
}

TEST(ImplicitFiltering, DeterministicGivenSeed) {
  BernoulliHill obj_a({0.3, 0.7}, 0.5, 3.0, 50);
  BernoulliHill obj_b({0.3, 0.7}, 0.5, 3.0, 50);
  ImplicitFilteringOptions options;
  options.max_iterations = 20;
  options.seed = 123;
  const std::vector<double> x0{0.5, 0.5};
  const auto a = implicit_filtering(obj_a, x0, options);
  const auto b = implicit_filtering(obj_b, x0, options);
  EXPECT_EQ(a.best_point, b.best_point);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.trace.size(), b.trace.size());
}

TEST(ImplicitFiltering, StaysInsideBox) {
  NoisyQuadratic objective({2.0, 2.0}, 0.0);  // optimum outside the box
  ImplicitFilteringOptions options;
  options.max_iterations = 100;
  options.seed = 13;
  const std::vector<double> x0{0.5, 0.5};
  const auto result = implicit_filtering(objective, x0, options);
  for (const double v : result.best_point) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Best point should push to the box corner nearest the optimum.
  EXPECT_GT(result.best_point[0], 0.9);
  EXPECT_GT(result.best_point[1], 0.9);
}

TEST(ImplicitFiltering, CoordinateModeAlsoConverges) {
  NoisyQuadratic objective({0.25, 0.75}, 0.0);
  ImplicitFilteringOptions options;
  options.direction_mode = DirectionMode::kCoordinate;
  options.directions = 4;  // covers +-e0, +-e1
  options.max_iterations = 200;
  options.min_step = 1e-5;
  options.seed = 17;
  const std::vector<double> x0{0.9, 0.1};
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_LT(distance(result.best_point, std::vector<double>{0.25, 0.75}), 0.05);
}

TEST(ImplicitFiltering, TraceIsWellFormed) {
  NoisyQuadratic objective({0.5}, 0.05);
  ImplicitFilteringOptions options;
  options.max_iterations = 15;
  options.min_step = 1e-9;
  options.seed = 19;
  const std::vector<double> x0{0.1};
  const auto result = implicit_filtering(objective, x0, options);
  ASSERT_EQ(result.trace.size(), 15u);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i].iteration, i);
    EXPECT_GE(result.trace[i].best_value, result.trace[i].center_value);
    if (i > 0) {
      EXPECT_GT(result.trace[i].evaluations, result.trace[i - 1].evaluations);
    }
  }
}

struct BadOptionsCase {
  const char* label;
  std::size_t directions;
  double initial_step;
  double lower;
  double upper;
  std::size_t x0_dim;
};

class ImplicitFilteringBadOptions
    : public ::testing::TestWithParam<BadOptionsCase> {};

TEST_P(ImplicitFilteringBadOptions, Throws) {
  const auto& p = GetParam();
  NoisyQuadratic objective({0.5, 0.5}, 0.0);
  ImplicitFilteringOptions options;
  options.directions = p.directions;
  options.initial_step = p.initial_step;
  options.lower = p.lower;
  options.upper = p.upper;
  const std::vector<double> x0(p.x0_dim, 0.5);
  EXPECT_THROW((void)implicit_filtering(objective, x0, options),
               util::ConfigError);
}

INSTANTIATE_TEST_SUITE_P(
    Opt, ImplicitFilteringBadOptions,
    ::testing::Values(
        BadOptionsCase{"zero_directions", 0, 0.25, 0.0, 1.0, 2},
        BadOptionsCase{"zero_step", 8, 0.0, 0.0, 1.0, 2},
        BadOptionsCase{"negative_step", 8, -0.1, 0.0, 1.0, 2},
        BadOptionsCase{"empty_box", 8, 0.25, 1.0, 0.0, 2},
        BadOptionsCase{"dim_mismatch", 8, 0.25, 0.0, 1.0, 3}),
    [](const auto& info) { return info.param.label; });

// Hyperparameter sweep (property): implicit filtering beats its starting
// value on the noisy hill for every (n, h, N) combination in the grid.
struct HyperCase {
  std::size_t directions;
  double step;
  std::size_t samples;
};

class HyperSweep : public ::testing::TestWithParam<HyperCase> {};

TEST_P(HyperSweep, ImprovesOverStart) {
  const auto& p = GetParam();
  const std::vector<double> optimum{0.7, 0.7};
  BernoulliHill objective(optimum, 0.7, 3.0, p.samples);
  const std::vector<double> x0{0.2, 0.2};
  const double start_p = objective.hit_probability(x0);

  ImplicitFilteringOptions options;
  options.directions = p.directions;
  options.initial_step = p.step;
  options.max_iterations = 40;
  options.seed = 31;
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_GT(objective.hit_probability(result.best_point), start_p * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Opt, HyperSweep,
    ::testing::Values(HyperCase{4, 0.1, 100}, HyperCase{4, 0.3, 100},
                      HyperCase{8, 0.1, 100}, HyperCase{8, 0.3, 400},
                      HyperCase{16, 0.2, 100}, HyperCase{16, 0.3, 25},
                      HyperCase{8, 0.5, 100}, HyperCase{32, 0.25, 50}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.directions) + "_h" +
             std::to_string(static_cast<int>(info.param.step * 100)) + "_N" +
             std::to_string(info.param.samples);
    });

// All direction modes must converge on a moderate-dimension bowl.
class DirectionModes : public ::testing::TestWithParam<DirectionMode> {};

TEST_P(DirectionModes, ConvergesOnNoiselessQuadratic) {
  const std::vector<double> optimum{0.6, 0.4, 0.7, 0.3};
  NoisyQuadratic objective(optimum, 0.0);
  ImplicitFilteringOptions options;
  options.direction_mode = GetParam();
  options.directions = 12;
  options.max_iterations = 300;
  options.min_step = 1e-6;
  options.halve_patience = 2;
  options.seed = 51;
  const std::vector<double> x0{0.1, 0.9, 0.1, 0.9};
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.1)
      << "mode " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Opt, DirectionModes,
    ::testing::Values(DirectionMode::kRandomSphere, DirectionMode::kCoordinate,
                      DirectionMode::kRademacher, DirectionMode::kSparse),
    [](const auto& info) {
      switch (info.param) {
        case DirectionMode::kRandomSphere:
          return "sphere";
        case DirectionMode::kCoordinate:
          return "coordinate";
        case DirectionMode::kRademacher:
          return "rademacher";
        case DirectionMode::kSparse:
          return "sparse";
      }
      return "unknown";
    });

TEST(ImplicitFiltering, HalvePatienceDelaysShrinking) {
  // At the exact optimum of a noiseless bowl nothing improves; with
  // patience 3 the step halves only every 3rd iteration.
  const std::vector<double> optimum{0.5, 0.5};
  NoisyQuadratic objective(optimum, 0.0);
  ImplicitFilteringOptions options;
  options.initial_step = 0.2;
  options.min_step = 0.06;
  options.max_iterations = 100;
  options.directions = 4;
  options.halve_patience = 3;
  options.seed = 5;
  const auto result = implicit_filtering(objective, optimum, options);
  EXPECT_EQ(result.reason, StopReason::kMinStep);
  // 3 stale rounds at 0.2 -> 0.1; 3 more -> 0.05 (< 0.06): 6 iterations.
  ASSERT_EQ(result.trace.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].step, 0.2);
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].step, 0.1);
  }
}

TEST(ImplicitFiltering, ZeroPatienceThrows) {
  NoisyQuadratic objective({0.5}, 0.0);
  ImplicitFilteringOptions options;
  options.halve_patience = 0;
  const std::vector<double> x0{0.5};
  EXPECT_THROW((void)implicit_filtering(objective, x0, options),
               util::ConfigError);
}

TEST(ImplicitFiltering, SparseDirectionsAreSparse) {
  // Indirect check: with sparse directions and a separable objective
  // whose optimum differs from the start in ONE coordinate, sparse mode
  // must converge without disturbing the other coordinates much.
  std::vector<double> optimum(8, 0.5);
  optimum[3] = 0.9;
  NoisyQuadratic objective(optimum, 0.0);
  ImplicitFilteringOptions options;
  options.direction_mode = DirectionMode::kSparse;
  options.directions = 8;
  options.max_iterations = 120;
  options.min_step = 1e-6;
  options.seed = 77;
  const std::vector<double> x0(8, 0.5);
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.1);
}

// ------------------------------------------------------------ baselines --

TEST(RandomSearch, FindsDecentPointOnSmoothBowl) {
  NoisyQuadratic objective({0.5, 0.5}, 0.0);
  RandomSearchOptions options;
  options.samples = 500;
  options.seed = 37;
  const auto result = random_search(objective, options);
  EXPECT_EQ(result.evaluations, 500u);
  EXPECT_GT(result.best_value, 0.9);
}

TEST(RandomSearch, ZeroSamplesThrows) {
  NoisyQuadratic objective({0.5}, 0.0);
  RandomSearchOptions options;
  options.samples = 0;
  EXPECT_THROW((void)random_search(objective, options), util::ConfigError);
}

TEST(RandomSearch, BestValueIsMonotoneInTrace) {
  NoisyQuadratic objective({0.5, 0.5}, 0.1);
  RandomSearchOptions options;
  options.samples = 100;
  options.seed = 41;
  const auto result = random_search(objective, options);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].best_value, result.trace[i - 1].best_value);
  }
}

TEST(CoordinateSearch, ConvergesOnNoiselessQuadratic) {
  const std::vector<double> optimum{0.3, 0.6};
  NoisyQuadratic objective(optimum, 0.0);
  CoordinateSearchOptions options;
  options.max_iterations = 200;
  options.min_step = 1e-5;
  const std::vector<double> x0{0.9, 0.1};
  const auto result = coordinate_search(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.05);
}

TEST(CoordinateSearch, DimensionMismatchThrows) {
  NoisyQuadratic objective({0.5, 0.5}, 0.0);
  const std::vector<double> x0{0.5};
  EXPECT_THROW((void)coordinate_search(objective, x0, {}), util::ConfigError);
}

TEST(NelderMead, ConvergesOnNoiselessQuadratic) {
  const std::vector<double> optimum{0.4, 0.6};
  NoisyQuadratic objective(optimum, 0.0);
  NelderMeadOptions options;
  options.max_iterations = 300;
  options.tolerance = 1e-8;
  const std::vector<double> x0{0.9, 0.1};
  const auto result = nelder_mead(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.05);
}

TEST(NelderMead, RespectsBox) {
  NoisyQuadratic objective({3.0, 3.0}, 0.0);
  NelderMeadOptions options;
  options.max_iterations = 200;
  const std::vector<double> x0{0.5, 0.5};
  const auto result = nelder_mead(objective, x0, options);
  for (const double v : result.best_point) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NelderMead, BadScaleThrows) {
  NoisyQuadratic objective({0.5}, 0.0);
  NelderMeadOptions options;
  options.initial_scale = 0.0;
  const std::vector<double> x0{0.5};
  EXPECT_THROW((void)nelder_mead(objective, x0, options), util::ConfigError);
}

TEST(CrossEntropy, ConvergesOnNoiselessQuadratic) {
  const std::vector<double> optimum{0.35, 0.65};
  NoisyQuadratic objective(optimum, 0.0);
  CrossEntropyOptions options;
  options.max_iterations = 60;
  options.seed = 61;
  const std::vector<double> x0{0.9, 0.1};
  const auto result = cross_entropy(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.08);
}

TEST(CrossEntropy, HandlesBernoulliNoise) {
  const std::vector<double> optimum{0.6, 0.4};
  BernoulliHill objective(optimum, 0.7, 3.0, 100);
  CrossEntropyOptions options;
  options.max_iterations = 30;
  options.seed = 63;
  const std::vector<double> x0{0.2, 0.8};
  const auto result = cross_entropy(objective, x0, options);
  EXPECT_GT(objective.hit_probability(result.best_point), 0.4);
}

TEST(CrossEntropy, BadConfigThrows) {
  NoisyQuadratic objective({0.5}, 0.0);
  const std::vector<double> x0{0.5};
  CrossEntropyOptions options;
  options.elite = 0;
  EXPECT_THROW((void)cross_entropy(objective, x0, options), util::ConfigError);
  options = {};
  options.elite = options.population + 1;
  EXPECT_THROW((void)cross_entropy(objective, x0, options), util::ConfigError);
  options = {};
  options.initial_stddev = 0.0;
  EXPECT_THROW((void)cross_entropy(objective, x0, options), util::ConfigError);
}

TEST(CrossEntropy, RespectsEvaluationBudget) {
  NoisyQuadratic objective({0.5, 0.5}, 0.1);
  CountingObjective counting(objective);
  CrossEntropyOptions options;
  options.max_evaluations = 77;
  options.max_iterations = 1000;
  options.min_stddev = 1e-12;
  const std::vector<double> x0{0.2, 0.2};
  const auto result = cross_entropy(counting, x0, options);
  EXPECT_EQ(counting.count(), 77u);  // exact: batches truncate to the budget
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
}

TEST(SimulatedAnnealing, ConvergesOnNoiselessQuadratic) {
  const std::vector<double> optimum{0.7, 0.3};
  NoisyQuadratic objective(optimum, 0.0);
  SimulatedAnnealingOptions options;
  options.max_evaluations = 2000;
  options.seed = 67;
  const std::vector<double> x0{0.1, 0.9};
  const auto result = simulated_annealing(objective, x0, options);
  EXPECT_LT(distance(result.best_point, optimum), 0.1);
  EXPECT_EQ(result.evaluations, 2000u);
}

TEST(SimulatedAnnealing, EscapesLocalPeak) {
  // Two peaks: SA started at the local peak should find the global one
  // reasonably often; assert it at least never does worse than the
  // local value.
  TwoPeaks objective({0.8, 0.8}, {0.2, 0.2}, 0.5, 0.0);
  SimulatedAnnealingOptions options;
  options.max_evaluations = 3000;
  options.initial_temperature = 0.4;
  options.step = 0.25;
  options.seed = 71;
  const std::vector<double> x0{0.2, 0.2};
  const auto result = simulated_annealing(objective, x0, options);
  EXPECT_GT(result.best_value, 0.5);
  EXPECT_GT(objective.true_value(result.best_point), 0.5);
}

TEST(SimulatedAnnealing, BadConfigThrows) {
  NoisyQuadratic objective({0.5}, 0.0);
  const std::vector<double> x0{0.5};
  SimulatedAnnealingOptions options;
  options.cooling = 1.5;
  EXPECT_THROW((void)simulated_annealing(objective, x0, options),
               util::ConfigError);
  options = {};
  options.initial_temperature = 0.0;
  EXPECT_THROW((void)simulated_annealing(objective, x0, options),
               util::ConfigError);
}

// On the flat-spike landscape, local methods started far away are stuck
// at zero — the §IV-A motivation for the approximated target.
TEST(FlatLandscape, LocalSearchFindsNothingWithoutNeighbors) {
  FlatSpike objective({0.9, 0.9}, 0.05, 100);
  ImplicitFilteringOptions options;
  options.max_iterations = 30;
  options.initial_step = 0.1;
  options.seed = 43;
  const std::vector<double> x0{0.1, 0.1};
  const auto result = implicit_filtering(objective, x0, options);
  EXPECT_DOUBLE_EQ(result.best_value, 0.0);
}

// ----------------------------------------------------- batched dispatch --
//
// Every optimizer draws eval seeds in point order from a dedicated
// stream, so whether the objective runs the default scalar loop or a
// native evaluate_batch override must not change the trajectory at all:
// the whole OptResult has to be bit-identical.

void expect_same_result(const OptResult& a, const OptResult& b) {
  EXPECT_EQ(a.best_point, b.best_point);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.reason, b.reason);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
    EXPECT_EQ(a.trace[i].center_value, b.trace[i].center_value);
    EXPECT_EQ(a.trace[i].best_value, b.trace[i].best_value);
    EXPECT_EQ(a.trace[i].step, b.trace[i].step);
    EXPECT_EQ(a.trace[i].evaluations, b.trace[i].evaluations);
    EXPECT_EQ(a.trace[i].moved, b.trace[i].moved);
    EXPECT_EQ(a.trace[i].resamples, b.trace[i].resamples);
    EXPECT_EQ(a.trace[i].halved, b.trace[i].halved);
  }
}

// Runs the optimizer twice over identical Bernoulli landscapes — once
// through the scalar dispatch path, once through a native batch override
// that records dispatched batch sizes — and demands identical results
// plus at least one batch of `min_batch` points (proof the optimizer
// really hands whole stencils/populations to the objective).
template <typename Run>
void check_dispatch_equivalence(Run run, std::size_t min_batch) {
  BernoulliHill scalar_inner({0.6, 0.4}, 0.7, 3.0, 40);
  BernoulliHill batched_inner({0.6, 0.4}, 0.7, 3.0, 40);
  ScalarizedObjective scalar(scalar_inner);
  BatchRecordingObjective batched(batched_inner);
  const OptResult a = run(scalar);
  const OptResult b = run(batched);
  expect_same_result(a, b);
  EXPECT_EQ(scalar_inner.draws(), batched_inner.draws());
  EXPECT_GE(batched.max_batch_size(), min_batch);
}

TEST(BatchDispatch, ImplicitFilteringScalarAndBatchedIdentical) {
  ImplicitFilteringOptions options;
  options.max_iterations = 12;
  options.directions = 8;
  options.seed = 101;
  const std::vector<double> x0{0.2, 0.8};
  check_dispatch_equivalence(
      [&](Objective& o) { return implicit_filtering(o, x0, options); },
      options.directions);
}

TEST(BatchDispatch, RandomSearchScalarAndBatchedIdentical) {
  RandomSearchOptions options;
  options.samples = 64;
  options.seed = 103;
  check_dispatch_equivalence(
      [&](Objective& o) { return random_search(o, options); }, 64u);
}

TEST(BatchDispatch, CoordinateSearchScalarAndBatchedIdentical) {
  CoordinateSearchOptions options;
  options.max_iterations = 25;
  options.seed = 107;
  const std::vector<double> x0{0.2, 0.8};
  check_dispatch_equivalence(
      [&](Objective& o) { return coordinate_search(o, x0, options); },
      4u);  // the full +-h stencil in 2-D
}

TEST(BatchDispatch, NelderMeadScalarAndBatchedIdentical) {
  NelderMeadOptions options;
  options.max_iterations = 40;
  options.tolerance = 1e-12;
  options.seed = 109;
  const std::vector<double> x0{0.2, 0.8};
  check_dispatch_equivalence(
      [&](Objective& o) { return nelder_mead(o, x0, options); },
      3u);  // the initial 2-D simplex
}

TEST(BatchDispatch, CrossEntropyScalarAndBatchedIdentical) {
  CrossEntropyOptions options;
  options.max_iterations = 10;
  options.seed = 113;
  const std::vector<double> x0{0.2, 0.8};
  check_dispatch_equivalence(
      [&](Objective& o) { return cross_entropy(o, x0, options); },
      options.population);
}

TEST(BatchDispatch, SimulatedAnnealingScalarAndBatchedIdentical) {
  // SA is inherently sequential (each proposal depends on the previous
  // accept/reject), so it stays on the scalar path — but it must still
  // be indifferent to which wrapper the objective sits behind.
  SimulatedAnnealingOptions options;
  options.max_evaluations = 200;
  options.seed = 127;
  const std::vector<double> x0{0.2, 0.8};
  check_dispatch_equivalence(
      [&](Objective& o) { return simulated_annealing(o, x0, options); }, 1u);
}

TEST(BatchDispatch, DefaultBatchMatchesScalarCallSequence) {
  BernoulliHill via_batch({0.5, 0.5}, 0.6, 2.0, 30);
  BernoulliHill via_scalar({0.5, 0.5}, 0.6, 2.0, 30);
  const std::vector<Point> xs{{0.1, 0.2}, {0.3, 0.4}, {0.1, 0.2}};
  const std::vector<std::uint64_t> seeds{11, 22, 11};
  const std::vector<double> batched = via_batch.evaluate_batch(xs, seeds);
  ASSERT_EQ(batched.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(batched[i], via_scalar.evaluate(xs[i], seeds[i]));
  }
  // Same (point, seed) pair -> same value, per the Objective contract.
  EXPECT_EQ(batched[0], batched[2]);
  EXPECT_EQ(via_batch.draws(), via_scalar.draws());
}

// Budget truncation is exact: batches are cut to the remaining budget
// *before* dispatch, so runs never overshoot max_evaluations and stop
// with exactly the configured count.

TEST(BatchDispatch, CoordinateSearchHitsBudgetExactly) {
  NoisyQuadratic objective({0.4, 0.6}, 0.05);
  CountingObjective counting(objective);
  CoordinateSearchOptions options;
  options.max_iterations = 1000;
  options.max_evaluations = 12;  // 1 center + 2 stencils + a 3-point rump
  options.min_step = 1e-12;
  const std::vector<double> x0{0.9, 0.1};
  const auto result = coordinate_search(counting, x0, options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(result.evaluations, 12u);
  EXPECT_EQ(counting.count(), 12u);
}

TEST(BatchDispatch, NelderMeadHitsBudgetExactly) {
  NoisyQuadratic objective({0.4, 0.6}, 0.05);
  CountingObjective counting(objective);
  NelderMeadOptions options;
  options.max_iterations = 1000;
  options.max_evaluations = 10;
  options.tolerance = 0.0;  // never converge: only the budget can stop it
  const std::vector<double> x0{0.9, 0.1};
  const auto result = nelder_mead(counting, x0, options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(result.evaluations, 10u);
  EXPECT_EQ(counting.count(), 10u);
}

TEST(BatchDispatch, NelderMeadBudgetSmallerThanSimplexTruncates) {
  NoisyQuadratic objective({0.4, 0.6, 0.5}, 0.0);
  CountingObjective counting(objective);
  NelderMeadOptions options;
  options.max_evaluations = 2;  // < dim + 1 = 4 initial vertices
  const std::vector<double> x0{0.9, 0.1, 0.5};
  const auto result = nelder_mead(counting, x0, options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(result.evaluations, 2u);
  EXPECT_EQ(counting.count(), 2u);
  EXPECT_FALSE(result.best_point.empty());
}

TEST(BatchDispatch, CrossEntropyHitsBudgetExactly) {
  NoisyQuadratic objective({0.5, 0.5}, 0.1);
  CountingObjective counting(objective);
  CrossEntropyOptions options;
  options.max_evaluations = 77;  // 2 full generations of 30 + a rump of 17
  options.max_iterations = 1000;
  options.min_stddev = 1e-12;
  const std::vector<double> x0{0.2, 0.2};
  const auto result = cross_entropy(counting, x0, options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(result.evaluations, 77u);
  EXPECT_EQ(counting.count(), 77u);
}

TEST(BatchDispatch, ZeroBudgetReturnsWithoutEvaluating) {
  NoisyQuadratic objective({0.5, 0.5}, 0.0);
  CountingObjective counting(objective);
  const std::vector<double> x0{0.2, 0.2};

  ImplicitFilteringOptions if_options;
  if_options.max_evaluations = 0;
  auto result = implicit_filtering(counting, x0, if_options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(counting.count(), 0u);

  CoordinateSearchOptions cs_options;
  cs_options.max_evaluations = 0;
  result = coordinate_search(counting, x0, cs_options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(counting.count(), 0u);

  SimulatedAnnealingOptions sa_options;
  sa_options.max_evaluations = 0;
  result = simulated_annealing(counting, x0, sa_options);
  EXPECT_EQ(result.reason, StopReason::kMaxEvaluations);
  EXPECT_EQ(counting.count(), 0u);
}

// ------------------------------------------------------------ synthetic --

TEST(Synthetic, BernoulliHillNoiseSeedStable) {
  BernoulliHill objective({0.5}, 0.5, 2.0, 100);
  const std::vector<double> x{0.4};
  EXPECT_DOUBLE_EQ(objective.evaluate(x, 9), objective.evaluate(x, 9));
  EXPECT_EQ(objective.draws(), 200u);
}

TEST(Synthetic, TwoPeaksGlobalHigherThanLocal) {
  TwoPeaks objective({0.8, 0.8}, {0.2, 0.2}, 0.5, 0.0);
  const std::vector<double> at_global{0.8, 0.8};
  const std::vector<double> at_local{0.2, 0.2};
  EXPECT_GT(objective.true_value(at_global), objective.true_value(at_local));
  EXPECT_NEAR(objective.true_value(at_local), 0.5, 1e-9);
}

TEST(Synthetic, QuadraticNoiseAveragesOut) {
  NoisyQuadratic objective({0.5}, 0.2);
  const std::vector<double> x{0.5};
  double total = 0.0;
  for (std::uint64_t s = 0; s < 2000; ++s) total += objective.evaluate(x, s);
  EXPECT_NEAR(total / 2000.0, 1.0, 0.02);
}

}  // namespace
}  // namespace ascdg::opt
