// End-to-end integration tests: the full AS-CDG flow on each simulated
// unit with reduced budgets. These assert the paper's qualitative
// claims: each phase improves on its predecessor, previously uncovered
// events get hit, the harvested template dominates per-simulation, and
// structurally unhittable events stay at zero.
#include <gtest/gtest.h>

#include "exec/thread_farm.hpp"
#include "flow/runner.hpp"
#include "coverage/repository.hpp"
#include "duv/ifu.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "duv/lsu.hpp"
#include "duv/registry.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "util/log.hpp"

namespace ascdg {
namespace {

class IntegrationFlow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::kWarn); }

  /// Simulates the unit's full suite to build the "Before CDG"
  /// repository.
  static coverage::CoverageRepository before_repo(const duv::Duv& duv,
                                                  exec::ThreadFarm& farm,
                                                  std::size_t sims_per_tmpl) {
    coverage::CoverageRepository repo(duv.space().size());
    const auto suite = duv.suite();
    std::vector<exec::Job> jobs;
    jobs.reserve(suite.size());
    for (std::size_t j = 0; j < suite.size(); ++j) {
      jobs.push_back({&suite[j], sims_per_tmpl, 0xBEF0000 + j});
    }
    const auto stats = farm.run_all(duv, jobs);
    for (std::size_t j = 0; j < suite.size(); ++j) {
      repo.record(suite[j].name(), stats[j]);
    }
    return repo;
  }

  static flow::FlowConfig small_config() {
    flow::FlowConfig config;
    config.sample_templates = 60;
    config.sample_sims = 30;
    config.opt_directions = 10;
    config.opt_sims_per_point = 80;
    config.opt_max_iterations = 8;
    config.harvest_sims = 1500;
    config.seed = 20210201;  // DATE 2021
    return config;
  }
};

TEST_F(IntegrationFlow, IoUnitFlowHitsUncoveredCrcEvents) {
  const duv::IoUnit io;
  exec::ThreadFarm farm;
  const auto repo = before_repo(io, farm, 400);
  const auto before_total = repo.total();

  const auto target =
      neighbors::family_target(io.space(), "crc", before_total);
  ASSERT_FALSE(target.targets().empty())
      << "defaults must leave part of the crc family uncovered";

  flow::CdgRunner runner(io, farm, small_config());
  const auto suite = io.suite();
  const auto result = runner.run(target, repo, suite);

  // The coarse search ranked the CRC-relevant template first.
  EXPECT_TRUE(result.seed_template.starts_with("io_crc_smoke"))
      << result.seed_template;

  // The harvested best template dominates both the pre-CDG regression
  // average and the sampling-phase average per-sim (the paper:
  // "the best test-template shows significantly better hit rates").
  const double before_rate = target.value(result.before.stats);
  const double sampling_rate = target.value(result.sampling_phase.stats);
  const double harvest_rate = target.value(result.harvest_phase.stats);
  EXPECT_GT(harvest_rate, before_rate);
  EXPECT_GT(harvest_rate, sampling_rate);
  // The sampling phase's best template beats the sampling average (it
  // is the point the optimizer starts from).
  EXPECT_GE(result.sampling.best().target_value, sampling_rate);

  // At least one previously-uncovered family event is now hit by the
  // harvested template.
  std::size_t newly_hit = 0;
  for (const auto event : target.targets()) {
    if (result.harvest_phase.stats.hits(event) > 0) ++newly_hit;
  }
  EXPECT_GT(newly_hit, 0u);
}

TEST_F(IntegrationFlow, L3FlowTurnsNeverHitIntoHit) {
  const duv::L3Cache l3;
  exec::ThreadFarm farm;
  const auto repo = before_repo(l3, farm, 400);
  const auto before_total = repo.total();

  const auto target =
      neighbors::family_target(l3.space(), "byp_reqs", before_total);
  ASSERT_GE(target.targets().size(), 4u)
      << "the byp_reqs tail must start uncovered";

  flow::CdgRunner runner(l3, farm, small_config());
  const auto result = runner.run(target, repo, l3.suite());
  EXPECT_TRUE(result.seed_template.starts_with("l3_nc_smoke"))
      << result.seed_template;

  const auto& family = l3.byp_family();
  // Family status must improve: fewer never-hit events after harvest
  // than before (per-sim normalized comparison via hit > 0).
  std::size_t never_before = 0, never_after = 0;
  for (const auto event : family) {
    if (result.before.stats.hits(event) == 0) ++never_before;
    if (result.harvest_phase.stats.hits(event) == 0) ++never_after;
  }
  EXPECT_LT(never_after, never_before);

  // The harvested template's per-sim family value beats the whole
  // pre-CDG regression suite's.
  EXPECT_GT(target.value(result.harvest_phase.stats),
            target.value(result.before.stats));
}

TEST_F(IntegrationFlow, IfuCrossProductEntry7StaysUncovered) {
  const duv::Ifu ifu;
  exec::ThreadFarm farm;
  const auto repo = before_repo(ifu, farm, 300);
  const auto before_total = repo.total();

  const auto target =
      neighbors::family_target(ifu.space(), "ifu", before_total);
  flow::CdgRunner runner(ifu, farm, small_config());
  const auto result = runner.run(target, repo, ifu.suite());

  const auto family = ifu.space().family_events("ifu");
  ASSERT_EQ(family.size(), 256u);

  const auto before_counts =
      report::count_status(result.before.stats, family);
  const auto after_counts =
      report::count_status(result.harvest_phase.stats, family);

  // Coverage improves overall: fewer never-hit events.
  EXPECT_LT(after_counts.never, before_counts.never);

  // All 32 entry7 events remain uncovered in every phase (structural).
  const auto& cp = ifu.cross_product();
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::size_t coords[4] = {7, t, s, b};
        const auto event = ifu.space().cross_event(cp, coords);
        EXPECT_EQ(result.sampling_phase.stats.hits(event), 0u);
        EXPECT_EQ(result.optimization_phase.stats.hits(event), 0u);
        EXPECT_EQ(result.harvest_phase.stats.hits(event), 0u);
      }
    }
  }
  // ... so at least 32 events stay never-hit.
  EXPECT_GE(after_counts.never, 32u);
}

TEST_F(IntegrationFlow, LsuFlowDeepensForwardingCoverage) {
  const duv::Lsu lsu;
  exec::ThreadFarm farm;
  const auto repo = before_repo(lsu, farm, 400);
  const auto target =
      neighbors::family_target(lsu.space(), "lsu_fwdq", repo.total());
  ASSERT_FALSE(target.targets().empty());

  flow::CdgRunner runner(lsu, farm, small_config());
  const auto result = runner.run(target, repo, lsu.suite());

  // The harvested template hits at least one previously uncovered
  // forwarding depth and dominates the regression average per-sim.
  std::size_t newly_hit = 0;
  for (const auto event : target.targets()) {
    if (result.harvest_phase.stats.hits(event) > 0) ++newly_hit;
  }
  EXPECT_GT(newly_hit, 0u);
  EXPECT_GT(target.value(result.harvest_phase.stats),
            target.value(result.before.stats));
}

TEST_F(IntegrationFlow, FlowIsDeterministicEndToEnd) {
  const duv::IoUnit io;
  exec::ThreadFarm farm_a(3), farm_b(1);
  flow::FlowConfig config = small_config();
  config.sample_templates = 10;
  config.sample_sims = 15;
  config.opt_max_iterations = 2;
  config.harvest_sims = 100;

  coverage::SimStats none(io.space().size());
  const auto target = neighbors::family_target(io.space(), "crc", none);
  const auto suite = io.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& t : suite) {
    if (t.name() == "io_crc_smoke") seed_tmpl = &t;
  }
  ASSERT_NE(seed_tmpl, nullptr);

  flow::CdgRunner runner_a(io, farm_a, config);
  flow::CdgRunner runner_b(io, farm_b, config);
  const auto a = runner_a.run_from_template(target, *seed_tmpl);
  const auto b = runner_b.run_from_template(target, *seed_tmpl);

  // Identical results regardless of farm thread count.
  EXPECT_EQ(a.sampling.best_index, b.sampling.best_index);
  EXPECT_EQ(a.optimization.best_point, b.optimization.best_point);
  EXPECT_EQ(a.optimization.best_value, b.optimization.best_value);
  EXPECT_EQ(a.harvest_phase.stats, b.harvest_phase.stats);
  EXPECT_EQ(tgen::to_text(a.best_template), tgen::to_text(b.best_template));
}

// Cross-unit flow contract: the same mini-flow runs on every bundled
// unit and satisfies the invariants the deployment story relies on.
class FlowContract : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::kWarn); }
};

TEST_P(FlowContract, MiniFlowSatisfiesInvariants) {
  const auto unit = duv::make_unit(GetParam());
  ASSERT_NE(unit, nullptr);
  const auto family = std::string(duv::unit_primary_family(GetParam()));
  ASSERT_FALSE(family.empty());

  exec::ThreadFarm farm;
  coverage::CoverageRepository repo(unit->space().size());
  const auto suite = unit->suite();
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm.run(*unit, suite[j], 250, 42 + j));
  }
  const auto target =
      neighbors::family_target(unit->space(), family, repo.total());

  flow::FlowConfig config;
  config.sample_templates = 30;
  config.sample_sims = 25;
  config.opt_directions = 8;
  config.opt_sims_per_point = 60;
  config.opt_max_iterations = 6;
  config.harvest_sims = 800;
  config.seed = 0xF70;
  flow::CdgRunner runner(*unit, farm, config);
  const auto result = runner.run(target, repo, suite);

  // Accounting invariants.
  EXPECT_EQ(result.before.sims, repo.total_sims());
  EXPECT_EQ(result.sampling_phase.sims, 30u * 25u);
  EXPECT_GT(result.optimization_phase.sims, 0u);
  EXPECT_EQ(result.harvest_phase.stats.sims(), 800u);
  // The harvested template is a valid instantiation of the skeleton.
  for (const auto& param : result.best_template.parameters()) {
    EXPECT_NO_THROW(tgen::validate(param));
  }
  EXPECT_EQ(result.best_template.parameter_names().size(),
            result.skeleton.parameters().size());
  // The harvested template beats the regression average per-sim on the
  // approximated target.
  EXPECT_GT(target.value(result.harvest_phase.stats),
            target.value(result.before.stats));
  // The optimizer's best value is at least the sampling start (noise
  // slack 10%).
  EXPECT_GE(result.optimization.best_value,
            result.sampling.best().target_value * 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllUnits, FlowContract,
                         ::testing::Values("io_unit", "l3_cache", "ifu", "lsu"),
                         [](const auto& info) { return std::string(info.param); });

TEST_F(IntegrationFlow, ReportsRenderOnRealFlow) {
  const duv::IoUnit io;
  exec::ThreadFarm farm;
  flow::FlowConfig config = small_config();
  config.sample_templates = 10;
  config.sample_sims = 15;
  config.opt_max_iterations = 2;
  config.harvest_sims = 100;
  coverage::SimStats none(io.space().size());
  const auto target = neighbors::family_target(io.space(), "crc", none);
  const auto suite = io.suite();
  const tgen::TestTemplate* seed_tmpl = nullptr;
  for (const auto& t : suite) {
    if (t.name() == "io_crc_smoke") seed_tmpl = &t;
  }
  flow::CdgRunner runner(io, farm, config);
  const auto result = runner.run_from_template(target, *seed_tmpl);

  const auto family = io.crc_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  std::ostringstream os;
  report::phase_table(io.space(), events, result).render(os, false);
  report::render_status_bars(os, events, result, false);
  report::render_trace(os, result.optimization);
  os << report::phase_caption(result);
  EXPECT_GT(os.str().size(), 200u);
  EXPECT_NE(os.str().find("crc_096"), std::string::npos);
}

}  // namespace
}  // namespace ascdg
