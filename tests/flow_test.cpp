// Tests for the flow engine's durable sessions: artifact JSON
// round-trips, manifest lifecycle and rejection paths, config
// fingerprinting, resume-without-resimulation for single runs and
// campaigns, bit-identical optimizer restart from a serialized
// checkpoint, and the run / run_from_template shared-tail regression.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/thread_farm.hpp"
#include "coverage/repository.hpp"
#include "duv/io_unit.hpp"
#include "flow/artifacts.hpp"
#include "flow/campaign.hpp"
#include "flow/runner.hpp"
#include "flow/session.hpp"
#include "flow/types.hpp"
#include "neighbors/neighbors.hpp"
#include "opt/implicit_filtering.hpp"
#include "opt/synthetic.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace ascdg::flow {
namespace {

namespace fs = std::filesystem;
using util::ConfigError;
using util::Error;
using util::ParseError;

/// Fresh scratch directory under the system temp dir, wiped on entry so
/// reruns start clean. Unique per test to keep gtest shuffling safe.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ascdg_flow_test_" + name);
  fs::remove_all(dir);
  return dir;
}

// ----------------------------------------------------------- artifacts --

TEST(Artifacts, HexU64RoundTrip) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xDEADBEEFCAFEBABE},
        std::uint64_t{0xFFFFFFFFFFFFFFFF}}) {
    const std::string text = hex_u64(v);
    EXPECT_EQ(text.size(), 18u);
    EXPECT_TRUE(text.starts_with("0x"));
    EXPECT_EQ(parse_hex_u64(util::json_parse("\"" + text + "\"")), v);
  }
  // Malformed inputs: wrong length, missing prefix, non-hex digits.
  EXPECT_THROW((void)parse_hex_u64(util::json_parse(R"("0x123")")), Error);
  EXPECT_THROW(
      (void)parse_hex_u64(util::json_parse(R"("zz0123456789abcdef")")), Error);
  EXPECT_THROW(
      (void)parse_hex_u64(util::json_parse(R"("0x0123456789abcdeg")")), Error);
  EXPECT_THROW((void)parse_hex_u64(util::json_parse("42")), Error);
}

TEST(Artifacts, SimStatsRoundTrip) {
  const auto stats = coverage::SimStats::from_counts(10, {3, 0, 7, 10});
  const auto parsed = sim_stats_from_json(util::json_parse(to_json(stats)));
  EXPECT_EQ(parsed, stats);
  // Empty accumulator round-trips too.
  const coverage::SimStats empty(5);
  EXPECT_EQ(sim_stats_from_json(util::json_parse(to_json(empty))), empty);
}

TEST(Artifacts, PhaseOutcomeRoundTrip) {
  PhaseOutcome phase;
  phase.name = "sampling";
  phase.sims = 4000;
  phase.wall_ms = 123.456789;
  phase.stats = coverage::SimStats::from_counts(4000, {17, 0, 4000});
  const auto parsed =
      phase_outcome_from_json(util::json_parse(to_json(phase)));
  EXPECT_EQ(parsed.name, phase.name);
  EXPECT_EQ(parsed.sims, phase.sims);
  EXPECT_EQ(parsed.wall_ms, phase.wall_ms);  // bit-identical
  EXPECT_EQ(parsed.stats, phase.stats);
}

TEST(Artifacts, SamplingRoundTrip) {
  cdg::RandomSampleResult sampling;
  for (int i = 0; i < 3; ++i) {
    cdg::Sample sample;
    sample.point = {0.1 * i, 1.0 / 3.0, 0.999999999999};
    sample.target_value = 0.07 * i;
    sample.stats = coverage::SimStats::from_counts(
        20, {static_cast<std::size_t>(i), 20});
    sampling.samples.push_back(std::move(sample));
  }
  sampling.best_index = 2;
  sampling.combined = coverage::SimStats::from_counts(60, {3, 60});
  sampling.simulations = 60;

  const auto parsed = sampling_from_json(util::json_parse(to_json(sampling)));
  ASSERT_EQ(parsed.samples.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.samples[i].point, sampling.samples[i].point);
    EXPECT_EQ(parsed.samples[i].target_value, sampling.samples[i].target_value);
    EXPECT_EQ(parsed.samples[i].stats, sampling.samples[i].stats);
  }
  EXPECT_EQ(parsed.best_index, 2u);
  EXPECT_EQ(parsed.combined, sampling.combined);
  EXPECT_EQ(parsed.simulations, 60u);
}

TEST(Artifacts, SamplingRejectsBestIndexOutOfRange) {
  cdg::RandomSampleResult sampling;
  sampling.samples.emplace_back();
  sampling.samples.back().stats = coverage::SimStats(1);
  sampling.best_index = 7;
  EXPECT_THROW((void)sampling_from_json(util::json_parse(to_json(sampling))),
               Error);
}

TEST(Artifacts, OptResultRoundTrip) {
  opt::OptResult result;
  result.best_point = {1.0 / 3.0, 0.25, 1e-12};
  result.best_value = 6.02214076e-2;
  result.evaluations = 321;
  result.reason = opt::StopReason::kTargetReached;
  for (std::size_t i = 0; i < 3; ++i) {
    const double x = static_cast<double>(i);
    opt::IterationRecord record;
    record.iteration = i;
    record.center_value = 0.1 * x;
    record.best_value = 0.1 * x + 0.05;
    record.step = 0.4 / (x + 1.0);
    record.evaluations = 10 * (i + 1);
    record.moved = (i % 2) == 0;
    record.resamples = i % 2;
    record.halved = i == 2;
    result.trace.push_back(record);
  }
  const auto parsed = opt_result_from_json(util::json_parse(to_json(result)));
  EXPECT_EQ(parsed.best_point, result.best_point);
  EXPECT_EQ(parsed.best_value, result.best_value);
  EXPECT_EQ(parsed.evaluations, result.evaluations);
  EXPECT_EQ(parsed.reason, result.reason);
  ASSERT_EQ(parsed.trace.size(), result.trace.size());
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(parsed.trace[i].iteration, result.trace[i].iteration);
    EXPECT_EQ(parsed.trace[i].center_value, result.trace[i].center_value);
    EXPECT_EQ(parsed.trace[i].best_value, result.trace[i].best_value);
    EXPECT_EQ(parsed.trace[i].step, result.trace[i].step);
    EXPECT_EQ(parsed.trace[i].evaluations, result.trace[i].evaluations);
    EXPECT_EQ(parsed.trace[i].moved, result.trace[i].moved);
    EXPECT_EQ(parsed.trace[i].resamples, result.trace[i].resamples);
    EXPECT_EQ(parsed.trace[i].halved, result.trace[i].halved);
  }
}

TEST(Artifacts, CheckpointRoundTripPreservesRawRngState) {
  opt::IfCheckpoint ckpt;
  ckpt.next_iteration = 4;
  ckpt.center = {0.5, 1.0 / 7.0};
  ckpt.center_value = 0.123456789012345678;
  ckpt.step = 0.05;
  ckpt.stale_rounds = 2;
  ckpt.evaluations = 99;
  ckpt.best_point = {0.75, 0.25};
  ckpt.best_value = 0.987654321;
  // RNG words exceed 2^53 — they must survive via the hex encoding.
  ckpt.rng_state = {0xFFFFFFFFFFFFFFFFULL, 0x8000000000000001ULL,
                    0xDEADBEEFCAFEBABEULL, 1ULL};
  ckpt.eval_seed_counter = 0x123456789ABCDEF0ULL;
  opt::IterationRecord record;
  record.iteration = 3;
  record.best_value = 0.9;
  ckpt.trace.push_back(record);

  const auto parsed = checkpoint_from_json(util::json_parse(to_json(ckpt)));
  EXPECT_EQ(parsed.next_iteration, ckpt.next_iteration);
  EXPECT_EQ(parsed.center, ckpt.center);
  EXPECT_EQ(parsed.center_value, ckpt.center_value);
  EXPECT_EQ(parsed.step, ckpt.step);
  EXPECT_EQ(parsed.stale_rounds, ckpt.stale_rounds);
  EXPECT_EQ(parsed.evaluations, ckpt.evaluations);
  EXPECT_EQ(parsed.best_point, ckpt.best_point);
  EXPECT_EQ(parsed.best_value, ckpt.best_value);
  EXPECT_EQ(parsed.rng_state, ckpt.rng_state);
  EXPECT_EQ(parsed.eval_seed_counter, ckpt.eval_seed_counter);
  ASSERT_EQ(parsed.trace.size(), 1u);
  EXPECT_EQ(parsed.trace[0].iteration, 3u);
}

TEST(Artifacts, DoubleArrayRoundTripsNaNAsNull) {
  const std::vector<double> values = {0.0, -1.5, std::nan("")};
  const std::string text = json_double_array(values);
  EXPECT_NE(text.find("null"), std::string::npos);
  const auto parsed = double_array_from_json(util::json_parse(text));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], 0.0);
  EXPECT_EQ(parsed[1], -1.5);
  EXPECT_TRUE(std::isnan(parsed[2]));
}

TEST(Artifacts, ReadJsonFileErrors) {
  const fs::path dir = scratch_dir("read_json");
  EXPECT_THROW((void)read_json_file(dir / "missing.json"), Error);
  atomic_write_file(dir / "bad.json", "{\"a\": not json");
  EXPECT_THROW((void)read_json_file(dir / "bad.json"), ParseError);
  atomic_write_file(dir / "good.json", R"({"a": 1})");
  EXPECT_EQ(read_json_file(dir / "good.json").at("a").as_int64(), 1);
}

// ------------------------------------------------------------- session --

TEST(Session, AtomicWriteCreatesParentsAndReplaces) {
  const fs::path dir = scratch_dir("atomic");
  const fs::path file = dir / "deep" / "nested" / "artifact.json";
  atomic_write_file(file, "first");
  atomic_write_file(file, "second");
  std::ifstream is(file);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  // No temp-file droppings left behind.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(file.parent_path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

std::vector<std::string> stage_names() {
  return {"skeletonize", "sampling", "optimization"};
}

TEST(Session, CreateMarkResumeLifecycle) {
  const fs::path dir = scratch_dir("lifecycle");
  const auto names = stage_names();
  Session session = Session::create(dir, 0xFEEDULL, 2021, names);
  EXPECT_TRUE(fs::exists(dir / "manifest.json"));
  EXPECT_EQ(session.resumes(), 0u);
  EXPECT_FALSE(session.stage_done("skeletonize"));

  session.mark_running("skeletonize");
  session.mark_done("skeletonize", 0, 1.5);
  session.mark_running("sampling");
  session.mark_done("sampling", 400, 20.25);
  session.mark_running("optimization");  // in flight at the "crash"

  Session resumed = Session::open(dir, 0xFEEDULL, names);
  EXPECT_EQ(resumed.resumes(), 1u);
  EXPECT_EQ(resumed.resumed_from(), "sampling");
  EXPECT_TRUE(resumed.stage_done("skeletonize"));
  EXPECT_TRUE(resumed.stage_done("sampling"));
  EXPECT_FALSE(resumed.stage_done("optimization"));
  ASSERT_EQ(resumed.stages().size(), 3u);
  EXPECT_EQ(resumed.stages()[1].sims, 400u);
  EXPECT_EQ(resumed.stages()[1].wall_ms, 20.25);
  EXPECT_EQ(resumed.stages()[2].status, "running");
  EXPECT_EQ(resumed.seed(), 2021u);
  EXPECT_EQ(resumed.fingerprint(), 0xFEEDULL);

  const auto summary = resumed.summary();
  EXPECT_EQ(summary.dir, dir.string());
  EXPECT_EQ(summary.resumes, 1u);
  EXPECT_EQ(summary.resumed_from, "sampling");
}

TEST(Session, ResumeBeforeAnyStageReportsNone) {
  const fs::path dir = scratch_dir("resume_none");
  const auto names = stage_names();
  (void)Session::create(dir, 1, 2, names);
  const Session resumed = Session::open(dir, 1, names);
  EXPECT_EQ(resumed.resumed_from(), "none");
}

TEST(Session, CreateOverwritesExistingManifest) {
  const fs::path dir = scratch_dir("recreate");
  const auto names = stage_names();
  Session first = Session::create(dir, 1, 2, names);
  first.mark_done("skeletonize", 0, 1.0);
  const Session second = Session::create(dir, 1, 2, names);
  EXPECT_FALSE(second.stage_done("skeletonize"));  // started over
  EXPECT_EQ(second.resumes(), 0u);
}

TEST(Session, OpenRejectsMissingManifest) {
  const fs::path dir = scratch_dir("no_manifest");
  fs::create_directories(dir);
  EXPECT_THROW((void)Session::open(dir, 1, stage_names()), Error);
}

TEST(Session, OpenRejectsCorruptManifest) {
  const fs::path dir = scratch_dir("corrupt");
  (void)Session::create(dir, 1, 2, stage_names());
  atomic_write_file(dir / "manifest.json", "{\"schema\": \"ascdg-ses");
  EXPECT_THROW((void)Session::open(dir, 1, stage_names()), ParseError);
}

TEST(Session, OpenRejectsFingerprintMismatch) {
  const fs::path dir = scratch_dir("fingerprint");
  (void)Session::create(dir, 0xAAAAULL, 2, stage_names());
  EXPECT_THROW((void)Session::open(dir, 0xBBBBULL, stage_names()),
               ConfigError);
}

TEST(Session, OpenRejectsStageListMismatch) {
  const fs::path dir = scratch_dir("stage_list");
  (void)Session::create(dir, 1, 2, stage_names());
  const std::vector<std::string> other{"skeletonize", "sampling"};
  EXPECT_THROW((void)Session::open(dir, 1, other), ConfigError);
}

TEST(Session, FingerprintTracksTrajectoryNotTelemetry) {
  FlowConfig config;
  const std::uint64_t base = config_fingerprint(config, "run");

  // Trajectory-affecting knobs change the fingerprint.
  FlowConfig seeded = config;
  seeded.seed = 999;
  EXPECT_NE(config_fingerprint(seeded, "run"), base);
  FlowConfig budget = config;
  budget.sample_templates += 1;
  EXPECT_NE(config_fingerprint(budget, "run"), base);
  FlowConfig refine = config;
  refine.refine_with_real_target = !refine.refine_with_real_target;
  EXPECT_NE(config_fingerprint(refine, "run"), base);

  // The context key (unit / target identity) is part of the question.
  EXPECT_NE(config_fingerprint(config, "template:other"), base);

  // Telemetry and session plumbing are resumable-legal to toggle.
  FlowConfig telemetry = config;
  telemetry.session_dir = "/tmp/elsewhere";
  telemetry.resume = true;
  telemetry.serve_port = 8080;
  telemetry.watchdog_stall_secs = 60;
  telemetry.flight_recorder_records = 128;
  EXPECT_EQ(config_fingerprint(telemetry, "run"), base);
}

// ---------------------------------------------------- optimizer restart --

TEST(OptimizerRestart, SerializedCheckpointResumesBitIdentically) {
  // Run uninterrupted; capture the iteration-2 checkpoint through a full
  // JSON serialize/parse cycle; resume a fresh run from the parsed copy.
  // The paper's noise model (Bernoulli draws) makes any RNG drift
  // visible immediately, so equality here is exact, not approximate.
  opt::ImplicitFilteringOptions options;
  options.directions = 4;
  options.max_iterations = 6;
  options.initial_step = 0.3;
  options.direction_mode = opt::DirectionMode::kSparse;
  options.seed = 42;

  std::string ckpt_json;
  options.on_checkpoint = [&](const opt::IfCheckpoint& ckpt) {
    if (ckpt.next_iteration == 2) ckpt_json = to_json(ckpt);
  };
  opt::BernoulliHill objective({0.7, 0.3, 0.5}, 0.6, 4.0, 50);
  const std::vector<double> x0 = {0.5, 0.5, 0.5};
  const auto full = opt::implicit_filtering(objective, x0, options);
  ASSERT_FALSE(ckpt_json.empty());

  const opt::IfCheckpoint ckpt =
      checkpoint_from_json(util::json_parse(ckpt_json));
  opt::ImplicitFilteringOptions resume_options = options;
  resume_options.on_checkpoint = nullptr;
  resume_options.resume = &ckpt;
  opt::BernoulliHill fresh({0.7, 0.3, 0.5}, 0.6, 4.0, 50);
  const auto resumed = opt::implicit_filtering(fresh, x0, resume_options);

  EXPECT_EQ(resumed.best_value, full.best_value);
  EXPECT_EQ(resumed.best_point, full.best_point);
  EXPECT_EQ(resumed.evaluations, full.evaluations);
  EXPECT_EQ(resumed.reason, full.reason);
  ASSERT_EQ(resumed.trace.size(), full.trace.size());
  for (std::size_t i = 0; i < full.trace.size(); ++i) {
    EXPECT_EQ(resumed.trace[i].center_value, full.trace[i].center_value);
    EXPECT_EQ(resumed.trace[i].best_value, full.trace[i].best_value);
    EXPECT_EQ(resumed.trace[i].step, full.trace[i].step);
  }
}

// ------------------------------------------------------- sessioned runs --

FlowConfig small_config() {
  FlowConfig config;
  config.sample_templates = 12;
  config.sample_sims = 20;
  config.opt_directions = 4;
  config.opt_sims_per_point = 20;
  config.opt_max_iterations = 2;
  config.harvest_sims = 60;
  config.seed = 7;
  return config;
}

TEST(SessionedRun, ResumeRequiresSessionDir) {
  const duv::IoUnit io;
  exec::ThreadFarm farm(2);
  FlowConfig config = small_config();
  config.resume = true;  // but no session_dir
  EXPECT_THROW(CdgRunner(io, farm, config), ConfigError);
}

TEST(SessionedRun, CompletedSessionResumesWithZeroSimulations) {
  const duv::IoUnit io;
  const fs::path dir = scratch_dir("resume_zero");
  const auto target = neighbors::family_target(
      io.space(), "crc", coverage::SimStats(io.space().size()));
  const auto seed_template = io.suite().front();

  FlowConfig config = small_config();
  config.session_dir = dir.string();

  exec::ThreadFarm farm1(2);
  CdgRunner runner1(io, farm1, config);
  const auto first = runner1.run_from_template(target, seed_template);
  EXPECT_EQ(farm1.total_simulations(), first.flow_sims());
  ASSERT_TRUE(runner1.session_summary().has_value());
  EXPECT_EQ(runner1.session_summary()->resumes, 0u);

  // Resume with a FRESH farm: every stage replays from its artifact, so
  // the farm runs nothing and the results are bit-identical.
  config.resume = true;
  exec::ThreadFarm farm2(2);
  CdgRunner runner2(io, farm2, config);
  const auto second = runner2.run_from_template(target, seed_template);
  EXPECT_EQ(farm2.total_simulations(), 0u);

  EXPECT_EQ(second.seed_template, first.seed_template);
  EXPECT_EQ(second.sampling.best_index, first.sampling.best_index);
  EXPECT_EQ(second.sampling.combined, first.sampling.combined);
  EXPECT_EQ(second.optimization.best_value, first.optimization.best_value);
  EXPECT_EQ(second.optimization.best_point, first.optimization.best_point);
  EXPECT_EQ(second.harvest_phase.stats, first.harvest_phase.stats);
  EXPECT_EQ(second.sampling_phase.sims, first.sampling_phase.sims);
  EXPECT_EQ(second.optimization_phase.sims, first.optimization_phase.sims);
  EXPECT_EQ(second.harvest_phase.sims, first.harvest_phase.sims);
  ASSERT_EQ(second.first_hits.size(), first.first_hits.size());
  for (std::size_t i = 0; i < first.first_hits.size(); ++i) {
    EXPECT_EQ(second.first_hits[i].phase, first.first_hits[i].phase);
  }

  ASSERT_TRUE(runner2.session_summary().has_value());
  const auto& summary = *runner2.session_summary();
  EXPECT_EQ(summary.resumes, 1u);
  EXPECT_EQ(summary.resumed_from, "harvest");
  for (const auto& stage : summary.stages) {
    EXPECT_TRUE(stage.done()) << stage.name;
  }
}

TEST(SessionedRun, ResumeRejectsChangedConfig) {
  const duv::IoUnit io;
  const fs::path dir = scratch_dir("resume_reject");
  const auto target = neighbors::family_target(
      io.space(), "crc", coverage::SimStats(io.space().size()));

  FlowConfig config = small_config();
  config.session_dir = dir.string();
  exec::ThreadFarm farm(2);
  CdgRunner runner(io, farm, config);
  (void)runner.run_from_template(target, io.suite().front());

  // A different seed answers a different question: hard error.
  config.resume = true;
  config.seed = 1234;
  exec::ThreadFarm farm2(2);
  CdgRunner changed(io, farm2, config);
  EXPECT_THROW((void)changed.run_from_template(target, io.suite().front()),
               ConfigError);

  // So does resuming a run() session through run_from_template (the
  // context key differs even with identical budgets).
  config.seed = small_config().seed;
  exec::ThreadFarm farm3(2);
  CdgRunner other_entry(io, farm3, config);
  const auto other_template = io.suite().back();
  EXPECT_THROW((void)other_entry.run_from_template(target, other_template),
               ConfigError);
}

// The dedupe regression for the monolith split: run() is coarse search
// plus the exact tail run_from_template() executes, so with the coarse
// winner as the explicit seed both entry points must produce the same
// flow trajectory (before-coverage bookkeeping aside).
TEST(SessionedRun, RunMatchesRunFromTemplateOnSameSeed) {
  const duv::IoUnit io;
  const auto suite = io.suite();

  exec::ThreadFarm farm1(2);
  coverage::CoverageRepository repo(io.space().size());
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm1.run(io, suite[j], 150, 500 + j));
  }
  FlowConfig config = small_config();
  config.coarse_best_templates = 1;  // seed == one suite template, verbatim
  const auto target = neighbors::family_target(io.space(), "crc", repo.total());

  CdgRunner full(io, farm1, config);
  const auto via_run = full.run(target, repo, suite);

  const tgen::TestTemplate* seed_template = nullptr;
  for (const auto& t : suite) {
    if (t.name() == via_run.seed_template) seed_template = &t;
  }
  ASSERT_NE(seed_template, nullptr) << via_run.seed_template;

  exec::ThreadFarm farm2(2);
  CdgRunner from_template(io, farm2, config);
  const auto via_template =
      from_template.run_from_template(target, *seed_template);

  EXPECT_EQ(via_template.seed_template, via_run.seed_template);
  EXPECT_EQ(via_template.skeleton.mark_count(), via_run.skeleton.mark_count());
  ASSERT_EQ(via_template.sampling.samples.size(),
            via_run.sampling.samples.size());
  EXPECT_EQ(via_template.sampling.best_index, via_run.sampling.best_index);
  EXPECT_EQ(via_template.sampling.combined, via_run.sampling.combined);
  EXPECT_EQ(via_template.optimization.best_value,
            via_run.optimization.best_value);
  EXPECT_EQ(via_template.optimization.best_point,
            via_run.optimization.best_point);
  EXPECT_EQ(via_template.harvest_phase.stats, via_run.harvest_phase.stats);
  EXPECT_EQ(via_template.flow_sims(), via_run.flow_sims());
}

// ------------------------------------------------------------ campaign --

TEST(Campaign, SessionResumesWithZeroSimulations) {
  const duv::IoUnit io;
  const fs::path dir = scratch_dir("campaign_resume");
  const auto family = io.crc_family();
  const std::vector<neighbors::ApproximatedTarget> targets{
      neighbors::ApproximatedTarget({family[2]},
                                    {{family[0], 0.5}, {family[2], 2.0}}),
      neighbors::ApproximatedTarget({family[3]},
                                    {{family[1], 0.5}, {family[3], 2.0}}),
  };
  const auto suite = io.suite();
  FlowConfig config = small_config();
  config.session_dir = dir.string();

  exec::ThreadFarm farm1(2);
  const auto first =
      run_multi_target(io, farm1, config, targets, suite.front());
  EXPECT_EQ(first.session_dir, dir.string());
  ASSERT_EQ(first.sessions.size(), 3u);  // shared + one per target
  EXPECT_TRUE(fs::exists(dir / "campaign.json"));
  EXPECT_TRUE(fs::exists(dir / "shared" / "manifest.json"));
  EXPECT_TRUE(fs::exists(dir / "target_00" / "manifest.json"));
  EXPECT_TRUE(fs::exists(dir / "target_01" / "manifest.json"));

  config.resume = true;
  exec::ThreadFarm farm2(2);
  const auto second =
      run_multi_target(io, farm2, config, targets, suite.front());
  EXPECT_EQ(farm2.total_simulations(), 0u);
  EXPECT_EQ(second.sims_saved, first.sims_saved);
  EXPECT_EQ(second.sampling.best_index, first.sampling.best_index);
  EXPECT_EQ(second.sampling.combined, first.sampling.combined);
  ASSERT_EQ(second.per_target.size(), first.per_target.size());
  for (std::size_t t = 0; t < first.per_target.size(); ++t) {
    EXPECT_EQ(second.per_target[t].optimization.best_value,
              first.per_target[t].optimization.best_value);
    EXPECT_EQ(second.per_target[t].optimization.best_point,
              first.per_target[t].optimization.best_point);
    EXPECT_EQ(second.per_target[t].harvest_phase.stats,
              first.per_target[t].harvest_phase.stats);
  }
  for (const auto& session : second.sessions) {
    EXPECT_EQ(session.resumes, 1u);
  }
}

TEST(Campaign, ResumeRejectsDifferentTargetSet) {
  const duv::IoUnit io;
  const fs::path dir = scratch_dir("campaign_reject");
  const auto family = io.crc_family();
  const std::vector<neighbors::ApproximatedTarget> two{
      neighbors::ApproximatedTarget({family[0]}, {{family[0], 1.0}}),
      neighbors::ApproximatedTarget({family[1]}, {{family[1], 1.0}}),
  };
  const auto suite = io.suite();
  FlowConfig config = small_config();
  config.session_dir = dir.string();
  exec::ThreadFarm farm(2);
  (void)run_multi_target(io, farm, config, two, suite.front());

  // Resuming with a different target count contradicts the manifest.
  config.resume = true;
  const std::vector<neighbors::ApproximatedTarget> three{
      two[0], two[1],
      neighbors::ApproximatedTarget({family[2]}, {{family[2], 1.0}})};
  exec::ThreadFarm farm2(2);
  EXPECT_THROW((void)run_multi_target(io, farm2, config, three, suite.front()),
               ConfigError);
}

}  // namespace
}  // namespace ascdg::flow
