// Tests for the live-introspection service: the flight-recorder ring
// (ordering, truncation, tear-free concurrent writes, signal-safe
// dumps), tracer mirroring, the run watchdog's stall verdict, resource
// telemetry, live run state, and the embedded HTTP server — including
// the acceptance scenario where /healthz flips to degraded while a
// farm worker is artificially wedged.
#include <gtest/gtest.h>

#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/sim_farm.hpp"
#include "duv/io_unit.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/run_state.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/jsonl.hpp"

namespace ascdg::obs {
namespace {

// ---------------------------------------------------------------- ring

TEST(FlightRecorder, KeepsTheLastKRecordsInOrder) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("line" + std::to_string(i));
  }
  const std::vector<std::string> records = recorder.dump();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0], "line6");
  EXPECT_EQ(records[1], "line7");
  EXPECT_EQ(records[2], "line8");
  EXPECT_EQ(records[3], "line9");
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.capacity(), 4u);
}

TEST(FlightRecorder, ZeroCapacityIsClampedToOne) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.record("only");
  const std::vector<std::string> records = recorder.dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "only");
}

TEST(FlightRecorder, TruncatesRecordsAtTheByteBudget) {
  FlightRecorder recorder(2);
  const std::string oversized(FlightRecorder::kMaxLine + 100, 'x');
  recorder.record(oversized);
  const std::vector<std::string> records = recorder.dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size(), FlightRecorder::kMaxLine);
  EXPECT_EQ(records[0], oversized.substr(0, FlightRecorder::kMaxLine));
}

TEST(FlightRecorder, ConcurrentWritersNeverTearRecords) {
  FlightRecorder recorder(64);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      // Each writer uses a homogeneous line, so any torn copy would
      // show up as a mixed-character record.
      const std::string line(32, static_cast<char>('a' + t));
      for (std::size_t i = 0; i < kPerThread; ++i) recorder.record(line);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);
  const std::vector<std::string> records = recorder.dump();
  EXPECT_EQ(records.size(), 64u);
  for (const auto& line : records) {
    ASSERT_EQ(line.size(), 32u);
    for (const char c : line) {
      ASSERT_EQ(c, line[0]) << "torn record: " << line;
    }
  }
}

TEST(FlightRecorder, DumpToFdWritesEveryRetainedLine) {
  FlightRecorder recorder(3);
  recorder.record("alpha");
  recorder.record("beta");
  recorder.record("gamma");
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  recorder.dump_to_fd(fds[1]);
  ::close(fds[1]);
  std::string out;
  char buffer[256];
  ssize_t n = 0;
  while ((n = ::read(fds[0], buffer, sizeof buffer)) > 0) {
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  EXPECT_EQ(out, "alpha\nbeta\ngamma\n");
}

TEST(FlightRecorderDeathTest, FatalSignalDumpsTheTailToStderr) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  FlightRecorder recorder(4);
  recorder.record("{\"event\":\"last_words\"}");
  set_flight_recorder(&recorder);
  install_crash_dump();
  EXPECT_DEATH(std::abort(), "last_words");
  set_flight_recorder(nullptr);
}

TEST(Tracer, MirrorsEveryEmittedLineIntoTheRecorder) {
  FlightRecorder recorder(8);
  Tracer tracer;  // sink-less: records only into the ring
  tracer.mirror_to(&recorder);
  tracer.emit(util::JsonObject{}.add("event", "custom"));
  { Span span = tracer.span("phase"); }
  const std::vector<std::string> records = recorder.dump();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].find("\"event\":\"custom\""), std::string::npos);
  EXPECT_NE(records[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(records[1].find("\"span\":\"phase\""), std::string::npos);
}

TEST(Tracer, MirrorAndFileSinkSeeTheSameLines) {
  FlightRecorder recorder(8);
  std::ostringstream sink;
  Tracer tracer(sink);
  tracer.mirror_to(&recorder);
  tracer.emit(util::JsonObject{}.add("event", "both"));
  const std::vector<std::string> records = recorder.dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0] + "\n", sink.str());
}

// ----------------------------------------------------------- run state

TEST(RunState, TracksPhaseStackOptimizerAndCoverage) {
  RunState state;
  EXPECT_EQ(state.snapshot().current_phase(), "idle");
  state.start_flow("seed_a");
  state.enter_phase("flow");
  state.enter_phase("sampling");
  RunState::Snapshot snap = state.snapshot();
  EXPECT_EQ(snap.seed_template, "seed_a");
  EXPECT_EQ(snap.current_phase(), "sampling");
  ASSERT_EQ(snap.phase_stack.size(), 2u);
  EXPECT_EQ(snap.phase_stack.front(), "flow");

  state.exit_phase();
  EXPECT_EQ(state.snapshot().current_phase(), "flow");
  state.exit_phase();
  state.exit_phase();  // empty stack: no-op, no underflow
  EXPECT_EQ(state.snapshot().current_phase(), "idle");

  state.set_optimizer(3, 0.5);
  state.set_coverage(4, 2);
  snap = state.snapshot();
  EXPECT_TRUE(snap.opt_started);
  EXPECT_EQ(snap.opt_iteration, 3u);
  EXPECT_DOUBLE_EQ(snap.opt_best_value, 0.5);
  EXPECT_TRUE(snap.coverage_known);
  EXPECT_EQ(snap.targets_hit, 4u);
  EXPECT_EQ(snap.targets_remaining, 2u);
  EXPECT_GE(snap.updates, 8u);

  state.reset();
  snap = state.snapshot();
  EXPECT_EQ(snap.current_phase(), "idle");
  EXPECT_FALSE(snap.opt_started);
  EXPECT_GE(snap.updates, 9u);  // reset itself counts as progress
}

// ------------------------------------------------------------ resource

TEST(Resource, ReadsPlausibleUsageAndPublishesGauges) {
  const ResourceUsage usage = read_resource_usage();
  EXPECT_GT(usage.max_rss_bytes, 0u);
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GT(usage.cpu_us(), 0u);

  Registry reg;
  const ResourceUsage published = update_resource_gauges(reg);
  EXPECT_GT(published.rss_bytes, 0u);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* rss = snap.find("ascdg_proc_rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_GT(rss->gauge, 0);
  EXPECT_NE(snap.find("ascdg_proc_max_rss_bytes"), nullptr);
  EXPECT_NE(snap.find("ascdg_proc_cpu_user_ms"), nullptr);
  EXPECT_NE(snap.find("ascdg_proc_cpu_system_ms"), nullptr);
  const MetricSample* hist = snap.find("ascdg_proc_rss_sample_bytes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
}

TEST(Resource, MissingStatmSkipsRssGaugesInsteadOfPublishingZero) {
  // Platforms without /proc/self/statm must not report RSS as 0 —
  // the gauges are skipped entirely and the getrusage-backed ones stay.
  const ResourceUsage usage =
      read_resource_usage_at("/nonexistent/statm-for-ascdg-test");
  EXPECT_FALSE(usage.rss_available);
  EXPECT_EQ(usage.rss_bytes, 0u);
  EXPECT_GT(usage.max_rss_bytes, 0u);  // getrusage still works

  Registry reg;
  update_resource_gauges(reg, usage);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("ascdg_proc_rss_bytes"), nullptr);
  EXPECT_EQ(snap.find("ascdg_proc_vm_bytes"), nullptr);
  EXPECT_EQ(snap.find("ascdg_proc_rss_sample_bytes"), nullptr);
  EXPECT_NE(snap.find("ascdg_proc_max_rss_bytes"), nullptr);
  EXPECT_NE(snap.find("ascdg_proc_cpu_user_ms"), nullptr);

  // Phase footprints degrade the same way.
  ResourceUsage start;
  ResourceUsage end;
  end.user_cpu_us = 1000;
  update_phase_resource_gauges(reg, "sampling", start, end);
  const MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(after.find("ascdg_phase_rss_bytes", "phase=\"sampling\""), nullptr);
  EXPECT_NE(after.find("ascdg_phase_cpu_ms", "phase=\"sampling\""), nullptr);
}

TEST(Resource, StatmBackedReadMarksRssAvailable) {
  const ResourceUsage usage = read_resource_usage();
  EXPECT_TRUE(usage.rss_available);
}

TEST(Resource, PhaseFootprintGaugesAreLabeledPerPhase) {
  Registry reg;
  ResourceUsage start;
  ResourceUsage end;
  start.user_cpu_us = 1000;
  end.user_cpu_us = 3500;
  end.rss_bytes = 8ull << 20;
  end.rss_available = true;
  update_phase_resource_gauges(reg, "sampling", start, end);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* cpu = snap.find("ascdg_phase_cpu_ms", "phase=\"sampling\"");
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->gauge, 2);  // 2500 us -> 2 ms
  const MetricSample* rss =
      snap.find("ascdg_phase_rss_bytes", "phase=\"sampling\"");
  ASSERT_NE(rss, nullptr);
  EXPECT_EQ(rss->gauge, 8ll << 20);
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, ProgressSignalSumsFarmAndOptimizerSeries) {
  Registry reg;
  reg.counter("ascdg_farm_simulations_total", {{"farm", "a"}}).add(10);
  reg.counter("ascdg_farm_simulations_total", {{"farm", "b"}}).add(5);
  reg.counter("ascdg_opt_iterations_total").add(3);
  reg.counter("ascdg_unrelated_total").add(100);
  EXPECT_EQ(Watchdog::progress_signal(reg.snapshot()), 18u);

  EXPECT_FALSE(Watchdog::work_outstanding(reg.snapshot()));
  reg.gauge("ascdg_farm_active_runs", {{"farm", "a"}}).add(1);
  EXPECT_TRUE(Watchdog::work_outstanding(reg.snapshot()));
}

TEST(Watchdog, StallsOnlyWithWorkOutstandingAndRecoversOnProgress) {
  Registry reg;
  Counter& sims = reg.counter("ascdg_farm_simulations_total", {{"farm", "w"}});
  Gauge& active = reg.gauge("ascdg_farm_active_runs", {{"farm", "w"}});
  std::ostringstream trace_out;
  Tracer tracer(trace_out);

  WatchdogConfig config;
  config.start_thread = false;
  config.sample_resources = false;
  config.dump_recorder_on_stall = false;
  config.stall_after = std::chrono::milliseconds(50);
  config.trace = &tracer;
  Watchdog dog(reg, config);

  // Idle past the budget with NO work outstanding: healthy.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  dog.poll_now();
  EXPECT_FALSE(dog.health().stalled);

  // Work outstanding and silent past the budget: stalled.
  active.add(1);
  dog.poll_now();
  Watchdog::Health health = dog.health();
  EXPECT_TRUE(health.stalled);
  EXPECT_EQ(health.stalls, 1u);
  EXPECT_NE(health.reason.find("no progress"), std::string::npos);
  EXPECT_GE(health.ms_since_progress, 50u);
  const MetricSample* stalls =
      reg.snapshot().find("ascdg_watchdog_stalls_total");
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(stalls->counter, 1u);
  EXPECT_NE(trace_out.str().find("\"event\":\"stall\""), std::string::npos);

  // Progress clears the verdict (and emits the recovery event).
  sims.add(64);
  dog.poll_now();
  health = dog.health();
  EXPECT_FALSE(health.stalled);
  EXPECT_TRUE(health.reason.empty());
  EXPECT_EQ(health.stalls, 1u);  // flip count is cumulative
  EXPECT_NE(trace_out.str().find("\"event\":\"stall_recovered\""),
            std::string::npos);
  EXPECT_EQ(dog.health().polls, 3u);
  active.sub(1);
}

TEST(Watchdog, MonitorThreadPollsAndSamplesResources) {
  Registry reg;
  WatchdogConfig config;
  config.poll_interval = std::chrono::milliseconds(5);
  config.stall_after = std::chrono::hours(1);
  Watchdog dog(reg, config);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dog.health().polls == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(dog.health().polls, 0u);
  // sample_resources (default on) publishes the proc gauges as it polls.
  EXPECT_NE(reg.snapshot().find("ascdg_proc_rss_bytes"), nullptr);
}

// ---------------------------------------------------------------- http

TEST(HttpServer, MetricsEndpointMatchesTheExporterByteForByte) {
  Registry reg;
  reg.counter("ascdg_demo_total", {{"farm", "9"}}).add(41);
  HttpServerConfig config;
  config.registry = &reg;
  HttpServer server(config);
  EXPECT_NE(server.port(), 0);

  const std::string response = server.handle("GET", "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  // The served body and a direct registry export are the same snapshot
  // (the request counter ticks before the snapshot, so both sides see
  // this request).
  EXPECT_EQ(response.substr(split + 4), to_prometheus(reg.snapshot()));
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServer, MetricsJsonServesTheV1Schema) {
  Registry reg;
  reg.counter("ascdg_demo_total").add(7);
  HttpServerConfig config;
  config.registry = &reg;
  HttpServer server(config);
  const std::string response = server.handle("GET", "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"schema\":\"ascdg-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(response.find("\"name\":\"ascdg_demo_total\""), std::string::npos);
}

TEST(HttpServer, HealthzWithoutWatchdogReportsOk) {
  Registry reg;
  HttpServerConfig config;
  config.registry = &reg;
  HttpServer server(config);
  const std::string response = server.handle("GET", "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"schema\":\"ascdg-healthz-v1\""),
            std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.find("\"watchdog\":false"), std::string::npos);
}

TEST(HttpServer, RunzServesThePrivateRunState) {
  Registry reg;
  RunState state;
  state.start_flow("seed_x");
  state.enter_phase("flow");
  state.enter_phase("optimization");
  state.set_optimizer(5, 1.25);
  HttpServerConfig config;
  config.registry = &reg;
  config.run_state = &state;
  HttpServer server(config);
  const std::string response = server.handle("GET", "/runz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"schema\":\"ascdg-runz-v1\""), std::string::npos);
  EXPECT_NE(response.find("\"phase\":\"optimization\""), std::string::npos);
  EXPECT_NE(response.find("\"phase_stack\":[\"flow\",\"optimization\"]"),
            std::string::npos);
  EXPECT_NE(response.find("\"seed_template\":\"seed_x\""), std::string::npos);
  EXPECT_NE(response.find("\"opt_iteration\":5"), std::string::npos);
  EXPECT_NE(response.find("\"opt_best_value\":1.25"), std::string::npos);
}

TEST(HttpServer, FlightRecorderEndpointServesTheTailOr404s) {
  Registry reg;
  {
    HttpServerConfig config;
    config.registry = &reg;
    HttpServer server(config);
    const std::string response = server.handle("GET", "/flightrecorder");
    EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  }
  FlightRecorder recorder(2);
  recorder.record("first");
  recorder.record("second");
  recorder.record("third");  // evicts "first"
  HttpServerConfig config;
  config.registry = &reg;
  config.recorder = &recorder;
  HttpServer server(config);
  const std::string response = server.handle("GET", "/flightrecorder");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"schema\":\"ascdg-flightrecorder-v1\""),
            std::string::npos);
  EXPECT_NE(response.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(response.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(response.find("\"records\":[\"second\",\"third\"]"),
            std::string::npos);
  EXPECT_EQ(response.find("first"), std::string::npos);
}

TEST(HttpServer, RejectsUnknownPathsAndNonGetMethods) {
  Registry reg;
  HttpServerConfig config;
  config.registry = &reg;
  HttpServer server(config);
  const std::string missing = server.handle("GET", "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(missing.find("/flightrecorder"), std::string::npos);  // hint
  const std::string post = server.handle("POST", "/metrics");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  // Query strings are ignored, not 404ed.
  const std::string query = server.handle("GET", "/healthz?verbose=1");
  EXPECT_NE(query.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(HttpServer, ServesARealSocketClient) {
  Registry reg;
  reg.counter("ascdg_socket_total").add(1);
  HttpServerConfig config;
  config.registry = &reg;
  HttpServer server(config);
  ASSERT_NE(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr), 0);
  const std::string request =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("ascdg_socket_total 1"), std::string::npos);
}

// --------------------------------------------- stalled-farm acceptance

/// Forwards to an inner unit, but every simulate() call parks on a
/// latch until release() — an artificially wedged farm worker.
class BlockingDuv final : public duv::Duv {
 public:
  explicit BlockingDuv(const duv::Duv& inner) : inner_(&inner) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "blocking";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return inner_->space();
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return inner_->defaults();
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override {
    std::unique_lock lock(mutex_);
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    lock.unlock();
    return inner_->simulate(tmpl, seed);
  }
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return inner_->suite();
  }

  void wait_until_blocked() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return blocked_; });
  }
  void release() {
    const std::scoped_lock lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  const duv::Duv* inner_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool blocked_ = false;
  bool released_ = false;
};

TEST(Introspection, HealthzFlipsDegradedWhileAFarmWorkerIsWedged) {
  const duv::IoUnit io;
  BlockingDuv blocking(io);
  batch::SimFarm farm(2);

  // The farm instruments the process-wide registry, so the watchdog and
  // server watch that (exactly the production wiring of `ascdg run
  // --serve --watchdog`).
  WatchdogConfig wd_config;
  wd_config.start_thread = false;
  wd_config.sample_resources = false;
  wd_config.dump_recorder_on_stall = false;
  wd_config.stall_after = std::chrono::milliseconds(40);
  Watchdog dog(registry(), wd_config);
  HttpServerConfig http_config;
  http_config.watchdog = &dog;
  HttpServer server(http_config);

  std::thread runner([&farm, &blocking, &io] {
    (void)farm.run(blocking, io.defaults(), 4, 0xB10C);
  });
  blocking.wait_until_blocked();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  dog.poll_now();

  EXPECT_TRUE(dog.health().stalled);
  const std::string degraded = server.handle("GET", "/healthz");
  EXPECT_NE(degraded.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(degraded.find("no progress"), std::string::npos);

  blocking.release();
  runner.join();
  dog.poll_now();
  EXPECT_FALSE(dog.health().stalled);
  const std::string recovered = server.handle("GET", "/healthz");
  EXPECT_NE(recovered.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(recovered.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(recovered.find("\"stalls\":1"), std::string::npos);
}

TEST(Introspection, FarmPublishesActiveRunsAndBusyFraction) {
  const duv::IoUnit io;
  batch::SimFarm farm(2);
  const batch::TelemetrySnapshot before = farm.telemetry();
  EXPECT_EQ(before.active_runs, 0u);
  (void)farm.run(io, io.defaults(), 64, 0xFA53);
  const batch::TelemetrySnapshot after = farm.telemetry();
  EXPECT_EQ(after.active_runs, 0u);  // run retired
  EXPECT_GT(after.busy_ns, 0u);
  EXPECT_GT(after.busy_fraction, 0.0);
  EXPECT_LE(after.busy_fraction, 1.0);
  // The ppm gauge mirror of the same number is in the registry.
  bool found = false;
  for (const auto& sample : registry().snapshot().samples) {
    if (sample.name == "ascdg_farm_worker_busy_fraction" &&
        sample.gauge > 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ascdg::obs
