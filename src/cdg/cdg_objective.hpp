// Adapter that exposes the CDG problem as an opt::Objective: a point in
// [0,1]^d is a weight assignment for the skeleton's marks; evaluating it
// instantiates a test-template, simulates it N times on the batch farm,
// and returns the empirical approximated-target value T_N(t).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "batch/sim_farm.hpp"
#include "neighbors/neighbors.hpp"
#include "opt/objective.hpp"
#include "tgen/skeleton.hpp"

namespace ascdg::cdg {

class CdgObjective final : public opt::Objective {
 public:
  /// All referenced objects must outlive the objective.
  CdgObjective(const duv::Duv& duv, batch::SimFarm& farm,
               const tgen::Skeleton& skeleton,
               const neighbors::ApproximatedTarget& target,
               std::size_t sims_per_point);

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return skeleton_->mark_count();
  }

  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override;

  /// Simulations run through this objective so far (= evaluations * N).
  [[nodiscard]] std::size_t simulations() const noexcept { return sims_; }

  /// Coverage accumulated across every evaluation — the paper's
  /// "Optimization phase" hit-statistics column aggregates exactly this.
  [[nodiscard]] const coverage::SimStats& combined() const noexcept {
    return combined_;
  }

  /// Best point seen so far by approximated-target value, with its stats.
  [[nodiscard]] const std::vector<double>& best_point() const noexcept {
    return best_point_;
  }
  [[nodiscard]] double best_value() const noexcept { return best_value_; }
  [[nodiscard]] bool has_best() const noexcept { return !best_point_.empty(); }

 private:
  const duv::Duv* duv_;
  batch::SimFarm* farm_;
  const tgen::Skeleton* skeleton_;
  const neighbors::ApproximatedTarget* target_;
  std::size_t sims_per_point_;
  std::size_t sims_ = 0;
  std::size_t evals_ = 0;
  coverage::SimStats combined_;
  std::vector<double> best_point_;
  double best_value_ = 0.0;
};

}  // namespace ascdg::cdg
