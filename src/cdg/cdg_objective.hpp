// Adapter that exposes the CDG problem as an opt::Objective: a point in
// [0,1]^d is a weight assignment for the skeleton's marks; evaluating it
// instantiates a test-template, simulates it N times on the execution
// backend,
// and returns the empirical approximated-target value T_N(t).
//
// Evaluation is batched: evaluate_batch() instantiates one template per
// point up front and submits a single Backend::run_all covering every
// point's sims_per_point simulations, so the backend's workers stay
// saturated across a whole optimizer stencil / population instead of a
// single point. Per-point statistics are separated by job (seed_root =
// the point's eval seed), preserving the per-(point, seed) determinism
// of the scalar path — scalar evaluate() is just a batch of one.
//
// A bounded LRU cache keyed on (quantized point, eval seed) short-
// circuits resimulation: a center resample with a reused seed or a
// revisited stencil point returns the cached value and statistics
// (bit-identical to what the simulation would produce, since the same
// (point, seed) always yields the same stats). Cache traffic is
// exported as ascdg_eval_cache_{hits,misses}_total; batch sizes feed
// the ascdg_eval_batch_size histogram, and each batch can emit an
// "eval_batch" span when a tracer is attached.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/backend.hpp"
#include "neighbors/neighbors.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/objective.hpp"
#include "tgen/skeleton.hpp"

namespace ascdg::cdg {

/// Configuration of the seeded evaluation cache. `capacity` bounds the
/// number of retained (point, seed) entries (LRU eviction); disabling
/// the cache never changes evaluation *values* — only whether repeated
/// (point, seed) pairs cost simulations again.
struct EvalCacheConfig {
  bool enabled = true;
  std::size_t capacity = 1024;
};

class CdgObjective final : public opt::Objective {
 public:
  /// All referenced objects (including `trace`, when given) must
  /// outlive the objective. `probe_label` names the instantiated
  /// templates: "<skeleton>_o<id>_<probe_label><ordinal>", where <id>
  /// is unique per objective instance so concurrent objectives over the
  /// same skeleton never emit colliding template names.
  CdgObjective(const duv::Duv& duv, exec::Backend& farm,
               const tgen::Skeleton& skeleton,
               const neighbors::ApproximatedTarget& target,
               std::size_t sims_per_point, EvalCacheConfig cache = {},
               obs::Tracer* trace = nullptr, std::string probe_label = "probe");

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return skeleton_->mark_count();
  }

  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override;

  [[nodiscard]] std::vector<double> evaluate_batch(
      std::span<const opt::Point> xs,
      std::span<const std::uint64_t> seeds) override;

  /// One point's batched evaluation: the approximated-target value plus
  /// the per-event statistics that produced it.
  struct PointEval {
    double value = 0.0;
    coverage::SimStats stats;
  };

  /// Batched evaluation that also hands back each point's statistics —
  /// the random-sampling phase and multi-target re-scoring need the
  /// per-point stats, not just the values. Semantics are identical to
  /// evaluate_batch (same dispatch, cache, and bookkeeping).
  [[nodiscard]] std::vector<PointEval> evaluate_batch_full(
      std::span<const opt::Point> xs, std::span<const std::uint64_t> seeds);

  /// Simulations actually run through this objective so far. Cache hits
  /// do not resimulate, so this can be less than evaluations * N.
  [[nodiscard]] std::size_t simulations() const noexcept { return sims_; }

  /// Coverage accumulated across every evaluation (cache hits merge
  /// their cached statistics, so this matches a cache-free run) — the
  /// paper's "Optimization phase" hit-statistics column aggregates
  /// exactly this.
  [[nodiscard]] const coverage::SimStats& combined() const noexcept {
    return combined_;
  }

  /// Best point seen so far by approximated-target value, with its stats.
  [[nodiscard]] const std::vector<double>& best_point() const noexcept {
    return best_point_;
  }
  [[nodiscard]] double best_value() const noexcept { return best_value_; }
  [[nodiscard]] bool has_best() const noexcept { return !best_point_.empty(); }

  /// Cache traffic (this objective only; the registry counters
  /// aggregate process-wide).
  [[nodiscard]] std::size_t cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::size_t cache_misses() const noexcept {
    return cache_misses_;
  }

  /// The per-objective template-name prefix ("<skeleton>_o<id>"), for
  /// collision checks.
  [[nodiscard]] const std::string& probe_prefix() const noexcept {
    return probe_prefix_;
  }

 private:
  /// Cache key: the eval seed plus the point quantized to 1e-9 per
  /// coordinate (doubles that differ below the quantum instantiate
  /// the same template weights for every practical purpose).
  struct CacheKey {
    std::vector<std::int64_t> point;
    std::uint64_t seed = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept;
  };
  struct CacheEntry {
    CacheKey key;
    double value = 0.0;
    coverage::SimStats stats;
  };

  [[nodiscard]] CacheKey make_key(std::span<const double> x,
                                  std::uint64_t seed) const;
  /// Returns the cached entry for `key` (touching it most-recently-used)
  /// or nullptr.
  [[nodiscard]] const CacheEntry* cache_lookup(const CacheKey& key);
  void cache_insert(CacheKey key, double value, const coverage::SimStats& stats);

  const duv::Duv* duv_;
  exec::Backend* farm_;
  const tgen::Skeleton* skeleton_;
  const neighbors::ApproximatedTarget* target_;
  std::size_t sims_per_point_;
  EvalCacheConfig cache_config_;
  obs::Tracer* trace_;
  std::string probe_prefix_;
  std::string probe_label_;
  std::size_t sims_ = 0;
  std::size_t evals_ = 0;
  coverage::SimStats combined_;
  std::vector<double> best_point_;
  double best_value_ = 0.0;

  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  /// LRU order, most-recent first; the map indexes into the list.
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      cache_index_;

  /// Registry handles (process-wide series, registered once per
  /// objective construction — registration is cold, mutation wait-free).
  obs::Counter* m_cache_hits_;
  obs::Counter* m_cache_misses_;
  obs::Histogram* m_batch_size_;
};

}  // namespace ascdg::cdg
