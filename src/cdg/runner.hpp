// Source-compatibility shim: the monolithic cdg::CdgRunner was
// decomposed into the stage-pipeline flow engine under src/flow/ (see
// flow/runner.hpp and DESIGN.md "Flow engine & sessions"). Existing
// code that spells ascdg::cdg::CdgRunner / FlowConfig / FlowResult
// keeps compiling against the re-exported names below.
#pragma once

#include "flow/runner.hpp"

namespace ascdg::cdg {

using flow::FirstHit;
using flow::FlowConfig;
using flow::FlowResult;
using flow::PhaseOutcome;

using flow::CdgRunner;
using flow::coarse_search;

}  // namespace ascdg::cdg
