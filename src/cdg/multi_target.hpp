// Multi-target CDG — the paper's §VI future-work direction:
//
//   "the number of simulations required to hit each uncovered event ...
//    may be too high when many uncovered events are involved. We are
//    currently investigating methods that ... reduce the number of
//    simulations per event by using the same simulations for several
//    target events."
//
// The key observation: the random-sampling phase records the FULL
// per-event statistics of every sampled template, so one sampling pass
// can serve any number of targets — each target just re-scores the same
// samples with its own objective and starts its optimization from its
// own best sample. Only the (cheaper, focused) optimization and harvest
// phases are per-target.
#pragma once

#include <span>
#include <vector>

#include "cdg/runner.hpp"

namespace ascdg::cdg {

struct MultiTargetResult {
  /// The shared sampling phase (paid once).
  RandomSampleResult sampling;
  /// One flow result per target. The `sampling` member of each result
  /// is re-scored against that target (same stats, its own best index);
  /// sampling_phase.sims is attributed only to the first target so that
  /// summing flow_sims() over results gives the true total cost.
  std::vector<FlowResult> per_target;
  /// Simulations the shared sampling phase saved versus running the
  /// full flow independently per target.
  std::size_t sims_saved = 0;

  [[nodiscard]] std::size_t total_sims() const noexcept {
    std::size_t total = 0;
    for (const auto& result : per_target) total += result.flow_sims();
    return total;
  }
};

/// Re-scores a sampling result against a different target: returns the
/// index of the sample with the best target value.
[[nodiscard]] std::size_t best_sample_for(const RandomSampleResult& sampling,
                                          const neighbors::ApproximatedTarget& target);

/// Runs the shared-sampling multi-target flow: one sampling phase of
/// the skeletonized `seed_template`, then per-target optimization and
/// harvest with `config`'s budgets. Throws util::ConfigError when
/// `targets` is empty.
[[nodiscard]] MultiTargetResult run_multi_target(
    const duv::Duv& duv, batch::SimFarm& farm, const FlowConfig& config,
    std::span<const neighbors::ApproximatedTarget> targets,
    const tgen::TestTemplate& seed_template);

}  // namespace ascdg::cdg
