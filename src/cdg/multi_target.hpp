// Source-compatibility shim: the multi-target driver moved to the flow
// engine as the session-backed campaign driver (flow/campaign.hpp).
#pragma once

#include "flow/campaign.hpp"

namespace ascdg::cdg {

using flow::MultiTargetResult;

using flow::best_sample_for;
using flow::run_multi_target;

}  // namespace ascdg::cdg
