#include "cdg/multi_target.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace ascdg::cdg {

std::size_t best_sample_for(const RandomSampleResult& sampling,
                            const neighbors::ApproximatedTarget& target) {
  ASCDG_ASSERT(!sampling.samples.empty(), "empty sampling result");
  std::size_t best = 0;
  double best_value = target.value(sampling.samples[0].stats);
  for (std::size_t i = 1; i < sampling.samples.size(); ++i) {
    const double value = target.value(sampling.samples[i].stats);
    if (value > best_value) {
      best_value = value;
      best = i;
    }
  }
  return best;
}

MultiTargetResult run_multi_target(
    const duv::Duv& duv, batch::SimFarm& farm, const FlowConfig& config,
    std::span<const neighbors::ApproximatedTarget> targets,
    const tgen::TestTemplate& seed_template) {
  if (targets.empty()) {
    throw util::ConfigError("multi-target flow needs at least one target");
  }
  CdgRunner runner(duv, farm, config);

  // --- Shared phases: skeletonize once, sample once ---------------------
  const Skeletonizer skeletonizer(config.skeletonizer);
  const tgen::Skeleton skeleton = skeletonizer.skeletonize(seed_template);

  RandomSampleOptions sample_options;
  sample_options.templates = config.sample_templates;
  sample_options.sims_per_template = config.sample_sims;
  sample_options.seed = config.seed ^ 0x5A4D91E5ULL;
  // Score against the first target just to fill the field; every target
  // re-scores below from the retained per-sample stats.
  MultiTargetResult result;
  result.sampling =
      random_sample(duv, farm, skeleton, targets[0], sample_options);
  util::log_info("multi-target: shared sampling of ",
                 result.sampling.simulations, " sims for ", targets.size(),
                 " targets");

  // --- Per-target optimization + harvest --------------------------------
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const auto& target = targets[t];
    FlowResult flow;
    flow.seed_template = seed_template.name();
    flow.skeleton = skeleton;
    flow.before.name = "Before CDG";
    flow.before.stats = coverage::SimStats(duv.space().size());

    flow.sampling = result.sampling;
    flow.sampling.best_index = best_sample_for(result.sampling, target);
    // Attribute the shared cost once (to the first target).
    flow.sampling_phase = {"Sampling phase",
                           t == 0 ? result.sampling.simulations : 0,
                           result.sampling.combined};

    CdgObjective objective(duv, farm, skeleton, target,
                           config.opt_sims_per_point,
                           EvalCacheConfig{.enabled = config.eval_cache,
                                           .capacity = 1024},
                           config.trace);
    opt::ImplicitFilteringOptions if_options;
    if_options.directions = config.opt_directions;
    if_options.initial_step = config.opt_initial_step;
    if_options.min_step = config.opt_min_step;
    if_options.max_iterations = config.opt_max_iterations;
    if_options.resample_center = config.opt_resample_center;
    if_options.direction_mode = config.opt_direction_mode;
    if_options.halve_patience = config.opt_halve_patience;
    if_options.target_value = config.opt_target_value;
    if_options.seed = config.seed ^ (0x3417A00ULL + t);
    flow.optimization = opt::implicit_filtering(
        objective, flow.sampling.best().point, if_options);
    flow.optimization_phase = {"Optimization phase", objective.simulations(),
                               objective.combined()};
    flow.eval_cache_hits = objective.cache_hits();
    flow.eval_cache_misses = objective.cache_misses();

    flow.best_template = skeleton.instantiate(
        seed_template.name() + "_cdg_best_t" + std::to_string(t),
        flow.optimization.best_point);
    flow.harvest_phase.name = "Running best test";
    if (config.harvest_sims > 0) {
      flow.harvest_phase.stats =
          farm.run(duv, flow.best_template, config.harvest_sims,
                   config.seed ^ (0x4A12E00ULL + t));
      flow.harvest_phase.sims = config.harvest_sims;
    } else {
      flow.harvest_phase.stats = coverage::SimStats(duv.space().size());
    }
    result.per_target.push_back(std::move(flow));
  }

  result.sims_saved =
      (targets.size() - 1) * result.sampling.simulations;
  return result;
}

}  // namespace ascdg::cdg
