// The Skeletonizer (paper §IV-C): parses a test-template and marks every
// setting the CDG-Runner may change.
//
//  * Weight parameters: every weight is replaced by a mark — except zero
//    weights, which are preserved unmarked by default "because zero
//    weights often indicate values that should not be used". The user
//    can opt in to marking them (mark_zero_weights).
//  * Range parameters are replaced by subrange weight parameters: the
//    full range is split into smaller subranges, each with its own
//    marked weight, so the CDG-Runner can control the distribution over
//    the range. The user controls how many subranges are used and how
//    they span the range (uniform or geometric spacing).
//  * Subrange parameters are treated like weight parameters.
#pragma once

#include "tgen/skeleton.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::cdg {

enum class SubrangeSpacing {
  kUniform,    ///< equal-width subranges
  kGeometric,  ///< exponentially growing widths (finer control near lo)
};

struct SkeletonizerOptions {
  std::size_t subranges = 4;        ///< subranges per range parameter
  bool mark_zero_weights = false;   ///< mark zero weights too
  SubrangeSpacing spacing = SubrangeSpacing::kUniform;
};

class Skeletonizer {
 public:
  explicit Skeletonizer(SkeletonizerOptions options = {});

  /// Produces the skeleton of `tmpl`. The skeleton keeps the template's
  /// name with a "_skel" suffix. Throws util::ConfigError for malformed
  /// options and util::ValidationError if the template has no tunable
  /// settings at all (a skeleton with zero marks is useless to the
  /// fine-grained search).
  [[nodiscard]] tgen::Skeleton skeletonize(const tgen::TestTemplate& tmpl) const;

  [[nodiscard]] const SkeletonizerOptions& options() const noexcept {
    return options_;
  }

 private:
  SkeletonizerOptions options_;
};

/// Splits [lo, hi] into at most `count` contiguous, non-overlapping,
/// covering subranges (fewer when the range has fewer integer values).
/// Exposed for direct testing.
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> split_range(
    std::int64_t lo, std::int64_t hi, std::size_t count, SubrangeSpacing spacing);

}  // namespace ascdg::cdg
