// The random-sampling phase (paper §IV-D): instantiate n random
// test-templates that uniformly span the skeleton's marks, simulate N
// instances of each, and use the empirical approximated-target values
// to pick the starting point for the optimizer. "This good starting
// point can save the optimization algorithm many iterations of
// wandering in an almost flat area."
#pragma once

#include <cstdint>
#include <vector>

#include "exec/backend.hpp"
#include "neighbors/neighbors.hpp"
#include "tgen/skeleton.hpp"

namespace ascdg::cdg {

struct RandomSampleOptions {
  std::size_t templates = 200;        ///< n — random templates
  std::size_t sims_per_template = 100;  ///< N — instances per template
  std::uint64_t seed = 1;
};

/// One sampled template: its mark weights, per-event stats, and score.
struct Sample {
  std::vector<double> point;
  coverage::SimStats stats;
  double target_value = 0.0;
};

struct RandomSampleResult {
  std::vector<Sample> samples;     ///< in generation order
  std::size_t best_index = 0;      ///< argmax of target_value
  coverage::SimStats combined;     ///< union over the whole phase
  std::size_t simulations = 0;     ///< n * N

  [[nodiscard]] const Sample& best() const { return samples[best_index]; }
};

/// Runs the random-sampling phase. Throws util::ConfigError for a zero
/// template/sim budget or a skeleton without marks.
[[nodiscard]] RandomSampleResult random_sample(
    const duv::Duv& duv, exec::Backend& farm, const tgen::Skeleton& skeleton,
    const neighbors::ApproximatedTarget& target,
    const RandomSampleOptions& options);

}  // namespace ascdg::cdg
