#include "cdg/cdg_objective.hpp"

#include <atomic>
#include <cmath>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace ascdg::cdg {

namespace {

/// Per-process objective instance counter: makes every objective's
/// template-name prefix unique, so two objectives over the same
/// skeleton never emit colliding probe names in traces/reports.
std::uint64_t next_objective_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CdgObjective::CdgObjective(const duv::Duv& duv, exec::Backend& farm,
                           const tgen::Skeleton& skeleton,
                           const neighbors::ApproximatedTarget& target,
                           std::size_t sims_per_point, EvalCacheConfig cache,
                           obs::Tracer* trace, std::string probe_label)
    : duv_(&duv),
      farm_(&farm),
      skeleton_(&skeleton),
      target_(&target),
      sims_per_point_(sims_per_point),
      cache_config_(cache),
      trace_(trace),
      probe_prefix_(skeleton.name() + "_o" +
                    std::to_string(next_objective_id())),
      probe_label_(std::move(probe_label)),
      combined_(duv.space().size()),
      m_cache_hits_(&obs::registry().counter("ascdg_eval_cache_hits_total")),
      m_cache_misses_(
          &obs::registry().counter("ascdg_eval_cache_misses_total")),
      m_batch_size_(&obs::registry().histogram("ascdg_eval_batch_size")) {
  if (sims_per_point_ == 0) {
    throw util::ConfigError("CdgObjective needs sims_per_point >= 1");
  }
  if (skeleton_->mark_count() == 0) {
    throw util::ConfigError("CdgObjective over a skeleton with no marks");
  }
}

std::size_t CdgObjective::CacheKeyHash::operator()(
    const CacheKey& key) const noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ key.seed;
  for (const std::int64_t v : key.point) {
    h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

CdgObjective::CacheKey CdgObjective::make_key(std::span<const double> x,
                                              std::uint64_t seed) const {
  CacheKey key;
  key.seed = seed;
  key.point.reserve(x.size());
  for (const double v : x) {
    key.point.push_back(static_cast<std::int64_t>(std::llround(v * 1e9)));
  }
  return key;
}

const CdgObjective::CacheEntry* CdgObjective::cache_lookup(
    const CacheKey& key) {
  const auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return nullptr;
  // Touch: move to the front of the LRU list (iterators stay valid).
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return &*it->second;
}

void CdgObjective::cache_insert(CacheKey key, double value,
                                const coverage::SimStats& stats) {
  if (!cache_config_.enabled || cache_config_.capacity == 0) return;
  if (cache_index_.contains(key)) return;
  while (cache_index_.size() >= cache_config_.capacity) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
  cache_lru_.push_front({std::move(key), value, stats});
  cache_index_.emplace(cache_lru_.front().key, cache_lru_.begin());
}

double CdgObjective::evaluate(std::span<const double> x,
                              std::uint64_t eval_seed) {
  const opt::Point point(x.begin(), x.end());
  return evaluate_batch_full({&point, 1}, {&eval_seed, 1}).front().value;
}

std::vector<double> CdgObjective::evaluate_batch(
    std::span<const opt::Point> xs, std::span<const std::uint64_t> seeds) {
  const auto evals = evaluate_batch_full(xs, seeds);
  std::vector<double> values;
  values.reserve(evals.size());
  for (const auto& eval : evals) values.push_back(eval.value);
  return values;
}

std::vector<CdgObjective::PointEval> CdgObjective::evaluate_batch_full(
    std::span<const opt::Point> xs, std::span<const std::uint64_t> seeds) {
  if (xs.size() != seeds.size()) {
    throw util::ConfigError("CdgObjective::evaluate_batch: " +
                            std::to_string(xs.size()) + " points but " +
                            std::to_string(seeds.size()) + " seeds");
  }
  const std::size_t n = xs.size();
  for (const auto& x : xs) {
    if (x.size() != dimension()) {
      throw util::ConfigError(
          "CdgObjective::evaluate_batch: point dimension " +
          std::to_string(x.size()) + " != " + std::to_string(dimension()));
    }
  }
  if (n == 0) return {};

  m_batch_size_->observe(n);
  obs::Span span = obs::make_span(trace_, "eval_batch");

  const bool use_cache = cache_config_.enabled && cache_config_.capacity > 0;
  constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

  // Pass 1: resolve each point against the cache; instantiate one
  // template + farm job per uncached (point, seed). Duplicates within
  // the batch share one job (the scalar path would have hit the cache
  // for the repeats). Hit statistics are copied out immediately —
  // insertions below may evict the entry before pass 2 reads it.
  std::vector<CacheKey> keys(use_cache ? n : 0);
  std::vector<std::optional<PointEval>> cached(n);
  std::vector<std::size_t> job_of(n, kNoJob);
  std::vector<char> owns_job(n, 0);
  std::vector<tgen::TestTemplate> templates;
  templates.reserve(n);
  std::vector<exec::Job> jobs;
  jobs.reserve(n);
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> batch_jobs;
  for (std::size_t i = 0; i < n; ++i) {
    if (use_cache) {
      keys[i] = make_key(xs[i], seeds[i]);
      if (const CacheEntry* entry = cache_lookup(keys[i])) {
        cached[i] = PointEval{entry->value, entry->stats};
        continue;
      }
      if (const auto dup = batch_jobs.find(keys[i]);
          dup != batch_jobs.end()) {
        job_of[i] = dup->second;
        continue;
      }
    }
    templates.push_back(skeleton_->instantiate(
        probe_prefix_ + "_" + probe_label_ + std::to_string(evals_ + i),
        xs[i]));
    jobs.push_back({&templates.back(), sims_per_point_, seeds[i], i});
    job_of[i] = jobs.size() - 1;
    owns_job[i] = 1;
    if (use_cache) batch_jobs.emplace(keys[i], job_of[i]);
  }

  // One farm dispatch covers every uncached point's sims_per_point
  // simulations; per-point stats come back separated by job, with the
  // point's eval seed as the job's seed root — the same (point, seed)
  // determinism as the scalar path.
  std::vector<coverage::SimStats> results;
  if (!jobs.empty()) results = farm_->run_all(*duv_, jobs);

  // Pass 2: account every point in batch order, so evaluation counting,
  // coverage accumulation, and best tracking are identical to a
  // sequence of scalar evaluate() calls.
  std::size_t batch_sims = 0;
  std::vector<PointEval> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PointEval eval;
    if (cached[i].has_value()) {
      eval = std::move(*cached[i]);
      ++cache_hits_;
      m_cache_hits_->inc();
    } else {
      const coverage::SimStats& stats = results[job_of[i]];
      eval.value = target_->value(stats);
      eval.stats = stats;
      if (owns_job[i]) {
        sims_ += stats.sims();
        batch_sims += stats.sims();
        if (use_cache) {
          ++cache_misses_;
          m_cache_misses_->inc();
          cache_insert(std::move(keys[i]), eval.value, stats);
        }
      } else {
        // In-batch duplicate of an owned job: a cache hit in effect.
        ++cache_hits_;
        m_cache_hits_->inc();
      }
    }
    ++evals_;
    combined_.merge(eval.stats);
    if (!has_best() || eval.value > best_value_) {
      best_value_ = eval.value;
      best_point_.assign(xs[i].begin(), xs[i].end());
    }
    out.push_back(std::move(eval));
  }

  span.fields()
      .add("points", n)
      .add("cache_hits", use_cache ? n - jobs.size() : 0)
      .add("cache_misses", use_cache ? jobs.size() : 0)
      .add("sims", batch_sims);
  return out;
}

}  // namespace ascdg::cdg
