#include "cdg/cdg_objective.hpp"

#include "util/error.hpp"

namespace ascdg::cdg {

CdgObjective::CdgObjective(const duv::Duv& duv, batch::SimFarm& farm,
                           const tgen::Skeleton& skeleton,
                           const neighbors::ApproximatedTarget& target,
                           std::size_t sims_per_point)
    : duv_(&duv),
      farm_(&farm),
      skeleton_(&skeleton),
      target_(&target),
      sims_per_point_(sims_per_point),
      combined_(duv.space().size()) {
  if (sims_per_point_ == 0) {
    throw util::ConfigError("CdgObjective needs sims_per_point >= 1");
  }
  if (skeleton_->mark_count() == 0) {
    throw util::ConfigError("CdgObjective over a skeleton with no marks");
  }
}

double CdgObjective::evaluate(std::span<const double> x,
                              std::uint64_t eval_seed) {
  const tgen::TestTemplate tmpl = skeleton_->instantiate(
      skeleton_->name() + "_probe" + std::to_string(evals_), x);
  const coverage::SimStats stats =
      farm_->run(*duv_, tmpl, sims_per_point_, eval_seed);
  sims_ += stats.sims();
  ++evals_;
  combined_.merge(stats);
  const double value = target_->value(stats);
  if (!has_best() || value > best_value_) {
    best_value_ = value;
    best_point_.assign(x.begin(), x.end());
  }
  return value;
}

}  // namespace ascdg::cdg
