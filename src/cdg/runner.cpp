#include "cdg/runner.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/run_state.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace ascdg::cdg {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Emits one "phase" trace event: the phase's simulation budget and
/// latency, plus any caller-supplied detail fields.
void trace_phase(obs::Tracer* sink, std::string_view key,
                 const PhaseOutcome& phase, const util::JsonObject& details) {
  if (sink == nullptr) return;
  util::JsonObject event;
  event.add("event", "phase")
      .add("phase", key)
      .add("label", phase.name)
      .add("sims", phase.sims)
      .add("wall_ms", phase.wall_ms)
      .merge(details);
  sink->emit(event);
}

/// RAII flow-phase marker for the live-introspection surface: pushes
/// the phase onto obs::run_state()'s stack (visible at /runz) and, on
/// exit, publishes the phase's CPU/RSS footprint as
/// ascdg_phase_*{phase=...} gauges.
class PhaseScope {
 public:
  explicit PhaseScope(std::string name)
      : name_(std::move(name)), start_(obs::read_resource_usage()) {
    obs::run_state().enter_phase(name_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() { end(); }

  void end() noexcept {
    if (ended_) return;
    ended_ = true;
    try {
      obs::update_phase_resource_gauges(obs::registry(), name_, start_,
                                        obs::read_resource_usage());
    } catch (...) {
      // Telemetry must never fail the flow.
    }
    obs::run_state().exit_phase();
  }

 private:
  std::string name_;
  obs::ResourceUsage start_;
  bool ended_ = false;
};

/// Per-target-event closure telemetry: the first flow phase whose
/// cumulative coverage hit each real target event.
std::vector<FirstHit> compute_first_hits(
    const neighbors::ApproximatedTarget& target, const FlowResult& result) {
  std::vector<FirstHit> out;
  out.reserve(target.targets().size());
  const std::array<std::pair<const char*, const coverage::SimStats*>, 4>
      phases{{{"before", &result.before.stats},
              {"sampling", &result.sampling_phase.stats},
              {"optimization", &result.optimization_phase.stats},
              {"harvest", &result.harvest_phase.stats}}};
  for (const auto event : target.targets()) {
    const char* first = "never";
    for (const auto& [name, stats] : phases) {
      if (stats->sims() != 0 && event.value < stats->event_count() &&
          stats->hits(event) > 0) {
        first = name;
        break;
      }
    }
    out.push_back({event, first});
  }
  return out;
}

}  // namespace

CdgRunner::CdgRunner(const duv::Duv& duv, batch::SimFarm& farm,
                     FlowConfig config)
    : duv_(&duv), farm_(&farm), config_(config) {
  if (config_.sample_templates == 0 || config_.sample_sims == 0) {
    throw util::ConfigError("flow config: sampling budget must be non-zero");
  }
  if (config_.opt_directions == 0 || config_.opt_sims_per_point == 0) {
    throw util::ConfigError("flow config: optimization budget must be non-zero");
  }
}

std::vector<tac::TemplateScore> coarse_search(
    const neighbors::ApproximatedTarget& target,
    const coverage::CoverageRepository& before, std::size_t n) {
  const tac::Tac tac_view(before);
  auto ranked = tac_view.best_templates(target.events(), n);
  if (ranked.empty()) {
    throw util::NotFoundError(
        "coarse search: no existing template hits any neighbor of the target");
  }
  return ranked;
}

FlowResult CdgRunner::run(const neighbors::ApproximatedTarget& target,
                          const coverage::CoverageRepository& before,
                          std::span<const tgen::TestTemplate> suite_templates) {
  const auto ranked =
      coarse_search(target, before, std::max<std::size_t>(
                                        1, config_.coarse_best_templates));
  // Resolve the ranked names to template objects and merge their
  // parameters into one seed template (paper §IV-B: "find the best n
  // test-templates that hit these events. The parameters in these
  // test-templates are selected to be the ones used in the fine-grained
  // search."). On a name clash the higher-ranked template wins.
  tgen::TestTemplate seed;
  std::vector<std::string> merged_names;
  for (const auto& candidate : ranked) {
    for (const auto& tmpl : suite_templates) {
      if (tmpl.name() != candidate.name) continue;
      merged_names.push_back(tmpl.name());
      for (const auto& param : tmpl.parameters()) {
        if (!seed.contains(parameter_name(param))) seed.add(param);
      }
      break;
    }
  }
  if (merged_names.empty()) {
    throw util::NotFoundError(
        "coarse search: none of the ranked templates ('" + ranked.front().name +
        "', ...) resolve to a known template object");
  }
  seed.set_name(util::join(merged_names, "+"));
  util::log_info("coarse search selected template(s) '", seed.name(),
                 "' (top score ", ranked.front().score, ")");
  if (config_.trace != nullptr) {
    // best-k margin: how far ahead of the k-th ranked template the
    // winner is — a small margin means the coarse search was ambiguous.
    config_.trace->emit(util::JsonObject{}
                            .add("event", "coarse_search")
                            .add("seed_template", seed.name())
                            .add("merged_templates", merged_names.size())
                            .add("templates_ranked", ranked.size())
                            .add("top_score", ranked.front().score)
                            .add("kth_score", ranked.back().score)
                            .add("margin",
                                 ranked.front().score - ranked.back().score));
  }

  const coverage::SimStats before_total = before.total();
  if (config_.expand_target_by_correlation) {
    const neighbors::CorrelationExpansion expansion(
        before, config_.correlation_min_similarity);
    const auto expanded = expansion.expand(target);
    util::log_info("correlation expansion: ", target.events().size(), " -> ",
                   expanded.events().size(), " objective events");
    return run_from_template(expanded, seed, &before_total,
                             before.total_sims());
  }
  return run_from_template(target, seed, &before_total, before.total_sims());
}

FlowResult CdgRunner::run_from_template(
    const neighbors::ApproximatedTarget& target,
    const tgen::TestTemplate& seed_template,
    const coverage::SimStats* before_stats, std::size_t before_sims) {
  FlowResult result;
  result.seed_template = seed_template.name();

  result.before.name = "Before CDG";
  if (before_stats != nullptr) {
    result.before.stats = *before_stats;
    result.before.sims = before_sims != 0 ? before_sims : before_stats->sims();
  } else {
    result.before.stats = coverage::SimStats(duv_->space().size());
  }

  const auto flow_start = Clock::now();
  obs::run_state().start_flow(seed_template.name());
  PhaseScope flow_scope("flow");
  obs::Span flow_span = obs::make_span(config_.trace, "flow");
  flow_span.fields().add("seed_template", seed_template.name());

  // --- Skeletonize ------------------------------------------------------
  obs::Span skel_span = obs::make_span(config_.trace, "skeletonize");
  PhaseScope skel_phase("skeletonize");
  const Skeletonizer skeletonizer(config_.skeletonizer);
  result.skeleton = skeletonizer.skeletonize(seed_template);
  skel_phase.end();
  skel_span.fields().add("marks", result.skeleton.mark_count());
  skel_span.end();
  util::log_info("skeletonized '", seed_template.name(), "' -> ",
                 result.skeleton.mark_count(), " marks");
  if (config_.trace != nullptr) {
    config_.trace->emit(util::JsonObject{}
                            .add("event", "flow_start")
                            .add("seed_template", seed_template.name())
                            .add("skeleton_marks", result.skeleton.mark_count())
                            .add("before_sims", result.before.sims));
  }

  // --- Random sampling phase (§IV-D) -------------------------------------
  const auto sampling_start = Clock::now();
  obs::Span sampling_span = obs::make_span(config_.trace, "sampling");
  PhaseScope sampling_scope("sampling");
  RandomSampleOptions sample_options;
  sample_options.templates = config_.sample_templates;
  sample_options.sims_per_template = config_.sample_sims;
  sample_options.seed = config_.seed ^ 0x5A4D91E5ULL;
  result.sampling =
      random_sample(*duv_, *farm_, result.skeleton, target, sample_options);
  result.sampling_phase = {"Sampling phase", result.sampling.simulations,
                           result.sampling.combined};
  result.sampling_phase.wall_ms = ms_since(sampling_start);
  sampling_scope.end();
  sampling_span.fields()
      .add("sims", result.sampling_phase.sims)
      .add("best_value", result.sampling.best().target_value);
  sampling_span.end();
  util::log_info("sampling phase: best target value ",
                 result.sampling.best().target_value, " over ",
                 result.sampling.simulations, " sims");
  trace_phase(config_.trace, "sampling", result.sampling_phase,
              util::JsonObject{}
                  .add("templates", result.sampling.samples.size())
                  .add("best_value", result.sampling.best().target_value));

  // --- Optimization phase (§IV-E) ----------------------------------------
  const auto optimization_start = Clock::now();
  obs::Span opt_span = obs::make_span(config_.trace, "optimization");
  PhaseScope opt_scope("optimization");
  const EvalCacheConfig cache_config{.enabled = config_.eval_cache,
                                     .capacity = 1024};
  CdgObjective objective(*duv_, *farm_, result.skeleton, target,
                         config_.opt_sims_per_point, cache_config,
                         config_.trace);
  opt::ImplicitFilteringOptions if_options;
  if_options.directions = config_.opt_directions;
  if_options.initial_step = config_.opt_initial_step;
  if_options.min_step = config_.opt_min_step;
  if_options.max_iterations = config_.opt_max_iterations;
  if_options.resample_center = config_.opt_resample_center;
  if_options.direction_mode = config_.opt_direction_mode;
  if_options.halve_patience = config_.opt_halve_patience;
  if_options.target_value = config_.opt_target_value;
  if_options.seed = config_.seed ^ 0x0B71417EULL;
  if_options.trace = config_.trace;
  if_options.trace_label = "optimization";
  result.optimization = opt::implicit_filtering(
      objective, result.sampling.best().point, if_options);
  result.optimization_phase = {"Optimization phase", objective.simulations(),
                               objective.combined()};
  result.eval_cache_hits = objective.cache_hits();
  result.eval_cache_misses = objective.cache_misses();
  util::log_info("optimization: ", result.optimization.trace.size(),
                 " iterations, best value ", result.optimization.best_value,
                 " (", to_string(result.optimization.reason), ")");

  std::vector<double> best_point = result.optimization.best_point;

  // --- Refinement with the real objective (§IV-E) -------------------------
  if (config_.refine_with_real_target && !target.targets().empty()) {
    // Probe the optimized point for real-target evidence.
    const tgen::TestTemplate probe_tmpl =
        result.skeleton.instantiate("cdg_refine_probe", best_point);
    const coverage::SimStats probe = farm_->run(
        *duv_, probe_tmpl, config_.opt_sims_per_point,
        config_.seed ^ 0x5EF1A37EULL);
    result.optimization_phase.sims += probe.sims();
    result.optimization_phase.stats.merge(probe);
    const double evidence = target.real_value(probe);
    if (evidence >= config_.refine_threshold) {
      // The real objective: the target events themselves, unit weights.
      std::vector<tac::WeightedEvent> raw;
      raw.reserve(target.targets().size());
      for (const auto event : target.targets()) raw.push_back({event, 1.0});
      const neighbors::ApproximatedTarget real_target(target.targets(),
                                                      std::move(raw));
      CdgObjective refine_objective(*duv_, *farm_, result.skeleton,
                                    real_target, config_.opt_sims_per_point,
                                    cache_config, config_.trace);
      if_options.max_iterations = config_.refine_max_iterations;
      if_options.seed = config_.seed ^ 0x5EF15EEDULL;
      if_options.trace_label = "refinement";
      result.refinement =
          opt::implicit_filtering(refine_objective, best_point, if_options);
      result.optimization_phase.sims += refine_objective.simulations();
      result.optimization_phase.stats.merge(refine_objective.combined());
      result.eval_cache_hits += refine_objective.cache_hits();
      result.eval_cache_misses += refine_objective.cache_misses();
      if (result.refinement->best_value > evidence) {
        best_point = result.refinement->best_point;
      }
      util::log_info("refinement: real-objective best ",
                     result.refinement->best_value, " (evidence was ",
                     evidence, ")");
    } else {
      util::log_info("refinement skipped: real-target evidence ", evidence,
                     " below threshold ", config_.refine_threshold);
    }
  }
  result.optimization_phase.wall_ms = ms_since(optimization_start);
  opt_scope.end();
  opt_span.fields()
      .add("sims", result.optimization_phase.sims)
      .add("iterations", result.optimization.trace.size())
      .add("best_value", result.optimization.best_value);
  opt_span.end();
  trace_phase(config_.trace, "optimization", result.optimization_phase,
              util::JsonObject{}
                  .add("iterations", result.optimization.trace.size())
                  .add("best_value", result.optimization.best_value)
                  .add("refined", result.refinement.has_value()));

  // --- Harvest (§IV-F) -----------------------------------------------------
  const auto harvest_start = Clock::now();
  obs::Span harvest_span = obs::make_span(config_.trace, "harvest");
  PhaseScope harvest_scope("harvest");
  result.best_template = result.skeleton.instantiate(
      seed_template.name() + "_cdg_best", best_point);
  result.harvest_phase.name = "Running best test";
  if (config_.harvest_sims > 0) {
    result.harvest_phase.stats = farm_->run(
        *duv_, result.best_template, config_.harvest_sims,
        config_.seed ^ 0x4A12E57EDULL);
    result.harvest_phase.sims = config_.harvest_sims;
    util::log_info("harvest: real target value ",
                   target.real_value(result.harvest_phase.stats), " over ",
                   config_.harvest_sims, " sims");
  } else {
    result.harvest_phase.stats = coverage::SimStats(duv_->space().size());
  }
  result.harvest_phase.wall_ms = ms_since(harvest_start);
  harvest_scope.end();
  harvest_span.fields().add("sims", result.harvest_phase.sims);
  harvest_span.end();
  trace_phase(
      config_.trace, "harvest", result.harvest_phase,
      util::JsonObject{}.add("real_value",
                             result.harvest_phase.stats.sims() > 0
                                 ? target.real_value(result.harvest_phase.stats)
                                 : 0.0));

  // --- Per-event closure telemetry -----------------------------------------
  result.first_hits = compute_first_hits(target, result);
  std::size_t events_hit = 0;
  for (const auto& hit : result.first_hits) {
    if (hit.phase != "never") ++events_hit;
    if (config_.trace != nullptr) {
      config_.trace->emit(util::JsonObject{}
                              .add("event", "first_hit")
                              .add("event_id", hit.event.value)
                              .add("phase", hit.phase));
    }
  }
  if (!result.first_hits.empty()) {
    obs::Registry& reg = obs::registry();
    reg.gauge("ascdg_flow_target_events_hit").set(
        static_cast<std::int64_t>(events_hit));
    reg.gauge("ascdg_flow_target_events_remaining")
        .set(static_cast<std::int64_t>(result.first_hits.size() - events_hit));
    obs::run_state().set_coverage(events_hit,
                                  result.first_hits.size() - events_hit);
  }
  obs::update_resource_gauges(obs::registry());

  flow_span.fields()
      .add("flow_sims", result.flow_sims())
      .add("target_events", result.first_hits.size())
      .add("target_events_hit", events_hit);
  flow_span.end();

  if (config_.trace != nullptr) {
    const batch::TelemetrySnapshot farm_stats = farm_->telemetry();
    config_.trace->emit(
        util::JsonObject{}
            .add("event", "flow_end")
            .add("flow_sims", result.flow_sims())
            .add("wall_ms", ms_since(flow_start))
            .add("target_events", result.first_hits.size())
            .add("target_events_hit", events_hit)
            .add("farm_total_sims", farm_stats.simulations)
            .add("farm_chunks", farm_stats.chunks)
            .add("farm_steals", farm_stats.steals)
            .add("farm_max_queue_depth", farm_stats.max_queue_depth)
            .add("farm_mean_chunk_us", farm_stats.mean_chunk_us()));
  }
  return result;
}

}  // namespace ascdg::cdg
