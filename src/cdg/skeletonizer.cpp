#include "cdg/skeletonizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ascdg::cdg {

using util::ConfigError;
using util::ValidationError;

Skeletonizer::Skeletonizer(SkeletonizerOptions options) : options_(options) {
  if (options_.subranges == 0) {
    throw ConfigError("skeletonizer needs at least one subrange");
  }
}

std::vector<std::pair<std::int64_t, std::int64_t>> split_range(
    std::int64_t lo, std::int64_t hi, std::size_t count,
    SubrangeSpacing spacing) {
  ASCDG_ASSERT(lo <= hi, "split_range with lo > hi");
  ASCDG_ASSERT(count >= 1, "split_range with zero count");
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  const std::size_t n = std::min<std::size_t>(count, width);

  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  out.reserve(n);
  if (spacing == SubrangeSpacing::kUniform) {
    // Equal widths, remainder spread over the leading subranges.
    const std::uint64_t base = width / n;
    const std::uint64_t extra = width % n;
    std::int64_t cursor = lo;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = base + (i < extra ? 1 : 0);
      const std::int64_t sub_hi = cursor + static_cast<std::int64_t>(w) - 1;
      out.emplace_back(cursor, sub_hi);
      cursor = sub_hi + 1;
    }
    return out;
  }
  // Geometric: boundaries at lo + width * ((2^i - 1) / (2^n - 1)), which
  // doubles each subrange's width — finest resolution near lo.
  const double denom = std::exp2(static_cast<double>(n)) - 1.0;
  std::int64_t cursor = lo;
  for (std::size_t i = 1; i <= n; ++i) {
    const double frac = (std::exp2(static_cast<double>(i)) - 1.0) / denom;
    std::int64_t boundary =
        lo + static_cast<std::int64_t>(
                 std::llround(frac * static_cast<double>(width - 1)));
    boundary = std::min(boundary, hi);
    if (i == n) boundary = hi;
    if (boundary < cursor) boundary = cursor;  // degenerate narrow ranges
    out.emplace_back(cursor, boundary);
    cursor = boundary + 1;
    if (cursor > hi && i < n) break;  // range exhausted early
  }
  return out;
}

tgen::Skeleton Skeletonizer::skeletonize(const tgen::TestTemplate& tmpl) const {
  tgen::Skeleton skeleton(tmpl.name() + "_skel");

  const auto maybe_mark =
      [this](double weight) -> std::optional<double> {
    if (weight == 0.0 && !options_.mark_zero_weights) return 0.0;
    return std::nullopt;  // marked
  };

  for (const auto& param : tmpl.parameters()) {
    if (const auto* wp = std::get_if<tgen::WeightParameter>(&param)) {
      tgen::SkeletonWeightParameter out{wp->name, {}};
      out.entries.reserve(wp->entries.size());
      for (const auto& entry : wp->entries) {
        out.entries.push_back({entry.value, maybe_mark(entry.weight)});
      }
      skeleton.add(std::move(out));
    } else if (const auto* rp = std::get_if<tgen::RangeParameter>(&param)) {
      tgen::SkeletonSubrangeParameter out{rp->name, {}};
      for (const auto& [lo, hi] :
           split_range(rp->lo, rp->hi, options_.subranges, options_.spacing)) {
        out.entries.push_back({lo, hi, std::nullopt});
      }
      skeleton.add(std::move(out));
    } else if (const auto* sp = std::get_if<tgen::SubrangeParameter>(&param)) {
      tgen::SkeletonSubrangeParameter out{sp->name, {}};
      out.entries.reserve(sp->entries.size());
      for (const auto& entry : sp->entries) {
        out.entries.push_back({entry.lo, entry.hi, maybe_mark(entry.weight)});
      }
      skeleton.add(std::move(out));
    }
  }

  if (skeleton.mark_count() == 0) {
    throw ValidationError("template '" + tmpl.name() +
                          "' has no tunable settings to skeletonize");
  }
  return skeleton;
}

}  // namespace ascdg::cdg
