#include "cdg/random_sample.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::cdg {

RandomSampleResult random_sample(const duv::Duv& duv, batch::SimFarm& farm,
                                 const tgen::Skeleton& skeleton,
                                 const neighbors::ApproximatedTarget& target,
                                 const RandomSampleOptions& options) {
  if (options.templates == 0 || options.sims_per_template == 0) {
    throw util::ConfigError("random sample needs a non-zero budget");
  }
  const std::size_t dim = skeleton.mark_count();
  if (dim == 0) {
    throw util::ConfigError("random sample over a skeleton with no marks");
  }

  util::Xoshiro256 rng(options.seed);
  util::SeedStream job_seeds(options.seed ^ 0x5A3B1E5EEDULL);

  // Generate the n random templates up front, then batch them through
  // the farm in one run_all so the pool stays saturated.
  std::vector<std::vector<double>> points(options.templates);
  std::vector<tgen::TestTemplate> templates;
  templates.reserve(options.templates);
  for (std::size_t t = 0; t < options.templates; ++t) {
    points[t].resize(dim);
    for (double& w : points[t]) w = rng.uniform();
    templates.push_back(skeleton.instantiate(
        skeleton.name() + "_rand" + std::to_string(t), points[t]));
  }

  std::vector<batch::SimFarm::Job> jobs;
  jobs.reserve(options.templates);
  for (std::size_t t = 0; t < options.templates; ++t) {
    jobs.push_back({&templates[t], options.sims_per_template, job_seeds.next()});
  }
  auto stats = farm.run_all(duv, jobs);

  RandomSampleResult result;
  result.combined = coverage::SimStats(duv.space().size());
  result.samples.reserve(options.templates);
  for (std::size_t t = 0; t < options.templates; ++t) {
    const double value = target.value(stats[t]);
    result.combined.merge(stats[t]);
    result.samples.push_back({std::move(points[t]), std::move(stats[t]), value});
    if (value > result.samples[result.best_index].target_value) {
      result.best_index = t;
    }
  }
  result.simulations = options.templates * options.sims_per_template;
  return result;
}

}  // namespace ascdg::cdg
