#include "cdg/random_sample.hpp"

#include "cdg/cdg_objective.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::cdg {

RandomSampleResult random_sample(const duv::Duv& duv, exec::Backend& farm,
                                 const tgen::Skeleton& skeleton,
                                 const neighbors::ApproximatedTarget& target,
                                 const RandomSampleOptions& options) {
  if (options.templates == 0 || options.sims_per_template == 0) {
    throw util::ConfigError("random sample needs a non-zero budget");
  }
  const std::size_t dim = skeleton.mark_count();
  if (dim == 0) {
    throw util::ConfigError("random sample over a skeleton with no marks");
  }

  util::Xoshiro256 rng(options.seed);
  util::SeedStream job_seeds(options.seed ^ 0x5A3B1E5EEDULL);

  // Generate the n random points up front, then evaluate them through
  // the CdgObjective batch path: one farm dispatch covers the whole
  // phase, and the objective's bookkeeping (per-point stats, combined
  // coverage, simulation count) replaces the bespoke job assembly this
  // phase used to carry. The cache is irrelevant here (every point is
  // fresh), so it is left disabled.
  std::vector<opt::Point> points(options.templates);
  std::vector<std::uint64_t> seeds(options.templates);
  for (std::size_t t = 0; t < options.templates; ++t) {
    points[t].resize(dim);
    for (double& w : points[t]) w = rng.uniform();
    seeds[t] = job_seeds.next();
  }

  CdgObjective objective(duv, farm, skeleton, target,
                         options.sims_per_template,
                         EvalCacheConfig{.enabled = false, .capacity = 0},
                         nullptr, "rand");
  auto evals = objective.evaluate_batch_full(points, seeds);

  RandomSampleResult result;
  result.combined = objective.combined();
  result.samples.reserve(options.templates);
  for (std::size_t t = 0; t < options.templates; ++t) {
    result.samples.push_back({std::move(points[t]), std::move(evals[t].stats),
                              evals[t].value});
    if (evals[t].value > result.samples[result.best_index].target_value) {
      result.best_index = t;
    }
  }
  result.simulations = objective.simulations();
  return result;
}

}  // namespace ascdg::cdg
