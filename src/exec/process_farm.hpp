// The fork-based multi-process backend (docs/backends.md).
//
// ProcessFarm forks N worker processes at construction and ships work
// over per-worker pipe pairs using length-prefixed JSON frames. Each
// worker re-executes the job locally — duv::make_unit(name) to rebuild
// the unit, tgen::parse_template on the shipped DSL text, Duv::compile
// once per job, then simulate_batch over each assigned chunk's seeds —
// and replies with per-job hit-count partials. The parent merges the
// partials with SimStats::merge, which is commutative, so results are
// bit-identical to the thread backend for any worker count and any
// chunk assignment.
//
// Requirements this backend adds over ThreadFarm:
//   * the unit must be registry-resolvable: duv.name() must round-trip
//     through duv::make_unit (workers rebuild it by name). run_all
//     throws util::ConfigError otherwise, before any work is shipped.
//   * templates must round-trip through tgen::to_text/parse_template
//     (every template the flow builds does).
//
// Failure semantics: a worker that dies mid-batch (SIGKILL, crash) or
// desynchronizes its stream (short read/write, EPIPE — injectable via
// the exec.pipe_read / exec.pipe_write failure points) surfaces as a
// clean util::Error from run_all after every live worker's response has
// been collected; the dead worker is reaped immediately and respawned
// at the next run_all, so the farm stays usable and never hangs.
//
// Fork caveat: construct the farm before starting unrelated threads
// (HTTP server, watchdog, samplers) — fork() in a multi-threaded
// process clones only the calling thread, and a lock held by another
// thread at fork time would deadlock the child. The CLI constructs its
// backend first for exactly this reason. The constructor ignores
// SIGPIPE process-wide (writes to a dead worker must fail with EPIPE,
// not kill the parent).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "exec/backend.hpp"
#include "obs/metrics.hpp"

namespace ascdg::exec {

class ProcessFarm final : public Backend {
 public:
  /// Forks `num_workers` worker processes (0 selects the hardware
  /// concurrency). Throws util::Error when fork/pipe fails.
  explicit ProcessFarm(std::size_t num_workers = 0);

  /// Closes every worker's request pipe (workers exit on EOF) and reaps
  /// them. In-flight run_all calls on other threads are a caller bug,
  /// as with SimFarm destruction during use.
  ~ProcessFarm() override;

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "process";
  }
  [[nodiscard]] std::size_t worker_count() const noexcept override {
    return workers_.size();
  }

  [[nodiscard]] std::vector<coverage::SimStats> run_all(
      const duv::Duv& duv, std::span<const Job> jobs) override;

  [[nodiscard]] std::size_t total_simulations() const noexcept override {
    return metrics_.simulations->value();
  }
  [[nodiscard]] batch::TelemetrySnapshot telemetry() const override;
  [[nodiscard]] double worker_busy_fraction() const noexcept override;

  /// Live worker pids, in slot order (dead slots excluded) — for tests
  /// that kill a worker mid-run.
  [[nodiscard]] std::vector<pid_t> worker_pids() const;

  /// Workers respawned after a death (test / telemetry hook; also
  /// exported as ascdg_farm_worker_respawns_total).
  [[nodiscard]] std::size_t respawns() const noexcept {
    return metrics_.respawns->value();
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int to_child = -1;    ///< parent write end (worker requests)
    int from_child = -1;  ///< parent read end (worker responses)
    bool alive = false;
  };

  /// One job's chunk assignment for one worker (contiguous seed ranges).
  struct WorkerJobSlice {
    std::size_t job = 0;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
  };

  void spawn_worker(std::size_t slot);
  /// Reaps exited workers (waitpid WNOHANG) and respawns every dead
  /// slot, so a worker killed between runs heals silently.
  void ensure_workers();
  /// Kills (if still running), reaps, and closes `slot`. Idempotent.
  void retire_worker(std::size_t slot);

  /// Length-prefixed frame I/O on the parent side; both return false on
  /// EOF / error / injected failure (the caller retires the worker).
  [[nodiscard]] bool write_frame(Worker& worker, const std::string& payload);
  [[nodiscard]] bool read_frame(Worker& worker, std::string& payload);

  /// The forked child's request loop; never returns (calls _exit).
  [[noreturn]] static void worker_main(int request_fd, int response_fd);

  std::vector<Worker> workers_;
  /// Serializes run_all callers: the pipe protocol is one outstanding
  /// batch at a time (the thread farm's callers already serialize at
  /// the flow level; concurrent callers just queue here).
  std::mutex run_mutex_;

  /// Unit names already validated registry-resolvable.
  std::vector<std::string> validated_units_;

  struct FarmMetrics {
    obs::Counter* simulations = nullptr;
    obs::Counter* runs = nullptr;
    obs::Counter* exceptions = nullptr;
    obs::Counter* respawns = nullptr;
    /// Live worker processes — the liveness gauge an operator alarms on.
    obs::Gauge* workers_alive = nullptr;
    obs::Gauge* active_runs = nullptr;
  };
  FarmMetrics metrics_;
  std::uint64_t created_ns_ = 0;
};

}  // namespace ascdg::exec
