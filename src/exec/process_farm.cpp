#include "exec/process_farm.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <csignal>
#include <cstring>
#include <limits>
#include <map>
#include <thread>
#include <utility>

#include "duv/registry.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/json.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace ascdg::exec {

namespace {

/// Simulations per worker chunk — same granularity as the thread farm
/// (the lane-i ≡ scalar contract makes results independent of chunk
/// size either way; matching keeps simulate_batch widths comparable).
constexpr std::size_t kChunk = 64;

/// Frame-size sanity cap: a length prefix beyond this means the stream
/// is desynchronized, not that a 1 GiB batch is in flight.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Reads exactly `n` bytes; false on EOF or a non-EINTR error.
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* out = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::read(fd, out, n);
    if (got > 0) {
      out += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return false;  // EOF: peer closed
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Writes exactly `n` bytes; false on a non-EINTR error (e.g. EPIPE).
bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* in = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, in, n);
    if (put > 0) {
      in += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Length-prefixed (u32 little-endian) frame I/O.
bool read_frame_fd(int fd, std::string& payload) {
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, sizeof prefix)) return false;
  const std::uint32_t length =
      static_cast<std::uint32_t>(prefix[0]) |
      (static_cast<std::uint32_t>(prefix[1]) << 8) |
      (static_cast<std::uint32_t>(prefix[2]) << 16) |
      (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (length > kMaxFrameBytes) return false;
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length);
}

bool write_frame_fd(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(length & 0xff),
      static_cast<std::uint8_t>((length >> 8) & 0xff),
      static_cast<std::uint8_t>((length >> 16) & 0xff),
      static_cast<std::uint8_t>((length >> 24) & 0xff),
  };
  if (!write_exact(fd, prefix, sizeof prefix)) return false;
  return payload.empty() || write_exact(fd, payload.data(), payload.size());
}

/// seed_root travels as a decimal string: JSON numbers lose precision
/// beyond 2^53 and seed roots are full 64-bit values.
std::uint64_t parse_seed_root(const std::string& text) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw util::Error("process backend: malformed seed_root '" + text + "'");
  }
  return value;
}

std::string describe_errno(int error_number) {
  return std::string(std::strerror(error_number)) + " (errno " +
         std::to_string(error_number) + ")";
}

}  // namespace

ProcessFarm::ProcessFarm(std::size_t num_workers) {
  // Writes to a dead worker must fail with EPIPE, not kill the parent.
  // Process-wide, set once; SIG_IGN is what every other part of the
  // system (the HTTP server uses MSG_NOSIGNAL) already assumes is safe.
  std::signal(SIGPIPE, SIG_IGN);

  const std::size_t worker_n =
      num_workers != 0
          ? num_workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  static std::atomic<std::uint64_t> next_farm_id{0};
  const std::string id =
      std::to_string(next_farm_id.fetch_add(1, std::memory_order_relaxed));
  obs::Registry& reg = obs::registry();
  metrics_.simulations = &reg.counter("ascdg_farm_simulations_total",
                                      {{"backend", "process"}, {"farm", id}});
  metrics_.runs = &reg.counter("ascdg_farm_runs_total",
                               {{"backend", "process"}, {"farm", id}});
  metrics_.exceptions = &reg.counter("ascdg_farm_exceptions_total",
                                     {{"backend", "process"}, {"farm", id}});
  metrics_.respawns = &reg.counter("ascdg_farm_worker_respawns_total",
                                   {{"backend", "process"}, {"farm", id}});
  metrics_.workers_alive = &reg.gauge("ascdg_farm_workers_alive",
                                      {{"backend", "process"}, {"farm", id}});
  metrics_.active_runs = &reg.gauge("ascdg_farm_active_runs",
                                    {{"backend", "process"}, {"farm", id}});
  created_ns_ = util::monotonic_ns();

  workers_.resize(worker_n);
  for (std::size_t slot = 0; slot < worker_n; ++slot) spawn_worker(slot);
}

ProcessFarm::~ProcessFarm() {
  // Wait out an in-flight run_all (caller bug to still be submitting,
  // same as SimFarm), then tear the pool down promptly: workers are
  // stateless, so SIGKILL loses nothing.
  const std::scoped_lock lock(run_mutex_);
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    retire_worker(slot);
  }
}

void ProcessFarm::spawn_worker(std::size_t slot) {
  int request_pipe[2];
  int response_pipe[2];
  if (::pipe(request_pipe) != 0) {
    throw util::Error("process backend: pipe() failed: " +
                      describe_errno(errno));
  }
  if (::pipe(response_pipe) != 0) {
    const int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    throw util::Error("process backend: pipe() failed: " +
                      describe_errno(saved));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    ::close(response_pipe[1]);
    throw util::Error("process backend: fork() failed: " +
                      describe_errno(saved));
  }
  if (pid == 0) {
    // Child. Close the parent's ends and every sibling's fds so a dead
    // worker's pipes actually reach EOF in the parent, then serve.
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    for (const Worker& other : workers_) {
      if (other.to_child >= 0) ::close(other.to_child);
      if (other.from_child >= 0) ::close(other.from_child);
    }
    worker_main(request_pipe[0], response_pipe[1]);
  }
  ::close(request_pipe[0]);
  ::close(response_pipe[1]);
  workers_[slot] =
      Worker{pid, request_pipe[1], response_pipe[0], /*alive=*/true};
  metrics_.workers_alive->set(static_cast<std::int64_t>(
      std::count_if(workers_.begin(), workers_.end(),
                    [](const Worker& w) { return w.alive; })));
}

void ProcessFarm::retire_worker(std::size_t slot) {
  Worker& worker = workers_[slot];
  if (worker.to_child >= 0) ::close(worker.to_child);
  if (worker.from_child >= 0) ::close(worker.from_child);
  worker.to_child = -1;
  worker.from_child = -1;
  if (worker.pid > 0) {
    // SIGKILL is a no-op on an already-exited (zombie) child; the
    // blocking waitpid then reaps promptly in either case.
    ::kill(worker.pid, SIGKILL);
    ::waitpid(worker.pid, nullptr, 0);
    worker.pid = -1;
  }
  worker.alive = false;
  metrics_.workers_alive->set(static_cast<std::int64_t>(
      std::count_if(workers_.begin(), workers_.end(),
                    [](const Worker& w) { return w.alive; })));
}

void ProcessFarm::ensure_workers() {
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    Worker& worker = workers_[slot];
    if (worker.alive && worker.pid > 0) {
      // A worker killed between runs heals silently: reap and respawn.
      if (::waitpid(worker.pid, nullptr, WNOHANG) == worker.pid) {
        worker.pid = -1;
        retire_worker(slot);
      }
    }
    if (!worker.alive) {
      spawn_worker(slot);
      metrics_.respawns->inc();
    }
  }
}

bool ProcessFarm::write_frame(Worker& worker, const std::string& payload) {
  if (const int injected =
          util::FailurePoint::check(util::FailurePoint::Id::kExecPipeWrite)) {
    errno = injected;
    return false;
  }
  return write_frame_fd(worker.to_child, payload);
}

bool ProcessFarm::read_frame(Worker& worker, std::string& payload) {
  if (const int injected =
          util::FailurePoint::check(util::FailurePoint::Id::kExecPipeRead)) {
    errno = injected;
    return false;
  }
  return read_frame_fd(worker.from_child, payload);
}

std::vector<coverage::SimStats> ProcessFarm::run_all(const duv::Duv& duv,
                                                     std::span<const Job> jobs) {
  const std::scoped_lock lock(run_mutex_);
  metrics_.active_runs->add(1);
  struct RunGuard {
    obs::Gauge* active;
    ~RunGuard() { active->sub(1); }
  } run_guard{metrics_.active_runs};

  const std::size_t event_count = duv.space().size();
  const std::size_t job_n = jobs.size();

  // Workers rebuild the unit by name; refuse up front (not per worker)
  // when the registry cannot resolve it.
  const std::string unit_name(duv.name());
  if (std::find(validated_units_.begin(), validated_units_.end(),
                unit_name) == validated_units_.end()) {
    if (duv::make_unit(unit_name) == nullptr) {
      throw util::ConfigError(
          "process backend requires a registry-resolvable unit: "
          "duv::make_unit(\"" +
          unit_name + "\") knows no such unit (see docs/backends.md)");
    }
    validated_units_.push_back(unit_name);
  }

  ensure_workers();

  std::size_t chunk_count = 0;
  for (const Job& job : jobs) {
    ASCDG_ASSERT(job.tmpl != nullptr, "job with null template");
    chunk_count += (job.count + kChunk - 1) / kChunk;
  }
  if (chunk_count == 0) {
    metrics_.runs->inc();
    return std::vector<coverage::SimStats>(job_n,
                                           coverage::SimStats(event_count));
  }

  // Round-robin the chunks across workers; each worker gets at most one
  // slice per job (its share of that job's seed ranges).
  const std::size_t worker_n = workers_.size();
  constexpr std::size_t kNoSlice = std::numeric_limits<std::size_t>::max();
  std::vector<std::vector<WorkerJobSlice>> plan(worker_n);
  std::vector<std::vector<std::size_t>> slice_of(
      worker_n, std::vector<std::size_t>(job_n, kNoSlice));
  std::size_t next_worker = 0;
  for (std::size_t j = 0; j < job_n; ++j) {
    for (std::size_t begin = 0; begin < jobs[j].count; begin += kChunk) {
      const std::size_t end = std::min(begin + kChunk, jobs[j].count);
      const std::size_t w = next_worker++ % worker_n;
      std::size_t& slice = slice_of[w][j];
      if (slice == kNoSlice) {
        slice = plan[w].size();
        plan[w].push_back(WorkerJobSlice{j, {}});
      }
      plan[w][slice].chunks.emplace_back(begin, end);
    }
  }

  // One request frame per participating worker. Template text is
  // serialized once per job and shared across workers' frames.
  std::vector<std::string> tmpl_text(job_n);
  for (std::size_t j = 0; j < job_n; ++j) {
    tmpl_text[j] = tgen::to_text(*jobs[j].tmpl);
  }

  // Phase 1 — ship every request before reading any response. Workers
  // read their whole request before writing, so the parent's writes
  // never depend on its reads: no cycle, no deadlock.
  std::string first_error;
  std::vector<bool> awaiting(worker_n, false);
  for (std::size_t w = 0; w < worker_n; ++w) {
    if (plan[w].empty()) continue;
    std::string payload = "{\"op\":\"run\",\"unit\":\"" +
                          util::json_escape(unit_name) + "\",\"jobs\":[";
    for (std::size_t s = 0; s < plan[w].size(); ++s) {
      const WorkerJobSlice& slice = plan[w][s];
      if (s != 0) payload += ',';
      payload += "{\"id\":" + std::to_string(slice.job) + ",\"tmpl\":\"" +
                 util::json_escape(tmpl_text[slice.job]) +
                 "\",\"seed_root\":\"" +
                 std::to_string(jobs[slice.job].seed_root) +
                 "\",\"chunks\":[";
      for (std::size_t c = 0; c < slice.chunks.size(); ++c) {
        if (c != 0) payload += ',';
        payload += '[' + std::to_string(slice.chunks[c].first) + ',' +
                   std::to_string(slice.chunks[c].second) + ']';
      }
      payload += "]}";
    }
    payload += "]}";
    if (write_frame(workers_[w], payload)) {
      awaiting[w] = true;
    } else {
      if (first_error.empty()) {
        first_error = "process backend: worker " + std::to_string(w) +
                      " (pid " + std::to_string(workers_[w].pid) +
                      ") died while receiving work: " + describe_errno(errno);
      }
      retire_worker(w);
    }
  }

  // Phase 2 — collect every live worker's response (draining keeps the
  // streams synchronized for the next run), then merge or raise.
  std::vector<coverage::SimStats> out(job_n, coverage::SimStats(event_count));
  std::size_t merged_sims = 0;
  std::string payload;
  for (std::size_t w = 0; w < worker_n; ++w) {
    if (!awaiting[w]) continue;
    if (!read_frame(workers_[w], payload)) {
      if (first_error.empty()) {
        first_error = "process backend: worker " + std::to_string(w) +
                      " (pid " + std::to_string(workers_[w].pid) +
                      ") died mid-batch: " + describe_errno(errno);
      }
      retire_worker(w);
      continue;
    }
    try {
      const util::JsonValue response = util::json_parse(payload);
      if (!response.at("ok").as_bool()) {
        // The worker is alive and its stream is synchronized; the batch
        // itself failed (simulation threw). Report, keep the worker.
        if (first_error.empty()) {
          first_error =
              "process backend: worker " + std::to_string(w) +
              " reported: " + response.at("error").as_string();
        }
        continue;
      }
      for (const util::JsonValue& partial :
           response.at("partials").as_array()) {
        const std::size_t job = partial.at("id").as_size();
        ASCDG_ASSERT(job < job_n, "worker partial for unknown job");
        const std::size_t sims = partial.at("sims").as_size();
        const util::JsonValue::Array& hit_values =
            partial.at("hits").as_array();
        std::vector<std::size_t> hits(hit_values.size());
        for (std::size_t i = 0; i < hit_values.size(); ++i) {
          hits[i] = hit_values[i].as_size();
        }
        ASCDG_ASSERT(hits.size() == event_count,
                     "worker partial with wrong event count");
        out[job].merge(coverage::SimStats::from_counts(sims, std::move(hits)));
        merged_sims += sims;
      }
    } catch (const std::exception& e) {
      // Malformed frame: the stream can no longer be trusted.
      if (first_error.empty()) {
        first_error = "process backend: worker " + std::to_string(w) +
                      " sent a malformed response: " + e.what();
      }
      retire_worker(w);
    }
  }

  metrics_.simulations->add(merged_sims);
  metrics_.runs->inc();
  if (!first_error.empty()) {
    metrics_.exceptions->inc();
    throw util::Error(first_error);
  }
  return out;
}

void ProcessFarm::worker_main(int request_fd, int response_fd) {
  // Units are rebuilt by name once and cached; compiled tables are
  // per-job, exactly like the thread farm.
  std::map<std::string, std::unique_ptr<duv::Duv>, std::less<>> units;
  std::string payload;
  std::vector<std::uint64_t> seeds;
  std::vector<coverage::CoverageVector> vectors;
  for (;;) {
    if (!read_frame_fd(request_fd, payload)) {
      ::_exit(0);  // EOF: parent closed the request pipe — clean shutdown
    }
    std::string response;
    try {
      const util::JsonValue request = util::json_parse(payload);
      const std::string& unit_name = request.at("unit").as_string();
      auto it = units.find(unit_name);
      if (it == units.end()) {
        auto unit = duv::make_unit(unit_name);
        if (unit == nullptr) {
          throw util::ConfigError("unknown unit '" + unit_name + "'");
        }
        it = units.emplace(unit_name, std::move(unit)).first;
      }
      const duv::Duv& duv = *it->second;
      const std::size_t event_count = duv.space().size();
      response = "{\"ok\":true,\"partials\":[";
      bool first_partial = true;
      for (const util::JsonValue& job : request.at("jobs").as_array()) {
        const tgen::TestTemplate tmpl =
            tgen::parse_template(job.at("tmpl").as_string());
        const std::uint64_t seed_root =
            parse_seed_root(job.at("seed_root").as_string());
        const auto compiled = duv.compile(tmpl);
        coverage::SimStats stats(event_count);
        const util::SeedStream stream(seed_root);
        for (const util::JsonValue& chunk : job.at("chunks").as_array()) {
          const util::JsonValue::Array& range = chunk.as_array();
          if (range.size() != 2) {
            throw util::Error("malformed chunk range");
          }
          const std::size_t begin = range[0].as_size();
          const std::size_t end = range[1].as_size();
          if (end < begin) throw util::Error("malformed chunk range");
          const std::size_t n = end - begin;
          seeds.resize(n);
          for (std::size_t i = 0; i < n; ++i) {
            seeds[i] = stream.at(begin + i);
          }
          if (vectors.size() < n) {
            vectors.resize(n, coverage::CoverageVector(0));
          }
          duv.simulate_batch(
              tmpl, compiled.get(),
              std::span<const std::uint64_t>(seeds.data(), n),
              std::span<coverage::CoverageVector>(vectors.data(), n));
          for (std::size_t i = 0; i < n; ++i) stats.record(vectors[i]);
        }
        if (!first_partial) response += ',';
        first_partial = false;
        response += "{\"id\":" + std::to_string(job.at("id").as_size()) +
                    ",\"sims\":" + std::to_string(stats.sims()) +
                    ",\"hits\":[";
        const std::vector<std::size_t>& hits = stats.hit_counts();
        for (std::size_t i = 0; i < hits.size(); ++i) {
          if (i != 0) response += ',';
          response += std::to_string(hits[i]);
        }
        response += "]}";
      }
      response += "]}";
    } catch (const std::exception& e) {
      response = std::string("{\"ok\":false,\"error\":\"") +
                 util::json_escape(e.what()) + "\"}";
    }
    if (!write_frame_fd(response_fd, response)) {
      ::_exit(1);  // parent gone mid-response
    }
  }
}

batch::TelemetrySnapshot ProcessFarm::telemetry() const {
  batch::TelemetrySnapshot snap;
  snap.simulations = metrics_.simulations->value();
  snap.runs = metrics_.runs->value();
  snap.exceptions = metrics_.exceptions->value();
  snap.active_runs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.active_runs->value()));
  // Thread-pool scheduling counters (chunks, steals, queue depth, chunk
  // latency, busy time) have no process-backend equivalent yet; they
  // read zero.
  return snap;
}

double ProcessFarm::worker_busy_fraction() const noexcept {
  // Workers run in their own processes; the parent does not observe
  // their busy time. 0 = "unknown", and the report omits the line.
  return 0.0;
}

std::vector<pid_t> ProcessFarm::worker_pids() const {
  std::vector<pid_t> pids;
  for (const Worker& worker : workers_) {
    if (worker.alive && worker.pid > 0) pids.push_back(worker.pid);
  }
  return pids;
}

}  // namespace ascdg::exec
