// The in-process thread backend: batch::SimFarm behind the Backend
// seam. This is the default — everything the farm guarantees (work
// stealing, batch-of-seeds kernels, compile-once-per-job, drain-on-
// destroy) carries over verbatim.
#pragma once

#include "batch/sim_farm.hpp"
#include "exec/backend.hpp"

namespace ascdg::exec {

class ThreadFarm final : public Backend {
 public:
  /// `num_workers` == 0 selects the hardware concurrency.
  explicit ThreadFarm(std::size_t num_workers = 0) : farm_(num_workers) {}

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "thread";
  }
  [[nodiscard]] std::size_t worker_count() const noexcept override {
    return farm_.worker_count();
  }
  [[nodiscard]] std::vector<coverage::SimStats> run_all(
      const duv::Duv& duv, std::span<const Job> jobs) override {
    return farm_.run_all(duv, jobs);
  }
  [[nodiscard]] std::size_t total_simulations() const noexcept override {
    return farm_.total_simulations();
  }
  [[nodiscard]] batch::TelemetrySnapshot telemetry() const override {
    return farm_.telemetry();
  }
  [[nodiscard]] double worker_busy_fraction() const noexcept override {
    return farm_.worker_busy_fraction();
  }

  /// The wrapped farm, for callers that need thread-pool specifics.
  [[nodiscard]] batch::SimFarm& farm() noexcept { return farm_; }

 private:
  batch::SimFarm farm_;
};

}  // namespace ascdg::exec
