#include "exec/backend.hpp"

#include <charconv>

#include "exec/process_farm.hpp"
#include "exec/thread_farm.hpp"
#include "util/error.hpp"

namespace ascdg::exec {

coverage::SimStats Backend::run(const duv::Duv& duv,
                                const tgen::TestTemplate& tmpl,
                                std::size_t count, std::uint64_t seed_root) {
  const Job job{&tmpl, count, seed_root};
  auto results = run_all(duv, std::span<const Job>(&job, 1));
  return std::move(results.front());
}

BackendConfig parse_backend_spec(std::string_view spec) {
  static constexpr std::string_view kHint =
      " (expected thread|process[:N], e.g. --backend=process:8)";
  std::string_view name = spec;
  std::string_view count;
  bool has_count = false;
  if (const std::size_t colon = spec.find(':');
      colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    count = spec.substr(colon + 1);
    has_count = true;
  }
  BackendConfig config;
  if (name == "thread") {
    config.kind = BackendConfig::Kind::kThread;
  } else if (name == "process") {
    config.kind = BackendConfig::Kind::kProcess;
  } else {
    throw util::ConfigError("unknown backend '" + std::string(name) + "'" +
                            std::string(kHint));
  }
  if (has_count) {
    std::size_t workers = 0;
    const auto [end, ec] =
        std::from_chars(count.data(), count.data() + count.size(), workers);
    if (ec != std::errc{} || end != count.data() + count.size() ||
        workers == 0) {
      throw util::ConfigError("bad worker count '" + std::string(count) +
                              "' in backend spec '" + std::string(spec) +
                              "'" + std::string(kHint));
    }
    config.workers = workers;
  }
  return config;
}

std::string to_string(const BackendConfig& config) {
  std::string out =
      config.kind == BackendConfig::Kind::kThread ? "thread" : "process";
  if (config.workers != 0) out += ":" + std::to_string(config.workers);
  return out;
}

std::unique_ptr<Backend> make_backend(const BackendConfig& config) {
  if (config.kind == BackendConfig::Kind::kProcess) {
    return std::make_unique<ProcessFarm>(config.workers);
  }
  return std::make_unique<ThreadFarm>(config.workers);
}

}  // namespace ascdg::exec
