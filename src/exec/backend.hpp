// The execution-backend seam (ROADMAP item 1 groundwork).
//
// Every consumer of the batch environment — the batched objective, the
// flow stages, the CLI — submits work as "simulate these jobs, give me
// per-job SimStats" and never cares where the simulations run. Backend
// is that contract: an implementation takes a batch of Jobs and returns
// per-job hit-count partials, preserving two invariants the rest of the
// system is built on:
//
//   * determinism — the seed of instance i of a job is the pure
//     function SeedStream(seed_root).at(i), and hit-count accumulation
//     is commutative, so results are bit-identical across backends,
//     worker counts, and schedules;
//   * failure containment — if any simulation (or worker) fails, the
//     first error is raised to the caller after the batch has drained,
//     and the backend stays usable for subsequent calls. Never a hang.
//
// Two implementations ship today: ThreadFarm (the in-process
// batch::SimFarm behind the interface) and ProcessFarm (fork-based
// worker processes, docs/backends.md). A socket-based multi-host
// backend is one more implementation of this interface, not another
// rewrite.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "batch/sim_farm.hpp"
#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::exec {

/// A unit of backend work: one template simulated `count` times with
/// instance seeds derived from `seed_root`. Same type as
/// batch::SimFarm::Job — the farm's submission granularity is the
/// backend contract's, too.
using Job = batch::SimFarm::Job;

class Backend {
 public:
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Stable backend name: "thread" or "process". Labels the backend's
  /// metric series and the /runz snapshot.
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  [[nodiscard]] virtual std::size_t worker_count() const noexcept = 0;

  /// Runs all jobs; results are returned in job order. Rethrows the
  /// first error any simulation (or worker) raised, after the whole
  /// batch has drained — the backend stays usable afterwards.
  [[nodiscard]] virtual std::vector<coverage::SimStats> run_all(
      const duv::Duv& duv, std::span<const Job> jobs) = 0;

  /// Single-job convenience over run_all.
  [[nodiscard]] coverage::SimStats run(const duv::Duv& duv,
                                       const tgen::TestTemplate& tmpl,
                                       std::size_t count,
                                       std::uint64_t seed_root);

  /// Total simulations executed since construction — the paper's cost
  /// metric ("number of simulations").
  [[nodiscard]] virtual std::size_t total_simulations() const noexcept = 0;

  /// Point-in-time copy of the backend's run telemetry. Thread-pool
  /// scheduling counters (steals, queue depth) are zero for backends
  /// without an in-process pool.
  [[nodiscard]] virtual batch::TelemetrySnapshot telemetry() const = 0;

  /// Mean worker utilization since construction (0..1); 0 when the
  /// backend cannot observe its workers' busy time.
  [[nodiscard]] virtual double worker_busy_fraction() const noexcept = 0;

 protected:
  Backend() = default;
};

/// Parsed form of the CLI's --backend=thread|process[:N] flag.
struct BackendConfig {
  enum class Kind { kThread, kProcess };
  Kind kind = Kind::kThread;
  /// 0 selects the hardware concurrency.
  std::size_t workers = 0;

  friend bool operator==(const BackendConfig&, const BackendConfig&) = default;
};

/// Parses "thread", "process", "thread:N", "process:N". Throws
/// util::ConfigError (message includes the accepted forms) on an
/// unknown backend name or a garbage worker count.
[[nodiscard]] BackendConfig parse_backend_spec(std::string_view spec);

/// Canonical spelling of a config: "thread", "process:8", ...
[[nodiscard]] std::string to_string(const BackendConfig& config);

/// Constructs the configured backend.
[[nodiscard]] std::unique_ptr<Backend> make_backend(
    const BackendConfig& config);

}  // namespace ascdg::exec
