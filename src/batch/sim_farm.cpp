#include "batch/sim_farm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace ascdg::batch {

namespace {
/// Simulations per work chunk: large enough to amortize queue overhead,
/// small enough to load-balance (and steal well) across workers.
constexpr std::size_t kChunk = 64;

constexpr std::size_t kNotAWorker = std::numeric_limits<std::size_t>::max();

/// Index of the farm worker running on this thread; kNotAWorker on
/// caller threads. Chunk tasks use it to pick their lock-free partial
/// accumulator slot.
thread_local std::size_t tls_worker = kNotAWorker;
}  // namespace

SimFarm::SimFarm(std::size_t num_threads)
    : worker_n_(num_threads != 0
                    ? num_threads
                    : std::max<std::size_t>(
                          1, std::thread::hardware_concurrency())) {
  // Register this farm's labeled series before any worker can touch
  // them. Instance ids keep concurrent farms' books separate.
  static std::atomic<std::uint64_t> next_farm_id{0};
  const std::string id =
      std::to_string(next_farm_id.fetch_add(1, std::memory_order_relaxed));
  obs::Registry& reg = obs::registry();
  metrics_.simulations =
      &reg.counter("ascdg_farm_simulations_total", {{"farm", id}});
  metrics_.chunks = &reg.counter("ascdg_farm_chunks_total", {{"farm", id}});
  metrics_.steals = &reg.counter("ascdg_farm_steals_total", {{"farm", id}});
  metrics_.enqueued =
      &reg.counter("ascdg_farm_enqueued_total", {{"farm", id}});
  metrics_.exceptions =
      &reg.counter("ascdg_farm_exceptions_total", {{"farm", id}});
  metrics_.runs = &reg.counter("ascdg_farm_runs_total", {{"farm", id}});
  metrics_.busy_ns = &reg.counter("ascdg_farm_busy_ns_total", {{"farm", id}});
  metrics_.queue_depth = &reg.gauge("ascdg_farm_queue_depth", {{"farm", id}});
  metrics_.active_runs = &reg.gauge("ascdg_farm_active_runs", {{"farm", id}});
  metrics_.busy_fraction_ppm =
      &reg.gauge("ascdg_farm_worker_busy_fraction", {{"farm", id}});
  metrics_.chunk_latency_us =
      &reg.histogram("ascdg_farm_chunk_latency_us", {{"farm", id}});
  created_ns_ = util::monotonic_ns();

  queues_ = std::make_unique<WorkerQueue[]>(worker_n_);
  workers_.reserve(worker_n_);
  for (std::size_t i = 0; i < worker_n_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

SimFarm::~SimFarm() {
  {
    const std::scoped_lock lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  // Workers drain every queued chunk before exiting (see worker_loop),
  // so an in-flight run_all on another thread completes instead of
  // waiting forever on dropped tasks; we additionally wait for those
  // callers to leave run_all before tearing the farm down under them.
  {
    std::unique_lock lock(sleep_mutex_);
    idle_cv_.wait(lock, [this] {
      return active_runs_.load(std::memory_order_acquire) == 0;
    });
  }
  for (auto& worker : workers_) worker.join();
}

bool SimFarm::take_task(std::size_t index, Task& task) {
  for (std::size_t k = 0; k < worker_n_; ++k) {
    const std::size_t q = (index + k) % worker_n_;
    WorkerQueue& queue = queues_[q];
    const std::scoped_lock lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (k == 0) {
      // Own deque: LIFO keeps the most recently pushed (cache-warm) end.
      task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {
      // Steal the oldest task from the victim's other end.
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    tasks_pending_.fetch_sub(1, std::memory_order_relaxed);
    // Gauge decrement happens while still holding the victim deque's
    // lock, paired with the pre-publication increment in enqueue(): the
    // depth can never be observed negative.
    metrics_.queue_depth->sub(1);
    if (k != 0) metrics_.steals->inc();
    return true;
  }
  return false;
}

void SimFarm::worker_loop(std::size_t index) {
  tls_worker = index;
  Task task;
  for (;;) {
    if (take_task(index, task)) {
      task();
      task = nullptr;  // drop captured state before (possibly) parking
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) ||
             tasks_pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stopping_.load(std::memory_order_relaxed) &&
        tasks_pending_.load(std::memory_order_relaxed) == 0) {
      return;  // stopping and fully drained
    }
  }
}

void SimFarm::enqueue(Task task) {
  ASCDG_ASSERT(!stopping_.load(std::memory_order_acquire),
               "enqueue on a stopping SimFarm");
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % worker_n_;
  // Order matters: pending count and depth telemetry rise before the
  // task becomes stealable, so neither can ever observe a negative.
  tasks_pending_.fetch_add(1, std::memory_order_release);
  metrics_.enqueued->inc();
  metrics_.queue_depth->add(1);
  {
    const std::scoped_lock lock(queues_[q].mutex);
    queues_[q].tasks.push_back(std::move(task));
  }
  {
    // Empty critical section: a worker that just evaluated its wait
    // predicate false cannot park between our increment and notify.
    const std::scoped_lock lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

coverage::SimStats SimFarm::run(const duv::Duv& duv,
                                const tgen::TestTemplate& tmpl,
                                std::size_t count, std::uint64_t seed_root) {
  const Job job{&tmpl, count, seed_root};
  auto results = run_all(duv, std::span<const Job>(&job, 1));
  return std::move(results.front());
}

std::vector<coverage::SimStats> SimFarm::run_all(const duv::Duv& duv,
                                                 std::span<const Job> jobs) {
  // Keep the destructor from reaping the farm while this call is still
  // inside it (the workers themselves drain independently).
  active_runs_.fetch_add(1, std::memory_order_acq_rel);
  metrics_.active_runs->add(1);
  struct RunGuard {
    SimFarm* farm;
    ~RunGuard() {
      // Refresh the utilization gauge at every run retirement, so the
      // live scrape sees a current number without a sampler thread.
      farm->metrics_.busy_fraction_ppm->set(static_cast<std::int64_t>(
          farm->worker_busy_fraction() * 1e6));
      farm->metrics_.active_runs->sub(1);
      if (farm->active_runs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(farm->sleep_mutex_);
        farm->idle_cv_.notify_all();
      }
    }
  } run_guard{this};

  const std::size_t event_count = duv.space().size();
  const std::size_t job_n = jobs.size();

  // Completion tracking shared by all chunks of this call. Partials are
  // (worker, job)-sliced so the simulate loop is lock-free; the single
  // mutex only serializes first-error capture and the final wakeup.
  struct Pending {
    std::vector<coverage::SimStats> partial;  // worker-major [w * jobs + j]
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
  };

  std::size_t chunk_count = 0;
  for (const Job& job : jobs) {
    ASCDG_ASSERT(job.tmpl != nullptr, "job with null template");
    chunk_count += (job.count + kChunk - 1) / kChunk;
  }
  if (chunk_count == 0) {
    // All jobs have count 0 (or there are none): nothing to schedule.
    metrics_.runs->inc();
    return std::vector<coverage::SimStats>(job_n,
                                           coverage::SimStats(event_count));
  }

  auto pending = std::make_shared<Pending>();
  pending->remaining.store(chunk_count, std::memory_order_relaxed);
  pending->partial.assign(worker_n_ * job_n, coverage::SimStats(event_count));

  std::size_t enqueued = 0;
  std::exception_ptr submit_error;
  for (std::size_t j = 0; j < job_n && submit_error == nullptr; ++j) {
    const Job job = jobs[j];
    const util::SeedStream seeds(job.seed_root);
    for (std::size_t begin = 0; begin < job.count; begin += kChunk) {
      const std::size_t end = std::min(begin + kChunk, job.count);
      try {
        enqueue([this, &duv, job, j, job_n, begin, end, seeds, pending] {
          // Fail fast: once one chunk failed, its siblings skip their
          // simulations but still retire through the countdown below.
          if (!pending->failed.load(std::memory_order_acquire)) {
            try {
              ASCDG_ASSERT(tls_worker < worker_n_,
                           "batch chunk executing off the worker pool");
              const auto start = std::chrono::steady_clock::now();
              coverage::SimStats& acc =
                  pending->partial[tls_worker * job_n + j];
              for (std::size_t i = begin; i < end; ++i) {
                acc.record(duv.simulate(*job.tmpl, seeds.at(i)));
              }
              const auto wall_ns = static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count());
              metrics_.simulations->add(end - begin);
              metrics_.chunks->inc();
              metrics_.busy_ns->add(wall_ns);
              metrics_.chunk_latency_us->observe(wall_ns / 1000);
            } catch (...) {
              metrics_.exceptions->inc();
              const std::scoped_lock lock(pending->mutex);
              if (pending->error == nullptr) {
                pending->error = std::current_exception();
              }
              pending->failed.store(true, std::memory_order_release);
            }
          }
          // Every path retires the chunk; the last one wakes the caller.
          if (pending->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            const std::scoped_lock lock(pending->mutex);
            pending->done.notify_all();
          }
        });
        ++enqueued;
      } catch (...) {
        // enqueue refused (farm stopping): the missing chunks will never
        // run, so retire them here, then wait out the ones already queued.
        submit_error = std::current_exception();
        pending->remaining.fetch_sub(chunk_count - enqueued,
                                     std::memory_order_acq_rel);
        break;
      }
    }
  }

  {
    std::unique_lock lock(pending->mutex);
    pending->done.wait(lock, [&] {
      return pending->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  metrics_.runs->inc();

  if (submit_error != nullptr) std::rethrow_exception(submit_error);
  if (pending->failed.load(std::memory_order_acquire)) {
    // Move the exception out of Pending so its last reference is
    // released on this thread — a worker may drop the final Pending
    // ref concurrently, and the caller is still reading the rethrown
    // exception (e.g. its what() string) at that point.
    std::exception_ptr error;
    {
      const std::scoped_lock lock(pending->mutex);
      error = std::move(pending->error);
    }
    std::rethrow_exception(error);
  }

  std::vector<coverage::SimStats> out(job_n, coverage::SimStats(event_count));
  for (std::size_t w = 0; w < worker_n_; ++w) {
    for (std::size_t j = 0; j < job_n; ++j) {
      const coverage::SimStats& part = pending->partial[w * job_n + j];
      if (part.sims() != 0) out[j].merge(part);
    }
  }
  return out;
}

TelemetrySnapshot SimFarm::telemetry() const {
  TelemetrySnapshot snap;
  snap.simulations = metrics_.simulations->value();
  snap.chunks = metrics_.chunks->value();
  snap.steals = metrics_.steals->value();
  snap.enqueued = metrics_.enqueued->value();
  snap.queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.queue_depth->value()));
  snap.max_queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.queue_depth->peak()));
  snap.exceptions = metrics_.exceptions->value();
  snap.runs = metrics_.runs->value();
  snap.active_runs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.active_runs->value()));
  snap.busy_ns = metrics_.busy_ns->value();
  snap.busy_fraction = worker_busy_fraction();
  for (std::size_t i = 0; i < TelemetrySnapshot::kLatencyBuckets; ++i) {
    snap.chunk_latency[i] = metrics_.chunk_latency_us->bucket(i);
  }
  return snap;
}

double SimFarm::worker_busy_fraction() const noexcept {
  const std::uint64_t elapsed = util::monotonic_ns() - created_ns_;
  if (elapsed == 0 || worker_n_ == 0) return 0.0;
  const double capacity =
      static_cast<double>(elapsed) * static_cast<double>(worker_n_);
  return std::min(1.0, static_cast<double>(metrics_.busy_ns->value()) /
                           capacity);
}

}  // namespace ascdg::batch
