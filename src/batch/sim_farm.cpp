#include "batch/sim_farm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace ascdg::batch {

namespace {
/// Simulations per work chunk: large enough to amortize queue overhead
/// (and give simulate_batch a wide SoA batch), small enough to
/// load-balance (and steal well) across workers.
constexpr std::size_t kChunk = 64;

/// Initial per-worker ring capacity (chunks). Rings grow on demand and
/// never shrink, so a steady workload allocates once.
constexpr std::size_t kInitialRingCapacity = 64;

constexpr std::size_t kNotAWorker = std::numeric_limits<std::size_t>::max();

/// Index of the farm worker running on this thread; kNotAWorker on
/// caller threads. Chunks use it to pick their lock-free partial
/// accumulator slot.
thread_local std::size_t tls_worker = kNotAWorker;

/// Per-worker batch arena: seed and coverage-vector storage reused
/// across chunks, so the steady-state hot path performs no heap
/// allocation (simulate_batch overwrites the vectors in place).
struct Workspace {
  std::vector<std::uint64_t> seeds;
  std::vector<coverage::CoverageVector> vectors;
};

Workspace& batch_workspace() {
  static thread_local Workspace ws;
  return ws;
}
}  // namespace

/// Shared state of one run_all() call. Lives on the caller's stack: the
/// all_done handshake guarantees no worker can still touch it once the
/// caller's wait returns.
struct SimFarm::RunContext {
  const duv::Duv* duv = nullptr;
  std::span<const Job> jobs;
  std::size_t job_n = 0;
  /// Per-job compiled distribution tables, built once before any chunk
  /// is enqueued (nullptr for units that do not override Duv::compile —
  /// their simulate_batch falls back to the scalar loop).
  std::vector<std::unique_ptr<duv::Duv::Compiled>> compiled;
  /// (worker, job)-sliced partials, worker-major [w * job_n + j]; the
  /// simulation loop is lock-free, the caller merges once at join time.
  std::vector<coverage::SimStats> partial;
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;
  /// Set under `mutex` by whoever retires the last chunk; the caller's
  /// wait predicate reads it under the same mutex, so a spurious wakeup
  /// can never release the caller while a worker still holds `this`.
  bool all_done = false;
};

void SimFarm::ChunkRing::reserve(std::size_t capacity) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  if (cap > buf_.size()) grow(cap);
}

void SimFarm::ChunkRing::grow(std::size_t capacity) {
  std::vector<ChunkRef> next(capacity);
  for (std::size_t i = 0; i < size_; ++i) {
    next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
  }
  buf_ = std::move(next);
  head_ = 0;
}

void SimFarm::ChunkRing::push_back(const ChunkRef& chunk) {
  if (size_ == buf_.size()) {
    grow(std::max<std::size_t>(kInitialRingCapacity, buf_.size() * 2));
  }
  buf_[(head_ + size_) & (buf_.size() - 1)] = chunk;
  ++size_;
}

SimFarm::ChunkRef SimFarm::ChunkRing::pop_back() noexcept {
  --size_;
  return buf_[(head_ + size_) & (buf_.size() - 1)];
}

SimFarm::ChunkRef SimFarm::ChunkRing::pop_front() noexcept {
  const ChunkRef chunk = buf_[head_];
  head_ = (head_ + 1) & (buf_.size() - 1);
  --size_;
  return chunk;
}

SimFarm::SimFarm(std::size_t num_threads)
    : worker_n_(num_threads != 0
                    ? num_threads
                    : std::max<std::size_t>(
                          1, std::thread::hardware_concurrency())) {
  // Register this farm's labeled series before any worker can touch
  // them. Instance ids keep concurrent farms' books separate.
  static std::atomic<std::uint64_t> next_farm_id{0};
  const std::string id =
      std::to_string(next_farm_id.fetch_add(1, std::memory_order_relaxed));
  obs::Registry& reg = obs::registry();
  metrics_.simulations =
      &reg.counter("ascdg_farm_simulations_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.chunks = &reg.counter("ascdg_farm_chunks_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.steals = &reg.counter("ascdg_farm_steals_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.enqueued =
      &reg.counter("ascdg_farm_enqueued_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.exceptions =
      &reg.counter("ascdg_farm_exceptions_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.runs = &reg.counter("ascdg_farm_runs_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.busy_ns = &reg.counter("ascdg_farm_busy_ns_total", {{"backend", "thread"}, {"farm", id}});
  metrics_.queue_depth = &reg.gauge("ascdg_farm_queue_depth", {{"backend", "thread"}, {"farm", id}});
  metrics_.active_runs = &reg.gauge("ascdg_farm_active_runs", {{"backend", "thread"}, {"farm", id}});
  metrics_.busy_fraction_ppm =
      &reg.gauge("ascdg_farm_worker_busy_fraction", {{"backend", "thread"}, {"farm", id}});
  metrics_.chunk_latency_us =
      &reg.histogram("ascdg_farm_chunk_latency_us", {{"backend", "thread"}, {"farm", id}});
  created_ns_ = util::monotonic_ns();

  queues_ = std::make_unique<WorkerQueue[]>(worker_n_);
  for (std::size_t i = 0; i < worker_n_; ++i) {
    queues_[i].tasks.reserve(kInitialRingCapacity);
  }
  workers_.reserve(worker_n_);
  for (std::size_t i = 0; i < worker_n_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

SimFarm::~SimFarm() {
  {
    const std::scoped_lock lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  // Workers drain every queued chunk before exiting (see worker_loop),
  // so an in-flight run_all on another thread completes instead of
  // waiting forever on dropped tasks; we additionally wait for those
  // callers to leave run_all before tearing the farm down under them.
  {
    std::unique_lock lock(sleep_mutex_);
    idle_cv_.wait(lock, [this] {
      return active_runs_.load(std::memory_order_acquire) == 0;
    });
  }
  for (auto& worker : workers_) worker.join();
}

bool SimFarm::take_task(std::size_t index, ChunkRef& chunk) {
  for (std::size_t k = 0; k < worker_n_; ++k) {
    const std::size_t q = (index + k) % worker_n_;
    WorkerQueue& queue = queues_[q];
    const std::scoped_lock lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (k == 0) {
      // Own deque: LIFO keeps the most recently pushed (cache-warm) end.
      chunk = queue.tasks.pop_back();
    } else {
      // Steal the oldest chunk from the victim's other end.
      chunk = queue.tasks.pop_front();
    }
    tasks_pending_.fetch_sub(1, std::memory_order_relaxed);
    // Gauge decrement happens while still holding the victim deque's
    // lock, paired with the pre-publication increment in enqueue(): the
    // depth can never be observed negative.
    metrics_.queue_depth->sub(1);
    if (k != 0) metrics_.steals->inc();
    return true;
  }
  return false;
}

void SimFarm::worker_loop(std::size_t index) {
  tls_worker = index;
  ChunkRef chunk;
  for (;;) {
    if (take_task(index, chunk)) {
      execute_chunk(chunk);
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) ||
             tasks_pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stopping_.load(std::memory_order_relaxed) &&
        tasks_pending_.load(std::memory_order_relaxed) == 0) {
      return;  // stopping and fully drained
    }
  }
}

void SimFarm::enqueue(const ChunkRef& chunk) {
  ASCDG_ASSERT(!stopping_.load(std::memory_order_acquire),
               "enqueue on a stopping SimFarm");
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % worker_n_;
  // Order matters: pending count and depth telemetry rise before the
  // chunk becomes stealable, so neither can ever observe a negative.
  tasks_pending_.fetch_add(1, std::memory_order_release);
  metrics_.enqueued->inc();
  metrics_.queue_depth->add(1);
  {
    const std::scoped_lock lock(queues_[q].mutex);
    queues_[q].tasks.push_back(chunk);
  }
  {
    // Empty critical section: a worker that just evaluated its wait
    // predicate false cannot park between our increment and notify.
    const std::scoped_lock lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

void SimFarm::execute_chunk(const ChunkRef& chunk) {
  RunContext& ctx = *chunk.ctx;
  // Fail fast: once one chunk of the run failed, its siblings skip
  // their simulations but still retire through the countdown below.
  if (!ctx.failed.load(std::memory_order_acquire)) {
    try {
      ASCDG_ASSERT(tls_worker < worker_n_,
                   "batch chunk executing off the worker pool");
      const auto start = std::chrono::steady_clock::now();
      const Job& job = ctx.jobs[chunk.job];
      const std::size_t n = chunk.end - chunk.begin;
      Workspace& ws = batch_workspace();
      ws.seeds.resize(n);
      const util::SeedStream stream(job.seed_root);
      for (std::size_t i = 0; i < n; ++i) {
        ws.seeds[i] = stream.at(chunk.begin + i);
      }
      if (ws.vectors.size() < n) {
        ws.vectors.resize(n, coverage::CoverageVector(0));
      }
      ctx.duv->simulate_batch(
          *job.tmpl, ctx.compiled[chunk.job].get(),
          std::span<const std::uint64_t>(ws.seeds.data(), n),
          std::span<coverage::CoverageVector>(ws.vectors.data(), n));
      coverage::SimStats& acc =
          ctx.partial[tls_worker * ctx.job_n + chunk.job];
      for (std::size_t i = 0; i < n; ++i) acc.record(ws.vectors[i]);
      const auto wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      metrics_.simulations->add(n);
      metrics_.chunks->inc();
      metrics_.busy_ns->add(wall_ns);
      metrics_.chunk_latency_us->observe(wall_ns / 1000);
    } catch (...) {
      metrics_.exceptions->inc();
      const std::scoped_lock lock(ctx.mutex);
      if (ctx.error == nullptr) ctx.error = std::current_exception();
      ctx.failed.store(true, std::memory_order_release);
    }
  }
  // Every path retires the chunk; the last one wakes the caller. Once
  // all_done is published the caller may destroy the context, so this
  // must be the worker's final touch of ctx.
  if (ctx.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::scoped_lock lock(ctx.mutex);
    ctx.all_done = true;
    ctx.done.notify_all();
  }
}

coverage::SimStats SimFarm::run(const duv::Duv& duv,
                                const tgen::TestTemplate& tmpl,
                                std::size_t count, std::uint64_t seed_root) {
  const Job job{&tmpl, count, seed_root};
  auto results = run_all(duv, std::span<const Job>(&job, 1));
  return std::move(results.front());
}

std::vector<coverage::SimStats> SimFarm::run_all(const duv::Duv& duv,
                                                 std::span<const Job> jobs) {
  // Keep the destructor from reaping the farm while this call is still
  // inside it (the workers themselves drain independently).
  active_runs_.fetch_add(1, std::memory_order_acq_rel);
  metrics_.active_runs->add(1);
  struct RunGuard {
    SimFarm* farm;
    ~RunGuard() {
      // Refresh the utilization gauge at every run retirement, so the
      // live scrape sees a current number without a sampler thread.
      farm->metrics_.busy_fraction_ppm->set(static_cast<std::int64_t>(
          farm->worker_busy_fraction() * 1e6));
      farm->metrics_.active_runs->sub(1);
      if (farm->active_runs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(farm->sleep_mutex_);
        farm->idle_cv_.notify_all();
      }
    }
  } run_guard{this};

  const std::size_t event_count = duv.space().size();
  const std::size_t job_n = jobs.size();

  std::size_t chunk_count = 0;
  for (const Job& job : jobs) {
    ASCDG_ASSERT(job.tmpl != nullptr, "job with null template");
    chunk_count += (job.count + kChunk - 1) / kChunk;
  }
  if (chunk_count == 0) {
    // All jobs have count 0 (or there are none): nothing to schedule.
    metrics_.runs->inc();
    return std::vector<coverage::SimStats>(job_n,
                                           coverage::SimStats(event_count));
  }

  RunContext ctx;
  ctx.duv = &duv;
  ctx.jobs = jobs;
  ctx.job_n = job_n;
  // Compile every job's template once, before anything is enqueued: all
  // chunks of a job share the read-only tables instead of re-resolving
  // (overrides, defaults) per simulation. A compile failure propagates
  // here with no chunks outstanding.
  ctx.compiled.reserve(job_n);
  for (const Job& job : jobs) ctx.compiled.push_back(duv.compile(*job.tmpl));
  ctx.partial.assign(worker_n_ * job_n, coverage::SimStats(event_count));
  ctx.remaining.store(chunk_count, std::memory_order_relaxed);

  std::size_t enqueued = 0;
  std::exception_ptr submit_error;
  for (std::size_t j = 0; j < job_n && submit_error == nullptr; ++j) {
    for (std::size_t begin = 0; begin < jobs[j].count; begin += kChunk) {
      const std::size_t end = std::min(begin + kChunk, jobs[j].count);
      try {
        enqueue(ChunkRef{&ctx, j, begin, end});
        ++enqueued;
      } catch (...) {
        // enqueue refused (farm stopping): the missing chunks will never
        // run, so retire them here, then wait out the ones already
        // queued. If that retires the whole run (nothing was enqueued,
        // or every queued chunk already finished), publish all_done
        // ourselves — no worker is left to do it.
        submit_error = std::current_exception();
        const std::size_t missing = chunk_count - enqueued;
        if (ctx.remaining.fetch_sub(missing, std::memory_order_acq_rel) ==
            missing) {
          const std::scoped_lock lock(ctx.mutex);
          ctx.all_done = true;
        }
        break;
      }
    }
  }

  {
    std::unique_lock lock(ctx.mutex);
    ctx.done.wait(lock, [&ctx] { return ctx.all_done; });
  }
  metrics_.runs->inc();

  if (submit_error != nullptr) std::rethrow_exception(submit_error);
  if (ctx.failed.load(std::memory_order_acquire)) {
    // Safe without the mutex: all_done means every chunk retired, so no
    // worker can still be writing ctx.error.
    std::rethrow_exception(ctx.error);
  }

  std::vector<coverage::SimStats> out(job_n, coverage::SimStats(event_count));
  for (std::size_t w = 0; w < worker_n_; ++w) {
    for (std::size_t j = 0; j < job_n; ++j) {
      const coverage::SimStats& part = ctx.partial[w * job_n + j];
      if (part.sims() != 0) out[j].merge(part);
    }
  }
  return out;
}

TelemetrySnapshot SimFarm::telemetry() const {
  TelemetrySnapshot snap;
  snap.simulations = metrics_.simulations->value();
  snap.chunks = metrics_.chunks->value();
  snap.steals = metrics_.steals->value();
  snap.enqueued = metrics_.enqueued->value();
  snap.queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.queue_depth->value()));
  snap.max_queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.queue_depth->peak()));
  snap.exceptions = metrics_.exceptions->value();
  snap.runs = metrics_.runs->value();
  snap.active_runs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, metrics_.active_runs->value()));
  snap.busy_ns = metrics_.busy_ns->value();
  snap.busy_fraction = worker_busy_fraction();
  for (std::size_t i = 0; i < TelemetrySnapshot::kLatencyBuckets; ++i) {
    snap.chunk_latency[i] = metrics_.chunk_latency_us->bucket(i);
  }
  return snap;
}

double SimFarm::worker_busy_fraction() const noexcept {
  const std::uint64_t elapsed = util::monotonic_ns() - created_ns_;
  if (elapsed == 0 || worker_n_ == 0) return 0.0;
  const double capacity =
      static_cast<double>(elapsed) * static_cast<double>(worker_n_);
  return std::min(1.0, static_cast<double>(metrics_.busy_ns->value()) /
                           capacity);
}

}  // namespace ascdg::batch
