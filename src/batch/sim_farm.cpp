#include "batch/sim_farm.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::batch {

namespace {
/// Simulations per work chunk: large enough to amortize queue overhead,
/// small enough to load-balance across workers.
constexpr std::size_t kChunk = 64;
}  // namespace

SimFarm::SimFarm(std::size_t num_threads) {
  std::size_t n = num_threads != 0 ? num_threads
                                   : std::max<std::size_t>(
                                         1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimFarm::~SimFarm() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void SimFarm::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void SimFarm::enqueue(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    ASCDG_ASSERT(!stopping_, "enqueue on a stopping farm");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

coverage::SimStats SimFarm::run(const duv::Duv& duv,
                                const tgen::TestTemplate& tmpl,
                                std::size_t count, std::uint64_t seed_root) {
  const Job job{&tmpl, count, seed_root};
  auto results = run_all(duv, std::span<const Job>(&job, 1));
  return std::move(results.front());
}

std::vector<coverage::SimStats> SimFarm::run_all(const duv::Duv& duv,
                                                 std::span<const Job> jobs) {
  struct ChunkResult {
    coverage::SimStats stats;
    std::size_t job_index = 0;
  };

  // Completion tracking shared by all chunks of this call.
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::vector<ChunkResult> results;
  };
  auto pending = std::make_shared<Pending>();

  std::size_t chunk_count = 0;
  for (const Job& job : jobs) {
    ASCDG_ASSERT(job.tmpl != nullptr, "job with null template");
    chunk_count += (job.count + kChunk - 1) / kChunk;
  }
  pending->remaining = chunk_count;
  pending->results.reserve(chunk_count);

  const std::size_t event_count = duv.space().size();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    const util::SeedStream seeds(job.seed_root);
    for (std::size_t begin = 0; begin < job.count; begin += kChunk) {
      const std::size_t end = std::min(begin + kChunk, job.count);
      enqueue([this, &duv, job, j, begin, end, seeds, event_count, pending] {
        coverage::SimStats stats(event_count);
        for (std::size_t i = begin; i < end; ++i) {
          stats.record(duv.simulate(*job.tmpl, seeds.at(i)));
        }
        total_sims_.fetch_add(end - begin, std::memory_order_relaxed);
        {
          const std::scoped_lock lock(pending->mutex);
          pending->results.push_back({std::move(stats), j});
          --pending->remaining;
        }
        pending->cv.notify_one();
      });
    }
  }

  // Zero-chunk edge case (all jobs have count 0) falls straight through.
  {
    std::unique_lock lock(pending->mutex);
    pending->cv.wait(lock, [&] { return pending->remaining == 0; });
  }

  std::vector<coverage::SimStats> out(jobs.size(), coverage::SimStats(event_count));
  for (auto& chunk : pending->results) {
    out[chunk.job_index].merge(chunk.stats);
  }
  return out;
}

}  // namespace ascdg::batch
