// The batch simulation environment (paper Fig. 2: "Batch env").
//
// The CDG-Runner "sends the templates to the batch environment for
// simulation [and] collects the coverage data". SimFarm is that
// environment: a persistent worker pool that simulates N test-instances
// of a template and accumulates the per-event hit counts.
//
// Determinism: the seed of instance i of a run is a pure function of
// (seed_root, i) via a SeedStream, and hit-count accumulation is
// commutative, so results are bit-identical for any worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::batch {

class SimFarm {
 public:
  /// `num_threads` == 0 selects std::thread::hardware_concurrency().
  explicit SimFarm(std::size_t num_threads = 0);
  ~SimFarm();

  SimFarm(const SimFarm&) = delete;
  SimFarm& operator=(const SimFarm&) = delete;

  /// Simulates `count` instances of `tmpl` on `duv` with instance seeds
  /// derived from `seed_root`; returns the accumulated statistics.
  /// Blocks until complete. Thread-safe for concurrent callers.
  [[nodiscard]] coverage::SimStats run(const duv::Duv& duv,
                                       const tgen::TestTemplate& tmpl,
                                       std::size_t count,
                                       std::uint64_t seed_root);

  /// A batch job: one template simulated `count` times.
  struct Job {
    const tgen::TestTemplate* tmpl = nullptr;
    std::size_t count = 0;
    std::uint64_t seed_root = 0;
  };

  /// Runs all jobs (interleaved across the pool); results are returned
  /// in job order.
  [[nodiscard]] std::vector<coverage::SimStats> run_all(
      const duv::Duv& duv, std::span<const Job> jobs);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Total simulations executed by this farm since construction — the
  /// paper's cost metric ("number of simulations").
  [[nodiscard]] std::size_t total_simulations() const noexcept {
    return total_sims_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::size_t> total_sims_{0};
};

}  // namespace ascdg::batch
