// The batch simulation environment (paper Fig. 2: "Batch env"), v3.
//
// The CDG-Runner "sends the templates to the batch environment for
// simulation [and] collects the coverage data". SimFarm is that
// environment: a persistent worker pool that simulates N test-instances
// of a template and accumulates the per-event hit counts.
//
// v3 scheduling: a chunk is a contiguous seed range [begin, end) of one
// job, described by a POD ChunkRef on a grow-only ring buffer — no
// per-chunk std::function, no per-chunk heap allocation once the rings
// have grown to a run's high-water mark. A worker hands its whole chunk
// to Duv::simulate_batch as one batch-of-seeds kernel call over
// per-worker arena storage (seeds + coverage vectors, reused across
// chunks); the per-template distribution tables are compiled once per
// job (Duv::compile) and shared read-only by every chunk of that job.
// Submission round-robins across the per-worker deques and an idle
// worker steals from its peers before sleeping, so one slow chunk never
// serializes the pool behind a global queue lock. Hit counts accumulate
// into per-(worker, job) partials that the caller merges once at join
// time — the hot simulation loop takes no lock at all.
//
// Determinism: the seed of instance i of a run is a pure function of
// (seed_root, i) via a SeedStream, each batch lane advances its own
// seed's RNG stream (simulate_batch lane i is bit-identical to scalar
// simulate(seeds[i])), and hit-count accumulation is commutative, so
// results are bit-identical for any worker count, any batch width, and
// any steal schedule.
//
// Failure semantics: if a simulation (or stats accumulation) throws,
// the first exception is captured, the remaining chunks of that call
// are skipped (their countdown still runs), and run/run_all rethrows
// to the caller once every chunk has retired — the farm never hangs
// and stays usable for subsequent calls. Destruction drains: queued
// chunks finish before the workers exit, so an in-flight run_all on
// another thread completes rather than deadlocking on dropped tasks.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "obs/metrics.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::batch {

/// Point-in-time copy of one farm's run counters, safe to pass around.
/// Backed by the process metrics registry: every series below also
/// exists there as `ascdg_farm_*{backend="thread",farm="<id>"}` (see
/// docs/observability.md for the naming scheme; the process backend
/// labels its series backend="process"), so Prometheus/JSON exports see
/// the same numbers this struct reports.
struct TelemetrySnapshot {
  /// Log2-of-microseconds histogram buckets: bucket i counts chunks
  /// whose wall time t satisfies 2^i us <= t < 2^(i+1) us (bucket 0
  /// also absorbs sub-microsecond chunks, the last bucket the tail).
  static constexpr std::size_t kLatencyBuckets = obs::Histogram::kBuckets;

  std::size_t simulations = 0;      ///< simulate() calls completed
  std::size_t chunks = 0;           ///< work chunks executed
  std::size_t steals = 0;           ///< chunks taken from another worker's deque
  std::size_t enqueued = 0;         ///< chunks pushed onto worker deques
  std::size_t queue_depth = 0;      ///< currently queued-but-not-taken chunks
  std::size_t max_queue_depth = 0;  ///< peak queued-but-not-taken chunks
  std::size_t exceptions = 0;       ///< chunks that ended in a captured exception
  std::size_t runs = 0;             ///< run_all() calls completed
  std::size_t active_runs = 0;      ///< run_all() calls currently in flight
  std::uint64_t busy_ns = 0;        ///< summed wall time inside chunks
  /// Fraction of the pool's wall-clock capacity spent inside chunks
  /// since construction (0..1): busy_ns / (workers x farm lifetime).
  /// The watchdog/report read the same number from the
  /// `ascdg_farm_worker_busy_fraction` gauge (stored in ppm).
  double busy_fraction = 0.0;
  std::array<std::size_t, kLatencyBuckets> chunk_latency{};

  /// Mean chunk wall time in microseconds (0 when no chunk ran).
  [[nodiscard]] double mean_chunk_us() const noexcept {
    return chunks == 0 ? 0.0
                       : static_cast<double>(busy_ns) / 1000.0 /
                             static_cast<double>(chunks);
  }
};

class SimFarm {
 public:
  /// `num_threads` == 0 selects std::thread::hardware_concurrency().
  explicit SimFarm(std::size_t num_threads = 0);

  /// Drains every queued chunk, then joins the workers. Submitting new
  /// work during / after destruction is a caller bug and fails fast
  /// (util::LogicError) instead of hanging.
  ~SimFarm();

  SimFarm(const SimFarm&) = delete;
  SimFarm& operator=(const SimFarm&) = delete;

  /// Simulates `count` instances of `tmpl` on `duv` with instance seeds
  /// derived from `seed_root`; returns the accumulated statistics.
  /// Blocks until complete. Thread-safe for concurrent callers.
  /// Rethrows the first exception any simulation raised.
  [[nodiscard]] coverage::SimStats run(const duv::Duv& duv,
                                       const tgen::TestTemplate& tmpl,
                                       std::size_t count,
                                       std::uint64_t seed_root);

  /// A batch job: one template simulated `count` times. `tag` is an
  /// opaque caller-correlation id carried alongside the job (e.g. the
  /// batch position a multi-point evaluation maps this job back to);
  /// the farm never interprets it — results come back in job order
  /// regardless.
  struct Job {
    const tgen::TestTemplate* tmpl = nullptr;
    std::size_t count = 0;
    std::uint64_t seed_root = 0;
    std::size_t tag = 0;
  };

  /// Runs all jobs (interleaved across the pool); results are returned
  /// in job order. Each job's template is compiled once (Duv::compile)
  /// before scheduling and the tables are shared by all of its chunks.
  /// Rethrows the first exception any simulation raised, after every
  /// chunk of this call has retired.
  [[nodiscard]] std::vector<coverage::SimStats> run_all(
      const duv::Duv& duv, std::span<const Job> jobs);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return worker_n_;
  }

  /// Total simulations executed by this farm since construction — the
  /// paper's cost metric ("number of simulations"). Chunks aborted by
  /// an exception are not counted.
  [[nodiscard]] std::size_t total_simulations() const noexcept {
    return metrics_.simulations->value();
  }

  /// Point-in-time copy of the farm's run telemetry (read back from the
  /// registry series this farm owns).
  [[nodiscard]] TelemetrySnapshot telemetry() const;

  /// Mean worker utilization since construction (0..1): summed chunk
  /// wall time over the pool's elapsed capacity.
  [[nodiscard]] double worker_busy_fraction() const noexcept;

 private:
  /// Shared state of one run_all() call; lives on the caller's stack
  /// for the duration of the call (sim_farm.cpp).
  struct RunContext;

  /// One batch chunk: instances [begin, end) of job `job` in run `ctx`.
  /// POD — queued by value, so scheduling allocates nothing per chunk.
  struct ChunkRef {
    RunContext* ctx = nullptr;
    std::size_t job = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Grow-only power-of-two ring buffer of chunk descriptors. Replaces
  /// the v2 std::deque<std::function>: capacity is retained across
  /// runs, so the steady state pushes and pops without touching the
  /// heap. Callers must not pop from an empty ring.
  class ChunkRing {
   public:
    /// Grows capacity to at least `capacity` (rounded up to a power of
    /// two); never shrinks.
    void reserve(std::size_t capacity);
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    void push_back(const ChunkRef& chunk);
    ChunkRef pop_back() noexcept;
    ChunkRef pop_front() noexcept;

   private:
    void grow(std::size_t capacity);

    std::vector<ChunkRef> buf_;  ///< size is the capacity (power of two)
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  /// One worker's deque. Padded to its own cache line so per-worker
  /// push/pop never false-shares with a neighbor.
  struct alignas(64) WorkerQueue {
    std::mutex mutex;
    ChunkRing tasks;
  };

  void worker_loop(std::size_t index);
  void enqueue(const ChunkRef& chunk);
  /// Pops from `index`'s own deque, else steals from a peer (scanning
  /// from index+1). Returns false when every deque is empty.
  bool take_task(std::size_t index, ChunkRef& chunk);
  /// Runs one chunk (seed fill, simulate_batch, partial accumulation)
  /// and retires it against its run's countdown.
  void execute_chunk(const ChunkRef& chunk);

  /// Fixed before any worker starts (workers_ itself is still being
  /// populated while early workers run, so they must not size() it).
  std::size_t worker_n_;
  std::unique_ptr<WorkerQueue[]> queues_;
  std::vector<std::thread> workers_;

  // Idle workers park on sleep_cv_; tasks_pending_ counts chunks that
  // are queued but not yet taken (enqueue increments, take decrements
  // under the owning deque's lock).
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  /// Signalled when the last in-flight run_all retires; the destructor
  /// waits on it so a concurrent caller finishes using the farm before
  /// the workers are reaped.
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> tasks_pending_{0};
  std::atomic<std::size_t> active_runs_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};

  /// This farm's registry series, labeled {farm="<instance id>"} so
  /// concurrent farms in one process keep separate books. Handles are
  /// stable for the registry's (static) lifetime; mutators are
  /// wait-free on the worker hot path.
  struct FarmMetrics {
    obs::Counter* simulations = nullptr;
    obs::Counter* chunks = nullptr;
    obs::Counter* steals = nullptr;
    obs::Counter* enqueued = nullptr;
    obs::Counter* exceptions = nullptr;
    obs::Counter* runs = nullptr;
    obs::Counter* busy_ns = nullptr;
    /// Queued-but-not-taken chunks. Incremented in enqueue() before the
    /// task becomes stealable and decremented inside the owning deque's
    /// lock in take_task(), so it can never dip negative and its peak
    /// watermark is exact (the old ad-hoc gauge raced enqueue/steal).
    obs::Gauge* queue_depth = nullptr;
    /// run_all() calls currently inside the farm — the watchdog's
    /// "work outstanding" signal (a wedged worker keeps this positive
    /// while every progress counter flatlines).
    obs::Gauge* active_runs = nullptr;
    /// Pool utilization in parts-per-million (gauges are integral);
    /// refreshed at every run_all() completion.
    obs::Gauge* busy_fraction_ppm = nullptr;
    obs::Histogram* chunk_latency_us = nullptr;
  };
  FarmMetrics metrics_;
  /// util::monotonic_ns() at construction — busy-fraction denominator.
  std::uint64_t created_ns_ = 0;
};

}  // namespace ascdg::batch
