#include "batch/telemetry.hpp"

#include <bit>
#include <chrono>

#include "util/error.hpp"

namespace ascdg::batch {

void Telemetry::on_enqueue() noexcept {
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t depth =
      queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_queue_depth_.compare_exchange_weak(seen, depth,
                                                 std::memory_order_relaxed)) {
  }
}

void Telemetry::on_take(bool stolen) noexcept {
  queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
}

void Telemetry::on_chunk(std::size_t sims, std::uint64_t wall_ns) noexcept {
  simulations_.fetch_add(sims, std::memory_order_relaxed);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  busy_ns_.fetch_add(wall_ns, std::memory_order_relaxed);
  const std::uint64_t us = wall_ns / 1000;
  const std::size_t bucket =
      us == 0 ? 0
              : std::min<std::size_t>(std::bit_width(us) - 1,
                                      TelemetrySnapshot::kLatencyBuckets - 1);
  latency_[bucket].fetch_add(1, std::memory_order_relaxed);
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot snap;
  snap.simulations = simulations_.load(std::memory_order_relaxed);
  snap.chunks = chunks_.load(std::memory_order_relaxed);
  snap.steals = steals_.load(std::memory_order_relaxed);
  snap.enqueued = enqueued_.load(std::memory_order_relaxed);
  snap.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  snap.exceptions = exceptions_.load(std::memory_order_relaxed);
  snap.runs = runs_.load(std::memory_order_relaxed);
  snap.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < snap.chunk_latency.size(); ++i) {
    snap.chunk_latency[i] = latency_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

TraceSink::TraceSink(const std::filesystem::path& path)
    : owned_(path, std::ios::trunc), os_(&owned_) {
  if (!owned_) {
    throw util::Error("cannot open trace file '" + path.string() +
                      "' for writing");
  }
}

TraceSink::TraceSink(std::ostream& os) : os_(&os) {}

void TraceSink::emit(const util::JsonObject& object) {
  const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  const std::scoped_lock lock(mutex_);
  const std::size_t seq = lines_.fetch_add(1, std::memory_order_relaxed);
  util::JsonObject stamped;
  stamped.add("seq", seq).add("ts_ms", static_cast<std::int64_t>(ts_ms));
  // Splice the caller's fields after the stamps: "{...stamps...}" +
  // "{...fields...}" -> one flat object.
  std::string line = stamped.str();
  const std::string body = object.str();
  if (body.size() > 2) {  // non-empty object
    line.pop_back();
    line += ',';
    line.append(body.begin() + 1, body.end());
  }
  *os_ << line << '\n';
  os_->flush();
  if (!*os_) throw util::Error("failed writing trace line");
}

}  // namespace ascdg::batch
