// Run telemetry for the batch simulation environment.
//
// The paper's cost metric is the number of simulations, so the farm
// keeps first-class books: lock-free atomic counters (simulations,
// chunks, steals, queue depth), a log2 latency histogram of chunk wall
// time, and a JSONL trace sink that the CDG-Runner uses to record the
// simulation budget and latency of every flow phase.
//
// Telemetry is write-hot / read-cold: counters are relaxed atomics
// bumped by workers, and readers take a point-in-time snapshot()
// (consistent enough for reporting; not a linearizable cut).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

#include "util/jsonl.hpp"

namespace ascdg::batch {

/// Point-in-time copy of the farm's counters, safe to pass around.
struct TelemetrySnapshot {
  /// Log2-of-microseconds histogram buckets: bucket i counts chunks
  /// whose wall time t satisfies 2^i us <= t < 2^(i+1) us (bucket 0
  /// also absorbs sub-microsecond chunks, the last bucket the tail).
  static constexpr std::size_t kLatencyBuckets = 20;

  std::size_t simulations = 0;      ///< simulate() calls completed
  std::size_t chunks = 0;           ///< work chunks executed
  std::size_t steals = 0;           ///< chunks taken from another worker's deque
  std::size_t enqueued = 0;         ///< chunks pushed onto worker deques
  std::size_t max_queue_depth = 0;  ///< peak queued-but-not-taken chunks
  std::size_t exceptions = 0;       ///< chunks that ended in a captured exception
  std::size_t runs = 0;             ///< run_all() calls completed
  std::uint64_t busy_ns = 0;        ///< summed wall time inside chunks
  std::array<std::size_t, kLatencyBuckets> chunk_latency{};

  /// Mean chunk wall time in microseconds (0 when no chunk ran).
  [[nodiscard]] double mean_chunk_us() const noexcept {
    return chunks == 0 ? 0.0
                       : static_cast<double>(busy_ns) / 1000.0 /
                             static_cast<double>(chunks);
  }
};

/// The farm-owned counter block. All mutators are thread-safe and
/// wait-free; snapshot() may run concurrently with them.
class Telemetry {
 public:
  void on_enqueue() noexcept;
  void on_take(bool stolen) noexcept;
  void on_chunk(std::size_t sims, std::uint64_t wall_ns) noexcept;
  void on_exception() noexcept { exceptions_.fetch_add(1, std::memory_order_relaxed); }
  void on_run() noexcept { runs_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t simulations() const noexcept {
    return simulations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] TelemetrySnapshot snapshot() const;

 private:
  std::atomic<std::size_t> simulations_{0};
  std::atomic<std::size_t> chunks_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> enqueued_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> max_queue_depth_{0};
  std::atomic<std::size_t> exceptions_{0};
  std::atomic<std::size_t> runs_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::array<std::atomic<std::size_t>, TelemetrySnapshot::kLatencyBuckets>
      latency_{};
};

/// Thread-safe JSONL sink: one util::JsonObject per line, each stamped
/// with a monotone per-sink sequence number ("seq") and a wall-clock
/// timestamp in milliseconds since the Unix epoch ("ts_ms").
///
/// The CDG-Runner emits flow_start / phase / flow_end events here (see
/// DESIGN.md for the field schema); anything else with access to the
/// sink may append its own event types.
class TraceSink {
 public:
  /// Opens (truncating) `path`; throws util::Error on failure.
  explicit TraceSink(const std::filesystem::path& path);

  /// Writes to a caller-owned stream (not owned; must outlive the sink).
  explicit TraceSink(std::ostream& os);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Appends one line: the object plus seq / ts_ms stamps. Flushes so a
  /// crashed run still leaves a usable trace.
  void emit(const util::JsonObject& object);

  /// Lines written so far.
  [[nodiscard]] std::size_t lines() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  std::ofstream owned_;
  std::ostream* os_;
  std::mutex mutex_;
  std::atomic<std::size_t> lines_{0};
};

}  // namespace ascdg::batch
