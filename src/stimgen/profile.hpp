// Parameter-usage profiling.
//
// The paper (§III) notes that "parameters can be used many times during
// the generation process, and the number of times a parameter is used
// may differ from parameter to parameter and per test-instance" — e.g.
// the mnemonic parameter is consulted per instruction, CacheDelay only
// on cache accesses. This profiler measures exactly that, through the
// black-box Duv interface: activate a ScopedDrawProfiler on the current
// thread, run simulate(), and read the per-parameter draw counts.
//
// The hook is thread-local, so profiling must run simulations on the
// calling thread (not through the SimFarm); when no profiler is active
// the sampler pays a single thread-local read per draw.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace ascdg::stimgen {

class ScopedDrawProfiler {
 public:
  /// Activates profiling on this thread; restores the previous profiler
  /// (supporting nesting) on destruction.
  ScopedDrawProfiler();
  ~ScopedDrawProfiler();

  ScopedDrawProfiler(const ScopedDrawProfiler&) = delete;
  ScopedDrawProfiler& operator=(const ScopedDrawProfiler&) = delete;

  /// Draw counts per parameter name since activation.
  [[nodiscard]] const std::map<std::string, std::size_t>& counts() const noexcept {
    return counts_;
  }

  /// Total draws across all parameters.
  [[nodiscard]] std::size_t total() const noexcept;

  void reset() noexcept { counts_.clear(); }

 private:
  friend void note_draw(std::string_view name);
  std::map<std::string, std::size_t> counts_;
  ScopedDrawProfiler* previous_ = nullptr;
};

/// Records one draw of `name` on the active profiler (no-op when none).
/// Called by ParameterSampler; exposed for custom generators.
void note_draw(std::string_view name);

}  // namespace ascdg::stimgen
