// Compiled template→distribution tables for the batch hot path.
//
// ParameterSampler resolves every draw by name: a hash lookup over the
// override template, a fallback lookup over the defaults, and a fresh
// std::vector<double> of weights per weighted draw. That is fine for a
// handful of draws but dominates the profile once the farm simulates
// tens of thousands of instances of the *same* template — the
// resolution result never changes within a job.
//
// CompiledTemplate performs that resolution once per (overrides,
// defaults) pair and exposes allocation-free draw routines that are
// bit-identical to the ParameterSampler path: the same RNG consumption
// (one uniform() per weighted pick, Lemire rejection per range pick,
// nothing consumed on a zero-total weight), the same floating-point
// summation order for total weights, and the same error behaviour
// (util::ValidationError with identical messages, thrown at draw time,
// not compile time). Unit kernels hold CompiledParam pointers resolved
// at compile time and draw through them per lane.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "tgen/test_template.hpp"
#include "util/rng.hpp"

namespace ascdg::stimgen {

/// One resolved, draw-ready distribution. Referenced templates must
/// outlive the compiled form (it borrows names, values and entries).
class CompiledParam {
 public:
  enum class Kind : std::uint8_t { kWeight, kRange, kSubrange };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

  /// Source weight parameter (kWeight only, else nullptr) — unit
  /// kernels read entry values through it when precomputing codes.
  [[nodiscard]] const tgen::WeightParameter* weight() const noexcept {
    return weight_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return weights_.size();
  }

  /// Draws the entry index of a weight parameter. Equivalent to
  /// ParameterSampler::draw() up to (but not including) returning the
  /// entry's value. Throws util::ValidationError on kind mismatch or
  /// zero total weight (consuming no randomness in the latter case,
  /// like Xoshiro256::weighted_index).
  [[nodiscard]] std::size_t draw_index(util::Xoshiro256& rng) const;

  /// ParameterSampler::draw(): the drawn entry's value.
  [[nodiscard]] const tgen::Value& draw_value(util::Xoshiro256& rng) const;

  /// ParameterSampler::draw_int_value(): the drawn entry's integer
  /// payload; throws util::ValidationError naming the offending value
  /// when the entry is a symbol.
  [[nodiscard]] std::int64_t draw_int(util::Xoshiro256& rng) const;

  /// ParameterSampler::draw_range(): uniform within a range parameter,
  /// or weighted-subrange-then-uniform within a subrange parameter.
  [[nodiscard]] std::int64_t draw_range(util::Xoshiro256& rng) const;

 private:
  friend class CompiledTemplate;

  /// Weighted pick over weights_ with total_ precomputed; replicates
  /// Xoshiro256::weighted_index exactly (returns entry_count() on zero
  /// total, clamps negatives in the scan, last-positive fallback).
  [[nodiscard]] std::size_t pick(util::Xoshiro256& rng) const noexcept;

  std::string_view name_;
  Kind kind_ = Kind::kRange;
  // kWeight / kSubrange: raw entry weights in entry order and their
  // clamped sum (same summation order as the per-draw scalar path, so
  // the product is IEEE-identical).
  std::vector<double> weights_;
  double total_ = 0.0;
  const tgen::WeightParameter* weight_ = nullptr;
  const tgen::SubrangeParameter* subrange_ = nullptr;
  // kWeight: per-entry integer payloads for draw_int.
  std::vector<std::int64_t> int_values_;
  std::vector<std::uint8_t> entry_is_int_;
  // kRange bounds.
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
};

/// All of a DUV's parameters resolved against one override template,
/// in the defaults' declaration order. Built once per batch job.
class CompiledTemplate {
 public:
  /// `overrides` may be null (defaults only); both templates must
  /// outlive the compiled form.
  CompiledTemplate(const tgen::TestTemplate* overrides,
                   const tgen::TestTemplate& defaults);

  /// Number of compiled parameters (== defaults().size()).
  [[nodiscard]] std::size_t size() const noexcept { return params_.size(); }

  /// Parameter by defaults-order handle.
  [[nodiscard]] const CompiledParam& param(std::size_t handle) const {
    return params_[handle];
  }

  /// Parameter by name, or nullptr when the defaults do not declare it.
  /// Pointers stay valid for the CompiledTemplate's lifetime.
  [[nodiscard]] const CompiledParam* find(std::string_view name) const noexcept;

 private:
  std::vector<CompiledParam> params_;
};

/// Sentinel code for a weight entry whose value is an integer where a
/// symbol is expected; entry_code() reproduces the scalar path's
/// std::bad_variant_access when such an entry is drawn.
inline constexpr std::int32_t kNonSymbolEntry = -1;

/// Per-entry codes for a weight parameter: index into `symbols` of the
/// entry's symbol, `unmatched` for symbols not listed, kNonSymbolEntry
/// for integer values. Precomputed once so kernels compare small ints
/// instead of strings per draw.
[[nodiscard]] std::vector<std::int32_t> entry_codes(
    const CompiledParam& param, std::span<const std::string_view> symbols,
    std::int32_t unmatched);

/// Resolves a drawn entry's precomputed code, replicating the scalar
/// path's as_symbol() throw for integer entries.
[[nodiscard]] inline std::int32_t entry_code(
    const CompiledParam& param, std::span<const std::int32_t> codes,
    std::size_t index) {
  const std::int32_t code = codes[index];
  if (code == kNonSymbolEntry) {
    (void)param.weight()->entries[index].value.as_symbol();  // throws
  }
  return code;
}

}  // namespace ascdg::stimgen
