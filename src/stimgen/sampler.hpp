// The biased-random stimuli generator's parameter-sampling facade
// (paper §III). A test-template overrides the defaults for a subset of
// parameters; every random decision the generator makes consults the
// template first and falls back to the DUV's default template.
//
// The same parameter may be consulted any number of times per
// test-instance ("the mnemonic parameter is used for every instruction
// generation, while CacheDelay is used only when the cache is
// accessed"), so draws are cheap and stateless apart from the RNG.
#pragma once

#include <cstdint>
#include <string_view>

#include "tgen/test_template.hpp"
#include "util/rng.hpp"

namespace ascdg::stimgen {

class ParameterSampler {
 public:
  /// `overrides` may be null (defaults only). Both referenced templates
  /// must outlive the sampler.
  ParameterSampler(const tgen::TestTemplate* overrides,
                   const tgen::TestTemplate& defaults,
                   util::Xoshiro256& rng) noexcept
      : overrides_(overrides), defaults_(&defaults), rng_(&rng) {}

  /// Draws a value from the weight parameter `name`.
  /// Throws util::NotFoundError if neither template defines it, and
  /// util::ValidationError if it is defined with a different kind.
  [[nodiscard]] tgen::Value draw(std::string_view name);

  /// Draws a value from the weight parameter `name` and returns it as an
  /// integer; throws util::ValidationError if the drawn value is a symbol.
  [[nodiscard]] std::int64_t draw_int_value(std::string_view name);

  /// Draws an integer from the range or subrange parameter `name`.
  /// For a subrange parameter the subrange is first selected by weight,
  /// then the value is drawn uniformly within it.
  [[nodiscard]] std::int64_t draw_range(std::string_view name);

  /// True when either template defines `name`.
  [[nodiscard]] bool has(std::string_view name) const noexcept;

  /// Underlying RNG, for generator-local decisions that are not
  /// template parameters.
  [[nodiscard]] util::Xoshiro256& rng() noexcept { return *rng_; }

 private:
  [[nodiscard]] const tgen::Parameter* lookup(std::string_view name) const;

  const tgen::TestTemplate* overrides_;
  const tgen::TestTemplate* defaults_;
  util::Xoshiro256* rng_;
};

/// Draws a value from a weight parameter using `rng`.
/// Precondition (validated): total weight > 0.
[[nodiscard]] tgen::Value draw_from(const tgen::WeightParameter& param,
                                    util::Xoshiro256& rng);

/// Draws an integer uniformly from a range parameter.
[[nodiscard]] std::int64_t draw_from(const tgen::RangeParameter& param,
                                     util::Xoshiro256& rng);

/// Draws an integer from a subrange parameter (weighted subrange, then
/// uniform within it).
[[nodiscard]] std::int64_t draw_from(const tgen::SubrangeParameter& param,
                                     util::Xoshiro256& rng);

}  // namespace ascdg::stimgen
