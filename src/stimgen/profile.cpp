#include "stimgen/profile.hpp"

namespace ascdg::stimgen {

namespace {
thread_local ScopedDrawProfiler* g_active = nullptr;
}  // namespace

ScopedDrawProfiler::ScopedDrawProfiler() : previous_(g_active) {
  g_active = this;
}

ScopedDrawProfiler::~ScopedDrawProfiler() { g_active = previous_; }

std::size_t ScopedDrawProfiler::total() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, count] : counts_) total += count;
  return total;
}

void note_draw(std::string_view name) {
  if (g_active == nullptr) return;
  auto [it, inserted] = g_active->counts_.try_emplace(std::string(name), 0);
  ++it->second;
}

}  // namespace ascdg::stimgen
