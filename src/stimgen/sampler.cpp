#include "stimgen/sampler.hpp"

#include <vector>

#include "stimgen/profile.hpp"
#include "util/error.hpp"

namespace ascdg::stimgen {

using util::NotFoundError;
using util::ValidationError;

const tgen::Parameter* ParameterSampler::lookup(std::string_view name) const {
  if (overrides_ != nullptr) {
    if (const auto* p = overrides_->find(name)) return p;
  }
  return defaults_->find(name);
}

bool ParameterSampler::has(std::string_view name) const noexcept {
  return lookup(name) != nullptr;
}

tgen::Value ParameterSampler::draw(std::string_view name) {
  note_draw(name);
  const tgen::Parameter* p = lookup(name);
  if (p == nullptr) {
    throw NotFoundError("no parameter named '" + std::string(name) + "'");
  }
  const auto* wp = std::get_if<tgen::WeightParameter>(p);
  if (wp == nullptr) {
    throw ValidationError("parameter '" + std::string(name) +
                          "' is not a weight parameter");
  }
  return draw_from(*wp, *rng_);
}

std::int64_t ParameterSampler::draw_int_value(std::string_view name) {
  const tgen::Value v = draw(name);
  if (!v.is_int()) {
    throw ValidationError("parameter '" + std::string(name) +
                          "' produced non-integer value '" + v.to_string() +
                          "'");
  }
  return v.as_int();
}

std::int64_t ParameterSampler::draw_range(std::string_view name) {
  note_draw(name);
  const tgen::Parameter* p = lookup(name);
  if (p == nullptr) {
    throw NotFoundError("no parameter named '" + std::string(name) + "'");
  }
  if (const auto* rp = std::get_if<tgen::RangeParameter>(p)) {
    return draw_from(*rp, *rng_);
  }
  if (const auto* sp = std::get_if<tgen::SubrangeParameter>(p)) {
    return draw_from(*sp, *rng_);
  }
  throw ValidationError("parameter '" + std::string(name) +
                        "' is not a range or subrange parameter");
}

tgen::Value draw_from(const tgen::WeightParameter& param,
                      util::Xoshiro256& rng) {
  std::vector<double> weights;
  weights.reserve(param.entries.size());
  for (const auto& entry : param.entries) weights.push_back(entry.weight);
  const std::size_t index = rng.weighted_index(weights);
  if (index >= param.entries.size()) {
    throw ValidationError("weight parameter '" + param.name +
                          "' has zero total weight");
  }
  return param.entries[index].value;
}

std::int64_t draw_from(const tgen::RangeParameter& param,
                       util::Xoshiro256& rng) {
  return rng.uniform_i64(param.lo, param.hi);
}

std::int64_t draw_from(const tgen::SubrangeParameter& param,
                       util::Xoshiro256& rng) {
  std::vector<double> weights;
  weights.reserve(param.entries.size());
  for (const auto& entry : param.entries) weights.push_back(entry.weight);
  const std::size_t index = rng.weighted_index(weights);
  if (index >= param.entries.size()) {
    throw ValidationError("subrange parameter '" + param.name +
                          "' has zero total weight");
  }
  const auto& subrange = param.entries[index];
  return rng.uniform_i64(subrange.lo, subrange.hi);
}

}  // namespace ascdg::stimgen
