#include "stimgen/compiled.hpp"

#include <string>
#include <variant>

#include "stimgen/profile.hpp"
#include "util/error.hpp"

namespace ascdg::stimgen {

using util::ValidationError;

std::size_t CompiledParam::pick(util::Xoshiro256& rng) const noexcept {
  if (total_ <= 0.0) return weights_.size();
  double p = rng.uniform() * total_;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double w = weights_[i] > 0.0 ? weights_[i] : 0.0;
    if (p < w) return i;
    p -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights_.size(); i-- > 0;) {
    if (weights_[i] > 0.0) return i;
  }
  return weights_.size();
}

std::size_t CompiledParam::draw_index(util::Xoshiro256& rng) const {
  note_draw(name_);
  if (kind_ != Kind::kWeight) {
    throw ValidationError("parameter '" + std::string(name_) +
                          "' is not a weight parameter");
  }
  const std::size_t index = pick(rng);
  if (index >= weights_.size()) {
    throw ValidationError("weight parameter '" + std::string(name_) +
                          "' has zero total weight");
  }
  return index;
}

const tgen::Value& CompiledParam::draw_value(util::Xoshiro256& rng) const {
  return weight_->entries[draw_index(rng)].value;
}

std::int64_t CompiledParam::draw_int(util::Xoshiro256& rng) const {
  const std::size_t index = draw_index(rng);
  if (!entry_is_int_[index]) {
    throw ValidationError("parameter '" + std::string(name_) +
                          "' produced non-integer value '" +
                          weight_->entries[index].value.to_string() + "'");
  }
  return int_values_[index];
}

std::int64_t CompiledParam::draw_range(util::Xoshiro256& rng) const {
  note_draw(name_);
  if (kind_ == Kind::kRange) return rng.uniform_i64(lo_, hi_);
  if (kind_ == Kind::kSubrange) {
    const std::size_t index = pick(rng);
    if (index >= weights_.size()) {
      throw ValidationError("subrange parameter '" + std::string(name_) +
                            "' has zero total weight");
    }
    const auto& entry = subrange_->entries[index];
    return rng.uniform_i64(entry.lo, entry.hi);
  }
  throw ValidationError("parameter '" + std::string(name_) +
                        "' is not a range or subrange parameter");
}

CompiledTemplate::CompiledTemplate(const tgen::TestTemplate* overrides,
                                   const tgen::TestTemplate& defaults) {
  params_.reserve(defaults.size());
  for (const tgen::Parameter& fallback : defaults.parameters()) {
    const std::string& name = tgen::parameter_name(fallback);
    // Same resolution order as ParameterSampler::lookup: the override
    // template wins, whatever its kind — a template may even redeclare
    // a parameter with a different kind, and the mismatch must then
    // surface as the scalar path's draw-time ValidationError.
    const tgen::Parameter* resolved =
        overrides != nullptr ? overrides->find(name) : nullptr;
    if (resolved == nullptr) resolved = &fallback;

    CompiledParam cp;
    cp.name_ = tgen::parameter_name(*resolved);
    if (const auto* wp = std::get_if<tgen::WeightParameter>(resolved)) {
      cp.kind_ = CompiledParam::Kind::kWeight;
      cp.weight_ = wp;
      cp.weights_.reserve(wp->entries.size());
      cp.int_values_.reserve(wp->entries.size());
      cp.entry_is_int_.reserve(wp->entries.size());
      for (const auto& entry : wp->entries) {
        cp.weights_.push_back(entry.weight);
        cp.total_ += entry.weight > 0.0 ? entry.weight : 0.0;
        cp.entry_is_int_.push_back(entry.value.is_int() ? 1 : 0);
        cp.int_values_.push_back(entry.value.is_int() ? entry.value.as_int()
                                                      : 0);
      }
    } else if (const auto* rp = std::get_if<tgen::RangeParameter>(resolved)) {
      cp.kind_ = CompiledParam::Kind::kRange;
      cp.lo_ = rp->lo;
      cp.hi_ = rp->hi;
    } else {
      const auto& sp = std::get<tgen::SubrangeParameter>(*resolved);
      cp.kind_ = CompiledParam::Kind::kSubrange;
      cp.subrange_ = &sp;
      cp.weights_.reserve(sp.entries.size());
      for (const auto& entry : sp.entries) {
        cp.weights_.push_back(entry.weight);
        cp.total_ += entry.weight > 0.0 ? entry.weight : 0.0;
      }
    }
    params_.push_back(std::move(cp));
  }
}

const CompiledParam* CompiledTemplate::find(
    std::string_view name) const noexcept {
  for (const CompiledParam& cp : params_) {
    if (cp.name() == name) return &cp;
  }
  return nullptr;
}

std::vector<std::int32_t> entry_codes(const CompiledParam& param,
                                      std::span<const std::string_view> symbols,
                                      std::int32_t unmatched) {
  std::vector<std::int32_t> codes;
  if (param.kind() != CompiledParam::Kind::kWeight) return codes;
  codes.reserve(param.entry_count());
  for (const auto& entry : param.weight()->entries) {
    if (entry.value.is_int()) {
      codes.push_back(kNonSymbolEntry);
      continue;
    }
    std::int32_t code = unmatched;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      if (entry.value.as_symbol() == symbols[s]) {
        code = static_cast<std::int32_t>(s);
        break;
      }
    }
    codes.push_back(code);
  }
  return codes;
}

}  // namespace ascdg::stimgen
