// Cross-product coverage-hole analysis (after Lachish/Fine/Ziv-style
// hole analysis for cross-product coverage models).
//
// A "hole" is a projected description of uncovered events: instead of
// listing each uncovered tuple, find partial assignments of features —
// e.g. "entry=7, *" — whose entire subspace is uncovered. Compact holes
// tell a verification engineer *why* a region is uncovered (here:
// everything with entry=7), which is also how AS-CDG's neighbor
// strategies decide which events are related.
#pragma once

#include <string>
#include <vector>

#include "coverage/repository.hpp"
#include "coverage/space.hpp"

namespace ascdg::coverage {

/// A hole: a partial feature assignment whose whole subspace is
/// uncovered. `assignment[d]` is the fixed value of feature d, or
/// kWildcard when the hole spans every value of that dimension.
struct Hole {
  static constexpr std::size_t kWildcard = static_cast<std::size_t>(-1);

  std::vector<std::size_t> assignment;
  std::size_t size = 0;  ///< number of events the hole covers

  /// Number of fixed (non-wildcard) features; smaller order = more
  /// general hole.
  [[nodiscard]] std::size_t order() const noexcept {
    std::size_t fixed = 0;
    for (const std::size_t v : assignment) {
      if (v != kWildcard) ++fixed;
    }
    return fixed;
  }
};

/// Finds all *maximal* holes of a cross product under `stats` up to
/// `max_order` fixed features: partial assignments whose full subspace
/// is uncovered and that are not contained in a more general
/// (lower-order) hole. Results are sorted by ascending order, then by
/// descending size, then lexicographically. max_order == 0 is allowed
/// (it only reports the trivial everything-uncovered hole, if any).
[[nodiscard]] std::vector<Hole> find_holes(const CoverageSpace& space,
                                           const CrossProduct& cp,
                                           const SimStats& stats,
                                           std::size_t max_order = 2);

/// Human-readable hole description, e.g. "entry=7, thread=*, sector=*,
/// branch=*  (32 events)".
[[nodiscard]] std::string describe(const CrossProduct& cp, const Hole& hole);

}  // namespace ascdg::coverage
