// Persistence for coverage repositories: a plain CSV with one row per
// (template, event) pair plus per-template sim counts, so "Before CDG"
// data collected once (hours of regression) can be reused by later flow
// runs, other tools, or spreadsheets.
//
// Format (header row required):
//   template,sims,event,hits
//   io_default,66900,crc_004,8295
//   ...
// Events with zero hits are omitted; a template with zero hit events
// still appears once with an empty event field to preserve its sim
// count.
#pragma once

#include <filesystem>

#include "coverage/repository.hpp"
#include "coverage/space.hpp"

namespace ascdg::coverage {

/// Writes `repo` as CSV. Event columns use names from `space`.
/// Throws util::Error on IO failure.
void save_repository(const std::filesystem::path& path,
                     const CoverageSpace& space, const CoverageRepository& repo);

/// Reads a repository back. Unknown event names and malformed rows
/// throw util::Error (with the offending line); the event universe is
/// `space`.
[[nodiscard]] CoverageRepository load_repository(
    const std::filesystem::path& path, const CoverageSpace& space);

}  // namespace ascdg::coverage
