// Coverage events and the IBM hit-status convention used throughout the
// paper's result tables: never-hit (red), lightly-hit (orange; fewer
// than 100 hits or a hit rate below 1%), well-hit (green).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ascdg::coverage {

/// Strongly-typed index of a coverage event within a CoverageSpace.
struct EventId {
  std::uint32_t value = 0;

  friend bool operator==(EventId, EventId) = default;
  friend auto operator<=>(EventId, EventId) = default;
};

enum class HitStatus { kNever, kLightly, kWell };

/// Classifies per the paper's convention (§V): hit count < 100 or hit
/// rate < 1% is lightly hit; zero hits is never hit.
[[nodiscard]] constexpr HitStatus classify_hits(std::size_t hits,
                                                std::size_t sims) noexcept {
  if (hits == 0) return HitStatus::kNever;
  const double rate =
      sims > 0 ? static_cast<double>(hits) / static_cast<double>(sims) : 0.0;
  if (hits < 100 || rate < 0.01) return HitStatus::kLightly;
  return HitStatus::kWell;
}

[[nodiscard]] constexpr const char* to_string(HitStatus status) noexcept {
  switch (status) {
    case HitStatus::kNever:
      return "never-hit";
    case HitStatus::kLightly:
      return "lightly-hit";
    case HitStatus::kWell:
      return "well-hit";
  }
  return "?";
}

}  // namespace ascdg::coverage

template <>
struct std::hash<ascdg::coverage::EventId> {
  std::size_t operator()(ascdg::coverage::EventId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
