#include "coverage/repository.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ascdg::coverage {

namespace {

/// Process-wide count of record() folds across every repository. A
/// per-instance series would bloat the registry (tests and flows create
/// many short-lived repositories), so per-event closure data stays on
/// the repository itself — see first_hit_record().
obs::Counter& records_counter() {
  static obs::Counter& counter =
      obs::registry().counter("ascdg_coverage_records_total");
  return counter;
}

}  // namespace

SimStats SimStats::from_counts(std::size_t sims,
                               std::vector<std::size_t> hits) {
  for (const std::size_t h : hits) {
    if (h > sims) {
      throw util::ValidationError(
          "per-event hit count exceeds the simulation count");
    }
  }
  SimStats out;
  out.sims_ = sims;
  out.hits_ = std::move(hits);
  return out;
}

void SimStats::record(const CoverageVector& vec) {
  if (hits_.empty()) hits_.assign(vec.size(), 0);
  ASCDG_ASSERT(vec.size() == hits_.size(), "coverage vector size mismatch");
  ++sims_;
  // Word-at-a-time: only set bits cost anything, so sparse vectors (the
  // common case — a simulation hits a fraction of the space) fold in
  // far fewer than event_count() steps.
  for (std::size_t w = 0; w < vec.word_count(); ++w) {
    std::uint64_t bits = vec.word(w);
    while (bits != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
      ++hits_[w * 64 + bit];
      bits &= bits - 1;
    }
  }
}

void SimStats::merge(const SimStats& other) {
  if (other.sims_ == 0 && other.hits_.empty()) return;
  if (hits_.empty()) {
    *this = other;
    return;
  }
  ASCDG_ASSERT(hits_.size() == other.hits_.size(), "stats size mismatch");
  sims_ += other.sims_;
  for (std::size_t i = 0; i < hits_.size(); ++i) hits_[i] += other.hits_[i];
}

std::size_t SimStats::hits(EventId id) const {
  ASCDG_ASSERT(id.value < hits_.size(), "event id out of range");
  return hits_[id.value];
}

double SimStats::hit_rate(EventId id) const {
  if (sims_ == 0) return 0.0;
  return static_cast<double>(hits(id)) / static_cast<double>(sims_);
}

double SimStats::target_value(std::span<const EventId> events) const {
  double total = 0.0;
  for (const EventId id : events) total += hit_rate(id);
  return total;
}

void CoverageRepository::record(std::string_view template_name,
                                const CoverageVector& vec) {
  auto [it, inserted] =
      by_template_.try_emplace(std::string(template_name), event_count_);
  (void)inserted;
  it->second.record(vec);
  ++records_;
  records_counter().inc();
  for (std::size_t i = 0; i < event_count_; ++i) {
    if (vec.was_hit(EventId{static_cast<std::uint32_t>(i)})) note_hit(i);
  }
}

void CoverageRepository::record(std::string_view template_name,
                                const SimStats& stats) {
  ASCDG_ASSERT(stats.event_count() == event_count_ || stats.sims() == 0,
               "stats event count mismatch");
  auto [it, inserted] =
      by_template_.try_emplace(std::string(template_name), event_count_);
  (void)inserted;
  it->second.merge(stats);
  ++records_;
  records_counter().inc();
  if (stats.sims() != 0) {
    for (std::size_t i = 0; i < event_count_; ++i) {
      if (stats.hits(EventId{static_cast<std::uint32_t>(i)}) > 0) note_hit(i);
    }
  }
}

void CoverageRepository::note_hit(std::size_t index) {
  if (first_hit_record_[index] != 0) return;
  first_hit_record_[index] = records_;
  ++events_hit_;
}

std::optional<std::size_t> CoverageRepository::first_hit_record(
    EventId id) const {
  ASCDG_ASSERT(id.value < event_count_, "event id out of range");
  const std::size_t ordinal = first_hit_record_[id.value];
  if (ordinal == 0) return std::nullopt;
  return ordinal;
}

const SimStats& CoverageRepository::stats(std::string_view template_name) const {
  const auto it = by_template_.find(template_name);
  if (it == by_template_.end()) {
    throw util::NotFoundError("no coverage recorded for template '" +
                              std::string(template_name) + "'");
  }
  return it->second;
}

bool CoverageRepository::contains(std::string_view template_name) const noexcept {
  return by_template_.find(template_name) != by_template_.end();
}

std::vector<std::string> CoverageRepository::template_names() const {
  std::vector<std::string> names;
  names.reserve(by_template_.size());
  for (const auto& [name, stats] : by_template_) names.push_back(name);
  return names;
}

SimStats CoverageRepository::total() const {
  SimStats out(event_count_);
  for (const auto& [name, stats] : by_template_) out.merge(stats);
  return out;
}

std::size_t CoverageRepository::total_sims() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, stats] : by_template_) total += stats.sims();
  return total;
}

}  // namespace ascdg::coverage
