#include "coverage/space.hpp"

#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ascdg::coverage {

using util::ValidationError;

std::size_t CrossProduct::tuple_count() const noexcept {
  std::size_t total = 1;
  for (const auto& f : features) total *= f.cardinality;
  return total;
}

EventId CoverageSpace::declare_event(std::string name) {
  if (!util::is_identifier(name)) {
    throw ValidationError("invalid event name: '" + name + "'");
  }
  if (by_name_.contains(name)) {
    throw ValidationError("duplicate event name: '" + name + "'");
  }
  if (names_.size() >= std::numeric_limits<std::uint32_t>::max()) {
    throw ValidationError("coverage space is full");
  }
  const EventId id{static_cast<std::uint32_t>(names_.size())};
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  event_cross_.push_back(-1);
  return id;
}

std::vector<EventId> CoverageSpace::declare_family(
    std::string_view family, std::span<const std::string> suffixes) {
  if (suffixes.empty()) {
    throw ValidationError("family '" + std::string(family) +
                          "' declared with no events");
  }
  std::vector<EventId> ids;
  ids.reserve(suffixes.size());
  for (const auto& suffix : suffixes) {
    ids.push_back(declare_event(std::string(family) + "_" + suffix));
  }
  families_.push_back({std::string(family), ids});
  return ids;
}

const CrossProduct& CoverageSpace::declare_cross_product(
    std::string family, std::vector<CrossFeature> features) {
  if (features.empty()) {
    throw ValidationError("cross product '" + family + "' has no features");
  }
  for (const auto& f : features) {
    if (f.cardinality == 0) {
      throw ValidationError("cross product '" + family + "' feature '" +
                            f.name + "' has zero cardinality");
    }
  }
  CrossProduct cp;
  cp.family = family;
  cp.features = std::move(features);
  cp.count = cp.tuple_count();
  cp.first = EventId{static_cast<std::uint32_t>(names_.size())};

  const auto cp_index = static_cast<std::int32_t>(cross_products_.size());
  std::vector<std::size_t> coords(cp.features.size(), 0);
  std::vector<EventId> ids;
  ids.reserve(cp.count);
  for (std::size_t i = 0; i < cp.count; ++i) {
    std::string name = family;
    for (std::size_t d = 0; d < cp.features.size(); ++d) {
      name += "_" + cp.features[d].name + std::to_string(coords[d]);
    }
    const EventId id = declare_event(std::move(name));
    event_cross_[id.value] = cp_index;
    ids.push_back(id);
    // Row-major increment.
    for (std::size_t d = cp.features.size(); d-- > 0;) {
      if (++coords[d] < cp.features[d].cardinality) break;
      coords[d] = 0;
    }
  }
  families_.push_back({family, std::move(ids)});
  cross_products_.push_back(std::move(cp));
  return cross_products_.back();
}

const std::string& CoverageSpace::name(EventId id) const {
  ASCDG_ASSERT(id.value < names_.size(), "event id out of range");
  return names_[id.value];
}

std::optional<EventId> CoverageSpace::find(std::string_view name) const noexcept {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<EventId> CoverageSpace::events_with_prefix(
    std::string_view prefix) const {
  std::vector<EventId> out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].starts_with(prefix)) {
      out.push_back(EventId{static_cast<std::uint32_t>(i)});
    }
  }
  return out;
}

std::vector<EventId> CoverageSpace::family_events(std::string_view family) const {
  for (const auto& record : families_) {
    if (record.name == family) return record.events;
  }
  return {};
}

std::vector<std::string> CoverageSpace::family_names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& record : families_) out.push_back(record.name);
  return out;
}

const CrossProduct* CoverageSpace::cross_product_of(EventId id) const noexcept {
  if (id.value >= event_cross_.size()) return nullptr;
  const std::int32_t index = event_cross_[id.value];
  return index < 0 ? nullptr
                   : &cross_products_[static_cast<std::size_t>(index)];
}

const CrossProduct* CoverageSpace::find_cross_product(
    std::string_view family) const noexcept {
  for (const auto& cp : cross_products_) {
    if (cp.family == family) return &cp;
  }
  return nullptr;
}

EventId CoverageSpace::cross_event(const CrossProduct& cp,
                                   std::span<const std::size_t> coords) const {
  if (coords.size() != cp.features.size()) {
    throw ValidationError("cross product '" + cp.family + "' expects " +
                          std::to_string(cp.features.size()) + " coordinates");
  }
  std::size_t offset = 0;
  for (std::size_t d = 0; d < coords.size(); ++d) {
    if (coords[d] >= cp.features[d].cardinality) {
      throw ValidationError("coordinate " + std::to_string(coords[d]) +
                            " out of range for feature '" +
                            cp.features[d].name + "'");
    }
    offset = offset * cp.features[d].cardinality + coords[d];
  }
  return EventId{cp.first.value + static_cast<std::uint32_t>(offset)};
}

std::vector<std::size_t> CoverageSpace::coords_of(const CrossProduct& cp,
                                                  EventId id) const {
  if (id.value < cp.first.value || id.value >= cp.first.value + cp.count) {
    throw ValidationError("event '" + name(id) + "' is not in cross product '" +
                          cp.family + "'");
  }
  std::size_t offset = id.value - cp.first.value;
  std::vector<std::size_t> coords(cp.features.size());
  for (std::size_t d = cp.features.size(); d-- > 0;) {
    coords[d] = offset % cp.features[d].cardinality;
    offset /= cp.features[d].cardinality;
  }
  return coords;
}

}  // namespace ascdg::coverage
