// CoverageVector: the per-simulation hit bitmap. "Simulating a
// test-instance on the design produces a coverage vector, indicating
// whether each coverage event was hit in this simulation" (paper §III).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "coverage/event.hpp"

namespace ascdg::coverage {

class CoverageVector {
 public:
  CoverageVector() = default;
  explicit CoverageVector(std::size_t event_count)
      : bits_((event_count + 63) / 64, 0), size_(event_count) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Re-shapes to `event_count` events with every bit clear, reusing
  /// the existing word storage when capacity allows. The batch farm's
  /// per-worker scratch vectors cycle through this instead of
  /// reallocating per simulation.
  void reset(std::size_t event_count) {
    bits_.assign((event_count + 63) / 64, 0);
    size_ = event_count;
  }

  /// Backing words (64 events per word, little-endian within the word).
  /// Word-level consumers (SimStats::record, merge benches) iterate
  /// these instead of testing events bit by bit.
  [[nodiscard]] std::size_t word_count() const noexcept { return bits_.size(); }
  [[nodiscard]] std::uint64_t word(std::size_t index) const noexcept {
    return bits_[index];
  }

  void hit(EventId id) noexcept {
    if (id.value >= size_) return;
    bits_[id.value / 64] |= (std::uint64_t{1} << (id.value % 64));
  }

  [[nodiscard]] bool was_hit(EventId id) const noexcept {
    if (id.value >= size_) return false;
    return (bits_[id.value / 64] >> (id.value % 64)) & 1;
  }

  /// Number of distinct events hit.
  [[nodiscard]] std::size_t popcount() const noexcept {
    std::size_t total = 0;
    for (const std::uint64_t word : bits_) {
      total += static_cast<std::size_t>(std::popcount(word));
    }
    return total;
  }

  /// Union with another vector of the same size.
  void merge(const CoverageVector& other) noexcept {
    const std::size_t n = bits_.size() < other.bits_.size()
                              ? bits_.size()
                              : other.bits_.size();
    for (std::size_t i = 0; i < n; ++i) bits_[i] |= other.bits_[i];
  }

  void clear() noexcept {
    for (auto& word : bits_) word = 0;
  }

  friend bool operator==(const CoverageVector&, const CoverageVector&) = default;

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t size_ = 0;
};

}  // namespace ascdg::coverage
