#include "coverage/repository_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ascdg::coverage {

namespace {

constexpr std::string_view kHeader = "template,sims,event,hits";

}  // namespace

void save_repository(const std::filesystem::path& path,
                     const CoverageSpace& space,
                     const CoverageRepository& repo) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      throw util::Error("cannot create directory '" +
                        path.parent_path().string() + "': " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw util::Error("cannot open '" + path.string() + "' for writing");
  }
  out << kHeader << '\n';
  for (const auto& name : repo.template_names()) {
    const auto& stats = repo.stats(name);
    bool any = false;
    for (std::size_t e = 0; e < stats.event_count(); ++e) {
      const EventId id{static_cast<std::uint32_t>(e)};
      if (stats.hits(id) == 0) continue;
      out << name << ',' << stats.sims() << ',' << space.name(id) << ','
          << stats.hits(id) << '\n';
      any = true;
    }
    if (!any) {
      // Preserve the sim count of templates that hit nothing.
      out << name << ',' << stats.sims() << ",,0\n";
    }
  }
  out.flush();
  if (!out) {
    throw util::Error("failed writing '" + path.string() + "'");
  }
}

CoverageRepository load_repository(const std::filesystem::path& path,
                                   const CoverageSpace& space) {
  std::ifstream in(path);
  if (!in) {
    throw util::Error("cannot open '" + path.string() + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line) || util::trim(line) != kHeader) {
    throw util::Error("'" + path.string() +
                      "' is not a coverage repository CSV (bad header)");
  }

  struct Pending {
    std::size_t sims = 0;
    std::vector<std::size_t> hits;
  };
  std::map<std::string, Pending> pending;

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto fields = util::split(trimmed, ',');
    const auto fail = [&](const std::string& why) -> util::Error {
      return util::Error("'" + path.string() + "' line " +
                         std::to_string(line_number) + ": " + why);
    };
    if (fields.size() != 4) throw fail("expected 4 fields");
    const std::string name(util::trim(fields[0]));
    if (name.empty()) throw fail("empty template name");
    const auto sims = util::parse_int(fields[1]);
    const auto hits = util::parse_int(fields[3]);
    if (!sims.has_value() || *sims < 0) throw fail("bad sims count");
    if (!hits.has_value() || *hits < 0) throw fail("bad hit count");

    auto [it, inserted] = pending.try_emplace(name);
    if (inserted) {
      it->second.sims = static_cast<std::size_t>(*sims);
      it->second.hits.assign(space.size(), 0);
    } else if (it->second.sims != static_cast<std::size_t>(*sims)) {
      throw fail("inconsistent sims count for template '" + name + "'");
    }

    const auto event_name = util::trim(fields[2]);
    if (event_name.empty()) {
      if (*hits != 0) throw fail("hit count without an event name");
      continue;
    }
    const auto event = space.find(event_name);
    if (!event.has_value()) {
      throw fail("unknown event '" + std::string(event_name) + "'");
    }
    it->second.hits[event->value] = static_cast<std::size_t>(*hits);
  }

  CoverageRepository repo(space.size());
  for (auto& [name, data] : pending) {
    repo.record(name, SimStats::from_counts(data.sims, std::move(data.hits)));
  }
  return repo;
}

}  // namespace ascdg::coverage
