// CoverageSpace: the declaration of all coverage events of a DUV,
// including structural metadata — named families (ordered lists of
// related events, e.g. crc_004..crc_096) and cross-product models
// (paper §V: entry x thread x sector x branch on the IFU). The
// neighbor-discovery strategies (§IV-A) consume this structure.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "coverage/event.hpp"

namespace ascdg::coverage {

/// One feature (dimension) of a cross-product coverage model.
struct CrossFeature {
  std::string name;
  std::size_t cardinality = 0;
};

/// A cross-product block of events: one event per coordinate tuple,
/// laid out contiguously in row-major order starting at `first`.
struct CrossProduct {
  std::string family;
  std::vector<CrossFeature> features;
  EventId first{0};
  std::size_t count = 0;

  /// Product of all feature cardinalities.
  [[nodiscard]] std::size_t tuple_count() const noexcept;
};

class CoverageSpace {
 public:
  /// Declares a single event; names must be unique identifiers.
  /// Throws util::ValidationError on duplicates or empty names.
  EventId declare_event(std::string name);

  /// Declares a named family: a contiguous, ordered list of events with
  /// names `<family>_<suffix>` for each given suffix. The family order
  /// is meaningful (easier -> harder), as in crc_004..crc_096.
  /// Returns the event ids in order.
  std::vector<EventId> declare_family(std::string_view family,
                                      std::span<const std::string> suffixes);

  /// Declares a cross-product block. Event names are
  /// `<family>_<f0><v0>_<f1><v1>_...`. Returns the block descriptor.
  const CrossProduct& declare_cross_product(std::string family,
                                            std::vector<CrossFeature> features);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& name(EventId id) const;
  [[nodiscard]] std::optional<EventId> find(std::string_view name) const noexcept;

  /// All events whose name starts with `prefix`, in declaration order.
  [[nodiscard]] std::vector<EventId> events_with_prefix(
      std::string_view prefix) const;

  /// The ordered events of a declared family; empty if unknown.
  [[nodiscard]] std::vector<EventId> family_events(std::string_view family) const;

  /// Declared family names, in declaration order.
  [[nodiscard]] std::vector<std::string> family_names() const;

  /// The cross product an event belongs to, or nullptr.
  [[nodiscard]] const CrossProduct* cross_product_of(EventId id) const noexcept;

  /// Cross-product lookup by family name, or nullptr.
  [[nodiscard]] const CrossProduct* find_cross_product(
      std::string_view family) const noexcept;

  /// Event at the given coordinates of a cross product.
  /// Throws util::ValidationError on arity/bounds violations.
  [[nodiscard]] EventId cross_event(const CrossProduct& cp,
                                    std::span<const std::size_t> coords) const;

  /// Coordinates of a cross-product event.
  /// Throws util::ValidationError if `id` is not in `cp`.
  [[nodiscard]] std::vector<std::size_t> coords_of(const CrossProduct& cp,
                                                   EventId id) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventId> by_name_;
  struct FamilyRecord {
    std::string name;
    std::vector<EventId> events;
  };
  std::vector<FamilyRecord> families_;
  // deque: we hand out references to declared cross products, so their
  // addresses must survive later declarations.
  std::deque<CrossProduct> cross_products_;
  std::vector<std::int32_t> event_cross_;  // index into cross_products_ or -1
};

}  // namespace ascdg::coverage
