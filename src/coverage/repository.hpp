// Aggregated coverage statistics.
//
// SimStats accumulates, over many simulations, how many simulations hit
// each event (the paper's "#hits"; hit rate = #hits / #sims). The
// CoverageRepository keys SimStats by test-template name — the summary
// "stored in a coverage repository" that the verification team (and the
// TAC tool) queries during coverage closure (paper §III).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coverage/event.hpp"
#include "coverage/vector.hpp"

namespace ascdg::coverage {

class SimStats {
 public:
  SimStats() = default;
  explicit SimStats(std::size_t event_count) : hits_(event_count, 0) {}

  /// Reconstructs an accumulator from persisted counts (see
  /// repository_io). Throws util::ValidationError when any per-event
  /// count exceeds `sims`.
  [[nodiscard]] static SimStats from_counts(std::size_t sims,
                                            std::vector<std::size_t> hits);

  /// Folds one simulation's coverage vector into the stats.
  void record(const CoverageVector& vec);

  /// Adds another accumulator (associative, commutative).
  void merge(const SimStats& other);

  [[nodiscard]] std::size_t sims() const noexcept { return sims_; }
  [[nodiscard]] std::size_t event_count() const noexcept { return hits_.size(); }
  [[nodiscard]] std::size_t hits(EventId id) const;

  /// Empirical hit probability e_N(t) (paper §IV-D): hits / sims.
  [[nodiscard]] double hit_rate(EventId id) const;

  /// Sum of hit rates over an event set — the empirical approximated
  /// target T_N(t) = sum_{e in E} e_N(t) (unweighted form).
  [[nodiscard]] double target_value(std::span<const EventId> events) const;

  [[nodiscard]] HitStatus status(EventId id) const {
    return classify_hits(hits(id), sims_);
  }

  [[nodiscard]] const std::vector<std::size_t>& hit_counts() const noexcept {
    return hits_;
  }

  friend bool operator==(const SimStats&, const SimStats&) = default;

 private:
  std::size_t sims_ = 0;
  std::vector<std::size_t> hits_;
};

class CoverageRepository {
 public:
  explicit CoverageRepository(std::size_t event_count)
      : event_count_(event_count), first_hit_record_(event_count, 0) {}

  [[nodiscard]] std::size_t event_count() const noexcept { return event_count_; }

  /// Records one simulation of a test-instance from `template_name`.
  void record(std::string_view template_name, const CoverageVector& vec);

  /// Folds pre-aggregated stats for `template_name`.
  void record(std::string_view template_name, const SimStats& stats);

  /// Per-template stats; throws util::NotFoundError for unknown names.
  [[nodiscard]] const SimStats& stats(std::string_view template_name) const;

  [[nodiscard]] bool contains(std::string_view template_name) const noexcept;

  /// All template names, sorted.
  [[nodiscard]] std::vector<std::string> template_names() const;

  /// Stats aggregated over every template (the "Before CDG" totals).
  [[nodiscard]] SimStats total() const;

  [[nodiscard]] std::size_t total_sims() const noexcept;

  // --- Closure telemetry ---------------------------------------------------
  // The repository keeps per-event first-hit ordinals: `records()` counts
  // every record() fold (a single simulation or one pre-aggregated batch),
  // and each event remembers the ordinal of the fold that first hit it.

  /// Number of record() calls folded into the repository so far.
  [[nodiscard]] std::size_t records() const noexcept { return records_; }

  /// Events hit at least once across all templates.
  [[nodiscard]] std::size_t events_hit() const noexcept { return events_hit_; }

  /// Events never hit so far.
  [[nodiscard]] std::size_t events_remaining() const noexcept {
    return event_count_ - events_hit_;
  }

  /// 1-based ordinal of the record() fold that first hit `id`, or
  /// nullopt when the event has never been hit.
  [[nodiscard]] std::optional<std::size_t> first_hit_record(EventId id) const;

 private:
  void note_hit(std::size_t index);

  std::size_t event_count_;
  std::size_t records_ = 0;
  std::size_t events_hit_ = 0;
  /// 0 = never hit; otherwise the 1-based fold ordinal of the first hit.
  std::vector<std::size_t> first_hit_record_;
  std::map<std::string, SimStats, std::less<>> by_template_;
};

}  // namespace ascdg::coverage
