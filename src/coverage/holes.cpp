#include "coverage/holes.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace ascdg::coverage {

namespace {

/// Enumerates every event matching a partial assignment, returning
/// false from the visitor to stop early.
template <typename Visitor>
bool for_each_matching(const CoverageSpace& space, const CrossProduct& cp,
                       const std::vector<std::size_t>& assignment,
                       Visitor&& visit) {
  std::vector<std::size_t> coords(cp.features.size(), 0);
  // Initialize fixed dims.
  for (std::size_t d = 0; d < coords.size(); ++d) {
    if (assignment[d] != Hole::kWildcard) coords[d] = assignment[d];
  }
  for (;;) {
    if (!visit(space.cross_event(cp, coords))) return false;
    // Odometer increment over wildcard dims only.
    std::size_t d = coords.size();
    for (; d-- > 0;) {
      if (assignment[d] != Hole::kWildcard) continue;
      if (++coords[d] < cp.features[d].cardinality) break;
      coords[d] = 0;
    }
    if (d == static_cast<std::size_t>(-1)) return true;  // wrapped all dims
  }
}

std::size_t subspace_size(const CrossProduct& cp,
                          const std::vector<std::size_t>& assignment) {
  std::size_t size = 1;
  for (std::size_t d = 0; d < assignment.size(); ++d) {
    if (assignment[d] == Hole::kWildcard) size *= cp.features[d].cardinality;
  }
  return size;
}

/// True when `inner` is contained in `outer` (outer is more general and
/// agrees on its fixed dims).
bool contained_in(const std::vector<std::size_t>& inner,
                  const std::vector<std::size_t>& outer) {
  for (std::size_t d = 0; d < inner.size(); ++d) {
    if (outer[d] == Hole::kWildcard) continue;
    if (inner[d] != outer[d]) return false;
  }
  return true;
}

}  // namespace

std::vector<Hole> find_holes(const CoverageSpace& space, const CrossProduct& cp,
                             const SimStats& stats, std::size_t max_order) {
  const std::size_t dims = cp.features.size();
  ASCDG_ASSERT(stats.event_count() >= cp.first.value + cp.count,
               "stats do not cover the cross product");

  std::vector<Hole> holes;
  // Enumerate partial assignments by increasing order so containment
  // pruning against already-found (more general) holes works.
  std::vector<std::size_t> fixed_dims;
  const auto try_assignment = [&](const std::vector<std::size_t>& assignment) {
    for (const auto& hole : holes) {
      if (contained_in(assignment, hole.assignment)) return;  // subsumed
    }
    const bool all_uncovered = for_each_matching(
        space, cp, assignment,
        [&stats](EventId id) { return stats.hits(id) == 0; });
    if (all_uncovered) {
      holes.push_back({assignment, subspace_size(cp, assignment)});
    }
  };

  // Recursive choice of which dims to fix and their values.
  const std::function<void(std::size_t, std::size_t,
                           std::vector<std::size_t>&)>
      choose = [&](std::size_t order, std::size_t first_dim,
                   std::vector<std::size_t>& assignment) {
        if (order == 0) {
          try_assignment(assignment);
          return;
        }
        for (std::size_t d = first_dim; d < dims; ++d) {
          for (std::size_t v = 0; v < cp.features[d].cardinality; ++v) {
            assignment[d] = v;
            choose(order - 1, d + 1, assignment);
          }
          assignment[d] = Hole::kWildcard;
        }
      };

  for (std::size_t order = 0; order <= std::min(max_order, dims); ++order) {
    std::vector<std::size_t> assignment(dims, Hole::kWildcard);
    choose(order, 0, assignment);
  }

  std::sort(holes.begin(), holes.end(), [](const Hole& a, const Hole& b) {
    if (a.order() != b.order()) return a.order() < b.order();
    if (a.size != b.size) return a.size > b.size;
    return a.assignment < b.assignment;
  });
  return holes;
}

std::string describe(const CrossProduct& cp, const Hole& hole) {
  std::string out;
  for (std::size_t d = 0; d < hole.assignment.size(); ++d) {
    if (d > 0) out += ", ";
    out += cp.features[d].name + "=";
    out += hole.assignment[d] == Hole::kWildcard
               ? "*"
               : std::to_string(hole.assignment[d]);
  }
  out += "  (" + std::to_string(hole.size) + " events)";
  return out;
}

}  // namespace ascdg::coverage
