// A test-template (paper §III): a named, ordered collection of parameter
// settings. Templates override the default behaviour of the stimuli
// generator for a subset of parameters; parameters they do not mention
// keep the DUV's defaults.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tgen/parameter.hpp"

namespace ascdg::tgen {

class TestTemplate {
 public:
  TestTemplate() = default;
  explicit TestTemplate(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a parameter; validates it and rejects duplicate names.
  /// Throws util::ValidationError.
  void add(Parameter parameter);

  /// Replaces an existing parameter (matched by name) or adds a new one.
  void set(Parameter parameter);

  [[nodiscard]] std::size_t size() const noexcept { return params_.size(); }
  [[nodiscard]] bool empty() const noexcept { return params_.empty(); }

  /// Ordered parameter list (declaration order).
  [[nodiscard]] const std::vector<Parameter>& parameters() const noexcept {
    return params_;
  }

  /// Pointer to the parameter with `name`, or nullptr.
  [[nodiscard]] const Parameter* find(std::string_view name) const noexcept;

  /// True when a parameter with `name` exists.
  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return find(name) != nullptr;
  }

  /// Typed lookups; return nullptr when the name is absent or the kind
  /// does not match.
  [[nodiscard]] const WeightParameter* find_weight(std::string_view name) const noexcept;
  [[nodiscard]] const RangeParameter* find_range(std::string_view name) const noexcept;
  [[nodiscard]] const SubrangeParameter* find_subrange(
      std::string_view name) const noexcept;

  /// Names of all parameters, in declaration order.
  [[nodiscard]] std::vector<std::string> parameter_names() const;

  friend bool operator==(const TestTemplate& a, const TestTemplate& b) {
    return a.name_ == b.name_ && a.params_ == b.params_;
  }

 private:
  std::string name_;
  std::vector<Parameter> params_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Serializes to the template DSL text (parse/print round-trips).
[[nodiscard]] std::string to_text(const TestTemplate& tmpl);

}  // namespace ascdg::tgen
