#include "tgen/file_io.hpp"

#include <fstream>
#include <sstream>

#include "tgen/parser.hpp"
#include "util/error.hpp"

namespace ascdg::tgen {

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::Error("cannot open '" + path.string() + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw util::Error("failed reading '" + path.string() + "'");
  }
  return std::move(buffer).str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      throw util::Error("cannot create directory '" +
                        path.parent_path().string() + "': " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw util::Error("cannot open '" + path.string() + "' for writing");
  }
  out << text;
  out.flush();
  if (!out) {
    throw util::Error("failed writing '" + path.string() + "'");
  }
}

}  // namespace

std::vector<TestTemplate> load_templates(const std::filesystem::path& path) {
  return parse_templates(read_file(path));
}

TestTemplate load_template(const std::filesystem::path& path) {
  return parse_template(read_file(path));
}

Skeleton load_skeleton(const std::filesystem::path& path) {
  return parse_skeleton(read_file(path));
}

void save_templates(const std::filesystem::path& path,
                    std::span<const TestTemplate> templates) {
  std::string text;
  for (std::size_t i = 0; i < templates.size(); ++i) {
    if (i > 0) text += '\n';
    text += to_text(templates[i]);
  }
  write_file(path, text);
}

void save_template(const std::filesystem::path& path,
                   const TestTemplate& tmpl) {
  write_file(path, to_text(tmpl));
}

void save_skeleton(const std::filesystem::path& path,
                   const Skeleton& skeleton) {
  write_file(path, to_text(skeleton));
}

}  // namespace ascdg::tgen
