#include "tgen/file_io.hpp"

#include <fstream>
#include <sstream>

#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ascdg::tgen {

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::Error("cannot open '" + path.string() + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw util::Error("failed reading '" + path.string() + "'");
  }
  return std::move(buffer).str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  // Templates and skeletons land in session directories as durable
  // checkpoints; a torn half-written .tmpl after a crash would poison
  // every later resume, so they go through the same atomic+fsync path
  // as the JSON artifacts.
  util::atomic_write_file(path, text);
}

}  // namespace

std::vector<TestTemplate> load_templates(const std::filesystem::path& path) {
  return parse_templates(read_file(path));
}

TestTemplate load_template(const std::filesystem::path& path) {
  return parse_template(read_file(path));
}

Skeleton load_skeleton(const std::filesystem::path& path) {
  return parse_skeleton(read_file(path));
}

void save_templates(const std::filesystem::path& path,
                    std::span<const TestTemplate> templates) {
  std::string text;
  for (std::size_t i = 0; i < templates.size(); ++i) {
    if (i > 0) text += '\n';
    text += to_text(templates[i]);
  }
  write_file(path, text);
}

void save_template(const std::filesystem::path& path,
                   const TestTemplate& tmpl) {
  write_file(path, to_text(tmpl));
}

void save_skeleton(const std::filesystem::path& path,
                   const Skeleton& skeleton) {
  write_file(path, to_text(skeleton));
}

}  // namespace ascdg::tgen
