// File I/O for templates and skeletons: the on-disk form is exactly the
// DSL text, so files written by save() parse back identically and can
// be edited by hand (test-templates are working artifacts of a
// verification team, not opaque state).
#pragma once

#include <filesystem>
#include <vector>

#include "tgen/skeleton.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::tgen {

/// Loads every template in a DSL file.
/// Throws util::Error on IO failure, util::ParseError on bad syntax.
[[nodiscard]] std::vector<TestTemplate> load_templates(
    const std::filesystem::path& path);

/// Loads exactly one template from a DSL file.
[[nodiscard]] TestTemplate load_template(const std::filesystem::path& path);

/// Loads exactly one skeleton from a DSL file.
[[nodiscard]] Skeleton load_skeleton(const std::filesystem::path& path);

/// Writes templates (DSL text) to a file, creating parent directories.
/// Throws util::Error on IO failure.
void save_templates(const std::filesystem::path& path,
                    std::span<const TestTemplate> templates);

/// Writes one template.
void save_template(const std::filesystem::path& path, const TestTemplate& tmpl);

/// Writes one skeleton.
void save_skeleton(const std::filesystem::path& path, const Skeleton& skeleton);

}  // namespace ascdg::tgen
