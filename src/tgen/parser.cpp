#include "tgen/parser.hpp"

#include <cctype>
#include <optional>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ascdg::tgen {

namespace {

using util::ParseError;

enum class TokenKind {
  kIdent,
  kInt,
  kFloat,
  kMark,  // <W>
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kColon,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string_view text;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return {TokenKind::kEnd, {}, line_};
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return punct(TokenKind::kLBrace);
      case '}':
        return punct(TokenKind::kRBrace);
      case '[':
        return punct(TokenKind::kLBracket);
      case ']':
        return punct(TokenKind::kRBracket);
      case ':':
        return punct(TokenKind::kColon);
      case ',':
        return punct(TokenKind::kComma);
      default:
        break;
    }
    if (c == '<') return lex_mark();
    if (is_number_start(c)) return lex_number();
    if (is_ident_start(c)) return lex_ident();
    throw ParseError(std::string("unexpected character '") + c + "'", line_);
  }

 private:
  static bool is_ident_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  }
  static bool is_ident_char(char c) noexcept {
    // '+' continues (but never starts) an identifier: the coarse search
    // names merged seed templates "a+b+c", and session artifacts must
    // round-trip those names through the DSL. Tokens starting with '+'
    // still lex as numbers, so "x: +3" is unaffected.
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '.' || c == '+';
  }
  static bool is_number_start(char c) noexcept {
    return std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
           c == '+';
  }

  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token punct(TokenKind kind) {
    const Token token{kind, text_.substr(pos_, 1), line_};
    ++pos_;
    return token;
  }

  Token lex_mark() {
    if (text_.substr(pos_, 3) == "<W>") {
      const Token token{TokenKind::kMark, text_.substr(pos_, 3), line_};
      pos_ += 3;
      return token;
    }
    throw ParseError("expected mark '<W>'", line_);
  }

  Token lex_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool has_digits = false;
    bool is_float = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        has_digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++pos_;
        if ((c == 'e' || c == 'E') && pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (!has_digits) throw ParseError("malformed number", line_);
    return {is_float ? TokenKind::kFloat : TokenKind::kInt,
            text_.substr(start, pos_ - start), line_};
  }

  Token lex_ident() {
    const std::size_t start = pos_;
    ++pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return {TokenKind::kIdent, text_.substr(start, pos_ - start), line_};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

/// Recursive-descent parser over the token stream. Parses both concrete
/// templates and skeletons; `allow_marks` distinguishes the two.
class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  [[nodiscard]] bool at_end() const noexcept {
    return current_.kind == TokenKind::kEnd;
  }

  /// Returns the keyword of the next block ("template" or "skeleton").
  std::string_view peek_block_keyword() {
    if (current_.kind != TokenKind::kIdent ||
        (current_.text != "template" && current_.text != "skeleton")) {
      throw ParseError("expected 'template' or 'skeleton'", current_.line);
    }
    return current_.text;
  }

  TestTemplate parse_template_block() {
    expect_keyword("template");
    TestTemplate tmpl{std::string(expect(TokenKind::kIdent).text)};
    expect(TokenKind::kLBrace);
    while (current_.kind != TokenKind::kRBrace) {
      tmpl.add(parse_concrete_parameter());
    }
    expect(TokenKind::kRBrace);
    return tmpl;
  }

  Skeleton parse_skeleton_block() {
    expect_keyword("skeleton");
    Skeleton skeleton{std::string(expect(TokenKind::kIdent).text)};
    expect(TokenKind::kLBrace);
    while (current_.kind != TokenKind::kRBrace) {
      skeleton.add(parse_skeleton_parameter());
    }
    expect(TokenKind::kRBrace);
    return skeleton;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  Token expect(TokenKind kind) {
    if (current_.kind != kind) {
      throw ParseError("unexpected token '" + std::string(current_.text) + "'",
                       current_.line);
    }
    const Token token = current_;
    advance();
    return token;
  }

  void expect_keyword(std::string_view keyword) {
    if (current_.kind != TokenKind::kIdent || current_.text != keyword) {
      throw ParseError("expected '" + std::string(keyword) + "'",
                       current_.line);
    }
    advance();
  }

  std::string_view parameter_keyword() {
    if (current_.kind != TokenKind::kIdent ||
        (current_.text != "weight" && current_.text != "range" &&
         current_.text != "subrange")) {
      throw ParseError(
          "expected 'weight', 'range' or 'subrange', got '" +
              std::string(current_.text) + "'",
          current_.line);
    }
    const std::string_view keyword = current_.text;
    advance();
    return keyword;
  }

  double parse_number() {
    if (current_.kind != TokenKind::kInt && current_.kind != TokenKind::kFloat) {
      throw ParseError("expected a number, got '" + std::string(current_.text) +
                           "'",
                       current_.line);
    }
    const auto value = util::parse_double(current_.text);
    if (!value.has_value()) {
      throw ParseError("malformed number '" + std::string(current_.text) + "'",
                       current_.line);
    }
    advance();
    return *value;
  }

  std::int64_t parse_integer() {
    if (current_.kind != TokenKind::kInt) {
      throw ParseError("expected an integer, got '" +
                           std::string(current_.text) + "'",
                       current_.line);
    }
    const auto value = util::parse_int(current_.text);
    if (!value.has_value()) {
      throw ParseError("integer out of range '" + std::string(current_.text) +
                           "'",
                       current_.line);
    }
    advance();
    return *value;
  }

  /// Weight that may be a <W> mark (skeletons only).
  std::optional<double> parse_maybe_marked_weight(bool allow_marks) {
    if (current_.kind == TokenKind::kMark) {
      if (!allow_marks) {
        throw ParseError("mark '<W>' is only allowed inside a skeleton",
                         current_.line);
      }
      advance();
      return std::nullopt;
    }
    return parse_number();
  }

  Value parse_value() {
    if (current_.kind == TokenKind::kIdent) {
      Value v{std::string(current_.text)};
      advance();
      return v;
    }
    if (current_.kind == TokenKind::kInt) {
      return Value{parse_integer()};
    }
    throw ParseError("expected a value (identifier or integer), got '" +
                         std::string(current_.text) + "'",
                     current_.line);
  }

  std::pair<std::int64_t, std::int64_t> parse_bracket_range() {
    expect(TokenKind::kLBracket);
    const std::int64_t lo = parse_integer();
    expect(TokenKind::kComma);
    const std::int64_t hi = parse_integer();
    expect(TokenKind::kRBracket);
    return {lo, hi};
  }

  Parameter parse_concrete_parameter() {
    const std::string_view keyword = parameter_keyword();
    const std::string name{expect(TokenKind::kIdent).text};
    if (keyword == "range") {
      const auto [lo, hi] = parse_bracket_range();
      return RangeParameter{name, lo, hi};
    }
    if (keyword == "weight") {
      WeightParameter param{name, {}};
      expect(TokenKind::kLBrace);
      for (;;) {
        Value value = parse_value();
        expect(TokenKind::kColon);
        const double weight = parse_number();
        param.entries.push_back({std::move(value), weight});
        if (current_.kind == TokenKind::kComma) {
          advance();
          continue;
        }
        break;
      }
      expect(TokenKind::kRBrace);
      return param;
    }
    SubrangeParameter param{name, {}};
    expect(TokenKind::kLBrace);
    for (;;) {
      const auto [lo, hi] = parse_bracket_range();
      expect(TokenKind::kColon);
      const double weight = parse_number();
      param.entries.push_back({lo, hi, weight});
      if (current_.kind == TokenKind::kComma) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::kRBrace);
    return param;
  }

  SkeletonParameter parse_skeleton_parameter() {
    const std::string_view keyword = parameter_keyword();
    const std::string name{expect(TokenKind::kIdent).text};
    if (keyword == "range") {
      const auto [lo, hi] = parse_bracket_range();
      return RangeParameter{name, lo, hi};
    }
    if (keyword == "weight") {
      SkeletonWeightParameter param{name, {}};
      expect(TokenKind::kLBrace);
      for (;;) {
        Value value = parse_value();
        expect(TokenKind::kColon);
        param.entries.push_back(
            {std::move(value), parse_maybe_marked_weight(true)});
        if (current_.kind == TokenKind::kComma) {
          advance();
          continue;
        }
        break;
      }
      expect(TokenKind::kRBrace);
      return param;
    }
    SkeletonSubrangeParameter param{name, {}};
    expect(TokenKind::kLBrace);
    for (;;) {
      const auto [lo, hi] = parse_bracket_range();
      expect(TokenKind::kColon);
      param.entries.push_back({lo, hi, parse_maybe_marked_weight(true)});
      if (current_.kind == TokenKind::kComma) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::kRBrace);
    return param;
  }

  Lexer lexer_;
  Token current_;
};

}  // namespace

std::vector<TestTemplate> parse_templates(std::string_view text) {
  Parser parser(text);
  std::vector<TestTemplate> out;
  while (!parser.at_end()) {
    if (parser.peek_block_keyword() != "template") {
      throw ParseError("expected a 'template' block (found a skeleton)", 1);
    }
    out.push_back(parser.parse_template_block());
  }
  return out;
}

TestTemplate parse_template(std::string_view text) {
  auto all = parse_templates(text);
  if (all.size() != 1) {
    throw ParseError("expected exactly one template, found " +
                         std::to_string(all.size()),
                     1);
  }
  return std::move(all.front());
}

std::vector<Skeleton> parse_skeletons(std::string_view text) {
  Parser parser(text);
  std::vector<Skeleton> out;
  while (!parser.at_end()) {
    if (parser.peek_block_keyword() != "skeleton") {
      throw ParseError("expected a 'skeleton' block (found a template)", 1);
    }
    out.push_back(parser.parse_skeleton_block());
  }
  return out;
}

Skeleton parse_skeleton(std::string_view text) {
  auto all = parse_skeletons(text);
  if (all.size() != 1) {
    throw ParseError("expected exactly one skeleton, found " +
                         std::to_string(all.size()),
                     1);
  }
  return std::move(all.front());
}

}  // namespace ascdg::tgen
