// Skeletons (paper §IV-C): a test-template in which the tunable settings
// are replaced by marks ("<W>" in the DSL). The CDG-Runner instantiates
// a skeleton by assigning a concrete weight to every mark, yielding a
// valid test-template. The mark vector is exactly the search space of
// the fine-grained phase: a point in [0,1]^d, d = mark_count().
#pragma once

#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "tgen/test_template.hpp"

namespace ascdg::tgen {

/// Weight entry whose weight may be a mark (nullopt) or fixed (value).
struct SkeletonWeightEntry {
  Value value;
  std::optional<double> weight;  ///< nullopt == marked <W>

  friend bool operator==(const SkeletonWeightEntry&,
                         const SkeletonWeightEntry&) = default;
};

struct SkeletonWeightParameter {
  std::string name;
  std::vector<SkeletonWeightEntry> entries;

  friend bool operator==(const SkeletonWeightParameter&,
                         const SkeletonWeightParameter&) = default;
};

struct SkeletonSubrangeEntry {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::optional<double> weight;  ///< nullopt == marked <W>

  friend bool operator==(const SkeletonSubrangeEntry&,
                         const SkeletonSubrangeEntry&) = default;
};

struct SkeletonSubrangeParameter {
  std::string name;
  std::vector<SkeletonSubrangeEntry> entries;

  friend bool operator==(const SkeletonSubrangeParameter&,
                         const SkeletonSubrangeParameter&) = default;
};

/// A skeleton parameter: marked weight/subrange distributions, or a
/// fixed range parameter the Skeletonizer chose to leave untouched.
using SkeletonParameter = std::variant<SkeletonWeightParameter,
                                       SkeletonSubrangeParameter, RangeParameter>;

/// Identifies one mark for reporting: the parameter it lives in and a
/// human-readable slot label ("load" or "[0..333]").
struct MarkInfo {
  std::string parameter;
  std::string slot;

  [[nodiscard]] std::string to_string() const {
    return parameter + "[" + slot + "]";
  }
};

class Skeleton {
 public:
  Skeleton() = default;
  explicit Skeleton(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a parameter; rejects duplicate names and parameters with
  /// no entries. Throws util::ValidationError.
  void add(SkeletonParameter parameter);

  [[nodiscard]] const std::vector<SkeletonParameter>& parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] bool empty() const noexcept { return params_.empty(); }

  /// Number of marks (== dimension of the fine-grained search space).
  [[nodiscard]] std::size_t mark_count() const noexcept;

  /// Description of each mark, in instantiation order.
  [[nodiscard]] std::vector<MarkInfo> marks() const;

  /// Builds a concrete test-template named `instance_name` by assigning
  /// `weights[i]` to the i-th mark. Negative weights clamp to zero. If a
  /// parameter ends up with zero total weight, all of its marked entries
  /// fall back to 1.0 (uniform) so the template stays generatable.
  /// Throws util::ValidationError when weights.size() != mark_count().
  [[nodiscard]] TestTemplate instantiate(std::string instance_name,
                                         std::span<const double> weights) const;

  friend bool operator==(const Skeleton& a, const Skeleton& b) {
    return a.name_ == b.name_ && a.params_ == b.params_;
  }

 private:
  std::string name_;
  std::vector<SkeletonParameter> params_;
};

/// Serializes to the skeleton DSL text ("skeleton <name> { ... }" with
/// <W> marks). Round-trips with parse_skeleton().
[[nodiscard]] std::string to_text(const Skeleton& skeleton);

}  // namespace ascdg::tgen
