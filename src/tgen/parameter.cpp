#include "tgen/parameter.hpp"

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ascdg::tgen {

namespace {

using util::ValidationError;

void validate_name(const std::string& name) {
  if (!util::is_identifier(name)) {
    throw ValidationError("invalid parameter name: '" + name + "'");
  }
}

void validate_weight(const std::string& name, double weight) {
  if (!std::isfinite(weight) || weight < 0.0) {
    throw ValidationError("parameter '" + name +
                          "' has a negative or non-finite weight");
  }
}

void validate_impl(const WeightParameter& p) {
  validate_name(p.name);
  if (p.entries.empty()) {
    throw ValidationError("weight parameter '" + p.name + "' has no entries");
  }
  std::set<Value> seen;
  for (const auto& entry : p.entries) {
    validate_weight(p.name, entry.weight);
    if (!seen.insert(entry.value).second) {
      throw ValidationError("weight parameter '" + p.name +
                            "' has duplicate value '" +
                            entry.value.to_string() + "'");
    }
  }
  if (p.total_weight() <= 0.0) {
    throw ValidationError("weight parameter '" + p.name +
                          "' has zero total weight");
  }
}

void validate_impl(const RangeParameter& p) {
  validate_name(p.name);
  if (p.lo > p.hi) {
    throw ValidationError("range parameter '" + p.name + "' has lo > hi");
  }
}

void validate_impl(const SubrangeParameter& p) {
  validate_name(p.name);
  if (p.entries.empty()) {
    throw ValidationError("subrange parameter '" + p.name + "' has no entries");
  }
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    const auto& entry = p.entries[i];
    validate_weight(p.name, entry.weight);
    if (entry.lo > entry.hi) {
      throw ValidationError("subrange parameter '" + p.name +
                            "' has an entry with lo > hi");
    }
    if (i > 0 && entry.lo <= p.entries[i - 1].hi) {
      throw ValidationError("subrange parameter '" + p.name +
                            "' has unordered or overlapping subranges");
    }
  }
  if (p.total_weight() <= 0.0) {
    throw ValidationError("subrange parameter '" + p.name +
                          "' has zero total weight");
  }
}

}  // namespace

void validate(const Parameter& p) {
  std::visit([](const auto& alt) { validate_impl(alt); }, p);
}

}  // namespace ascdg::tgen
