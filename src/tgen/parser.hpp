// Parser for the test-template DSL (Fig. 1 of the paper).
//
// Grammar (comments start with '#'; whitespace is free-form):
//
//   file      := { template | skeleton }
//   template  := "template" IDENT "{" { param } "}"
//   skeleton  := "skeleton" IDENT "{" { sparam } "}"
//   param     := weight | range | subrange
//   weight    := "weight" IDENT "{" wentry { "," wentry } "}"
//   wentry    := (IDENT | INT) ":" NUMBER
//   range     := "range" IDENT "[" INT "," INT "]"
//   subrange  := "subrange" IDENT "{" sentry { "," sentry } "}"
//   sentry    := "[" INT "," INT "]" ":" NUMBER
//
// In skeletons, NUMBER in a weight position may also be the mark "<W>".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tgen/skeleton.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::tgen {

/// Parses all templates in `text`. Throws util::ParseError (syntax) or
/// util::ValidationError (semantics, e.g. duplicate parameter).
/// Skeleton blocks are rejected here; use parse_skeletons for those.
[[nodiscard]] std::vector<TestTemplate> parse_templates(std::string_view text);

/// Parses exactly one template. Throws util::ParseError when `text`
/// does not contain exactly one template block.
[[nodiscard]] TestTemplate parse_template(std::string_view text);

/// Parses all skeletons in `text`.
[[nodiscard]] std::vector<Skeleton> parse_skeletons(std::string_view text);

/// Parses exactly one skeleton.
[[nodiscard]] Skeleton parse_skeleton(std::string_view text);

}  // namespace ascdg::tgen
