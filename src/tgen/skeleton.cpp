#include "tgen/skeleton.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ascdg::tgen {

namespace {

using util::ValidationError;

const std::string& skeleton_param_name(const SkeletonParameter& p) {
  return std::visit(
      [](const auto& alt) -> const std::string& { return alt.name; }, p);
}

std::size_t marks_in(const SkeletonParameter& p) {
  return std::visit(
      [](const auto& alt) -> std::size_t {
        if constexpr (std::is_same_v<std::decay_t<decltype(alt)>,
                                     RangeParameter>) {
          return 0;
        } else {
          std::size_t count = 0;
          for (const auto& entry : alt.entries) {
            if (!entry.weight.has_value()) ++count;
          }
          return count;
        }
      },
      p);
}

}  // namespace

void Skeleton::add(SkeletonParameter parameter) {
  const std::string& pname = skeleton_param_name(parameter);
  if (!util::is_identifier(pname)) {
    throw ValidationError("invalid skeleton parameter name: '" + pname + "'");
  }
  for (const auto& existing : params_) {
    if (skeleton_param_name(existing) == pname) {
      throw ValidationError("skeleton '" + name_ +
                            "' already has parameter '" + pname + "'");
    }
  }
  const bool has_entries = std::visit(
      [](const auto& alt) {
        if constexpr (std::is_same_v<std::decay_t<decltype(alt)>,
                                     RangeParameter>) {
          return alt.lo <= alt.hi;
        } else {
          return !alt.entries.empty();
        }
      },
      parameter);
  if (!has_entries) {
    throw ValidationError("skeleton parameter '" + pname +
                          "' is empty or malformed");
  }
  params_.push_back(std::move(parameter));
}

std::size_t Skeleton::mark_count() const noexcept {
  std::size_t count = 0;
  for (const auto& p : params_) count += marks_in(p);
  return count;
}

std::vector<MarkInfo> Skeleton::marks() const {
  std::vector<MarkInfo> out;
  for (const auto& p : params_) {
    if (const auto* wp = std::get_if<SkeletonWeightParameter>(&p)) {
      for (const auto& entry : wp->entries) {
        if (!entry.weight.has_value()) {
          out.push_back({wp->name, entry.value.to_string()});
        }
      }
    } else if (const auto* sp = std::get_if<SkeletonSubrangeParameter>(&p)) {
      for (const auto& entry : sp->entries) {
        if (!entry.weight.has_value()) {
          out.push_back({sp->name, std::to_string(entry.lo) + ".." +
                                       std::to_string(entry.hi)});
        }
      }
    }
  }
  return out;
}

TestTemplate Skeleton::instantiate(std::string instance_name,
                                   std::span<const double> weights) const {
  if (weights.size() != mark_count()) {
    throw ValidationError(
        "skeleton '" + name_ + "' has " + std::to_string(mark_count()) +
        " marks but " + std::to_string(weights.size()) + " weights given");
  }
  TestTemplate out(std::move(instance_name));
  std::size_t next_mark = 0;

  const auto take_weight = [&](const std::optional<double>& fixed) -> double {
    if (fixed.has_value()) return *fixed;
    const double w = weights[next_mark++];
    return w > 0.0 ? w : 0.0;
  };

  for (const auto& p : params_) {
    if (const auto* wp = std::get_if<SkeletonWeightParameter>(&p)) {
      WeightParameter concrete{wp->name, {}};
      std::vector<std::size_t> marked_slots;
      concrete.entries.reserve(wp->entries.size());
      for (const auto& entry : wp->entries) {
        if (!entry.weight.has_value()) marked_slots.push_back(concrete.entries.size());
        concrete.entries.push_back({entry.value, take_weight(entry.weight)});
      }
      if (concrete.total_weight() <= 0.0) {
        // Uniform fallback keeps the instantiated template generatable.
        for (const std::size_t slot : marked_slots) {
          concrete.entries[slot].weight = 1.0;
        }
      }
      out.add(std::move(concrete));
    } else if (const auto* sp = std::get_if<SkeletonSubrangeParameter>(&p)) {
      SubrangeParameter concrete{sp->name, {}};
      std::vector<std::size_t> marked_slots;
      concrete.entries.reserve(sp->entries.size());
      for (const auto& entry : sp->entries) {
        if (!entry.weight.has_value()) marked_slots.push_back(concrete.entries.size());
        concrete.entries.push_back({entry.lo, entry.hi, take_weight(entry.weight)});
      }
      if (concrete.total_weight() <= 0.0) {
        for (const std::size_t slot : marked_slots) {
          concrete.entries[slot].weight = 1.0;
        }
      }
      out.add(std::move(concrete));
    } else {
      out.add(std::get<RangeParameter>(p));
    }
  }
  return out;
}

namespace {

std::string weight_text(const std::optional<double>& weight) {
  return weight.has_value() ? util::format_number(*weight) : std::string("<W>");
}

void print(std::ostream& os, const SkeletonWeightParameter& p) {
  os << "  weight " << p.name << " {";
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    if (i > 0) os << ',';
    os << ' ' << p.entries[i].value.to_string() << ": "
       << weight_text(p.entries[i].weight);
  }
  os << " }\n";
}

void print(std::ostream& os, const SkeletonSubrangeParameter& p) {
  os << "  subrange " << p.name << " {";
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    if (i > 0) os << ',';
    os << " [" << p.entries[i].lo << ", " << p.entries[i].hi
       << "]: " << weight_text(p.entries[i].weight);
  }
  os << " }\n";
}

void print(std::ostream& os, const RangeParameter& p) {
  os << "  range " << p.name << " [" << p.lo << ", " << p.hi << "]\n";
}

}  // namespace

std::string to_text(const Skeleton& skeleton) {
  std::ostringstream os;
  os << "skeleton " << skeleton.name() << " {\n";
  for (const auto& param : skeleton.parameters()) {
    std::visit([&os](const auto& alt) { print(os, alt); }, param);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ascdg::tgen
