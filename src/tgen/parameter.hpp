// Parameter kinds of the test-template model (paper §III):
//
//  * WeightParameter  — a set of value/weight pairs; the stimuli
//    generator uses the weights as a distribution when drawing a value.
//  * RangeParameter   — an integer range [lo, hi]; values are drawn
//    uniformly.
//  * SubrangeParameter — a weighted partition of a range into subranges;
//    produced by the Skeletonizer from a RangeParameter so the
//    CDG-Runner can control the distribution over the range (§IV-C).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "tgen/value.hpp"

namespace ascdg::tgen {

/// One value/weight pair of a weight parameter.
struct WeightEntry {
  Value value;
  double weight = 0.0;

  friend bool operator==(const WeightEntry&, const WeightEntry&) = default;
};

/// A distribution over discrete values.
struct WeightParameter {
  std::string name;
  std::vector<WeightEntry> entries;

  /// Sum of all (non-negative) weights.
  [[nodiscard]] double total_weight() const noexcept {
    double total = 0.0;
    for (const auto& e : entries) total += e.weight > 0.0 ? e.weight : 0.0;
    return total;
  }

  friend bool operator==(const WeightParameter&,
                         const WeightParameter&) = default;
};

/// A uniform integer range [lo, hi] (inclusive).
struct RangeParameter {
  std::string name;
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  friend bool operator==(const RangeParameter&, const RangeParameter&) = default;
};

/// One weighted subrange [lo, hi] (inclusive) of a SubrangeParameter.
struct SubrangeEntry {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  double weight = 0.0;

  friend bool operator==(const SubrangeEntry&, const SubrangeEntry&) = default;
};

/// A distribution over subranges; within the chosen subrange the value
/// is drawn uniformly.
struct SubrangeParameter {
  std::string name;
  std::vector<SubrangeEntry> entries;

  [[nodiscard]] double total_weight() const noexcept {
    double total = 0.0;
    for (const auto& e : entries) total += e.weight > 0.0 ? e.weight : 0.0;
    return total;
  }

  friend bool operator==(const SubrangeParameter&,
                         const SubrangeParameter&) = default;
};

using Parameter = std::variant<WeightParameter, RangeParameter, SubrangeParameter>;

/// Name of a parameter regardless of its kind.
[[nodiscard]] inline const std::string& parameter_name(const Parameter& p) {
  return std::visit([](const auto& alt) -> const std::string& { return alt.name; },
                    p);
}

/// Validates a parameter: non-empty identifier name, at least one entry,
/// non-negative finite weights, ordered non-overlapping ranges.
/// Throws util::ValidationError on violation.
void validate(const Parameter& p);

}  // namespace ascdg::tgen
