// Values that can appear in a weight parameter of a test-template:
// either symbolic identifiers (instruction mnemonics, request kinds, ...)
// or integers (thread ids, sizes, ...). See Fig. 1(a) of the paper.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace ascdg::tgen {

/// A weight-parameter value: symbol or integer.
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(std::string symbol) : data_(std::move(symbol)) {}
  explicit Value(const char* symbol) : data_(std::string(symbol)) {}

  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(data_);
  }
  [[nodiscard]] bool is_symbol() const noexcept { return !is_int(); }

  /// Integer payload; throws std::bad_variant_access on a symbol.
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(data_);
  }
  /// Symbol payload; throws std::bad_variant_access on an integer.
  [[nodiscard]] const std::string& as_symbol() const {
    return std::get<std::string>(data_);
  }

  /// Textual form as it appears in the template DSL.
  [[nodiscard]] std::string to_string() const {
    return is_int() ? std::to_string(as_int()) : as_symbol();
  }

  friend bool operator==(const Value&, const Value&) = default;
  friend auto operator<=>(const Value&, const Value&) = default;

 private:
  std::variant<std::int64_t, std::string> data_;
};

}  // namespace ascdg::tgen
