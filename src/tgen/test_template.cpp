#include "tgen/test_template.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ascdg::tgen {

void TestTemplate::add(Parameter parameter) {
  validate(parameter);
  const std::string& pname = parameter_name(parameter);
  if (index_.contains(pname)) {
    throw util::ValidationError("template '" + name_ +
                                "' already has parameter '" + pname + "'");
  }
  index_.emplace(pname, params_.size());
  params_.push_back(std::move(parameter));
}

void TestTemplate::set(Parameter parameter) {
  validate(parameter);
  const std::string& pname = parameter_name(parameter);
  if (const auto it = index_.find(pname); it != index_.end()) {
    params_[it->second] = std::move(parameter);
  } else {
    index_.emplace(pname, params_.size());
    params_.push_back(std::move(parameter));
  }
}

const Parameter* TestTemplate::find(std::string_view name) const noexcept {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &params_[it->second];
}

const WeightParameter* TestTemplate::find_weight(
    std::string_view name) const noexcept {
  const Parameter* p = find(name);
  return p != nullptr ? std::get_if<WeightParameter>(p) : nullptr;
}

const RangeParameter* TestTemplate::find_range(
    std::string_view name) const noexcept {
  const Parameter* p = find(name);
  return p != nullptr ? std::get_if<RangeParameter>(p) : nullptr;
}

const SubrangeParameter* TestTemplate::find_subrange(
    std::string_view name) const noexcept {
  const Parameter* p = find(name);
  return p != nullptr ? std::get_if<SubrangeParameter>(p) : nullptr;
}

std::vector<std::string> TestTemplate::parameter_names() const {
  std::vector<std::string> names;
  names.reserve(params_.size());
  for (const auto& p : params_) names.push_back(parameter_name(p));
  return names;
}

namespace {

void print(std::ostream& os, const WeightParameter& p) {
  os << "  weight " << p.name << " {";
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    if (i > 0) os << ',';
    os << ' ' << p.entries[i].value.to_string() << ": "
       << util::format_number(p.entries[i].weight);
  }
  os << " }\n";
}

void print(std::ostream& os, const RangeParameter& p) {
  os << "  range " << p.name << " [" << p.lo << ", " << p.hi << "]\n";
}

void print(std::ostream& os, const SubrangeParameter& p) {
  os << "  subrange " << p.name << " {";
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    if (i > 0) os << ',';
    os << " [" << p.entries[i].lo << ", " << p.entries[i].hi
       << "]: " << util::format_number(p.entries[i].weight);
  }
  os << " }\n";
}

}  // namespace

std::string to_text(const TestTemplate& tmpl) {
  std::ostringstream os;
  os << "template " << tmpl.name() << " {\n";
  for (const auto& param : tmpl.parameters()) {
    std::visit([&os](const auto& alt) { print(os, alt); }, param);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ascdg::tgen
