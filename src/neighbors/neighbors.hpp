// Neighbor discovery and the approximated target (paper §IV-A).
//
// The complete lack of positive evidence for the target events means any
// search starts "in the dark". The fix mimics verification experts: take
// events *near* the target — events whose hitting exercises the same
// area of the DUV — and optimize a (weighted) sum of their hit rates,
// giving more weight to events closer to the target.
//
// Implemented discovery strategies (the paper cites one per reference):
//   * FamilyOrderStrategy  — the natural order inside an event family
//     (buffer-fill / threshold families like crc_004..crc_096), after
//     Wagner et al. [8];
//   * CrossProductStrategy — the structure of a cross-product coverage
//     model (Hamming ball around the target tuple), after Fine & Ziv [15];
//   * NamePrefixStrategy   — lexical proximity of event names, a cheap
//     structural stand-in for the "Friends" formal analysis [16].
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "coverage/repository.hpp"
#include "coverage/space.hpp"
#include "tac/tac.hpp"

namespace ascdg::neighbors {

/// A weighted set of events standing in for an uncovered target.
/// `events` always contains the targets themselves (so that once real
/// evidence appears it dominates the objective) plus their neighbors.
class ApproximatedTarget {
 public:
  ApproximatedTarget() = default;
  ApproximatedTarget(std::vector<coverage::EventId> targets,
                     std::vector<tac::WeightedEvent> events)
      : targets_(std::move(targets)), events_(std::move(events)) {}

  [[nodiscard]] const std::vector<coverage::EventId>& targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] const std::vector<tac::WeightedEvent>& events() const noexcept {
    return events_;
  }

  /// The approximated objective: weighted sum of empirical hit rates,
  /// T_N(t) = sum_e w_e * e_N(t).
  [[nodiscard]] double value(const coverage::SimStats& stats) const;

  /// The real objective: summed hit rate of the target events only.
  [[nodiscard]] double real_value(const coverage::SimStats& stats) const;

 private:
  std::vector<coverage::EventId> targets_;
  std::vector<tac::WeightedEvent> events_;
};

class NeighborStrategy {
 public:
  virtual ~NeighborStrategy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Neighbors of `target` (excluding `target` itself), with weights in
  /// (0, 1]; closer neighbors get larger weights.
  [[nodiscard]] virtual std::vector<tac::WeightedEvent> neighbors(
      const coverage::CoverageSpace& space, coverage::EventId target) const = 0;
};

/// Neighbors by position within a declared event family: weight
/// 1 / (1 + order distance).
class FamilyOrderStrategy final : public NeighborStrategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "family-order";
  }
  [[nodiscard]] std::vector<tac::WeightedEvent> neighbors(
      const coverage::CoverageSpace& space,
      coverage::EventId target) const override;
};

/// Neighbors inside a cross-product model: all events within Hamming
/// distance `radius` of the target tuple, weight 1 / (1 + distance).
class CrossProductStrategy final : public NeighborStrategy {
 public:
  explicit CrossProductStrategy(std::size_t radius = 1) : radius_(radius) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "cross-product";
  }
  [[nodiscard]] std::vector<tac::WeightedEvent> neighbors(
      const coverage::CoverageSpace& space,
      coverage::EventId target) const override;

 private:
  std::size_t radius_;
};

/// Neighbors by shared name prefix: events sharing at least
/// `min_prefix` leading characters with the target, weight proportional
/// to the shared-prefix fraction.
class NamePrefixStrategy final : public NeighborStrategy {
 public:
  explicit NamePrefixStrategy(std::size_t min_prefix = 4)
      : min_prefix_(min_prefix) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "name-prefix";
  }
  [[nodiscard]] std::vector<tac::WeightedEvent> neighbors(
      const coverage::CoverageSpace& space,
      coverage::EventId target) const override;

 private:
  std::size_t min_prefix_;
};

/// Union of several strategies; a neighbor found by more than one keeps
/// its maximum weight.
class CompositeStrategy final : public NeighborStrategy {
 public:
  explicit CompositeStrategy(
      std::vector<std::unique_ptr<NeighborStrategy>> strategies)
      : strategies_(std::move(strategies)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "composite";
  }
  [[nodiscard]] std::vector<tac::WeightedEvent> neighbors(
      const coverage::CoverageSpace& space,
      coverage::EventId target) const override;

 private:
  std::vector<std::unique_ptr<NeighborStrategy>> strategies_;
};

/// Data-driven neighbor expansion, a statistical stand-in for the
/// formal "Friends" analysis the paper cites [16]: events whose
/// per-template hit profile correlates with the profile of an already
/// known neighbor are probably exercised by the same mechanism, so they
/// join the approximated target too.
///
/// Expansion works on evidence: the target itself has no hits, so the
/// correlation is computed against the *weighted profile* of the seed
/// neighbors (sum of their per-template hit-rate vectors, weighted).
/// An event joins when the cosine similarity of its profile with that
/// seed profile reaches `min_similarity`; its weight is
/// `expansion_weight * similarity`.
class CorrelationExpansion {
 public:
  /// `repo` must outlive the expansion object.
  CorrelationExpansion(const coverage::CoverageRepository& repo,
                       double min_similarity = 0.8,
                       double expansion_weight = 0.25) noexcept
      : repo_(&repo),
        min_similarity_(min_similarity),
        expansion_weight_(expansion_weight) {}

  /// Returns a new target containing every event of `base` plus the
  /// correlated events (existing events keep their weights; an event
  /// found by both keeps the larger weight).
  [[nodiscard]] ApproximatedTarget expand(const ApproximatedTarget& base) const;

  /// The cosine similarity between an event's per-template hit-rate
  /// profile and the base target's weighted seed profile (exposed for
  /// tests; 0 when either profile is all-zero).
  [[nodiscard]] double similarity(const ApproximatedTarget& base,
                                  coverage::EventId event) const;

 private:
  [[nodiscard]] std::vector<double> seed_profile(
      const ApproximatedTarget& base) const;
  [[nodiscard]] std::vector<double> event_profile(coverage::EventId event) const;

  const coverage::CoverageRepository* repo_;
  double min_similarity_;
  double expansion_weight_;
};

/// Builds the approximated target for a set of uncovered targets: each
/// target contributes itself (weight `target_weight`) plus its neighbors
/// under `strategy`. Duplicate events keep their maximum weight.
[[nodiscard]] ApproximatedTarget build_target(
    const coverage::CoverageSpace& space,
    std::span<const coverage::EventId> targets,
    const NeighborStrategy& strategy, double target_weight = 2.0);

/// How family_target weights the family members.
enum class FamilyWeighting {
  /// Unit weights — the plain "sum of the hit counts for all the events
  /// in the family" (§V). Simple, but on steep families the optimizer
  /// can plateau maximizing the easy head of the family.
  kUniform,
  /// Weight 1/(1 + order distance to the nearest uncovered target),
  /// with `target_weight` on the targets themselves — the §IV-A
  /// "weighted sum of these events, giving more weight to events closer
  /// to our target". This is the default: it keeps a usable gradient
  /// while pulling the optimum toward the uncovered tail.
  kDistance,
};

/// Convenience: an approximated target over a whole family; targets =
/// the events currently uncovered per `baseline` (or the rarest event
/// when everything is covered).
[[nodiscard]] ApproximatedTarget family_target(
    const coverage::CoverageSpace& space, std::string_view family,
    const coverage::SimStats& baseline,
    FamilyWeighting weighting = FamilyWeighting::kDistance,
    double target_weight = 2.0);

}  // namespace ascdg::neighbors
