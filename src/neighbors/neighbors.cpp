#include "neighbors/neighbors.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace ascdg::neighbors {

double ApproximatedTarget::value(const coverage::SimStats& stats) const {
  double total = 0.0;
  for (const auto& [event, weight] : events_) {
    total += weight * stats.hit_rate(event);
  }
  return total;
}

double ApproximatedTarget::real_value(const coverage::SimStats& stats) const {
  double total = 0.0;
  for (const auto event : targets_) total += stats.hit_rate(event);
  return total;
}

std::vector<tac::WeightedEvent> FamilyOrderStrategy::neighbors(
    const coverage::CoverageSpace& space, coverage::EventId target) const {
  for (const auto& family : space.family_names()) {
    const auto events = space.family_events(family);
    const auto it = std::find(events.begin(), events.end(), target);
    if (it == events.end()) continue;
    const auto pos = static_cast<std::size_t>(it - events.begin());
    std::vector<tac::WeightedEvent> out;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i == pos) continue;
      const std::size_t dist = i > pos ? i - pos : pos - i;
      out.push_back({events[i], 1.0 / (1.0 + static_cast<double>(dist))});
    }
    return out;
  }
  return {};
}

std::vector<tac::WeightedEvent> CrossProductStrategy::neighbors(
    const coverage::CoverageSpace& space, coverage::EventId target) const {
  const coverage::CrossProduct* cp = space.cross_product_of(target);
  if (cp == nullptr) return {};
  const auto target_coords = space.coords_of(*cp, target);
  std::vector<tac::WeightedEvent> out;
  for (std::size_t offset = 0; offset < cp->count; ++offset) {
    const coverage::EventId id{cp->first.value +
                               static_cast<std::uint32_t>(offset)};
    if (id == target) continue;
    const auto coords = space.coords_of(*cp, id);
    std::size_t hamming = 0;
    for (std::size_t d = 0; d < coords.size(); ++d) {
      if (coords[d] != target_coords[d]) ++hamming;
    }
    if (hamming <= radius_) {
      out.push_back({id, 1.0 / (1.0 + static_cast<double>(hamming))});
    }
  }
  return out;
}

std::vector<tac::WeightedEvent> NamePrefixStrategy::neighbors(
    const coverage::CoverageSpace& space, coverage::EventId target) const {
  const std::string& target_name = space.name(target);
  std::vector<tac::WeightedEvent> out;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const coverage::EventId id{static_cast<std::uint32_t>(i)};
    if (id == target) continue;
    const std::string& name = space.name(id);
    std::size_t shared = 0;
    const std::size_t limit = std::min(name.size(), target_name.size());
    while (shared < limit && name[shared] == target_name[shared]) ++shared;
    if (shared >= min_prefix_) {
      out.push_back({id, static_cast<double>(shared) /
                             static_cast<double>(target_name.size())});
    }
  }
  return out;
}

std::vector<tac::WeightedEvent> CompositeStrategy::neighbors(
    const coverage::CoverageSpace& space, coverage::EventId target) const {
  std::unordered_map<coverage::EventId, double> best;
  for (const auto& strategy : strategies_) {
    for (const auto& [event, weight] : strategy->neighbors(space, target)) {
      auto [it, inserted] = best.try_emplace(event, weight);
      if (!inserted) it->second = std::max(it->second, weight);
    }
  }
  std::vector<tac::WeightedEvent> out;
  out.reserve(best.size());
  for (const auto& [event, weight] : best) out.push_back({event, weight});
  std::sort(out.begin(), out.end(),
            [](const tac::WeightedEvent& a, const tac::WeightedEvent& b) {
              return a.event < b.event;
            });
  return out;
}

std::vector<double> CorrelationExpansion::event_profile(
    coverage::EventId event) const {
  std::vector<double> profile;
  for (const auto& name : repo_->template_names()) {
    profile.push_back(repo_->stats(name).hit_rate(event));
  }
  return profile;
}

std::vector<double> CorrelationExpansion::seed_profile(
    const ApproximatedTarget& base) const {
  std::vector<double> profile(repo_->template_names().size(), 0.0);
  for (const auto& [event, weight] : base.events()) {
    const auto ep = event_profile(event);
    for (std::size_t i = 0; i < profile.size(); ++i) {
      profile[i] += weight * ep[i];
    }
  }
  return profile;
}

namespace {
double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}
}  // namespace

double CorrelationExpansion::similarity(const ApproximatedTarget& base,
                                        coverage::EventId event) const {
  return cosine(seed_profile(base), event_profile(event));
}

ApproximatedTarget CorrelationExpansion::expand(
    const ApproximatedTarget& base) const {
  const auto seed = seed_profile(base);
  std::unordered_map<coverage::EventId, double> weights;
  for (const auto& [event, weight] : base.events()) weights[event] = weight;

  for (std::size_t e = 0; e < repo_->event_count(); ++e) {
    const coverage::EventId id{static_cast<std::uint32_t>(e)};
    if (weights.contains(id)) continue;
    const double sim = cosine(seed, event_profile(id));
    if (sim >= min_similarity_) {
      weights.emplace(id, expansion_weight_ * sim);
    }
  }

  std::vector<tac::WeightedEvent> events;
  events.reserve(weights.size());
  for (const auto& [event, weight] : weights) events.push_back({event, weight});
  std::sort(events.begin(), events.end(),
            [](const tac::WeightedEvent& a, const tac::WeightedEvent& b) {
              return a.event < b.event;
            });
  return ApproximatedTarget{base.targets(), std::move(events)};
}

ApproximatedTarget build_target(const coverage::CoverageSpace& space,
                                std::span<const coverage::EventId> targets,
                                const NeighborStrategy& strategy,
                                double target_weight) {
  if (targets.empty()) {
    throw util::ValidationError("approximated target needs at least one target");
  }
  std::unordered_map<coverage::EventId, double> weights;
  for (const auto target : targets) weights[target] = target_weight;
  for (const auto target : targets) {
    for (const auto& [event, weight] : strategy.neighbors(space, target)) {
      auto [it, inserted] = weights.try_emplace(event, weight);
      if (!inserted) it->second = std::max(it->second, weight);
    }
  }
  std::vector<tac::WeightedEvent> events;
  events.reserve(weights.size());
  for (const auto& [event, weight] : weights) events.push_back({event, weight});
  std::sort(events.begin(), events.end(),
            [](const tac::WeightedEvent& a, const tac::WeightedEvent& b) {
              return a.event < b.event;
            });
  return ApproximatedTarget{
      std::vector<coverage::EventId>(targets.begin(), targets.end()),
      std::move(events)};
}

ApproximatedTarget family_target(const coverage::CoverageSpace& space,
                                 std::string_view family,
                                 const coverage::SimStats& baseline,
                                 FamilyWeighting weighting,
                                 double target_weight) {
  const auto events = space.family_events(family);
  if (events.empty()) {
    throw util::NotFoundError("unknown event family '" + std::string(family) +
                              "'");
  }
  std::vector<coverage::EventId> targets;
  std::vector<std::size_t> target_positions;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (baseline.sims() == 0 || baseline.hits(events[i]) == 0) {
      targets.push_back(events[i]);
      target_positions.push_back(i);
    }
  }
  if (targets.empty()) {
    // Everything already covered: target the rarest event so the flow
    // still has a well-defined objective.
    const auto rarest_it = std::min_element(
        events.begin(), events.end(),
        [&baseline](coverage::EventId a, coverage::EventId b) {
          return baseline.hits(a) < baseline.hits(b);
        });
    targets.push_back(*rarest_it);
    target_positions.push_back(
        static_cast<std::size_t>(rarest_it - events.begin()));
  }

  std::vector<tac::WeightedEvent> weighted;
  weighted.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    double weight = 1.0;
    if (weighting == FamilyWeighting::kDistance) {
      std::size_t dist = events.size();
      for (const std::size_t pos : target_positions) {
        const std::size_t d = pos > i ? pos - i : i - pos;
        dist = std::min(dist, d);
      }
      weight = dist == 0 ? target_weight
                         : 1.0 / (1.0 + static_cast<double>(dist));
    }
    weighted.push_back({events[i], weight});
  }
  return ApproximatedTarget{std::move(targets), std::move(weighted)};
}

}  // namespace ascdg::neighbors
