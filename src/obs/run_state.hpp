// Live run state for the introspection service's /runz endpoint: the
// CDG runner publishes its current flow-phase stack and the optimizer
// its per-iteration heartbeat here, so an operator can ask a running
// process "where are you and is the objective still improving?"
// without waiting for the post-run report.
//
// Updates are per-phase / per-iteration — cold next to the simulate()
// hot path — so a single mutex is plenty; readers take a consistent
// Snapshot copy.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ascdg::obs {

class RunState {
 public:
  /// Consistent point-in-time copy for rendering.
  struct Snapshot {
    std::string seed_template;            ///< empty before a flow starts
    std::vector<std::string> phase_stack; ///< outermost first
    std::uint64_t opt_iteration = 0;      ///< last completed iteration (1-based)
    double opt_best_value = 0.0;
    bool opt_started = false;
    std::uint64_t targets_hit = 0;
    std::uint64_t targets_remaining = 0;
    bool coverage_known = false;
    std::uint64_t updates = 0;            ///< total mutations (progress signal)
    /// Last completed stage when this run resumed a durable session
    /// ("" = not a resumed run; "none" = resumed before any stage
    /// completed). Surfaces at /runz so an operator can tell a resumed
    /// run from a fresh one.
    std::string resumed_from;

    /// Execution backend of the current run ("thread", "process:8";
    /// "" before the driver announces one). Sticky across start_flow,
    /// like resumed_from — the backend is chosen before the flow runs.
    std::string backend;

    /// Innermost phase, or "idle" when no flow is running.
    [[nodiscard]] std::string current_phase() const {
      return phase_stack.empty() ? "idle" : phase_stack.back();
    }
  };

  void start_flow(std::string_view seed_template);
  void enter_phase(std::string_view name);
  /// Pops the innermost phase (no-op on an empty stack).
  void exit_phase();
  /// Optimizer heartbeat: last completed iteration (1-based) and the
  /// best objective value so far.
  void set_optimizer(std::uint64_t iteration, double best_value);
  void set_coverage(std::uint64_t targets_hit, std::uint64_t targets_remaining);
  /// See Snapshot::resumed_from. Sticky across start_flow (the resume
  /// is announced before the flow starts).
  void set_resumed_from(std::string_view stage);
  /// See Snapshot::backend. Sticky across start_flow.
  void set_backend(std::string_view backend);
  /// Clears everything back to idle (flow end, or test isolation).
  void reset();

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot state_;
};

/// The process-wide run state the runner/optimizer publish into and the
/// HTTP server reads from.
[[nodiscard]] RunState& run_state();

}  // namespace ascdg::obs
