// Span-based JSONL run tracing.
//
// Tracer is the process's trace sink: one util::JsonObject per line,
// each stamped with a monotone per-sink sequence number ("seq") and a
// wall-clock timestamp in milliseconds since the Unix epoch ("ts_ms").
// It subsumes the old batch::TraceSink — point events (emit()) keep the
// exact flow_start / phase / flow_end schema the CDG-Runner has always
// written — and adds RAII spans on top.
//
// A Span measures one scoped unit of work: it records its start on the
// shared monotonic clock (util::monotonic_ns, the same timebase log
// lines carry) and emits one "span" event when it ends:
//
//   {"seq":N,"ts_ms":...,"event":"span","span":"optimization",
//    "span_id":3,"parent_id":1,"start_us":1200,"dur_us":84211, ...}
//
// Parent ids come from a thread-local stack: the innermost live span on
// the current thread is the parent of any span (or log line — the span
// id doubles as the util::log context) started on that thread. Spans
// must therefore end on the thread that started them.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "util/jsonl.hpp"

namespace ascdg::obs {

class Tracer;

/// RAII trace scope. Obtain via Tracer::span() (live) or make_span()
/// (inert when the tracer is null, so call sites need no branching).
/// Extra fields attached through fields() ride on the end event.
class Span {
 public:
  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Emits the span event early (idempotent; the destructor is a no-op
  /// afterwards).
  void end();

  /// Fields appended to the span's end event.
  [[nodiscard]] util::JsonObject& fields() noexcept { return fields_; }

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t parent() const noexcept { return parent_; }
  [[nodiscard]] bool live() const noexcept { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  friend Span make_span(Tracer* tracer, std::string_view name);

  Span() = default;  // inert
  Span(Tracer* tracer, std::string_view name);

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  util::JsonObject fields_;
};

class FlightRecorder;

/// Thread-safe JSONL trace sink with span support.
class Tracer {
 public:
  /// Opens (truncating) `path`; throws util::Error on failure.
  explicit Tracer(const std::filesystem::path& path);

  /// Writes to a caller-owned stream (not owned; must outlive the
  /// tracer).
  explicit Tracer(std::ostream& os);

  /// Sink-less tracer: lines go only to the mirrored flight recorder
  /// (see mirror_to). This is what `--flight-recorder` without
  /// `--trace` runs — full span/event instrumentation, zero file IO.
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Mirrors every emitted line (stamps included, newline excluded)
  /// into `recorder` so the trace tail survives a hang or crash even
  /// without a trace file. Not owned; set before concurrent emitters
  /// start and clear (nullptr) only while quiescent.
  void mirror_to(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] FlightRecorder* mirror() const noexcept { return recorder_; }

  /// Appends one line: the object plus seq / ts_ms stamps. Flushes so a
  /// crashed run still leaves a usable trace.
  void emit(const util::JsonObject& object);

  /// Opens a live span named `name`, child of the thread's current span.
  [[nodiscard]] Span span(std::string_view name);

  /// Lines written so far.
  [[nodiscard]] std::size_t lines() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  friend class Span;

  std::ofstream owned_;
  std::ostream* os_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::mutex mutex_;
  std::atomic<std::size_t> lines_{0};
  std::atomic<std::uint64_t> next_span_id_{1};
};

/// Span factory tolerating a null tracer: returns an inert span that
/// costs nothing and emits nothing, so optionally-traced code paths
/// read identically to always-traced ones.
[[nodiscard]] Span make_span(Tracer* tracer, std::string_view name);

}  // namespace ascdg::obs
