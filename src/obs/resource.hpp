// Process resource telemetry: RSS and CPU time read from getrusage(2)
// and /proc/self/statm, published into the metrics registry as
// `ascdg_proc_*` gauges so the HTTP endpoint, the report's "Run
// health" section, and the watchdog's periodic sampling all read the
// same numbers.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace ascdg::obs {

/// One point-in-time sample of the process's resource usage.
struct ResourceUsage {
  std::uint64_t rss_bytes = 0;        ///< resident set (/proc/self/statm)
  std::uint64_t vm_bytes = 0;         ///< virtual size (/proc/self/statm)
  std::uint64_t max_rss_bytes = 0;    ///< lifetime peak (ru_maxrss)
  std::uint64_t user_cpu_us = 0;      ///< ru_utime, microseconds
  std::uint64_t system_cpu_us = 0;    ///< ru_stime, microseconds
  std::uint64_t minor_faults = 0;     ///< ru_minflt
  std::uint64_t major_faults = 0;     ///< ru_majflt
  std::uint64_t vol_ctx_switches = 0;    ///< ru_nvcsw
  std::uint64_t invol_ctx_switches = 0;  ///< ru_nivcsw
  /// True when rss_bytes/vm_bytes were actually read from statm. On a
  /// platform without /proc they are UNKNOWN, not zero — publishers
  /// must skip the rss gauges rather than report a made-up number.
  bool rss_available = false;

  [[nodiscard]] std::uint64_t cpu_us() const noexcept {
    return user_cpu_us + system_cpu_us;
  }
};

/// Samples the current process. Never throws; fields that cannot be
/// read (no /proc, say) stay zero with rss_available false.
[[nodiscard]] ResourceUsage read_resource_usage() noexcept;

/// read_resource_usage() with the statm path injectable — the test
/// seam for exercising the no-/proc degradation on a Linux box.
[[nodiscard]] ResourceUsage read_resource_usage_at(
    const char* statm_path) noexcept;

/// Publishes one sample into `reg`:
///   ascdg_proc_rss_bytes        gauge (peak watermark = observed max)
///   ascdg_proc_vm_bytes         gauge
///   ascdg_proc_max_rss_bytes    gauge (kernel-reported lifetime peak)
///   ascdg_proc_cpu_user_ms      gauge
///   ascdg_proc_cpu_system_ms    gauge
///   ascdg_proc_major_faults     gauge
///   ascdg_proc_ctx_switches_involuntary gauge
/// and observes the RSS into the ascdg_proc_rss_sample_bytes histogram
/// (the sampling distribution over the run). When the sample's
/// rss_available is false the rss/vm series are skipped entirely — a
/// missing gauge is honest, a zero gauge is a lie. Returns the sample.
ResourceUsage update_resource_gauges(Registry& reg);

/// Publishes a caller-provided sample (same series and skip rules).
void update_resource_gauges(Registry& reg, const ResourceUsage& usage);

/// Publishes one flow phase's resource footprint into `reg`:
///   ascdg_phase_cpu_ms{phase=...}    gauge — CPU time spent in the phase
///   ascdg_phase_rss_bytes{phase=...} gauge — RSS at phase end
/// `start` is the sample taken when the phase began.
void update_phase_resource_gauges(Registry& reg, std::string_view phase,
                                  const ResourceUsage& start,
                                  const ResourceUsage& end);

}  // namespace ascdg::obs
