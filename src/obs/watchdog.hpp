// Run watchdog: a monitor thread that notices when the flow stops
// making progress. §6 of the paper runs thousands of noisy simulations
// unattended; a wedged farm worker or a dead-locked optimizer must flip
// /healthz to "degraded" (and leave a trace) instead of silently
// burning the batch budget.
//
// Progress is defined over the metrics registry, not a side channel:
// the sum of every `ascdg_farm_simulations_total` series plus the
// `ascdg_opt_iterations_total` heartbeat. Work is "outstanding" when
// any `ascdg_farm_active_runs` gauge is positive — so a farm that is
// idle between phases is healthy, while a farm that is mid-run_all and
// silent past the stall budget is stalled.
//
// On a stall verdict the watchdog bumps `ascdg_watchdog_stalls_total`,
// emits a `stall` trace event, logs a warning, and (when a process
// flight recorder is installed) dumps the trace tail to stderr. The
// verdict clears itself when progress resumes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ascdg::obs {

struct WatchdogConfig {
  /// How often the monitor thread re-checks (and re-samples resources).
  std::chrono::milliseconds poll_interval{1000};
  /// No progress for this long while work is outstanding => stalled.
  std::chrono::milliseconds stall_after{30'000};
  /// When false, no thread is started; call poll_now() manually (tests,
  /// or callers with their own tick).
  bool start_thread = true;
  /// Refresh the ascdg_proc_* resource gauges on every poll.
  bool sample_resources = true;
  /// Dump the process flight recorder (when installed) to stderr on the
  /// first poll that flips the verdict to stalled.
  bool dump_recorder_on_stall = true;
  /// Optional sink for `stall` / `stall_recovered` events.
  Tracer* trace = nullptr;
};

class Watchdog {
 public:
  /// Watches `reg` (pass obs::registry() for the real process books).
  Watchdog(Registry& reg, WatchdogConfig config);

  /// Stops and joins the monitor thread.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// The /healthz verdict.
  struct Health {
    bool stalled = false;
    std::string reason;  ///< empty while healthy
    std::uint64_t progress = 0;            ///< last observed progress sum
    std::uint64_t ms_since_progress = 0;   ///< 0 when progress just moved
    std::uint64_t stalls = 0;              ///< healthy->stalled flips so far
    std::uint64_t polls = 0;               ///< checks performed
  };
  [[nodiscard]] Health health() const;

  /// One synchronous check (also what the monitor thread runs).
  void poll_now();

  [[nodiscard]] const WatchdogConfig& config() const noexcept {
    return config_;
  }

  /// The registry-derived progress signal: summed farm simulations plus
  /// optimizer iterations. Exposed for tests.
  [[nodiscard]] static std::uint64_t progress_signal(
      const MetricsSnapshot& snapshot) noexcept;

  /// True when any farm has a run_all in flight.
  [[nodiscard]] static bool work_outstanding(
      const MetricsSnapshot& snapshot) noexcept;

 private:
  void monitor_loop();

  Registry* registry_;
  WatchdogConfig config_;
  Counter* stalls_total_;

  mutable std::mutex mutex_;
  Health health_;
  std::chrono::steady_clock::time_point last_progress_;

  std::condition_variable stop_cv_;
  std::mutex stop_mutex_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ascdg::obs
