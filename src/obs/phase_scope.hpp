// RAII flow-phase marker for the live-introspection surface: pushes the
// phase onto obs::run_state()'s stack (visible at /runz) and, on exit,
// publishes the phase's CPU/RSS footprint as ascdg_phase_*{phase=...}
// gauges. Extracted from the CDG runner so every pipeline stage (and
// any future long-running scope) can mark itself the same way.
#pragma once

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/run_state.hpp"

namespace ascdg::obs {

class PhaseScope {
 public:
  explicit PhaseScope(std::string name)
      : name_(std::move(name)), start_(read_resource_usage()) {
    run_state().enter_phase(name_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() { end(); }

  /// Idempotent early exit (the destructor is a no-op afterwards).
  void end() noexcept {
    if (ended_) return;
    ended_ = true;
    try {
      update_phase_resource_gauges(registry(), name_, start_,
                                   read_resource_usage());
    } catch (...) {
      // Telemetry must never fail the flow.
    }
    run_state().exit_phase();
  }

 private:
  std::string name_;
  ResourceUsage start_;
  bool ended_ = false;
};

}  // namespace ascdg::obs
