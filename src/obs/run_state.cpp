#include "obs/run_state.hpp"

namespace ascdg::obs {

void RunState::start_flow(std::string_view seed_template) {
  const std::scoped_lock lock(mutex_);
  state_.seed_template = std::string(seed_template);
  state_.opt_iteration = 0;
  state_.opt_best_value = 0.0;
  state_.opt_started = false;
  state_.targets_hit = 0;
  state_.targets_remaining = 0;
  state_.coverage_known = false;
  ++state_.updates;
}

void RunState::enter_phase(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  state_.phase_stack.emplace_back(name);
  ++state_.updates;
}

void RunState::exit_phase() {
  const std::scoped_lock lock(mutex_);
  if (!state_.phase_stack.empty()) state_.phase_stack.pop_back();
  ++state_.updates;
}

void RunState::set_optimizer(std::uint64_t iteration, double best_value) {
  const std::scoped_lock lock(mutex_);
  state_.opt_iteration = iteration;
  state_.opt_best_value = best_value;
  state_.opt_started = true;
  ++state_.updates;
}

void RunState::set_coverage(std::uint64_t targets_hit,
                            std::uint64_t targets_remaining) {
  const std::scoped_lock lock(mutex_);
  state_.targets_hit = targets_hit;
  state_.targets_remaining = targets_remaining;
  state_.coverage_known = true;
  ++state_.updates;
}

void RunState::set_resumed_from(std::string_view stage) {
  const std::scoped_lock lock(mutex_);
  state_.resumed_from = std::string(stage);
  ++state_.updates;
}

void RunState::set_backend(std::string_view backend) {
  const std::scoped_lock lock(mutex_);
  state_.backend = std::string(backend);
  ++state_.updates;
}

void RunState::reset() {
  const std::scoped_lock lock(mutex_);
  const std::uint64_t updates = state_.updates + 1;
  state_ = Snapshot{};
  state_.updates = updates;
}

RunState::Snapshot RunState::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return state_;
}

RunState& run_state() {
  static RunState instance;
  return instance;
}

}  // namespace ascdg::obs
