#include "obs/watchdog.hpp"

#include <string_view>

#include "obs/flight_recorder.hpp"
#include "obs/resource.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"

namespace ascdg::obs {

namespace {

std::uint64_t sum_counters(const MetricsSnapshot& snapshot,
                           std::string_view name) noexcept {
  std::uint64_t total = 0;
  for (const auto& sample : snapshot.samples) {
    if (sample.kind == MetricKind::kCounter && sample.name == name) {
      total += sample.counter;
    }
  }
  return total;
}

}  // namespace

std::uint64_t Watchdog::progress_signal(
    const MetricsSnapshot& snapshot) noexcept {
  return sum_counters(snapshot, "ascdg_farm_simulations_total") +
         sum_counters(snapshot, "ascdg_opt_iterations_total");
}

bool Watchdog::work_outstanding(const MetricsSnapshot& snapshot) noexcept {
  for (const auto& sample : snapshot.samples) {
    if (sample.kind == MetricKind::kGauge &&
        sample.name == "ascdg_farm_active_runs" && sample.gauge > 0) {
      return true;
    }
  }
  return false;
}

Watchdog::Watchdog(Registry& reg, WatchdogConfig config)
    : registry_(&reg),
      config_(config),
      stalls_total_(&reg.counter("ascdg_watchdog_stalls_total")),
      last_progress_(std::chrono::steady_clock::now()) {
  health_.progress = progress_signal(registry_->snapshot());
  if (config_.start_thread) {
    thread_ = std::thread([this] { monitor_loop(); });
  }
}

Watchdog::~Watchdog() {
  {
    const std::scoped_lock lock(stop_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Watchdog::Health Watchdog::health() const {
  const std::scoped_lock lock(mutex_);
  return health_;
}

void Watchdog::poll_now() {
  if (config_.sample_resources) (void)update_resource_gauges(*registry_);
  const MetricsSnapshot snapshot = registry_->snapshot();
  const std::uint64_t progress = progress_signal(snapshot);
  const bool outstanding = work_outstanding(snapshot);
  const auto now = std::chrono::steady_clock::now();

  bool flipped_to_stalled = false;
  Health health_copy;
  {
    const std::scoped_lock lock(mutex_);
    ++health_.polls;
    if (progress != health_.progress) {
      health_.progress = progress;
      last_progress_ = now;
      if (health_.stalled) {
        health_.stalled = false;
        health_.reason.clear();
        if (config_.trace != nullptr) {
          config_.trace->emit(
              util::JsonObject{}.add("event", "stall_recovered")
                  .add("progress", progress));
        }
      }
    }
    const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - last_progress_);
    health_.ms_since_progress = static_cast<std::uint64_t>(idle.count());
    if (!health_.stalled && outstanding && idle >= config_.stall_after) {
      health_.stalled = true;
      health_.reason = "no progress for " + std::to_string(idle.count()) +
                       " ms with farm work outstanding (stall budget " +
                       std::to_string(config_.stall_after.count()) + " ms)";
      ++health_.stalls;
      flipped_to_stalled = true;
    }
    health_copy = health_;
  }

  if (flipped_to_stalled) {
    stalls_total_->inc();
    util::log_warn("watchdog: ", health_copy.reason);
    if (config_.trace != nullptr) {
      config_.trace->emit(util::JsonObject{}
                              .add("event", "stall")
                              .add("reason", health_copy.reason)
                              .add("progress", health_copy.progress)
                              .add("ms_since_progress",
                                   health_copy.ms_since_progress));
    }
    if (config_.dump_recorder_on_stall) {
      if (FlightRecorder* recorder = flight_recorder()) {
        util::log_warn("watchdog: dumping flight recorder (",
                       recorder->recorded(), " records seen)");
        recorder->dump_to_fd(2);
      }
    }
  }
}

void Watchdog::monitor_loop() {
  std::unique_lock lock(stop_mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, config_.poll_interval, [this] {
          return stopping_.load(std::memory_order_acquire);
        })) {
      return;
    }
    lock.unlock();
    poll_now();
    lock.lock();
  }
}

}  // namespace ascdg::obs
