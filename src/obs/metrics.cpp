#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace ascdg::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

void set_metrics_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

namespace detail {
std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}
}  // namespace detail

void Histogram::observe(std::uint64_t value) noexcept {
  if (!metrics_enabled()) return;
  const std::size_t bucket =
      value == 0 ? 0
                 : std::min<std::size_t>(
                       static_cast<std::size_t>(std::bit_width(value)) - 1,
                       kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double histogram_quantile(const MetricSample& sample, double q) noexcept {
  if (sample.kind != MetricKind::kHistogram || sample.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the rank-th smallest observation, 1-based.
  const double exact = q * static_cast<double>(sample.count);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;  // ceil
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
    const std::uint64_t in_bucket = sample.buckets[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
      const double hi = static_cast<double>(1ULL << (i + 1));
      const double frac = (static_cast<double>(rank - cumulative) - 0.5) /
                          static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return 0.0;  // unreachable when count matches the buckets
}

const MetricSample* MetricsSnapshot::find(
    std::string_view name, std::string_view labels) const noexcept {
  for (const auto& sample : samples) {
    if (sample.name == name && (labels.empty() || sample.labels == labels)) {
      return &sample;
    }
  }
  return nullptr;
}

namespace {
/// Renders labels as `key="value",...` — the canonical identity of a
/// series within its family, and exactly the Prometheus exposition
/// brace body. Labels are rendered in the order given. Values are
/// escaped per the exposition format (backslash, double quote,
/// newline), so a label value like `path="a\b"` can never break the
/// scrape output — and since the JSON exporter re-escapes the rendered
/// string, it stays valid there too.
std::string render_labels(std::initializer_list<Label> labels) {
  std::string out;
  for (const auto& label : labels) {
    if (!out.empty()) out += ',';
    out += label.key;
    out += "=\"";
    for (const char c : label.value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += '"';
  }
  return out;
}
}  // namespace

Registry::Entry& Registry::entry(std::string_view name,
                                 std::initializer_list<Label> labels,
                                 MetricKind kind) {
  std::string key(name);
  std::string rendered = render_labels(labels);
  if (!rendered.empty()) {
    key += '{';
    key += rendered;
    key += '}';
  }
  const std::scoped_lock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry fresh;
    fresh.name = std::string(name);
    fresh.labels = std::move(rendered);
    fresh.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        fresh.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        fresh.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        fresh.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::move(key), std::move(fresh)).first;
  } else if (it->second.kind != kind) {
    throw util::Error("metric '" + it->first + "' already registered as " +
                      std::string(to_string(it->second.kind)) +
                      ", requested as " + to_string(kind));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name,
                           std::initializer_list<Label> labels) {
  return *entry(name, labels, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name,
                       std::initializer_list<Label> labels) {
  return *entry(name, labels, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::initializer_list<Label> labels) {
  return *entry(name, labels, MetricKind::kHistogram).histogram;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  const std::scoped_lock lock(mutex_);
  snap.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.labels = entry.labels;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge = entry.gauge->value();
        sample.gauge_peak = entry.gauge->peak();
        break;
      case MetricKind::kHistogram: {
        sample.buckets.resize(Histogram::kBuckets);
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          sample.buckets[i] = entry.histogram->bucket(i);
        }
        sample.count = entry.histogram->count();
        sample.sum = entry.histogram->sum();
        break;
      }
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace ascdg::obs
