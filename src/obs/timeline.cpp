#include "obs/timeline.hpp"

#include <algorithm>
#include <fstream>
#include <string_view>
#include <system_error>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/resource.hpp"
#include "util/fs.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"

namespace ascdg::obs {

namespace {

/// Sum of every series in `snap` named `name` (counters may be split
/// into labeled families, e.g. one per SimFarm).
std::uint64_t sum_counters(const MetricsSnapshot& snap, std::string_view name) {
  std::uint64_t total = 0;
  for (const auto& sample : snap.samples) {
    if (sample.name == name && sample.kind == MetricKind::kCounter) {
      total += sample.counter;
    }
  }
  return total;
}

/// Mean over every gauge series named `name`; false when none exist.
bool mean_gauge(const MetricsSnapshot& snap, std::string_view name,
                std::int64_t& out) {
  std::int64_t total = 0;
  std::uint64_t n = 0;
  for (const auto& sample : snap.samples) {
    if (sample.name == name && sample.kind == MetricKind::kGauge) {
      total += sample.gauge;
      ++n;
    }
  }
  if (n == 0) return false;
  out = total / static_cast<std::int64_t>(n);
  return true;
}

/// Splits a full series key (`name` or `name{labels}`) for
/// MetricsSnapshot::find().
std::pair<std::string_view, std::string_view> split_series_key(
    std::string_view key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) return {key, {}};
  std::string_view labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {key.substr(0, brace), labels};
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesConfig config)
    : config_(std::move(config)),
      registry_(config_.registry ? config_.registry : &registry()),
      run_state_(config_.run_state ? config_.run_state : &run_state()) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  start_ns_ = util::monotonic_ns();
  open_sink();
  if (config_.start_thread) {
    thread_ = std::thread([this] { run(); });
  }
}

TimeSeriesRecorder::~TimeSeriesRecorder() { stop(); }

void TimeSeriesRecorder::open_sink() {
  if (config_.jsonl_path.empty()) return;
  try {
    std::error_code ec;
    const auto parent = config_.jsonl_path.parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    if (config_.append) {
      // Resume: seq continues after the lines already on disk, and the
      // file tail is preloaded so /timeseries shows one continuous
      // history across the restart. The (possibly stale) index is
      // ignored — the file itself is the source of truth.
      std::ifstream in(config_.jsonl_path);
      std::vector<std::string> tail;
      std::uint64_t lines = 0;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        ++lines;
        tail.push_back(std::move(line));
        if (tail.size() > config_.ring_capacity) {
          tail.erase(tail.begin());
        }
      }
      seq_ = lines;
      if (lines >= config_.ring_capacity) {
        // Place each absolute line index j at slot j % capacity so the
        // wrap arithmetic stays uniform with live sampling.
        ring_.resize(config_.ring_capacity);
        std::uint64_t j = lines - tail.size();
        for (auto& kept : tail) {
          ring_[j % config_.ring_capacity] = std::move(kept);
          ++j;
        }
      } else {
        ring_ = std::move(tail);
      }
    }
    const auto mode = config_.append ? std::ios::app : std::ios::trunc;
    sink_.open(config_.jsonl_path, std::ios::out | mode);
    if (!sink_) sink_failed_ = true;
  } catch (const std::exception& e) {
    util::log_warn("timeline: telemetry sink unavailable (",
                   config_.jsonl_path.string(), "): ", e.what());
    sink_failed_ = true;
  }
}

void TimeSeriesRecorder::run() {
  std::unique_lock lock(stop_mutex_);
  while (!stopping_) {
    stop_cv_.wait_for(lock, config_.sample_interval,
                      [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void TimeSeriesRecorder::sample_now() {
  const std::scoped_lock lock(mutex_);
  sample_locked();
}

void TimeSeriesRecorder::stop() {
  {
    const std::scoped_lock lock(stop_mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // Final sample: even a run shorter than one interval records its end
  // state, and the index is marked complete for offline readers.
  const std::scoped_lock lock(mutex_);
  sample_locked();
  write_index_locked(/*final=*/true);
  if (sink_.is_open()) sink_.close();
}

std::string TimeSeriesRecorder::render_sample_locked() {
  const MetricsSnapshot snap = registry_->snapshot();
  const RunState::Snapshot run = run_state_->snapshot();
  const std::uint64_t t_ms = (util::monotonic_ns() - start_ns_) / 1'000'000u;
  const std::uint64_t sims = sum_counters(snap, "ascdg_farm_simulations_total");

  util::JsonObject obj;
  obj.add("seq", seq_);
  obj.add("t_ms", t_ms);
  obj.add("phase", run.current_phase());
  obj.add("sims", sims);
  double sims_per_sec = 0.0;
  if (have_prev_ && t_ms > prev_t_ms_ && sims >= prev_sims_) {
    sims_per_sec = static_cast<double>(sims - prev_sims_) * 1000.0 /
                   static_cast<double>(t_ms - prev_t_ms_);
  }
  obj.add("sims_per_sec", sims_per_sec);
  prev_t_ms_ = t_ms;
  prev_sims_ = sims;
  have_prev_ = true;

  if (run.opt_started) {
    obj.add("opt_iteration", run.opt_iteration);
    obj.add("opt_best_value", run.opt_best_value);
  }
  if (run.coverage_known) {
    obj.add("targets_hit", run.targets_hit);
    obj.add("targets_remaining", run.targets_remaining);
  }

  const std::uint64_t cache_hits =
      sum_counters(snap, "ascdg_eval_cache_hits_total");
  const std::uint64_t cache_misses =
      sum_counters(snap, "ascdg_eval_cache_misses_total");
  obj.add("eval_cache_hits", cache_hits);
  obj.add("eval_cache_misses", cache_misses);
  const std::uint64_t lookups = cache_hits + cache_misses;
  obj.add("eval_cache_hit_rate",
          lookups == 0
              ? 0.0
              : static_cast<double>(cache_hits) / static_cast<double>(lookups));

  std::int64_t busy_ppm = 0;
  if (mean_gauge(snap, "ascdg_farm_worker_busy_fraction", busy_ppm)) {
    obj.add("worker_busy_ppm", busy_ppm);
  }

  if (config_.sample_resources) {
    const ResourceUsage usage = read_resource_usage();
    if (usage.rss_available) {
      obj.add("rss_bytes", usage.rss_bytes);
      obj.add("vm_bytes", usage.vm_bytes);
    }
    obj.add("max_rss_bytes", usage.max_rss_bytes);
    obj.add("cpu_user_ms", usage.user_cpu_us / 1000u);
    obj.add("cpu_system_ms", usage.system_cpu_us / 1000u);
  }

  if (!config_.extra_metrics.empty()) {
    util::JsonObject extras;
    for (const std::string& key : config_.extra_metrics) {
      const auto [name, labels] = split_series_key(key);
      const MetricSample* sample = snap.find(name, labels);
      if (sample == nullptr) continue;
      switch (sample->kind) {
        case MetricKind::kCounter:
          extras.add(key, sample->counter);
          break;
        case MetricKind::kGauge:
          extras.add(key, sample->gauge);
          break;
        case MetricKind::kHistogram:
          extras.add(key, sample->count);
          break;
      }
    }
    if (!extras.empty()) obj.add_raw("extras", extras.str());
  }
  return obj.str();
}

void TimeSeriesRecorder::sample_locked() {
  std::string line = render_sample_locked();
  if (config_.mirror_to_recorder) {
    if (FlightRecorder* recorder = flight_recorder()) {
      recorder->record(line);
    }
  }
  if (sink_.is_open() && !sink_failed_) {
    try {
      sink_ << line << '\n';
      sink_.flush();
      if (!sink_) sink_failed_ = true;
    } catch (const std::exception&) {
      sink_failed_ = true;
    }
  }
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(line));
  } else {
    ring_[seq_ % config_.ring_capacity] = std::move(line);
  }
  ++seq_;
  write_index_locked(/*final=*/false);
}

void TimeSeriesRecorder::write_index_locked(bool final) {
  if (config_.index_path.empty() || index_failed_) return;
  util::JsonObject index;
  index.add("schema", kTimeSeriesSchema);
  index.add("interval_ms",
            static_cast<std::uint64_t>(config_.sample_interval.count()));
  index.add("samples", seq_);
  index.add("file", config_.jsonl_path.filename().string());
  index.add("final", final);
  try {
    // util::atomic_write_file directly (not the flow-layer crash-hook
    // wrapper): telemetry must not shift ASCDG_CRASH_AFTER_WRITES
    // counts in the durability tests. Injected failures
    // (ASCDG_FAIL_POINTS) land here too; telemetry absorbs them.
    util::atomic_write_file(config_.index_path, index.str() + "\n");
  } catch (const std::exception& e) {
    util::log_warn("timeline: index write failed (",
                   config_.index_path.string(), "): ", e.what());
    index_failed_ = true;
  }
}

std::vector<std::string> TimeSeriesRecorder::ring() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  const std::size_t n = ring_.size();
  out.reserve(n);
  const std::size_t start =
      (seq_ >= config_.ring_capacity && n != 0)
          ? static_cast<std::size_t>(seq_ % config_.ring_capacity)
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % n]);
  }
  return out;
}

std::uint64_t TimeSeriesRecorder::samples_taken() const {
  const std::scoped_lock lock(mutex_);
  return seq_;
}

bool TimeSeriesRecorder::writing_file() const {
  const std::scoped_lock lock(mutex_);
  return sink_.is_open() && !sink_failed_;
}

std::string TimeSeriesRecorder::to_json() const {
  const std::scoped_lock lock(mutex_);
  std::string body = "{\"schema\":\"";
  body += kTimeSeriesSchema;
  body += "\",\"interval_ms\":";
  body += std::to_string(config_.sample_interval.count());
  body += ",\"samples\":";
  body += std::to_string(seq_);
  body += ",\"ring\":[";
  const std::size_t n = ring_.size();
  const std::size_t start =
      (seq_ >= config_.ring_capacity && n != 0)
          ? static_cast<std::size_t>(seq_ % config_.ring_capacity)
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) body += ',';
    body += ring_[(start + i) % n];
  }
  body += "]}";
  return body;
}

}  // namespace ascdg::obs
