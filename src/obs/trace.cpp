#include "obs/trace.hpp"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ascdg::obs {

namespace {
/// Innermost live span id on this thread; parents new spans and log
/// lines (via util::set_log_context).
thread_local std::uint64_t tls_current_span = 0;
}  // namespace

Span::Span(Tracer* tracer, std::string_view name)
    : tracer_(tracer),
      name_(name),
      id_(tracer->next_span_id_.fetch_add(1, std::memory_order_relaxed)),
      parent_(tls_current_span),
      start_ns_(util::monotonic_ns()) {
  tls_current_span = id_;
  util::set_log_context(id_);
}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      id_(other.id_),
      parent_(other.parent_),
      start_ns_(other.start_ns_),
      fields_(std::move(other.fields_)) {}

Span::~Span() { end(); }

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  const std::uint64_t end_ns = util::monotonic_ns();
  // Restore the parent as this thread's context. Spans end in LIFO
  // order on their owning thread, so the innermost one is ours.
  tls_current_span = parent_;
  util::set_log_context(parent_);
  util::JsonObject event;
  event.add("event", "span")
      .add("span", name_)
      .add("span_id", id_)
      .add("parent_id", parent_)
      .add("start_us", start_ns_ / 1000)
      .add("dur_us", (end_ns - start_ns_) / 1000)
      .merge(fields_);
  tracer->emit(event);
}

Tracer::Tracer(const std::filesystem::path& path)
    : owned_(path, std::ios::trunc), os_(&owned_) {
  if (!owned_) {
    throw util::Error("cannot open trace file '" + path.string() +
                      "' for writing");
  }
}

Tracer::Tracer(std::ostream& os) : os_(&os) {}

void Tracer::emit(const util::JsonObject& object) {
  const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  const std::scoped_lock lock(mutex_);
  const std::size_t seq = lines_.fetch_add(1, std::memory_order_relaxed);
  util::JsonObject stamped;
  stamped.add("seq", seq).add("ts_ms", static_cast<std::int64_t>(ts_ms));
  // Splice the caller's fields after the stamps: "{...stamps...}" +
  // "{...fields...}" -> one flat object.
  std::string line = stamped.str();
  const std::string body = object.str();
  if (body.size() > 2) {  // non-empty object
    line.pop_back();
    line += ',';
    line.append(body.begin() + 1, body.end());
  }
  if (recorder_ != nullptr) recorder_->record(line);
  if (os_ != nullptr) {
    *os_ << line << '\n';
    os_->flush();
    if (!*os_) throw util::Error("failed writing trace line");
  }
}

Span Tracer::span(std::string_view name) { return Span(this, name); }

Span make_span(Tracer* tracer, std::string_view name) {
  if (tracer == nullptr) return Span();
  return tracer->span(name);
}

}  // namespace ascdg::obs
