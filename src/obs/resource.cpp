#include "obs/resource.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace ascdg::obs {

namespace {

std::uint64_t timeval_us(const timeval& tv) noexcept {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000ULL +
         static_cast<std::uint64_t>(tv.tv_usec);
}

}  // namespace

ResourceUsage read_resource_usage() noexcept {
  return read_resource_usage_at("/proc/self/statm");
}

ResourceUsage read_resource_usage_at(const char* statm_path) noexcept {
  ResourceUsage usage;

  rusage ru = {};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.user_cpu_us = timeval_us(ru.ru_utime);
    usage.system_cpu_us = timeval_us(ru.ru_stime);
    // ru_maxrss is kilobytes on Linux.
    usage.max_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ULL;
    usage.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    usage.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    usage.vol_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    usage.invol_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  }

  // /proc/self/statm: size resident shared text lib data dt, in pages.
  if (std::FILE* statm = std::fopen(statm_path, "r")) {
    unsigned long long vm_pages = 0;
    unsigned long long rss_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &vm_pages, &rss_pages) == 2) {
      const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
      usage.vm_bytes = vm_pages * page;
      usage.rss_bytes = rss_pages * page;
      usage.rss_available = true;
    }
    std::fclose(statm);
  }
  return usage;
}

ResourceUsage update_resource_gauges(Registry& reg) {
  const ResourceUsage usage = read_resource_usage();
  update_resource_gauges(reg, usage);
  return usage;
}

void update_resource_gauges(Registry& reg, const ResourceUsage& usage) {
  if (usage.rss_available) {
    reg.gauge("ascdg_proc_rss_bytes")
        .set(static_cast<std::int64_t>(usage.rss_bytes));
    reg.gauge("ascdg_proc_vm_bytes")
        .set(static_cast<std::int64_t>(usage.vm_bytes));
    reg.histogram("ascdg_proc_rss_sample_bytes").observe(usage.rss_bytes);
  }
  reg.gauge("ascdg_proc_max_rss_bytes")
      .set(static_cast<std::int64_t>(usage.max_rss_bytes));
  reg.gauge("ascdg_proc_cpu_user_ms")
      .set(static_cast<std::int64_t>(usage.user_cpu_us / 1000));
  reg.gauge("ascdg_proc_cpu_system_ms")
      .set(static_cast<std::int64_t>(usage.system_cpu_us / 1000));
  reg.gauge("ascdg_proc_major_faults")
      .set(static_cast<std::int64_t>(usage.major_faults));
  reg.gauge("ascdg_proc_ctx_switches_involuntary")
      .set(static_cast<std::int64_t>(usage.invol_ctx_switches));
}

void update_phase_resource_gauges(Registry& reg, std::string_view phase,
                                  const ResourceUsage& start,
                                  const ResourceUsage& end) {
  const std::uint64_t cpu_ms =
      end.cpu_us() >= start.cpu_us() ? (end.cpu_us() - start.cpu_us()) / 1000
                                     : 0;
  reg.gauge("ascdg_phase_cpu_ms", {{"phase", phase}})
      .set(static_cast<std::int64_t>(cpu_ms));
  if (end.rss_available) {
    reg.gauge("ascdg_phase_rss_bytes", {{"phase", phase}})
        .set(static_cast<std::int64_t>(end.rss_bytes));
  }
}

}  // namespace ascdg::obs
