#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/run_state.hpp"
#include "obs/timeline.hpp"
#include "obs/watchdog.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"

namespace ascdg::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 4096;
constexpr int kPollTimeoutMs = 200;
constexpr int kClientTimeoutMs = 2000;

const char* reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Internal Server Error";
}

std::string make_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' +
                    reason_phrase(status) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string json_response(int status, const util::JsonObject& object) {
  return make_response(status, "application/json", object.str() + "\n");
}

using Fp = util::FailurePoint;

/// accept(2) with EINTR retry: a signal landing on the serve thread
/// must not drop a pending connection. The FailurePoint simulates a
/// failing accept for the fault tests.
int accept_retry(int listen_fd) noexcept {
  for (;;) {
    int client = -1;
    if (const int e = Fp::check(Fp::Id::kHttpAccept); e != 0) {
      errno = e;
    } else {
      client = ::accept(listen_fd, nullptr, nullptr);
    }
    if (client >= 0 || errno != EINTR) return client;
  }
}

/// recv(2) that retries EINTR but surfaces everything else — in
/// particular EAGAIN/EWOULDBLOCK from SO_RCVTIMEO, which means the
/// client stalled and the connection should be abandoned, not retried.
ssize_t recv_retry(int fd, char* buffer, std::size_t size) noexcept {
  for (;;) {
    ssize_t n = -1;
    if (const int e = Fp::check(Fp::Id::kHttpRecv); e != 0) {
      errno = e;
    } else {
      n = ::recv(fd, buffer, size, 0);
    }
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t send_retry(int fd, const char* data, std::size_t size) noexcept {
  for (;;) {
    ssize_t n = -1;
    if (const int e = Fp::check(Fp::Id::kHttpSend); e != 0) {
      errno = e;
    } else {
      n = ::send(fd, data, size, MSG_NOSIGNAL);
    }
    if (n >= 0 || errno != EINTR) return n;
  }
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig config)
    : config_(config), started_(std::chrono::steady_clock::now()) {
  if (config_.registry == nullptr) config_.registry = &registry();
  if (config_.run_state == nullptr) config_.run_state = &run_state();
  requests_total_ =
      &config_.registry->counter("ascdg_http_requests_total");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw util::Error("introspection server: socket() failed: " +
                      std::string(std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error("introspection server: cannot listen on 127.0.0.1:" +
                      std::to_string(config_.port) + ": " + detail);
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  thread_ = std::thread([this] { serve_loop(); });
}

HttpServer::~HttpServer() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string HttpServer::handle(std::string_view method,
                               std::string_view path) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_total_->inc();

  // Ignore any query string: /metrics?x=y scrapes the same as /metrics.
  if (const auto query = path.find('?'); query != std::string_view::npos) {
    path = path.substr(0, query);
  }

  if (method != "GET") {
    return make_response(
        405, "application/json",
        util::JsonObject{}.add("error", "only GET is supported").str() + "\n");
  }

  if (path == "/metrics") {
    return make_response(200, "text/plain; version=0.0.4",
                         to_prometheus(config_.registry->snapshot()));
  }

  if (path == "/metrics.json") {
    std::ostringstream body;
    write_json(body, config_.registry->snapshot());
    return make_response(200, "application/json", body.str());
  }

  if (path == "/healthz") {
    const auto uptime_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count();
    util::JsonObject body;
    body.add("schema", "ascdg-healthz-v1");
    if (config_.watchdog == nullptr) {
      body.add("status", "ok").add("watchdog", false);
      body.add("uptime_ms", uptime_ms);
      return json_response(200, body);
    }
    const Watchdog::Health health = config_.watchdog->health();
    body.add("status", health.stalled ? "degraded" : "ok")
        .add("watchdog", true)
        .add("reason", health.reason)
        .add("progress", health.progress)
        .add("ms_since_progress", health.ms_since_progress)
        .add("stall_budget_ms",
             static_cast<std::int64_t>(
                 config_.watchdog->config().stall_after.count()))
        .add("stalls", health.stalls)
        .add("polls", health.polls)
        .add("uptime_ms", uptime_ms);
    return json_response(health.stalled ? 503 : 200, body);
  }

  if (path == "/runz") {
    const RunState::Snapshot run = config_.run_state->snapshot();
    std::string stack = "[";
    for (std::size_t i = 0; i < run.phase_stack.size(); ++i) {
      if (i != 0) stack += ',';
      stack += '"' + util::json_escape(run.phase_stack[i]) + '"';
    }
    stack += ']';
    util::JsonObject body;
    body.add("schema", "ascdg-runz-v1")
        .add("phase", run.current_phase())
        .add_raw("phase_stack", stack)
        .add("seed_template", run.seed_template)
        .add("backend", run.backend)
        .add("resumed", !run.resumed_from.empty())
        .add("resumed_from", run.resumed_from)
        .add("opt_started", run.opt_started)
        .add("opt_iteration", run.opt_iteration)
        .add("opt_best_value", run.opt_best_value)
        .add("coverage_known", run.coverage_known)
        .add("targets_hit", run.targets_hit)
        .add("targets_remaining", run.targets_remaining)
        .add("updates", run.updates);
    return json_response(200, body);
  }

  if (path == "/timeseries") {
    if (config_.timeline == nullptr) {
      return json_response(
          404, util::JsonObject{}.add(
                   "error", "no telemetry recorder (run with --timeline)"));
    }
    // to_json() splices the recorder's rendered ring lines verbatim —
    // the scrape is bit-identical to the telemetry.jsonl tail.
    return make_response(200, "application/json",
                         config_.timeline->to_json() + "\n");
  }

  if (path == "/flightrecorder") {
    if (config_.recorder == nullptr) {
      return json_response(
          404, util::JsonObject{}.add(
                   "error", "no flight recorder (run with --flight-recorder)"));
    }
    const std::vector<std::string> records = config_.recorder->dump();
    // Records are JSONL trace lines, but long ones may have been
    // truncated at the ring's byte budget — embed them as strings so
    // the dump itself is always valid JSON.
    std::string array = "[";
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (i != 0) array += ',';
      array += '"' + util::json_escape(records[i]) + '"';
    }
    array += ']';
    util::JsonObject body;
    body.add("schema", "ascdg-flightrecorder-v1")
        .add("capacity", config_.recorder->capacity())
        .add("recorded", config_.recorder->recorded())
        .add_raw("records", array);
    return json_response(200, body);
  }

  return json_response(
      404,
      util::JsonObject{}
          .add("error", "unknown path")
          .add("endpoints",
               "/metrics /metrics.json /healthz /runz /flightrecorder "
               "/timeseries"));
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int client = accept_retry(listen_fd_);
    if (client < 0) continue;

    // Bounded read of the request head; a client that trickles bytes
    // only delays itself (per-connection timeout), never the flow.
    timeval timeout = {};
    timeout.tv_sec = kClientTimeoutMs / 1000;
    timeout.tv_usec = (kClientTimeoutMs % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

    std::string request;
    char buffer[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
      const ssize_t n = recv_retry(client, buffer, sizeof buffer);
      if (n <= 0) break;
      request.append(buffer, static_cast<std::size_t>(n));
    }

    std::string response;
    const std::size_t line_end = request.find_first_of("\r\n");
    std::istringstream line(request.substr(0, line_end));
    std::string method;
    std::string path;
    if (line >> method >> path) {
      response = handle(method, path);
    } else {
      response = make_response(
          400, "application/json",
          util::JsonObject{}.add("error", "malformed request line").str() +
              "\n");
    }

    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n = send_retry(client, response.data() + sent,
                                   response.size() - sent);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
  }
}

}  // namespace ascdg::obs
