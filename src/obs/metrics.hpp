// Process-wide metrics registry.
//
// The paper judges the whole system by convergence behavior under
// simulation noise, so every subsystem (farm, optimizer, TAC, coverage
// repository) keeps first-class books here: named counters, gauges and
// log2 histograms, optionally split into labeled families (for example
// one `ascdg_farm_simulations_total{farm="3"}` series per SimFarm).
//
// Hot-path contract: registration (registry().counter(...)) is cold and
// takes a mutex once; the returned handle is a stable reference whose
// mutators are wait-free relaxed atomics. Counters shard their cell
// across cache lines by thread so concurrent writers do not bounce a
// single line. Readers call Registry::snapshot(), which merges shards
// into a deterministic (sorted-by-key) point-in-time copy — consistent
// enough for reporting, not a linearizable cut.
//
// `set_metrics_enabled(false)` turns every mutator into a cheap no-op
// (one relaxed load) so benchmarks can measure instrumentation
// overhead; registration and snapshots still work while disabled.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ascdg::obs {

/// Global instrumentation switch (default on). Disabling makes counter,
/// gauge, and histogram mutators no-ops; it does not clear prior values.
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

namespace detail {
/// Stable small shard index for the calling thread.
[[nodiscard]] std::size_t thread_shard() noexcept;
}  // namespace detail

/// Monotone event count. add() is wait-free; the cell is sharded across
/// cache lines so writer threads do not contend.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::uint64_t n) noexcept {
    if (!metrics_enabled()) return;
    shards_[detail::thread_shard()].cell.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Point-in-time sum over the shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.cell.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> cell{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Signed instantaneous value (queue depths, in-flight work) with a
/// high-watermark. One atomic cell: adds/subtracts from many threads
/// stay consistent, which is the whole point (see the SimFarm
/// queue-depth gauge regression test).
class Gauge {
 public:
  void add(std::int64_t delta) noexcept {
    if (!metrics_enabled()) return;
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) {
      std::int64_t seen = max_.load(std::memory_order_relaxed);
      while (now > seen && !max_.compare_exchange_weak(
                               seen, now, std::memory_order_relaxed)) {
      }
    }
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  void set(std::int64_t value) noexcept {
    if (!metrics_enabled()) return;
    value_.store(value, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Largest value ever set/reached via add() (the peak watermark).
  [[nodiscard]] std::int64_t peak() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Log2 histogram: bucket i counts observations v with
/// 2^i <= v < 2^(i+1) (bucket 0 also absorbs v == 0, the last bucket
/// the tail). Buckets are relaxed atomics — not sharded, since one
/// fetch_add per chunk-scale observation is already far off the
/// simulate() hot path.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 26;

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// One key=value metric label.
struct Label {
  std::string_view key;
  std::string_view value;
};

/// Point-in-time copy of one metric series.
struct MetricSample {
  std::string name;    ///< family name, e.g. "ascdg_farm_simulations_total"
  std::string labels;  ///< rendered `key="value",...` (empty when unlabeled)
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;                ///< kCounter
  std::int64_t gauge = 0;                   ///< kGauge
  std::int64_t gauge_peak = 0;              ///< kGauge watermark
  std::vector<std::uint64_t> buckets;       ///< kHistogram (log2)
  std::uint64_t count = 0;                  ///< kHistogram observations
  std::uint64_t sum = 0;                    ///< kHistogram summed values
};

/// Deterministic snapshot: samples sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// First sample matching name (and labels, when given); nullptr when
  /// absent. Linear scan — snapshots are report-sized.
  [[nodiscard]] const MetricSample* find(
      std::string_view name, std::string_view labels = {}) const noexcept;
};

/// Estimated q-quantile (q in [0, 1]) of a histogram sample via linear
/// interpolation inside the containing log2 bucket: bucket 0 spans
/// [0, 2), bucket i spans [2^i, 2^(i+1)), and the tail bucket is
/// clamped to its nominal upper edge. Uses the nearest-rank convention
/// (rank = ceil(q * count)); returns 0 for an empty histogram or a
/// non-histogram sample. Exact for single-bucket distributions, within
/// one bucket width otherwise — plenty for the latency/batch-size
/// summaries the exporters and the report print.
[[nodiscard]] double histogram_quantile(const MetricSample& sample,
                                        double q) noexcept;

/// Owns the metric handles. Handles returned by counter()/gauge()/
/// histogram() are valid for the registry's lifetime and stable across
/// further registrations. Re-registering the same (name, labels) returns
/// the same handle; registering it as a different kind throws
/// util::Error.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::initializer_list<Label> labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             std::initializer_list<Label> labels = {});
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::initializer_list<Label> labels = {});

  /// Merged, sorted, point-in-time copy of every registered series.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Number of registered series (for tests).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, std::initializer_list<Label> labels,
               MetricKind kind);

  mutable std::mutex mutex_;
  /// Keyed by `name{labels}` — map order gives snapshot determinism.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// The process-wide default registry every subsystem instruments into.
[[nodiscard]] Registry& registry();

}  // namespace ascdg::obs
