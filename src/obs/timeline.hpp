// Historical layer of the observability stack: a periodic sampler that
// turns the instantaneous metrics registry into a durable per-session
// time series, so convergence (coverage vs. simulations) and resource
// trajectories survive the run that produced them.
//
// Each sample is rendered ONCE into a JSONL line and that same string
// is (a) pushed into a bounded in-memory ring served at /timeseries,
// (b) appended + flushed to `telemetry.jsonl` in the session directory,
// and (c) mirrored into the process flight recorder so a crash dump
// carries the tail of the timeline. Because ring and file share the
// rendered bytes, the live endpoint and the on-disk history are
// bit-identical over the retained window — `ascdg inspect` replays the
// file and sees exactly what a live scrape saw.
//
// Durability split follows the session layer's convention: samples are
// plain appends (losing the last partial line in a crash is fine), the
// small `telemetry.index.json` summary is written atomically. Index
// writes go through util::atomic_write_file directly — NOT the flow
// layer's crash-hook wrapper — so telemetry never shifts
// ASCDG_CRASH_AFTER_WRITES kill counts in durability tests.
//
// The sampler thread follows the Watchdog idiom: condition-variable
// wait with a stopping flag, and `start_thread = false` for tests that
// drive sample_now() manually. All file IO is best-effort: any
// filesystem error degrades the recorder to memory-only rather than
// throwing into the flow (a throw from the sampler thread would
// terminate the process).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/run_state.hpp"

namespace ascdg::obs {

struct TimeSeriesConfig {
  /// Wall-clock spacing between samples.
  std::chrono::milliseconds sample_interval{1000};
  /// Samples retained in memory (and served at /timeseries).
  std::size_t ring_capacity = 512;
  /// false = no sampler thread; tests call sample_now() themselves.
  bool start_thread = true;
  /// true = continue an existing telemetry.jsonl (session resume):
  /// seq picks up after the last line already in the file.
  bool append = false;
  /// Registry to sample; nullptr = the process-wide obs::registry().
  Registry* registry = nullptr;
  /// Run state for optimizer/coverage fields; nullptr = obs::run_state().
  RunState* run_state = nullptr;
  /// Append-only sample sink; empty = memory-only recorder.
  std::filesystem::path jsonl_path;
  /// Atomically rewritten summary; empty = no index file.
  std::filesystem::path index_path;
  /// Extra registry series sampled verbatim into each line's "extras"
  /// object, keyed by full series name (`name` or `name{labels}`).
  std::vector<std::string> extra_metrics;
  /// Sample getrusage / /proc/self/statm into each line.
  bool sample_resources = true;
  /// Mirror each rendered line into the process flight recorder.
  bool mirror_to_recorder = true;
};

/// Schema identifier stamped into the index file and /timeseries body.
inline constexpr const char* kTimeSeriesSchema = "ascdg-timeseries-v1";

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(TimeSeriesConfig config);
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;
  /// Stops the sampler, takes a final sample, and writes the final
  /// index (`"final": true`).
  ~TimeSeriesRecorder();

  /// Takes one sample immediately (thread-safe; the sampler thread and
  /// manual callers serialize on one mutex).
  void sample_now();

  /// Idempotent shutdown: joins the sampler thread, takes one last
  /// sample (so even a sub-interval run records its end state), and
  /// finalizes the index.
  void stop();

  /// Oldest -> newest copy of the retained rendered lines.
  [[nodiscard]] std::vector<std::string> ring() const;

  /// Total samples taken over the recorder's lifetime (>= ring().size()
  /// once the ring wrapped); includes lines inherited via append mode.
  [[nodiscard]] std::uint64_t samples_taken() const;

  /// Whether file output is (still) active — false for memory-only
  /// configs and after an IO error demoted the recorder.
  [[nodiscard]] bool writing_file() const;

  /// The /timeseries response body: schema envelope + the ring verbatim.
  [[nodiscard]] std::string to_json() const;

 private:
  void run();                      // sampler-thread loop
  void sample_locked();            // one sample; mutex_ held
  [[nodiscard]] std::string render_sample_locked();
  void write_index_locked(bool final);
  void open_sink();                // ctor-time file / seq setup

  TimeSeriesConfig config_;
  Registry* registry_;             // never null after ctor
  RunState* run_state_;            // never null after ctor

  mutable std::mutex mutex_;
  std::vector<std::string> ring_;  // ring_[seq % capacity]
  std::uint64_t seq_ = 0;          // next sample's sequence number
  std::ofstream sink_;
  bool sink_failed_ = false;
  bool index_failed_ = false;
  std::uint64_t start_ns_ = 0;     // monotonic epoch for t_ms
  // previous sample's (t_ms, sims) for the derived sims/sec.
  std::uint64_t prev_t_ms_ = 0;
  std::uint64_t prev_sims_ = 0;
  bool have_prev_ = false;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace ascdg::obs
