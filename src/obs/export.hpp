// Snapshot exporters: Prometheus text exposition and a JSON writer
// built on util/jsonl.
//
// Prometheus format (text exposition v0.0.4, the subset we need):
//
//   # TYPE ascdg_farm_simulations_total counter
//   ascdg_farm_simulations_total{farm="0"} 258
//   # TYPE ascdg_farm_chunk_latency_us histogram
//   ascdg_farm_chunk_latency_us_bucket{farm="0",le="2"} 1
//   ...
//   ascdg_farm_chunk_latency_us_bucket{farm="0",le="+Inf"} 5
//   ascdg_farm_chunk_latency_us_sum{farm="0"} 1234
//   ascdg_farm_chunk_latency_us_count{farm="0"} 5
//
// Log2 bucket i ([2^i, 2^(i+1)) — bucket 0 absorbs 0) is exposed with
// the exclusive upper bound 2^(i+1) as its `le`, cumulatively, as the
// format requires. Gauges additionally expose their high-watermark as a
// sibling `<name>_peak` gauge.
#pragma once

#include <filesystem>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace ascdg::obs {

/// Renders the snapshot in Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Writes the snapshot as one JSON document:
///   {"schema":"ascdg-metrics-v1","metrics":[{...}, ...]}
/// where each metric carries name/labels/kind plus its kind's values
/// (counter: value; gauge: value+peak; histogram: buckets/count/sum).
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// File overload; truncates `path`. Throws util::Error on IO failure.
void write_json(const std::filesystem::path& path,
                const MetricsSnapshot& snapshot);

/// One metric as a flat JSON object (exposed for composition: the
/// report module splices these into its run-metrics document).
[[nodiscard]] std::string to_json_object(const MetricSample& sample);

}  // namespace ascdg::obs
