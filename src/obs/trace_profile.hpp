// Offline aggregator over the span tracer's JSONL: folds the flat
// stream of `{"event":"span",...}` records back into the call tree and
// reduces it to a per-name-path profile — counts, total time, self
// time (total minus direct children), and p50/p95/p99 per node — the
// per-phase/per-stage cost picture `ascdg inspect` prints.
//
// Span end-events are emitted child-before-parent (a Span writes its
// record when it ends), so the tree is reconstructed from
// span_id/parent_id after reading the whole file. Non-span lines
// (stage events, flow_end, log mirrors) are skipped; unparseable lines
// are counted, not fatal — a crashed run's trace tail may be truncated
// mid-line and the rest of the profile is still wanted.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ascdg::obs {

/// One aggregated profile node: all spans sharing the same name-path
/// (root span name / child span name / ...).
struct TraceProfileNode {
  std::string name;        ///< span name (last path element)
  std::size_t depth = 0;   ///< 0 = root
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;  ///< summed span durations
  std::uint64_t self_us = 0;   ///< total minus direct children's totals
  std::uint64_t p50_us = 0;    ///< duration quantiles (nearest-rank)
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::vector<TraceProfileNode> children;  ///< sorted by total_us desc
};

class TraceProfile {
 public:
  /// Aggregates every span record in `text` (one JSON object per line).
  [[nodiscard]] static TraceProfile from_text(std::string_view text);
  /// Reads and aggregates a trace JSONL file. Throws util::Error when
  /// the file cannot be opened; tolerates malformed lines inside it.
  [[nodiscard]] static TraceProfile from_jsonl(
      const std::filesystem::path& path);

  [[nodiscard]] const std::vector<TraceProfileNode>& roots() const noexcept {
    return roots_;
  }
  [[nodiscard]] std::uint64_t spans() const noexcept { return spans_; }
  [[nodiscard]] std::uint64_t skipped_lines() const noexcept {
    return skipped_lines_;
  }
  [[nodiscard]] bool empty() const noexcept { return roots_.empty(); }

  /// Total time across root spans (the wall-ish denominator for the
  /// rendered percentages).
  [[nodiscard]] std::uint64_t total_us() const noexcept;

  /// Indented tree, one node per line:
  ///   name  count  total  self  p50/p95/p99
  void render(std::ostream& os) const;

  /// Depth-first flattened copy (parents before children) — convenient
  /// for tests and for the --json rendering.
  [[nodiscard]] std::vector<TraceProfileNode> flatten() const;

 private:
  std::vector<TraceProfileNode> roots_;
  std::uint64_t spans_ = 0;
  std::uint64_t skipped_lines_ = 0;
};

}  // namespace ascdg::obs
