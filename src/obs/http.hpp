// Embedded live-introspection HTTP server.
//
// A production CDG service runs for hours under a regression farm's
// load; waiting for the post-run `--metrics` file to know whether it
// is healthy does not scale. This server is the standard scrape
// pattern with zero dependencies: one listener socket on 127.0.0.1,
// one poll-loop thread, HTTP/1.1 with Connection: close. Endpoints:
//
//   GET /metrics          Prometheus text exposition (obs::to_prometheus)
//   GET /metrics.json     ascdg-metrics-v1 JSON snapshot
//   GET /healthz          liveness + the watchdog's stalled/degraded
//                         verdict (200 ok / 503 degraded)
//   GET /runz             live flow state: phase span stack, optimizer
//                         iteration + best value, coverage progress
//   GET /flightrecorder   dump of the in-memory trace tail
//   GET /timeseries       ascdg-timeseries-v1 telemetry ring (the live
//                         tail of the session's telemetry.jsonl)
//
// Request handling is deliberately single-threaded and bounded (4 KiB
// request cap, per-connection timeout): a scrape every few seconds is
// the design load, and a slow or malicious client can only delay the
// next scrape, never the flow (the flow never blocks on this thread).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"

namespace ascdg::obs {

class FlightRecorder;
class RunState;
class TimeSeriesRecorder;
class Watchdog;

struct HttpServerConfig {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (read it back via HttpServer::port()).
  std::uint16_t port = 0;
  /// Registry served by /metrics + /metrics.json; nullptr selects the
  /// process-wide obs::registry().
  Registry* registry = nullptr;
  /// Health verdict source for /healthz; without one the endpoint
  /// reports "ok" with a `watchdog:false` marker.
  Watchdog* watchdog = nullptr;
  /// Trace tail source for /flightrecorder (404 when absent).
  FlightRecorder* recorder = nullptr;
  /// Live flow state for /runz; nullptr selects obs::run_state().
  RunState* run_state = nullptr;
  /// Telemetry ring for /timeseries (404 when absent).
  TimeSeriesRecorder* timeline = nullptr;
};

class HttpServer {
 public:
  /// Binds and starts serving; throws util::Error when the port cannot
  /// be bound.
  explicit HttpServer(HttpServerConfig config);

  /// Stops the poll loop and joins the serving thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the kernel's pick when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Renders the full HTTP response for one request line — the routing
  /// logic, exposed so tests can hit endpoints without a socket.
  [[nodiscard]] std::string handle(std::string_view method,
                                   std::string_view path);

 private:
  void serve_loop();

  HttpServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<bool> stopping_{false};
  Counter* requests_total_;
  std::thread thread_;
};

}  // namespace ascdg::obs
