#include "obs/export.hpp"

#include <array>
#include <charconv>
#include <fstream>

#include "util/error.hpp"
#include "util/jsonl.hpp"

namespace ascdg::obs {

namespace {

/// Shortest-round-trip double, matching the JSON builder's rendering.
std::string format_double(double value) {
  std::array<char, 32> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  (void)ec;
  return std::string(buf.data(), end);
}

void append_series(std::string& out, const MetricSample& sample,
                   std::string_view suffix, std::string_view extra_label,
                   std::uint64_t value) {
  out += sample.name;
  out += suffix;
  if (!sample.labels.empty() || !extra_label.empty()) {
    out += '{';
    out += sample.labels;
    if (!sample.labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& sample : snapshot.samples) {
    // One TYPE line per family; samples arrive sorted, so families are
    // contiguous.
    const std::string family =
        sample.name + '\0' + to_string(sample.kind);
    if (family != last_family) {
      out += "# TYPE ";
      out += sample.name;
      out += ' ';
      out += to_string(sample.kind);
      out += '\n';
      last_family = family;
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
        append_series(out, sample, "", "", sample.counter);
        break;
      case MetricKind::kGauge:
        out += sample.name;
        if (!sample.labels.empty()) {
          out += '{';
          out += sample.labels;
          out += '}';
        }
        out += ' ';
        out += std::to_string(sample.gauge);
        out += '\n';
        out += "# TYPE ";
        out += sample.name;
        out += "_peak gauge\n";
        out += sample.name;
        out += "_peak";
        if (!sample.labels.empty()) {
          out += '{';
          out += sample.labels;
          out += '}';
        }
        out += ' ';
        out += std::to_string(sample.gauge_peak);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          if (sample.buckets[i] == 0) continue;  // keep exposition compact
          cumulative += sample.buckets[i];
          const std::string le =
              "le=\"" + std::to_string(1ULL << (i + 1)) + '"';
          append_series(out, sample, "_bucket", le, cumulative);
        }
        append_series(out, sample, "_bucket", "le=\"+Inf\"", sample.count);
        append_series(out, sample, "_sum", "", sample.sum);
        append_series(out, sample, "_count", "", sample.count);
        // Estimated quantiles as sibling gauge families (the `_peak`
        // idiom): log2 buckets alone force every consumer to redo the
        // interpolation.
        for (const auto& [suffix, q] :
             {std::pair<const char*, double>{"_p50", 0.50},
              {"_p95", 0.95},
              {"_p99", 0.99}}) {
          out += "# TYPE ";
          out += sample.name;
          out += suffix;
          out += " gauge\n";
          out += sample.name;
          out += suffix;
          if (!sample.labels.empty()) {
            out += '{';
            out += sample.labels;
            out += '}';
          }
          out += ' ';
          out += format_double(histogram_quantile(sample, q));
          out += '\n';
        }
        break;
      }
    }
  }
  return out;
}

std::string to_json_object(const MetricSample& sample) {
  util::JsonObject object;
  object.add("name", sample.name)
      .add("labels", sample.labels)
      .add("kind", to_string(sample.kind));
  switch (sample.kind) {
    case MetricKind::kCounter:
      object.add("value", sample.counter);
      break;
    case MetricKind::kGauge:
      object.add("value", sample.gauge).add("peak", sample.gauge_peak);
      break;
    case MetricKind::kHistogram: {
      std::string buckets = "[";
      for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i != 0) buckets += ',';
        buckets += std::to_string(sample.buckets[i]);
      }
      buckets += ']';
      object.add_raw("buckets", buckets)
          .add("count", sample.count)
          .add("sum", sample.sum)
          .add("p50", histogram_quantile(sample, 0.50))
          .add("p95", histogram_quantile(sample, 0.95))
          .add("p99", histogram_quantile(sample, 0.99));
      break;
    }
  }
  return object.str();
}

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  std::string metrics = "[";
  for (std::size_t i = 0; i < snapshot.samples.size(); ++i) {
    if (i != 0) metrics += ',';
    metrics += to_json_object(snapshot.samples[i]);
  }
  metrics += ']';
  util::JsonObject document;
  document.add("schema", "ascdg-metrics-v1").add_raw("metrics", metrics);
  os << document.str() << '\n';
  if (!os) throw util::Error("failed writing metrics JSON");
}

void write_json(const std::filesystem::path& path,
                const MetricsSnapshot& snapshot) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw util::Error("cannot open metrics file '" + path.string() +
                      "' for writing");
  }
  write_json(os, snapshot);
}

}  // namespace ascdg::obs
