#include "obs/trace_profile.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/json.hpp"

namespace ascdg::obs {

namespace {

struct RawSpan {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t dur_us = 0;
};

/// Nearest-rank quantile over an already-sorted duration list.
std::uint64_t quantile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  if (index > sorted.size()) index = sorted.size();
  return sorted[index - 1];
}

/// Folds one sibling group (all span instances sharing a name at the
/// same tree position) into a profile node, recursing into their
/// children grouped by name.
TraceProfileNode fold_group(
    const std::string& name, const std::vector<std::size_t>& instances,
    std::size_t depth, const std::vector<RawSpan>& spans,
    const std::unordered_map<std::uint64_t, std::vector<std::size_t>>&
        children_of) {
  TraceProfileNode node;
  node.name = name;
  node.depth = depth;
  std::vector<std::uint64_t> durations;
  durations.reserve(instances.size());
  // std::map keys the child groups in name order while folding; the
  // final child order is by total_us (set below).
  std::map<std::string, std::vector<std::size_t>> child_groups;
  for (const std::size_t index : instances) {
    const RawSpan& span = spans[index];
    ++node.count;
    node.total_us += span.dur_us;
    durations.push_back(span.dur_us);
    const auto kids = children_of.find(span.id);
    if (kids != children_of.end()) {
      for (const std::size_t kid : kids->second) {
        child_groups[spans[kid].name].push_back(kid);
      }
    }
  }
  std::sort(durations.begin(), durations.end());
  node.p50_us = quantile(durations, 0.50);
  node.p95_us = quantile(durations, 0.95);
  node.p99_us = quantile(durations, 0.99);
  std::uint64_t children_total = 0;
  for (const auto& [child_name, child_instances] : child_groups) {
    node.children.push_back(
        fold_group(child_name, child_instances, depth + 1, spans, children_of));
    children_total += node.children.back().total_us;
  }
  // Clock skew between a parent and its children is possible in
  // principle; clamp instead of wrapping.
  node.self_us =
      node.total_us > children_total ? node.total_us - children_total : 0;
  std::sort(node.children.begin(), node.children.end(),
            [](const TraceProfileNode& a, const TraceProfileNode& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return node;
}

void flatten_into(const std::vector<TraceProfileNode>& nodes,
                  std::vector<TraceProfileNode>& out) {
  for (const TraceProfileNode& node : nodes) {
    TraceProfileNode copy = node;
    copy.children.clear();
    out.push_back(std::move(copy));
    flatten_into(node.children, out);
  }
}

void render_nodes(std::ostream& os, const std::vector<TraceProfileNode>& nodes,
                  std::uint64_t profile_total) {
  for (const TraceProfileNode& node : nodes) {
    const double pct =
        profile_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(node.total_us) /
                  static_cast<double>(profile_total);
    os << std::string(node.depth * 2, ' ') << node.name << "  n=" << node.count
       << "  total=" << node.total_us << "us (" << static_cast<int>(pct + 0.5)
       << "%)  self=" << node.self_us << "us  p50/p95/p99=" << node.p50_us
       << "/" << node.p95_us << "/" << node.p99_us << "us\n";
    render_nodes(os, node.children, profile_total);
  }
}

}  // namespace

TraceProfile TraceProfile::from_text(std::string_view text) {
  TraceProfile profile;
  std::vector<RawSpan> spans;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const util::JsonValue doc = util::json_parse(line);
      const util::JsonValue* event = doc.find("event");
      if (event == nullptr || !event->is_string() ||
          event->as_string() != "span") {
        continue;  // stage events, flow_end, log mirrors — not an error
      }
      RawSpan span;
      span.name = doc.at("span").as_string();
      span.id = doc.at("span_id").as_uint64();
      span.parent = doc.at("parent_id").as_uint64();
      span.dur_us = doc.at("dur_us").as_uint64();
      spans.push_back(std::move(span));
    } catch (const std::exception&) {
      ++profile.skipped_lines_;  // truncated crash tail, torn line, ...
    }
  }
  profile.spans_ = spans.size();

  std::unordered_set<std::uint64_t> known_ids;
  known_ids.reserve(spans.size());
  for (const RawSpan& span : spans) known_ids.insert(span.id);
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children_of;
  std::map<std::string, std::vector<std::size_t>> root_groups;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    // A parent id that never produced its own end record (parent still
    // open at crash time) makes the child an effective root.
    if (spans[i].parent != 0 && known_ids.contains(spans[i].parent)) {
      children_of[spans[i].parent].push_back(i);
    } else {
      root_groups[spans[i].name].push_back(i);
    }
  }
  for (const auto& [name, instances] : root_groups) {
    profile.roots_.push_back(fold_group(name, instances, 0, spans,
                                        children_of));
  }
  std::sort(profile.roots_.begin(), profile.roots_.end(),
            [](const TraceProfileNode& a, const TraceProfileNode& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return profile;
}

TraceProfile TraceProfile::from_jsonl(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::Error("trace profile: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

std::uint64_t TraceProfile::total_us() const noexcept {
  std::uint64_t total = 0;
  for (const TraceProfileNode& node : roots_) total += node.total_us;
  return total;
}

void TraceProfile::render(std::ostream& os) const {
  if (roots_.empty()) {
    os << "(no spans)\n";
    return;
  }
  render_nodes(os, roots_, total_us());
  if (skipped_lines_ != 0) {
    os << "(" << skipped_lines_ << " unparseable line(s) skipped)\n";
  }
}

std::vector<TraceProfileNode> TraceProfile::flatten() const {
  std::vector<TraceProfileNode> out;
  flatten_into(roots_, out);
  return out;
}

}  // namespace ascdg::obs
