#include "obs/flight_recorder.hpp"

#include <csignal>
#include <cstring>
#include <unistd.h>

#include <algorithm>

namespace ascdg::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::record(std::string_view line) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  // Mark the slot mid-write so readers skip it, copy, then publish.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  const std::uint32_t length =
      static_cast<std::uint32_t>(std::min(line.size(), kMaxLine));
  std::memcpy(slot.text, line.data(), length);
  slot.length = length;
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

bool FlightRecorder::read_slot(std::uint64_t ticket, char* out,
                               std::uint32_t& length) const noexcept {
  const Slot& slot = slots_[ticket % capacity_];
  const std::uint64_t expected = 2 * ticket + 2;
  if (slot.seq.load(std::memory_order_acquire) != expected) return false;
  const std::uint32_t n = std::min<std::uint32_t>(
      slot.length, static_cast<std::uint32_t>(kMaxLine));
  std::memcpy(out, slot.text, n);
  length = n;
  // Unchanged sequence across the copy means no writer touched the slot.
  return slot.seq.load(std::memory_order_acquire) == expected;
}

std::vector<std::string> FlightRecorder::dump() const {
  std::vector<std::string> out;
  const std::uint64_t head = next_.load(std::memory_order_acquire);
  const std::uint64_t first = head > capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(head - first));
  char buffer[kMaxLine];
  for (std::uint64_t ticket = first; ticket < head; ++ticket) {
    std::uint32_t length = 0;
    if (read_slot(ticket, buffer, length)) {
      out.emplace_back(buffer, length);
    }
  }
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const noexcept {
  // Signal-safe walk: no allocation, no locks, only write(2).
  const std::uint64_t head = next_.load(std::memory_order_acquire);
  const std::uint64_t first = head > capacity_ ? head - capacity_ : 0;
  char buffer[kMaxLine + 1];
  for (std::uint64_t ticket = first; ticket < head; ++ticket) {
    std::uint32_t length = 0;
    if (!read_slot(ticket, buffer, length)) continue;
    buffer[length] = '\n';
    std::size_t written = 0;
    while (written < length + 1u) {
      const ssize_t n = ::write(fd, buffer + written, length + 1u - written);
      if (n <= 0) return;
      written += static_cast<std::size_t>(n);
    }
  }
}

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

/// Fatal-signal handler: dump the recorder tail to stderr, then let the
/// default disposition terminate the process. Everything here is
/// async-signal-safe.
extern "C" void crash_dump_handler(int signum) {
  static const char kHeader[] =
      "\n=== ascdg flight recorder (fatal signal) ===\n";
  static const char kFooter[] = "=== end flight recorder ===\n";
  FlightRecorder* recorder = g_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    (void)!::write(2, kHeader, sizeof kHeader - 1);
    recorder->dump_to_fd(2);
    (void)!::write(2, kFooter, sizeof kFooter - 1);
  }
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

}  // namespace

void set_flight_recorder(FlightRecorder* recorder) noexcept {
  g_recorder.store(recorder, std::memory_order_release);
}

FlightRecorder* flight_recorder() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

void install_crash_dump() noexcept {
  static const int kSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL};
  for (const int signum : kSignals) {
    struct sigaction action = {};
    action.sa_handler = crash_dump_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(signum, &action, nullptr);
  }
}

}  // namespace ascdg::obs
