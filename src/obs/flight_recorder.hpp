// In-memory flight recorder: a lock-free ring of the last K trace
// records, so a hung or crashed run still yields the tail of its trace
// even when no `--trace` file was requested.
//
// Writers claim a slot with one fetch_add on a monotone ticket and
// publish with a store-release of the slot's sequence word; they never
// block and never allocate, so record() is safe on any hot path the
// tracer touches. Readers (dump(), the /flightrecorder endpoint, the
// fatal-signal handler) walk the retained ticket window and validate
// each slot's sequence before and after copying — a slot overwritten
// mid-read is dropped, never torn.
//
// dump_to_fd() uses only async-signal-safe calls (write(2) on
// pre-formatted slot buffers), which is what lets install_crash_dump()
// print the tail from inside a SIGSEGV/SIGABRT handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ascdg::obs {

class FlightRecorder {
 public:
  /// Per-record byte budget; longer lines are truncated (a truncated
  /// tail still names the event, which is what post-mortems need).
  static constexpr std::size_t kMaxLine = 480;

  /// `capacity` is the number of retained records (clamped to >= 1).
  explicit FlightRecorder(std::size_t capacity);

  /// Appends one record (typically a JSONL trace line, newline not
  /// included). Wait-free, allocation-free, safe from any thread.
  void record(std::string_view line) noexcept;

  /// Ordered (oldest -> newest) copy of the retained records. Slots
  /// overwritten while being read are skipped rather than torn.
  [[nodiscard]] std::vector<std::string> dump() const;

  /// Writes the retained records (one per line) to `fd` using only
  /// async-signal-safe calls. Best effort: concurrent writers may
  /// replace a slot mid-walk, in which case that slot is skipped.
  void dump_to_fd(int fd) const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Total records ever written (>= capacity() once the ring wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    /// 0 = never written; 2*ticket+1 = write in progress;
    /// 2*ticket+2 = published.
    std::atomic<std::uint64_t> seq{0};
    std::uint32_t length = 0;
    char text[kMaxLine] = {};
  };

  /// Copies a published slot if its sequence is stable; false otherwise.
  bool read_slot(std::uint64_t ticket, char* out,
                 std::uint32_t& length) const noexcept;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// Process-wide recorder used by the fatal-signal crash dump (and by
/// any code that wants to record without plumbing a pointer). Not
/// owned; the caller keeps the recorder alive and clears the pointer
/// before destroying it.
void set_flight_recorder(FlightRecorder* recorder) noexcept;
[[nodiscard]] FlightRecorder* flight_recorder() noexcept;

/// Installs handlers for fatal signals (SIGSEGV, SIGBUS, SIGABRT,
/// SIGFPE, SIGILL) that dump the process flight recorder (when one is
/// set) to stderr, then re-raise with the default disposition so the
/// exit status / core dump is unchanged. Idempotent.
void install_crash_dump() noexcept;

}  // namespace ascdg::obs
