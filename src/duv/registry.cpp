#include "duv/registry.hpp"

#include "duv/ifu.hpp"
#include "duv/io_unit.hpp"
#include "duv/l3_cache.hpp"
#include "duv/lsu.hpp"

namespace ascdg::duv {

namespace {

struct Entry {
  std::string_view name;
  std::string_view description;
  std::string_view primary_family;
  std::unique_ptr<Duv> (*make)();
};

constexpr Entry kUnits[] = {
    {"io_unit", "I/O link controller (crc_* burst-length family)", "crc",
     []() -> std::unique_ptr<Duv> { return std::make_unique<IoUnit>(); }},
    {"l3_cache", "L3 cache slice (byp_reqs* bypass-tracker family)",
     "byp_reqs",
     []() -> std::unique_ptr<Duv> { return std::make_unique<L3Cache>(); }},
    {"ifu", "instruction fetch unit (256-event cross product)", "ifu",
     []() -> std::unique_ptr<Duv> { return std::make_unique<Ifu>(); }},
    {"lsu",
     "load-store unit (lsu_fwdq* forwarding family; the paper's Fig. 1 "
     "example)",
     "lsu_fwdq",
     []() -> std::unique_ptr<Duv> { return std::make_unique<Lsu>(); }},
};

}  // namespace

std::vector<std::string> unit_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kUnits));
  for (const auto& entry : kUnits) names.emplace_back(entry.name);
  return names;
}

std::unique_ptr<Duv> make_unit(std::string_view name) {
  for (const auto& entry : kUnits) {
    if (entry.name == name) return entry.make();
  }
  return nullptr;
}

std::string_view unit_description(std::string_view name) {
  for (const auto& entry : kUnits) {
    if (entry.name == name) return entry.description;
  }
  return {};
}

std::string_view unit_primary_family(std::string_view name) {
  for (const auto& entry : kUnits) {
    if (entry.name == name) return entry.primary_family;
  }
  return {};
}

}  // namespace ascdg::duv
