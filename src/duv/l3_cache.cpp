#include "duv/l3_cache.hpp"

#include <algorithm>
#include <array>
#include <queue>
#include <string>

#include "stimgen/sampler.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

enum Req : std::size_t {
  kReqRead = 0,
  kReqWrite,
  kReqPrefetch,
  kReqCastout,
  kReqNcRead,
  kReqDma,
  kReqCount
};
constexpr const char* kReqNames[kReqCount] = {"read",    "write", "prefetch",
                                              "castout", "nc_read", "dma"};

constexpr std::string_view kSuiteText = R"(
# Nightly defaults.
template l3_default {
  weight ReqType { read: 52, write: 25, prefetch: 11, castout: 10, nc_read: 1, dma: 1 }
}

# Read-dominated workload, high locality.
template l3_read_hot {
  weight ReqType { read: 80, write: 10, prefetch: 10, castout: 0, nc_read: 0, dma: 0 }
  weight AddrLocality { line: 60, page: 30, random: 10 }
}

# Write/castout pressure on the write queue.
template l3_write_pressure {
  weight ReqType { read: 10, write: 55, prefetch: 0, castout: 35, nc_read: 0, dma: 0 }
  range InterArrival [0, 7]
}

# Prefetch trains.
template l3_prefetch_train {
  weight ReqType { read: 30, write: 10, prefetch: 55, castout: 5, nc_read: 0, dma: 0 }
  weight AddrLocality { line: 20, page: 70, random: 10 }
}

# Non-cacheable / DMA traffic smoke test: the template whose parameters
# matter for the bypass tracker family.
template l3_nc_smoke {
  weight ReqType { read: 40, write: 20, prefetch: 12, castout: 10, nc_read: 12, dma: 6 }
  range RespDelay [24, 96]
  range InterArrival [1, 31]
  range NumReqs [80, 240]
}

# Multi-thread fairness.
template l3_thread_mix {
  weight ThreadSel { 0: 25, 1: 25, 2: 25, 3: 25 }
  weight ReqType { read: 55, write: 25, prefetch: 10, castout: 10, nc_read: 0, dma: 0 }
}

# Random-address miss storm.
template l3_miss_storm {
  weight AddrLocality { line: 5, page: 15, random: 80 }
  weight BypassHint { off: 85, on: 15 }
}

# Slow memory corner.
template l3_slow_mem {
  range RespDelay [72, 96]
  weight ReqType { read: 60, write: 20, prefetch: 10, castout: 10, nc_read: 0, dma: 0 }
}

# Back-to-back arrival stress.
template l3_b2b {
  range InterArrival [1, 4]
  weight ReqType { read: 45, write: 30, prefetch: 15, castout: 10, nc_read: 0, dma: 0 }
}
)";

/// A bypass entry in flight: completion timestamp.
struct InFlight {
  std::int64_t completes_at;
  friend bool operator>(const InFlight& a, const InFlight& b) {
    return a.completes_at > b.completes_at;
  }
};

}  // namespace

L3Cache::L3Cache() : defaults_("l3_defaults") {
  // --- Coverage events -------------------------------------------------
  std::vector<std::string> byp_suffixes;
  for (std::size_t k = 1; k <= kTrackerDepth; ++k) {
    byp_suffixes.push_back(k < 10 ? "0" + std::to_string(k)
                                  : std::to_string(k));
  }
  byp_events_ = space_.declare_family("byp_reqs", byp_suffixes);

  std::vector<std::string> wrq_suffixes;
  for (std::size_t k = 1; k <= kWriteQueueDepth; ++k) {
    wrq_suffixes.push_back("0" + std::to_string(k));
  }
  wrq_events_ = space_.declare_family("l3_wrq", wrq_suffixes);

  for (std::size_t r = 0; r < kReqCount; ++r) {
    ev_req_[r] = space_.declare_event("l3_req_" + std::string(kReqNames[r]));
  }
  ev_hit_ = space_.declare_event("l3_dir_hit");
  ev_miss_ = space_.declare_event("l3_dir_miss");
  for (std::size_t t = 0; t < 4; ++t) {
    ev_thread_[t] = space_.declare_event("l3_thr" + std::to_string(t));
  }
  ev_nack_ = space_.declare_event("l3_byp_nack");
  ev_tracker_full_ = space_.declare_event("l3_byp_tracker_full");

  // --- Default parameter settings --------------------------------------
  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"ReqType",
                                {{Value{"read"}, 52},
                                 {Value{"write"}, 25},
                                 {Value{"prefetch"}, 11},
                                 {Value{"castout"}, 8},
                                 {Value{"nc_read"}, 2},
                                 {Value{"dma"}, 2}}});
  defaults_.add(RangeParameter{"InterArrival", 1, 31});
  defaults_.add(RangeParameter{"RespDelay", 8, 96});
  defaults_.add(WeightParameter{"ThreadSel",
                                {{Value{std::int64_t{0}}, 40},
                                 {Value{std::int64_t{1}}, 30},
                                 {Value{std::int64_t{2}}, 20},
                                 {Value{std::int64_t{3}}, 10}}});
  defaults_.add(WeightParameter{
      "AddrLocality",
      {{Value{"line"}, 30}, {Value{"page"}, 40}, {Value{"random"}, 30}}});
  defaults_.add(WeightParameter{"BypassHint",
                                {{Value{"off"}, 95}, {Value{"on"}, 5}}});
  defaults_.add(RangeParameter{"NumReqs", 80, 240});
  defaults_.add(RangeParameter{"WriteBurst", 1, 6});
}

coverage::CoverageVector L3Cache::simulate(const tgen::TestTemplate& tmpl,
                                           std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  stimgen::ParameterSampler sampler(&tmpl, defaults_, rng);
  coverage::CoverageVector vec(space_.size());

  const std::int64_t num_reqs = sampler.draw_range("NumReqs");

  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> tracker;
  std::int64_t now = 0;
  std::size_t max_concurrency = 0;

  std::size_t write_queue = 0;  // drains one entry per request slot
  std::size_t max_wrq = 0;

  for (std::int64_t req = 0; req < num_reqs; ++req) {
    now += sampler.draw_range("InterArrival");

    // Retire completed bypass responses.
    while (!tracker.empty() && tracker.top().completes_at <= now) tracker.pop();
    // Write queue drains one entry per slot.
    if (write_queue > 0) --write_queue;

    const tgen::Value req_value = sampler.draw("ReqType");
    const std::string& req_name = req_value.as_symbol();
    std::size_t req_index = 0;
    for (std::size_t r = 0; r < kReqCount; ++r) {
      if (req_name == kReqNames[r]) {
        req_index = r;
        break;
      }
    }
    vec.hit(ev_req_[req_index]);

    const std::int64_t thread = sampler.draw_int_value("ThreadSel");
    vec.hit(ev_thread_[static_cast<std::size_t>(
        std::clamp<std::int64_t>(thread, 0, 3))]);

    // Directory lookup: locality controls the hit probability.
    const tgen::Value loc = sampler.draw("AddrLocality");
    const double hit_p = loc.as_symbol() == "line"   ? 0.85
                         : loc.as_symbol() == "page" ? 0.55
                                                     : 0.15;
    const bool dir_hit = sampler.rng().bernoulli(hit_p);
    vec.hit(dir_hit ? ev_hit_ : ev_miss_);

    // Write queue occupancy family (secondary, easier family).
    if (req_index == kReqWrite || req_index == kReqCastout) {
      const auto burst =
          static_cast<std::size_t>(sampler.draw_range("WriteBurst"));
      write_queue = std::min(write_queue + burst, kWriteQueueDepth);
      max_wrq = std::max(max_wrq, write_queue);
    }

    // Bypass eligibility: nc_read and dma always; hinted read misses too.
    const bool wants_bypass =
        req_index == kReqNcRead || req_index == kReqDma ||
        (req_index == kReqRead && !dir_hit &&
         sampler.draw("BypassHint").as_symbol() == "on");
    if (!wants_bypass) continue;

    const std::size_t occupancy = tracker.size();
    if (occupancy >= kTrackerDepth) {
      vec.hit(ev_tracker_full_);
      continue;
    }
    // Occupancy backpressure: above kNackThreshold in-flight entries,
    // the accept probability falls off quadratically, reaching 1% just
    // below full occupancy. Each extra concurrency level is therefore
    // multiplicatively harder -- the family's "descent gradient".
    if (occupancy >= kNackThreshold) {
      const double headroom =
          static_cast<double>(kTrackerDepth - occupancy) /
          static_cast<double>(kTrackerDepth - kNackThreshold + 1);
      const double accept = headroom * headroom;
      if (!sampler.rng().bernoulli(accept)) {
        vec.hit(ev_nack_);
        continue;
      }
    }
    const std::int64_t delay = sampler.draw_range("RespDelay");
    tracker.push({now + delay});
    max_concurrency = std::max(max_concurrency, tracker.size());
  }

  for (std::size_t k = 0; k < byp_events_.size(); ++k) {
    if (max_concurrency >= k + 1) vec.hit(byp_events_[k]);
  }
  for (std::size_t k = 0; k < wrq_events_.size(); ++k) {
    if (max_wrq >= k + 1) vec.hit(wrq_events_[k]);
  }
  return vec;
}

std::vector<tgen::TestTemplate> L3Cache::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
