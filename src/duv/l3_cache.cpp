#include "duv/l3_cache.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stimgen/compiled.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

enum Req : std::size_t {
  kReqRead = 0,
  kReqWrite,
  kReqPrefetch,
  kReqCastout,
  kReqNcRead,
  kReqDma,
  kReqCount
};
constexpr const char* kReqNames[kReqCount] = {"read",    "write", "prefetch",
                                              "castout", "nc_read", "dma"};

constexpr std::string_view kSuiteText = R"(
# Nightly defaults.
template l3_default {
  weight ReqType { read: 52, write: 25, prefetch: 11, castout: 10, nc_read: 1, dma: 1 }
}

# Read-dominated workload, high locality.
template l3_read_hot {
  weight ReqType { read: 80, write: 10, prefetch: 10, castout: 0, nc_read: 0, dma: 0 }
  weight AddrLocality { line: 60, page: 30, random: 10 }
}

# Write/castout pressure on the write queue.
template l3_write_pressure {
  weight ReqType { read: 10, write: 55, prefetch: 0, castout: 35, nc_read: 0, dma: 0 }
  range InterArrival [0, 7]
}

# Prefetch trains.
template l3_prefetch_train {
  weight ReqType { read: 30, write: 10, prefetch: 55, castout: 5, nc_read: 0, dma: 0 }
  weight AddrLocality { line: 20, page: 70, random: 10 }
}

# Non-cacheable / DMA traffic smoke test: the template whose parameters
# matter for the bypass tracker family.
template l3_nc_smoke {
  weight ReqType { read: 40, write: 20, prefetch: 12, castout: 10, nc_read: 12, dma: 6 }
  range RespDelay [24, 96]
  range InterArrival [1, 31]
  range NumReqs [80, 240]
}

# Multi-thread fairness.
template l3_thread_mix {
  weight ThreadSel { 0: 25, 1: 25, 2: 25, 3: 25 }
  weight ReqType { read: 55, write: 25, prefetch: 10, castout: 10, nc_read: 0, dma: 0 }
}

# Random-address miss storm.
template l3_miss_storm {
  weight AddrLocality { line: 5, page: 15, random: 80 }
  weight BypassHint { off: 85, on: 15 }
}

# Slow memory corner.
template l3_slow_mem {
  range RespDelay [72, 96]
  weight ReqType { read: 60, write: 20, prefetch: 10, castout: 10, nc_read: 0, dma: 0 }
}

# Back-to-back arrival stress.
template l3_b2b {
  range InterArrival [1, 4]
  weight ReqType { read: 45, write: 30, prefetch: 15, castout: 10, nc_read: 0, dma: 0 }
}
)";

}  // namespace

L3Cache::L3Cache() : defaults_("l3_defaults") {
  // --- Coverage events -------------------------------------------------
  std::vector<std::string> byp_suffixes;
  for (std::size_t k = 1; k <= kTrackerDepth; ++k) {
    byp_suffixes.push_back(k < 10 ? "0" + std::to_string(k)
                                  : std::to_string(k));
  }
  byp_events_ = space_.declare_family("byp_reqs", byp_suffixes);

  std::vector<std::string> wrq_suffixes;
  for (std::size_t k = 1; k <= kWriteQueueDepth; ++k) {
    wrq_suffixes.push_back("0" + std::to_string(k));
  }
  wrq_events_ = space_.declare_family("l3_wrq", wrq_suffixes);

  for (std::size_t r = 0; r < kReqCount; ++r) {
    ev_req_[r] = space_.declare_event("l3_req_" + std::string(kReqNames[r]));
  }
  ev_hit_ = space_.declare_event("l3_dir_hit");
  ev_miss_ = space_.declare_event("l3_dir_miss");
  for (std::size_t t = 0; t < 4; ++t) {
    ev_thread_[t] = space_.declare_event("l3_thr" + std::to_string(t));
  }
  ev_nack_ = space_.declare_event("l3_byp_nack");
  ev_tracker_full_ = space_.declare_event("l3_byp_tracker_full");

  // --- Default parameter settings --------------------------------------
  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"ReqType",
                                {{Value{"read"}, 52},
                                 {Value{"write"}, 25},
                                 {Value{"prefetch"}, 11},
                                 {Value{"castout"}, 8},
                                 {Value{"nc_read"}, 2},
                                 {Value{"dma"}, 2}}});
  defaults_.add(RangeParameter{"InterArrival", 1, 31});
  defaults_.add(RangeParameter{"RespDelay", 8, 96});
  defaults_.add(WeightParameter{"ThreadSel",
                                {{Value{std::int64_t{0}}, 40},
                                 {Value{std::int64_t{1}}, 30},
                                 {Value{std::int64_t{2}}, 20},
                                 {Value{std::int64_t{3}}, 10}}});
  defaults_.add(WeightParameter{
      "AddrLocality",
      {{Value{"line"}, 30}, {Value{"page"}, 40}, {Value{"random"}, 30}}});
  defaults_.add(WeightParameter{"BypassHint",
                                {{Value{"off"}, 95}, {Value{"on"}, 5}}});
  defaults_.add(RangeParameter{"NumReqs", 80, 240});
  defaults_.add(RangeParameter{"WriteBurst", 1, 6});
}

// Compiled per-template distribution tables. Entry codes map ReqType
// entries onto kReqNames indices (unmatched symbols fall back to "read"
// like the scalar linear scan did), AddrLocality onto {line=0, page=1,
// other=2}, and BypassHint onto {on=0, other=1}.
struct L3Cache::Tables final : Duv::Compiled {
  stimgen::CompiledTemplate table;
  const stimgen::CompiledParam* num_reqs;
  const stimgen::CompiledParam* inter_arrival;
  const stimgen::CompiledParam* req_type;
  const stimgen::CompiledParam* thread_sel;
  const stimgen::CompiledParam* addr_locality;
  const stimgen::CompiledParam* bypass_hint;
  const stimgen::CompiledParam* write_burst;
  const stimgen::CompiledParam* resp_delay;
  std::vector<std::int32_t> req_codes;
  std::vector<std::int32_t> loc_codes;
  std::vector<std::int32_t> hint_codes;

  Tables(const tgen::TestTemplate* overrides, const tgen::TestTemplate& defaults)
      : table(overrides, defaults),
        num_reqs(table.find("NumReqs")),
        inter_arrival(table.find("InterArrival")),
        req_type(table.find("ReqType")),
        thread_sel(table.find("ThreadSel")),
        addr_locality(table.find("AddrLocality")),
        bypass_hint(table.find("BypassHint")),
        write_burst(table.find("WriteBurst")),
        resp_delay(table.find("RespDelay")) {
    constexpr std::string_view kReqSymbols[kReqCount] = {
        "read", "write", "prefetch", "castout", "nc_read", "dma"};
    constexpr std::string_view kLocality[] = {"line", "page"};
    constexpr std::string_view kOn[] = {"on"};
    req_codes = stimgen::entry_codes(*req_type, kReqSymbols,
                                     static_cast<std::int32_t>(kReqRead));
    loc_codes = stimgen::entry_codes(*addr_locality, kLocality, 2);
    hint_codes = stimgen::entry_codes(*bypass_hint, kOn, 1);
  }
};

namespace {

/// Per-worker SoA lane state, reused across batches (thread_local so
/// every farm worker owns one arena and the kernel allocates nothing
/// in steady state).
struct L3Lanes {
  std::vector<util::Xoshiro256> rng;
  std::vector<std::int64_t> now;
  std::vector<std::int64_t> reqs_left;
  std::vector<std::size_t> write_queue;
  std::vector<std::size_t> max_wrq;
  std::vector<std::size_t> max_concurrency;
  std::vector<std::int64_t> tracker;  ///< [lane * kTrackerDepth + e] completion times
  std::vector<std::uint32_t> trk_n;
  std::vector<std::uint32_t> active;
};

L3Lanes& l3_lanes() {
  static thread_local L3Lanes lanes;
  return lanes;
}

}  // namespace

void L3Cache::run_lanes(const Tables& t, std::span<const std::uint64_t> seeds,
                        std::span<coverage::CoverageVector> out) const {
  ASCDG_ASSERT(seeds.size() == out.size(), "batch seed/out size mismatch");
  const std::size_t n = seeds.size();
  L3Lanes& ws = l3_lanes();
  ws.rng.clear();
  ws.rng.reserve(n);
  ws.now.assign(n, 0);
  ws.reqs_left.resize(n);
  ws.write_queue.assign(n, 0);
  ws.max_wrq.assign(n, 0);
  ws.max_concurrency.assign(n, 0);
  ws.tracker.assign(n * kTrackerDepth, 0);
  ws.trk_n.assign(n, 0);
  ws.active.clear();
  ws.active.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    ws.rng.emplace_back(seeds[l]);
    out[l].reset(space_.size());
    ws.reqs_left[l] = t.num_reqs->draw_range(ws.rng[l]);
    if (ws.reqs_left[l] > 0) ws.active.push_back(static_cast<std::uint32_t>(l));
  }

  // Round-robin over live lanes: every pass runs one request slot per
  // lane (per-lane RNG streams keep the interleave unobservable),
  // retiring finished lanes by compaction.
  while (!ws.active.empty()) {
    std::size_t kept = 0;
    for (const std::uint32_t l : ws.active) {
      util::Xoshiro256& rng = ws.rng[l];
      coverage::CoverageVector& vec = out[l];
      std::int64_t& now = ws.now[l];

      now += t.inter_arrival->draw_range(rng);

      // Retire completed bypass responses (the scalar path popped a
      // min-heap until its top exceeded `now`; unordered compaction
      // removes the same set of entries).
      std::int64_t* trk = ws.tracker.data() + std::size_t{l} * kTrackerDepth;
      std::uint32_t& trk_n = ws.trk_n[l];
      std::uint32_t keep = 0;
      for (std::uint32_t e = 0; e < trk_n; ++e) {
        if (trk[e] > now) trk[keep++] = trk[e];
      }
      trk_n = keep;
      // Write queue drains one entry per slot.
      if (ws.write_queue[l] > 0) --ws.write_queue[l];

      const auto req_index = static_cast<std::size_t>(stimgen::entry_code(
          *t.req_type, t.req_codes, t.req_type->draw_index(rng)));
      vec.hit(ev_req_[req_index]);

      const std::int64_t thread = t.thread_sel->draw_int(rng);
      vec.hit(ev_thread_[static_cast<std::size_t>(
          std::clamp<std::int64_t>(thread, 0, 3))]);

      // Directory lookup: locality controls the hit probability.
      const std::int32_t loc = stimgen::entry_code(
          *t.addr_locality, t.loc_codes, t.addr_locality->draw_index(rng));
      const double hit_p = loc == 0 ? 0.85 : loc == 1 ? 0.55 : 0.15;
      const bool dir_hit = rng.bernoulli(hit_p);
      vec.hit(dir_hit ? ev_hit_ : ev_miss_);

      // Write queue occupancy family (secondary, easier family).
      if (req_index == kReqWrite || req_index == kReqCastout) {
        const auto burst =
            static_cast<std::size_t>(t.write_burst->draw_range(rng));
        ws.write_queue[l] = std::min(ws.write_queue[l] + burst, kWriteQueueDepth);
        ws.max_wrq[l] = std::max(ws.max_wrq[l], ws.write_queue[l]);
      }

      // Bypass eligibility: nc_read and dma always; hinted read misses
      // too. BypassHint is only drawn on a read miss — same short-circuit
      // as the scalar expression this ports.
      const bool wants_bypass =
          req_index == kReqNcRead || req_index == kReqDma ||
          (req_index == kReqRead && !dir_hit &&
           stimgen::entry_code(*t.bypass_hint, t.hint_codes,
                               t.bypass_hint->draw_index(rng)) == 0);
      if (wants_bypass) {
        const std::size_t occupancy = trk_n;
        if (occupancy >= kTrackerDepth) {
          vec.hit(ev_tracker_full_);
        } else {
          // Occupancy backpressure: above kNackThreshold in-flight
          // entries, the accept probability falls off quadratically,
          // reaching 1% just below full occupancy -- the family's
          // "descent gradient".
          bool accepted = true;
          if (occupancy >= kNackThreshold) {
            const double headroom =
                static_cast<double>(kTrackerDepth - occupancy) /
                static_cast<double>(kTrackerDepth - kNackThreshold + 1);
            const double accept = headroom * headroom;
            if (!rng.bernoulli(accept)) {
              vec.hit(ev_nack_);
              accepted = false;
            }
          }
          if (accepted) {
            const std::int64_t delay = t.resp_delay->draw_range(rng);
            trk[trk_n++] = now + delay;
            ws.max_concurrency[l] =
                std::max<std::size_t>(ws.max_concurrency[l], trk_n);
          }
        }
      }

      if (--ws.reqs_left[l] > 0) ws.active[kept++] = l;
    }
    ws.active.resize(kept);
  }

  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t k = 0; k < byp_events_.size(); ++k) {
      if (ws.max_concurrency[l] >= k + 1) out[l].hit(byp_events_[k]);
    }
    for (std::size_t k = 0; k < wrq_events_.size(); ++k) {
      if (ws.max_wrq[l] >= k + 1) out[l].hit(wrq_events_[k]);
    }
  }
}

std::unique_ptr<L3Cache::Tables> L3Cache::make_tables(
    const tgen::TestTemplate& tmpl) const {
  return std::make_unique<Tables>(&tmpl, defaults_);
}

coverage::CoverageVector L3Cache::simulate(const tgen::TestTemplate& tmpl,
                                           std::uint64_t seed) const {
  coverage::CoverageVector vec(space_.size());
  const auto tables = make_tables(tmpl);
  run_lanes(*tables, std::span<const std::uint64_t>(&seed, 1),
            std::span<coverage::CoverageVector>(&vec, 1));
  return vec;
}

std::unique_ptr<duv::Duv::Compiled> L3Cache::compile(
    const tgen::TestTemplate& tmpl) const {
  return make_tables(tmpl);
}

void L3Cache::simulate_batch(const tgen::TestTemplate& tmpl,
                             const Compiled* compiled,
                             std::span<const std::uint64_t> seeds,
                             std::span<coverage::CoverageVector> out) const {
  if (compiled == nullptr) {
    run_lanes(*make_tables(tmpl), seeds, out);
    return;
  }
  const auto* tables = dynamic_cast<const Tables*>(compiled);
  ASCDG_ASSERT(tables != nullptr, "compiled tables do not belong to this unit");
  run_lanes(*tables, seeds, out);
}

std::vector<tgen::TestTemplate> L3Cache::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
