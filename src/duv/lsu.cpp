#include "duv/lsu.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stimgen/compiled.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

enum Mnemonic : std::size_t { kLoad = 0, kStore, kAdd, kSync, kMnemonicCount };
constexpr const char* kMnemonicNames[kMnemonicCount] = {"load", "store", "add",
                                                        "sync"};

constexpr std::string_view kSuiteText = R"(
# The paper's Fig. 1(a) template, verbatim.
template lsu_stress {
  weight Mnemonic { load: 40, store: 40, add: 0, sync: 20 }
  range CacheDelay [0, 1000]
}

# Nightly defaults.
template lsu_default {
  weight Mnemonic { load: 35, store: 25, add: 30, sync: 10 }
}

# Load bandwidth.
template lsu_load_stream {
  weight Mnemonic { load: 70, store: 10, add: 15, sync: 5 }
  weight AddrPattern { same_line: 10, stride: 60, random: 30 }
}

# Store bursts with frequent fences.
template lsu_store_fence {
  weight Mnemonic { load: 10, store: 55, add: 10, sync: 25 }
}

# Same-line contention smoke test: the template whose parameters matter
# for the forwarding-queue family.
template lsu_same_line {
  weight Mnemonic { load: 30, store: 45, add: 15, sync: 10 }
  weight AddrPattern { same_line: 55, stride: 30, random: 15 }
  range CacheDelay [0, 1000]
}

# Random-address ALU mix.
template lsu_alu_mix {
  weight Mnemonic { load: 20, store: 15, add: 60, sync: 5 }
  weight AddrPattern { same_line: 5, stride: 25, random: 70 }
}

# Slow-memory corner.
template lsu_slow_cache {
  range CacheDelay [600, 1000]
  weight Mnemonic { load: 40, store: 20, add: 30, sync: 10 }
}

# Strided engine (DMA-like).
template lsu_stride_engine {
  weight AddrPattern { same_line: 0, stride: 90, random: 10 }
  range StrideSize [1, 8]
}
)";

}  // namespace

Lsu::Lsu() : defaults_("lsu_defaults") {
  std::vector<std::string> suffixes;
  for (std::size_t k = 1; k <= kStoreQueueDepth; ++k) {
    suffixes.push_back(k < 10 ? "0" + std::to_string(k) : std::to_string(k));
  }
  fwdq_events_ = space_.declare_family("lsu_fwdq", suffixes);

  for (std::size_t m = 0; m < kMnemonicCount; ++m) {
    ev_mnemonic_[m] =
        space_.declare_event("lsu_op_" + std::string(kMnemonicNames[m]));
  }
  ev_fwd_hit_ = space_.declare_event("lsu_fwd_hit");
  ev_ld_hit_ = space_.declare_event("lsu_ld_hit");
  ev_ld_miss_ = space_.declare_event("lsu_ld_miss");
  ev_stq_full_ = space_.declare_event("lsu_stq_full");
  ev_sync_drain_ = space_.declare_event("lsu_sync_drain");
  ev_bank_conflict_ = space_.declare_event("lsu_bank_conflict");

  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"Mnemonic",
                                {{Value{"load"}, 35},
                                 {Value{"store"}, 25},
                                 {Value{"add"}, 30},
                                 {Value{"sync"}, 10}}});
  defaults_.add(RangeParameter{"CacheDelay", 0, 1000});
  defaults_.add(WeightParameter{"AddrPattern",
                                {{Value{"same_line"}, 15},
                                 {Value{"stride"}, 45},
                                 {Value{"random"}, 40}}});
  defaults_.add(RangeParameter{"StrideSize", 1, 8});
  defaults_.add(RangeParameter{"NumInstr", 100, 300});
}

// Compiled per-template distribution tables. Mnemonic codes index
// straight into ev_mnemonic_ (unmatched symbols decay to load, like the
// scalar scan did); address-pattern codes are 0 same_line / 1 stride /
// 2 random-or-unknown.
struct Lsu::Tables final : Duv::Compiled {
  stimgen::CompiledTemplate table;
  const stimgen::CompiledParam* num_instr;
  const stimgen::CompiledParam* mnemonic;
  const stimgen::CompiledParam* addr_pattern;
  const stimgen::CompiledParam* stride_size;
  const stimgen::CompiledParam* cache_delay;
  std::vector<std::int32_t> mnemonic_codes;
  std::vector<std::int32_t> pattern_codes;

  Tables(const tgen::TestTemplate* overrides, const tgen::TestTemplate& defaults)
      : table(overrides, defaults),
        num_instr(table.find("NumInstr")),
        mnemonic(table.find("Mnemonic")),
        addr_pattern(table.find("AddrPattern")),
        stride_size(table.find("StrideSize")),
        cache_delay(table.find("CacheDelay")) {
    constexpr std::string_view kMnemonics[] = {"load", "store", "add", "sync"};
    constexpr std::string_view kPatterns[] = {"same_line", "stride"};
    mnemonic_codes =
        stimgen::entry_codes(*mnemonic, kMnemonics, static_cast<std::int32_t>(kLoad));
    pattern_codes = stimgen::entry_codes(*addr_pattern, kPatterns, 2);
  }
};

namespace {

/// Per-worker SoA lane state, reused across batches.
struct LsuLanes {
  std::vector<util::Xoshiro256> rng;
  std::vector<std::int64_t> now;
  std::vector<std::int64_t> stride_cursor;
  std::vector<std::int64_t> last_line;
  std::vector<std::int64_t> instr_left;
  std::vector<std::size_t> max_fwd;
  std::vector<std::int64_t> sq_line;  ///< [lane * kStoreQueueDepth + e]
  std::vector<std::int64_t> sq_ret;   ///< retirement timestamps, same layout
  std::vector<std::uint32_t> sq_n;
  std::vector<std::uint32_t> active;
};

LsuLanes& lsu_lanes() {
  static thread_local LsuLanes lanes;
  return lanes;
}

}  // namespace

void Lsu::run_lanes(const Tables& t, std::span<const std::uint64_t> seeds,
                    std::span<coverage::CoverageVector> out) const {
  ASCDG_ASSERT(seeds.size() == out.size(), "batch seed/out size mismatch");
  const std::size_t n = seeds.size();
  LsuLanes& ws = lsu_lanes();
  ws.rng.clear();
  ws.rng.reserve(n);
  ws.now.assign(n, 0);
  ws.stride_cursor.assign(n, 0);
  ws.last_line.assign(n, -1);
  ws.instr_left.resize(n);
  ws.max_fwd.assign(n, 0);
  ws.sq_line.assign(n * kStoreQueueDepth, 0);
  ws.sq_ret.assign(n * kStoreQueueDepth, 0);
  ws.sq_n.assign(n, 0);
  ws.active.clear();
  ws.active.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    ws.rng.emplace_back(seeds[l]);
    out[l].reset(space_.size());
    ws.instr_left[l] = t.num_instr->draw_range(ws.rng[l]);
    if (ws.instr_left[l] > 0) ws.active.push_back(static_cast<std::uint32_t>(l));
  }

  while (!ws.active.empty()) {
    std::size_t kept = 0;
    for (const std::uint32_t l : ws.active) {
      util::Xoshiro256& rng = ws.rng[l];
      coverage::CoverageVector& vec = out[l];
      std::int64_t& now = ws.now[l];
      std::int64_t* sq_line = ws.sq_line.data() + std::size_t{l} * kStoreQueueDepth;
      std::int64_t* sq_ret = ws.sq_ret.data() + std::size_t{l} * kStoreQueueDepth;
      std::uint32_t& sq_n = ws.sq_n[l];

      // Ports the scalar lambda: draws AddrPattern, then StrideSize or a
      // raw uniform line depending on the pattern code.
      const auto draw_line = [&]() -> std::int64_t {
        const std::int32_t pattern = stimgen::entry_code(
            *t.addr_pattern, t.pattern_codes, t.addr_pattern->draw_index(rng));
        if (pattern == 0) return 0;
        if (pattern == 1) {
          ws.stride_cursor[l] =
              (ws.stride_cursor[l] + t.stride_size->draw_range(rng)) % kLineCount;
          return ws.stride_cursor[l];
        }
        return rng.uniform_i64(0, kLineCount - 1);
      };
      // Stable compaction of retired stores — same survivors and order
      // as the scalar erase_if.
      const auto drain = [&] {
        std::uint32_t keep = 0;
        for (std::uint32_t e = 0; e < sq_n; ++e) {
          if (sq_ret[e] > now) {
            sq_line[keep] = sq_line[e];
            sq_ret[keep] = sq_ret[e];
            ++keep;
          }
        }
        sq_n = keep;
      };

      now += 4;  // issue bandwidth: one memory op per 4 cycles
      drain();

      const auto m = static_cast<std::size_t>(stimgen::entry_code(
          *t.mnemonic, t.mnemonic_codes, t.mnemonic->draw_index(rng)));
      vec.hit(ev_mnemonic_[m]);

      switch (m) {
        case kLoad: {
          const std::int64_t line = draw_line();
          if (ws.last_line[l] >= 0 && line != ws.last_line[l] &&
              line % 4 == ws.last_line[l] % 4) {
            vec.hit(ev_bank_conflict_);
          }
          ws.last_line[l] = line;
          // Youngest matching outstanding store forwards.
          bool forwarded = false;
          for (std::uint32_t e = sq_n; e-- > 0;) {
            if (sq_line[e] == line) {
              forwarded = true;
              break;
            }
          }
          if (forwarded) {
            vec.hit(ev_fwd_hit_);
            ws.max_fwd[l] = std::max(ws.max_fwd[l], std::size_t{sq_n});
          } else {
            // Cache lookup: same-line data is warm; others miss more.
            const double hit_p = line == 0 ? 0.9 : 0.55;
            vec.hit(rng.bernoulli(hit_p) ? ev_ld_hit_ : ev_ld_miss_);
          }
          break;
        }
        case kStore: {
          const std::int64_t line = draw_line();
          if (ws.last_line[l] >= 0 && line != ws.last_line[l] &&
              line % 4 == ws.last_line[l] % 4) {
            vec.hit(ev_bank_conflict_);
          }
          ws.last_line[l] = line;
          if (sq_n >= kStoreQueueDepth) {
            // Full queue: the store stalls until the oldest entry drains.
            vec.hit(ev_stq_full_);
            now = sq_ret[0];
            drain();
          }
          // Retirement latency scales with the cache delay parameter.
          const std::int64_t delay = t.cache_delay->draw_range(rng);
          sq_line[sq_n] = line;
          sq_ret[sq_n] = now + 4 + delay / 16;
          ++sq_n;
          break;
        }
        case kSync:
          if (sq_n > 0) {
            vec.hit(ev_sync_drain_);
            std::int64_t latest = sq_ret[0];
            for (std::uint32_t e = 1; e < sq_n; ++e) {
              latest = std::max(latest, sq_ret[e]);
            }
            now = std::max(now, latest);
            sq_n = 0;
          }
          break;
        case kAdd:
        default:
          break;  // filler
      }

      if (--ws.instr_left[l] > 0) ws.active[kept++] = l;
    }
    ws.active.resize(kept);
  }

  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t k = 0; k < fwdq_events_.size(); ++k) {
      if (ws.max_fwd[l] >= k + 1) out[l].hit(fwdq_events_[k]);
    }
  }
}

std::unique_ptr<Lsu::Tables> Lsu::make_tables(
    const tgen::TestTemplate& tmpl) const {
  return std::make_unique<Tables>(&tmpl, defaults_);
}

coverage::CoverageVector Lsu::simulate(const tgen::TestTemplate& tmpl,
                                       std::uint64_t seed) const {
  coverage::CoverageVector vec(space_.size());
  const auto tables = make_tables(tmpl);
  run_lanes(*tables, std::span<const std::uint64_t>(&seed, 1),
            std::span<coverage::CoverageVector>(&vec, 1));
  return vec;
}

std::unique_ptr<duv::Duv::Compiled> Lsu::compile(
    const tgen::TestTemplate& tmpl) const {
  return make_tables(tmpl);
}

void Lsu::simulate_batch(const tgen::TestTemplate& tmpl,
                         const Compiled* compiled,
                         std::span<const std::uint64_t> seeds,
                         std::span<coverage::CoverageVector> out) const {
  if (compiled == nullptr) {
    run_lanes(*make_tables(tmpl), seeds, out);
    return;
  }
  const auto* tables = dynamic_cast<const Tables*>(compiled);
  ASCDG_ASSERT(tables != nullptr, "compiled tables do not belong to this unit");
  run_lanes(*tables, seeds, out);
}

std::vector<tgen::TestTemplate> Lsu::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
