#include "duv/lsu.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "stimgen/sampler.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

enum Mnemonic : std::size_t { kLoad = 0, kStore, kAdd, kSync, kMnemonicCount };
constexpr const char* kMnemonicNames[kMnemonicCount] = {"load", "store", "add",
                                                        "sync"};

constexpr std::string_view kSuiteText = R"(
# The paper's Fig. 1(a) template, verbatim.
template lsu_stress {
  weight Mnemonic { load: 40, store: 40, add: 0, sync: 20 }
  range CacheDelay [0, 1000]
}

# Nightly defaults.
template lsu_default {
  weight Mnemonic { load: 35, store: 25, add: 30, sync: 10 }
}

# Load bandwidth.
template lsu_load_stream {
  weight Mnemonic { load: 70, store: 10, add: 15, sync: 5 }
  weight AddrPattern { same_line: 10, stride: 60, random: 30 }
}

# Store bursts with frequent fences.
template lsu_store_fence {
  weight Mnemonic { load: 10, store: 55, add: 10, sync: 25 }
}

# Same-line contention smoke test: the template whose parameters matter
# for the forwarding-queue family.
template lsu_same_line {
  weight Mnemonic { load: 30, store: 45, add: 15, sync: 10 }
  weight AddrPattern { same_line: 55, stride: 30, random: 15 }
  range CacheDelay [0, 1000]
}

# Random-address ALU mix.
template lsu_alu_mix {
  weight Mnemonic { load: 20, store: 15, add: 60, sync: 5 }
  weight AddrPattern { same_line: 5, stride: 25, random: 70 }
}

# Slow-memory corner.
template lsu_slow_cache {
  range CacheDelay [600, 1000]
  weight Mnemonic { load: 40, store: 20, add: 30, sync: 10 }
}

# Strided engine (DMA-like).
template lsu_stride_engine {
  weight AddrPattern { same_line: 0, stride: 90, random: 10 }
  range StrideSize [1, 8]
}
)";

}  // namespace

Lsu::Lsu() : defaults_("lsu_defaults") {
  std::vector<std::string> suffixes;
  for (std::size_t k = 1; k <= kStoreQueueDepth; ++k) {
    suffixes.push_back(k < 10 ? "0" + std::to_string(k) : std::to_string(k));
  }
  fwdq_events_ = space_.declare_family("lsu_fwdq", suffixes);

  for (std::size_t m = 0; m < kMnemonicCount; ++m) {
    ev_mnemonic_[m] =
        space_.declare_event("lsu_op_" + std::string(kMnemonicNames[m]));
  }
  ev_fwd_hit_ = space_.declare_event("lsu_fwd_hit");
  ev_ld_hit_ = space_.declare_event("lsu_ld_hit");
  ev_ld_miss_ = space_.declare_event("lsu_ld_miss");
  ev_stq_full_ = space_.declare_event("lsu_stq_full");
  ev_sync_drain_ = space_.declare_event("lsu_sync_drain");
  ev_bank_conflict_ = space_.declare_event("lsu_bank_conflict");

  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"Mnemonic",
                                {{Value{"load"}, 35},
                                 {Value{"store"}, 25},
                                 {Value{"add"}, 30},
                                 {Value{"sync"}, 10}}});
  defaults_.add(RangeParameter{"CacheDelay", 0, 1000});
  defaults_.add(WeightParameter{"AddrPattern",
                                {{Value{"same_line"}, 15},
                                 {Value{"stride"}, 45},
                                 {Value{"random"}, 40}}});
  defaults_.add(RangeParameter{"StrideSize", 1, 8});
  defaults_.add(RangeParameter{"NumInstr", 100, 300});
}

coverage::CoverageVector Lsu::simulate(const tgen::TestTemplate& tmpl,
                                       std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  stimgen::ParameterSampler sampler(&tmpl, defaults_, rng);
  coverage::CoverageVector vec(space_.size());

  const std::int64_t num_instr = sampler.draw_range("NumInstr");

  struct PendingStore {
    std::int64_t line;
    std::int64_t retires_at;
  };
  std::vector<PendingStore> store_queue;
  store_queue.reserve(kStoreQueueDepth);

  std::int64_t now = 0;
  std::int64_t stride_cursor = 0;
  std::int64_t last_line = -1;
  std::size_t max_fwd_occupancy = 0;

  const auto draw_line = [&]() -> std::int64_t {
    const auto pattern = sampler.draw("AddrPattern").as_symbol();
    if (pattern == "same_line") return 0;
    if (pattern == "stride") {
      stride_cursor =
          (stride_cursor + sampler.draw_range("StrideSize")) % kLineCount;
      return stride_cursor;
    }
    return sampler.rng().uniform_i64(0, kLineCount - 1);
  };

  for (std::int64_t instr = 0; instr < num_instr; ++instr) {
    now += 4;  // issue bandwidth: one memory op per 4 cycles
    std::erase_if(store_queue, [now](const PendingStore& s) {
      return s.retires_at <= now;
    });

    const auto mnemonic = sampler.draw("Mnemonic").as_symbol();
    std::size_t m = 0;
    for (std::size_t i = 0; i < kMnemonicCount; ++i) {
      if (mnemonic == kMnemonicNames[i]) {
        m = i;
        break;
      }
    }
    vec.hit(ev_mnemonic_[m]);

    switch (m) {
      case kLoad: {
        const std::int64_t line = draw_line();
        if (last_line >= 0 && line != last_line && line % 4 == last_line % 4) {
          vec.hit(ev_bank_conflict_);
        }
        last_line = line;
        // Youngest matching outstanding store forwards.
        const auto match =
            std::find_if(store_queue.rbegin(), store_queue.rend(),
                         [line](const PendingStore& s) { return s.line == line; });
        if (match != store_queue.rend()) {
          vec.hit(ev_fwd_hit_);
          max_fwd_occupancy = std::max(max_fwd_occupancy, store_queue.size());
        } else {
          // Cache lookup: same-line data is warm; others miss more.
          const double hit_p = line == 0 ? 0.9 : 0.55;
          vec.hit(sampler.rng().bernoulli(hit_p) ? ev_ld_hit_ : ev_ld_miss_);
        }
        break;
      }
      case kStore: {
        const std::int64_t line = draw_line();
        if (last_line >= 0 && line != last_line && line % 4 == last_line % 4) {
          vec.hit(ev_bank_conflict_);
        }
        last_line = line;
        if (store_queue.size() >= kStoreQueueDepth) {
          // Full queue: the store stalls until the oldest entry drains.
          vec.hit(ev_stq_full_);
          now = store_queue.front().retires_at;
          std::erase_if(store_queue, [this, now](const PendingStore& s) {
            (void)this;
            return s.retires_at <= now;
          });
        }
        // Retirement latency scales with the cache delay parameter.
        const std::int64_t delay = sampler.draw_range("CacheDelay");
        store_queue.push_back({line, now + 4 + delay / 16});
        break;
      }
      case kSync:
        if (!store_queue.empty()) {
          vec.hit(ev_sync_drain_);
          now = std::max(now, std::max_element(
                                  store_queue.begin(), store_queue.end(),
                                  [](const PendingStore& a, const PendingStore& b) {
                                    return a.retires_at < b.retires_at;
                                  })
                                  ->retires_at);
          store_queue.clear();
        }
        break;
      case kAdd:
      default:
        break;  // filler
    }
  }

  for (std::size_t k = 0; k < fwdq_events_.size(); ++k) {
    if (max_fwd_occupancy >= k + 1) vec.hit(fwdq_events_[k]);
  }
  return vec;
}

std::vector<tgen::TestTemplate> Lsu::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
