// Behavioural model of an I/O (link controller) unit with a CRC-burst
// coverage family — the paper's Fig. 3 subject.
//
// The unit processes a stream of commands. "crc_write" commands extend
// an open CRC-protected transfer by a burst of beats; a "crc_done"
// command commits the transfer, and the family events crc_004 ..
// crc_096 fire when the longest *committed* transfer in a simulation
// reaches the threshold. A transfer in progress is fragile — exactly
// the kind of deep machine state that makes these events hard to hit:
//   * write / ctrl / abort commands abort it uncommitted;
//   * an injected CRC or parity error aborts it;
//   * an inter-command gap longer than kGapTimeout cycles times it out;
//   * bursts consume buffer credits which refill with the gaps, so
//     back-to-back maximal bursts starve and stall;
//   * every beat independently risks a link retrain (kBeatHazard) that
//     no template parameter can disable — the irreducible hazard that
//     gives the family its gradient even under an optimal template.
//
// Hitting crc_096 therefore needs a template that simultaneously raises
// the crc_write weight, keeps a small-but-nonzero crc_done weight (too
// high commits transfers short, too low lets hazards kill them),
// shortens gaps below the timeout (but not so much that credits
// starve), maximizes burst length, and disables error injection — a
// multi-parameter optimum with real tension, which is what gives the
// fine-grained search something to do.
#pragma once

#include <cstdint>

#include "duv/duv.hpp"

namespace ascdg::duv {

class IoUnit final : public Duv {
 public:
  IoUnit();

  [[nodiscard]] std::string_view name() const noexcept override {
    return "io_unit";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override;
  [[nodiscard]] std::unique_ptr<Compiled> compile(
      const tgen::TestTemplate& tmpl) const override;
  void simulate_batch(const tgen::TestTemplate& tmpl, const Compiled* compiled,
                      std::span<const std::uint64_t> seeds,
                      std::span<coverage::CoverageVector> out) const override;
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override;

  /// The crc_* family (ordered easy -> hard).
  [[nodiscard]] const std::vector<coverage::EventId>& crc_family() const noexcept {
    return crc_events_;
  }

  /// Micro-architectural constants (exposed for tests).
  static constexpr std::int64_t kGapTimeout = 24;   ///< cycles; longer gap kills a transfer
  static constexpr std::int64_t kCreditCap = 8;     ///< max buffer credits
  static constexpr double kBeatHazard = 0.02;       ///< per-beat link-retrain probability
  static constexpr int kCrcThresholds[6] = {4, 8, 16, 32, 64, 96};

 private:
  /// Compiled distribution tables + precomputed entry codes (io_unit.cpp).
  struct Tables;
  [[nodiscard]] std::unique_ptr<Tables> make_tables(
      const tgen::TestTemplate& tmpl) const;
  /// The one simulation kernel: lane i advances seeds[i] into out[i].
  void run_lanes(const Tables& tables, std::span<const std::uint64_t> seeds,
                 std::span<coverage::CoverageVector> out) const;

  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  std::vector<coverage::EventId> crc_events_;
  // Misc event ids cached for the hot loop.
  coverage::EventId ev_cmd_[7]{};
  coverage::EventId ev_err_crc_{}, ev_err_parity_{};
  coverage::EventId ev_credit_stall_{};
  coverage::EventId ev_addr_[3]{};
  coverage::EventId ev_qos_[4]{};
  coverage::EventId ev_pkt_[3]{};
  coverage::EventId ev_burst_partial_{};
  coverage::EventId ev_link_retrain_{};
  coverage::EventId ev_crc_commit_{};
};

}  // namespace ascdg::duv
