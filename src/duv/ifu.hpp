// Behavioural model of an Instruction Fetch Unit with a 256-event
// cross-product coverage model — the paper's Fig. 5 subject.
//
// The cross product is entry(0-7) x thread(0-3) x sector(0-3) x
// branch(0-1): an event fires when a fetch from a given thread is
// allocated into a given fetch-buffer entry, targeting a given icache
// sector, with a given branch-prediction flag.
//
// The fetch buffer has 8 architected entries, but a credit limiter caps
// live occupancy at kCreditCap = 7 — so entry 7 can never be allocated
// and all 32 entry7 events are structurally unhittable. This reproduces
// the paper's honest negative result ("32 events (all entry7 events)
// remained uncovered at the end of the flow, and are considered out of
// the unit capabilities to hit").
//
// Deep entries require many fetches in flight at once: a small fetch
// gap, frequent icache misses (slow drains), and no taken-branch
// redirects (which flush the buffer). The default settings are skewed
// toward thread 0 / sector 0 / not-taken, so the deep corners of the
// cross product start uncovered.
#pragma once

#include <cstdint>

#include "duv/duv.hpp"

namespace ascdg::duv {

class Ifu final : public Duv {
 public:
  Ifu();

  [[nodiscard]] std::string_view name() const noexcept override { return "ifu"; }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override;
  [[nodiscard]] std::unique_ptr<Compiled> compile(
      const tgen::TestTemplate& tmpl) const override;
  void simulate_batch(const tgen::TestTemplate& tmpl, const Compiled* compiled,
                      std::span<const std::uint64_t> seeds,
                      std::span<coverage::CoverageVector> out) const override;
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override;

  /// The 256-event cross product block.
  [[nodiscard]] const coverage::CrossProduct& cross_product() const noexcept {
    return *cross_;
  }

  static constexpr std::size_t kEntries = 8;    ///< architected buffer entries
  static constexpr std::size_t kCreditCap = 7;  ///< live-occupancy credit limit
  static constexpr std::size_t kThreads = 4;
  static constexpr std::size_t kSectors = 4;

 private:
  /// Compiled distribution tables + precomputed entry codes (ifu.cpp).
  struct Tables;
  [[nodiscard]] std::unique_ptr<Tables> make_tables(
      const tgen::TestTemplate& tmpl) const;
  /// The one simulation kernel: lane i advances seeds[i] into out[i].
  /// simulate() is this at width 1; simulate_batch() at width N.
  void run_lanes(const Tables& tables, std::span<const std::uint64_t> seeds,
                 std::span<coverage::CoverageVector> out) const;

  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  const coverage::CrossProduct* cross_ = nullptr;
  coverage::EventId ev_stall_{};
  coverage::EventId ev_redirect_{};
  coverage::EventId ev_icache_miss_{};
  coverage::EventId ev_thread_switch_{};
};

}  // namespace ascdg::duv
