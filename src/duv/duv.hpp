// The design-under-verification interface.
//
// This is the boundary that keeps AS-CDG "black box" (paper §I): the
// CDG flow only ever interacts with a Duv through (a) its coverage-event
// declarations, (b) its default test-template (the full parameter list
// with default settings), and (c) simulate(), which maps a test-template
// plus a seed to a coverage vector. A wrapper around a real RTL
// simulator can implement the same interface.
//
// simulate() must be:
//   * deterministic — the same (template, seed) always yields the same
//     coverage vector;
//   * thread-safe   — no mutable shared state; all simulation state is
//     local to the call (the batch farm calls it concurrently).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "coverage/space.hpp"
#include "coverage/vector.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::duv {

class Duv {
 public:
  virtual ~Duv() = default;

  Duv(const Duv&) = delete;
  Duv& operator=(const Duv&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// All coverage events this unit monitors.
  [[nodiscard]] virtual const coverage::CoverageSpace& space() const noexcept = 0;

  /// The full parameter list with default settings. Test-templates
  /// override a subset of these; unknown parameter names in a template
  /// are ignored by the generator (they simply are never consulted).
  [[nodiscard]] virtual const tgen::TestTemplate& defaults() const noexcept = 0;

  /// Generates one test-instance from `tmpl` (falling back to the
  /// defaults for parameters the template does not set) and simulates
  /// it, returning the coverage vector.
  [[nodiscard]] virtual coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const = 0;

  /// The unit's existing regression suite: the test-templates "developed
  /// by the verification team" (paper §IV-B) that the coarse-grained
  /// search mines for relevant parameters.
  [[nodiscard]] virtual std::vector<tgen::TestTemplate> suite() const = 0;

 protected:
  Duv() = default;
};

}  // namespace ascdg::duv
