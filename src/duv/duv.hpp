// The design-under-verification interface.
//
// This is the boundary that keeps AS-CDG "black box" (paper §I): the
// CDG flow only ever interacts with a Duv through (a) its coverage-event
// declarations, (b) its default test-template (the full parameter list
// with default settings), and (c) simulate(), which maps a test-template
// plus a seed to a coverage vector. A wrapper around a real RTL
// simulator can implement the same interface.
//
// simulate() must be:
//   * deterministic — the same (template, seed) always yields the same
//     coverage vector;
//   * thread-safe   — no mutable shared state; all simulation state is
//     local to the call (the batch farm calls it concurrently).
//
// simulate_batch() is the farm's hot entry point: it advances a whole
// span of seeds through one call, letting a unit keep per-seed state in
// structure-of-arrays form and reuse its compiled distribution tables
// across lanes. The default implementation is a scalar loop over
// simulate(), so an external RTL wrapper implements only the scalar
// method and still works everywhere (see docs/porting.md). Whatever the
// implementation, lane i of a batch must be bit-identical to
// simulate(tmpl, seeds[i]) — batching is an execution detail, never an
// observable one.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "coverage/space.hpp"
#include "coverage/vector.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::duv {

class Duv {
 public:
  virtual ~Duv() = default;

  Duv(const Duv&) = delete;
  Duv& operator=(const Duv&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// All coverage events this unit monitors.
  [[nodiscard]] virtual const coverage::CoverageSpace& space() const noexcept = 0;

  /// The full parameter list with default settings. Test-templates
  /// override a subset of these; unknown parameter names in a template
  /// are ignored by the generator (they simply are never consulted).
  [[nodiscard]] virtual const tgen::TestTemplate& defaults() const noexcept = 0;

  /// Generates one test-instance from `tmpl` (falling back to the
  /// defaults for parameters the template does not set) and simulates
  /// it, returning the coverage vector.
  [[nodiscard]] virtual coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const = 0;

  /// Opaque per-template precomputation (resolved parameter tables,
  /// precompiled distributions, ...). The batch farm compiles each job's
  /// template once and passes the result to every simulate_batch() call
  /// of that job.
  class Compiled {
   public:
    virtual ~Compiled() = default;
    Compiled(const Compiled&) = delete;
    Compiled& operator=(const Compiled&) = delete;

   protected:
    Compiled() = default;
  };

  /// Precompiles `tmpl` for simulate_batch(). The default returns
  /// nullptr — "no precomputation" — which every simulate_batch()
  /// implementation must accept. The result is immutable and safe to
  /// share across threads; it borrows `tmpl`, which must outlive it.
  [[nodiscard]] virtual std::unique_ptr<Compiled> compile(
      const tgen::TestTemplate& tmpl) const {
    (void)tmpl;
    return nullptr;
  }

  /// Simulates seeds[i] into out[i] for the whole span (sizes must
  /// match; each out[i] is overwritten, whatever it held). `compiled`
  /// is either nullptr or this unit's compile() result for `tmpl`.
  /// Contract: out[i] must equal simulate(tmpl, seeds[i]) bit for bit,
  /// at any batch width. The default is exactly that scalar loop, so a
  /// wrapper around a real RTL simulator opts out of batching by simply
  /// not overriding this.
  virtual void simulate_batch(const tgen::TestTemplate& tmpl,
                              const Compiled* compiled,
                              std::span<const std::uint64_t> seeds,
                              std::span<coverage::CoverageVector> out) const {
    (void)compiled;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      out[i] = simulate(tmpl, seeds[i]);
    }
  }

  /// The unit's existing regression suite: the test-templates "developed
  /// by the verification team" (paper §IV-B) that the coarse-grained
  /// search mines for relevant parameters.
  [[nodiscard]] virtual std::vector<tgen::TestTemplate> suite() const = 0;

 protected:
  Duv() = default;
};

}  // namespace ascdg::duv
