#include "duv/ifu.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "stimgen/sampler.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

constexpr std::string_view kSuiteText = R"(
# Single-thread default run.
template ifu_default {
  weight ThreadSel { 0: 70, 1: 20, 2: 8, 3: 2 }
}

# Sequential fetch bandwidth (no branches).
template ifu_seq_fetch {
  weight BranchDir { not_taken: 98, taken: 2 }
  range FetchGap [6, 15]
  weight SectorSel { 0: 70, 1: 20, 2: 8, 3: 2 }
}

# Branch-heavy workload.
template ifu_branchy {
  weight BranchDir { not_taken: 45, taken: 55 }
  weight Redirect { off: 40, on: 60 }
}

# ICache thrash: many misses, slow drains.
template ifu_icache_thrash {
  weight ICache { hit: 60, miss: 40 }
  range MissLatency [10, 18]
  range FetchGap [2, 15]
}

# SMT fairness mix.
template ifu_smt_mix {
  weight ThreadSel { 0: 25, 1: 25, 2: 25, 3: 25 }
  range FetchGap [6, 12]
}

# Sector sweep diagnostics.
template ifu_sector_sweep {
  weight SectorSel { 0: 25, 1: 25, 2: 25, 3: 25 }
}

# Back-to-back fetch pressure: the template whose parameters matter for
# deep buffer occupancy.
template ifu_b2b_fetch {
  range FetchGap [2, 5]
  weight ICache { hit: 70, miss: 30 }
  weight BranchDir { not_taken: 90, taken: 10 }
}

# Long-latency corner.
template ifu_slow_drain {
  range MissLatency [22, 30]
  weight ICache { hit: 70, miss: 30 }
}
)";

}  // namespace

Ifu::Ifu() : defaults_("ifu_defaults") {
  cross_ = &space_.declare_cross_product(
      "ifu", {{"entry", kEntries},
              {"thread", kThreads},
              {"sector", kSectors},
              {"branch", 2}});
  ev_stall_ = space_.declare_event("ifu_credit_stall");
  ev_redirect_ = space_.declare_event("ifu_redirect_flush");
  ev_icache_miss_ = space_.declare_event("ifu_icache_miss");
  ev_thread_switch_ = space_.declare_event("ifu_thread_switch");

  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"ThreadSel",
                                {{Value{std::int64_t{0}}, 70},
                                 {Value{std::int64_t{1}}, 20},
                                 {Value{std::int64_t{2}}, 8},
                                 {Value{std::int64_t{3}}, 2}}});
  defaults_.add(WeightParameter{"SectorSel",
                                {{Value{std::int64_t{0}}, 50},
                                 {Value{std::int64_t{1}}, 30},
                                 {Value{std::int64_t{2}}, 15},
                                 {Value{std::int64_t{3}}, 5}}});
  defaults_.add(WeightParameter{"BranchDir",
                                {{Value{"not_taken"}, 90}, {Value{"taken"}, 10}}});
  defaults_.add(RangeParameter{"FetchGap", 2, 15});
  defaults_.add(WeightParameter{"ICache",
                                {{Value{"hit"}, 85}, {Value{"miss"}, 15}}});
  defaults_.add(RangeParameter{"HitLatency", 1, 3});
  defaults_.add(RangeParameter{"MissLatency", 8, 30});
  defaults_.add(WeightParameter{"Redirect",
                                {{Value{"off"}, 90}, {Value{"on"}, 10}}});
  defaults_.add(RangeParameter{"NumFetches", 80, 240});
}

coverage::CoverageVector Ifu::simulate(const tgen::TestTemplate& tmpl,
                                       std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  stimgen::ParameterSampler sampler(&tmpl, defaults_, rng);
  coverage::CoverageVector vec(space_.size());

  const std::int64_t num_fetches = sampler.draw_range("NumFetches");

  // Live fetch-buffer entries: completion timestamps, kept sorted is not
  // needed — we drain by scanning (occupancy <= 7).
  std::vector<std::int64_t> live;
  live.reserve(kCreditCap);
  std::int64_t now = 0;
  std::int64_t last_thread = -1;

  for (std::int64_t fetch = 0; fetch < num_fetches; ++fetch) {
    now += sampler.draw_range("FetchGap");

    // Drain entries whose icache response has arrived.
    std::erase_if(live, [now](std::int64_t t) { return t <= now; });

    const std::int64_t thread = std::clamp<std::int64_t>(
        sampler.draw_int_value("ThreadSel"), 0, kThreads - 1);
    if (last_thread >= 0 && thread != last_thread) vec.hit(ev_thread_switch_);
    last_thread = thread;

    const std::int64_t sector = std::clamp<std::int64_t>(
        sampler.draw_int_value("SectorSel"), 0, kSectors - 1);
    const bool taken = sampler.draw("BranchDir").as_symbol() == "taken";

    // Credit limiter: live occupancy is capped at 7, so allocation index
    // 7 (the 8th entry) is structurally unreachable.
    if (live.size() >= kCreditCap) {
      vec.hit(ev_stall_);
      continue;
    }
    const std::size_t entry = live.size();

    const bool miss = sampler.draw("ICache").as_symbol() == "miss";
    if (miss) vec.hit(ev_icache_miss_);
    const std::int64_t latency =
        miss ? sampler.draw_range("MissLatency") : sampler.draw_range("HitLatency");
    live.push_back(now + latency);

    const std::size_t coords[4] = {entry, static_cast<std::size_t>(thread),
                                   static_cast<std::size_t>(sector),
                                   taken ? std::size_t{1} : std::size_t{0}};
    vec.hit(space_.cross_event(*cross_, coords));

    // A taken branch with redirect enabled flushes the fetch buffer.
    if (taken && sampler.draw("Redirect").as_symbol() == "on") {
      vec.hit(ev_redirect_);
      live.clear();
    }
  }
  return vec;
}

std::vector<tgen::TestTemplate> Ifu::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
