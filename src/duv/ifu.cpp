#include "duv/ifu.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stimgen/compiled.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

constexpr std::string_view kSuiteText = R"(
# Single-thread default run.
template ifu_default {
  weight ThreadSel { 0: 70, 1: 20, 2: 8, 3: 2 }
}

# Sequential fetch bandwidth (no branches).
template ifu_seq_fetch {
  weight BranchDir { not_taken: 98, taken: 2 }
  range FetchGap [6, 15]
  weight SectorSel { 0: 70, 1: 20, 2: 8, 3: 2 }
}

# Branch-heavy workload.
template ifu_branchy {
  weight BranchDir { not_taken: 45, taken: 55 }
  weight Redirect { off: 40, on: 60 }
}

# ICache thrash: many misses, slow drains.
template ifu_icache_thrash {
  weight ICache { hit: 60, miss: 40 }
  range MissLatency [10, 18]
  range FetchGap [2, 15]
}

# SMT fairness mix.
template ifu_smt_mix {
  weight ThreadSel { 0: 25, 1: 25, 2: 25, 3: 25 }
  range FetchGap [6, 12]
}

# Sector sweep diagnostics.
template ifu_sector_sweep {
  weight SectorSel { 0: 25, 1: 25, 2: 25, 3: 25 }
}

# Back-to-back fetch pressure: the template whose parameters matter for
# deep buffer occupancy.
template ifu_b2b_fetch {
  range FetchGap [2, 5]
  weight ICache { hit: 70, miss: 30 }
  weight BranchDir { not_taken: 90, taken: 10 }
}

# Long-latency corner.
template ifu_slow_drain {
  range MissLatency [22, 30]
  weight ICache { hit: 70, miss: 30 }
}
)";

}  // namespace

Ifu::Ifu() : defaults_("ifu_defaults") {
  cross_ = &space_.declare_cross_product(
      "ifu", {{"entry", kEntries},
              {"thread", kThreads},
              {"sector", kSectors},
              {"branch", 2}});
  ev_stall_ = space_.declare_event("ifu_credit_stall");
  ev_redirect_ = space_.declare_event("ifu_redirect_flush");
  ev_icache_miss_ = space_.declare_event("ifu_icache_miss");
  ev_thread_switch_ = space_.declare_event("ifu_thread_switch");

  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"ThreadSel",
                                {{Value{std::int64_t{0}}, 70},
                                 {Value{std::int64_t{1}}, 20},
                                 {Value{std::int64_t{2}}, 8},
                                 {Value{std::int64_t{3}}, 2}}});
  defaults_.add(WeightParameter{"SectorSel",
                                {{Value{std::int64_t{0}}, 50},
                                 {Value{std::int64_t{1}}, 30},
                                 {Value{std::int64_t{2}}, 15},
                                 {Value{std::int64_t{3}}, 5}}});
  defaults_.add(WeightParameter{"BranchDir",
                                {{Value{"not_taken"}, 90}, {Value{"taken"}, 10}}});
  defaults_.add(RangeParameter{"FetchGap", 2, 15});
  defaults_.add(WeightParameter{"ICache",
                                {{Value{"hit"}, 85}, {Value{"miss"}, 15}}});
  defaults_.add(RangeParameter{"HitLatency", 1, 3});
  defaults_.add(RangeParameter{"MissLatency", 8, 30});
  defaults_.add(WeightParameter{"Redirect",
                                {{Value{"off"}, 90}, {Value{"on"}, 10}}});
  defaults_.add(RangeParameter{"NumFetches", 80, 240});
}

// Compiled per-template distribution tables. Entry codes turn the
// per-draw symbol comparisons of the scalar path into integer compares:
// code 0 means the "interesting" symbol ("taken" / "miss" / "on"),
// anything else falls through exactly like an unmatched symbol did.
struct Ifu::Tables final : Duv::Compiled {
  stimgen::CompiledTemplate table;
  const stimgen::CompiledParam* num_fetches;
  const stimgen::CompiledParam* fetch_gap;
  const stimgen::CompiledParam* thread_sel;
  const stimgen::CompiledParam* sector_sel;
  const stimgen::CompiledParam* branch_dir;
  const stimgen::CompiledParam* icache;
  const stimgen::CompiledParam* hit_latency;
  const stimgen::CompiledParam* miss_latency;
  const stimgen::CompiledParam* redirect;
  std::vector<std::int32_t> branch_taken;
  std::vector<std::int32_t> icache_miss;
  std::vector<std::int32_t> redirect_on;

  Tables(const tgen::TestTemplate* overrides, const tgen::TestTemplate& defaults)
      : table(overrides, defaults),
        num_fetches(table.find("NumFetches")),
        fetch_gap(table.find("FetchGap")),
        thread_sel(table.find("ThreadSel")),
        sector_sel(table.find("SectorSel")),
        branch_dir(table.find("BranchDir")),
        icache(table.find("ICache")),
        hit_latency(table.find("HitLatency")),
        miss_latency(table.find("MissLatency")),
        redirect(table.find("Redirect")) {
    constexpr std::string_view kTaken[] = {"taken"};
    constexpr std::string_view kMiss[] = {"miss"};
    constexpr std::string_view kOn[] = {"on"};
    branch_taken = stimgen::entry_codes(*branch_dir, kTaken, 1);
    icache_miss = stimgen::entry_codes(*icache, kMiss, 1);
    redirect_on = stimgen::entry_codes(*redirect, kOn, 1);
  }
};

namespace {

/// Per-worker SoA lane state, reused across batches (thread_local so
/// every farm worker owns one arena and the kernel allocates nothing
/// in steady state).
struct IfuLanes {
  std::vector<util::Xoshiro256> rng;
  std::vector<std::int64_t> now;
  std::vector<std::int64_t> last_thread;
  std::vector<std::int64_t> fetches_left;
  std::vector<std::int64_t> live;  ///< [lane * kCreditCap + e] timestamps
  std::vector<std::uint32_t> live_n;
  std::vector<std::uint32_t> active;
};

IfuLanes& ifu_lanes() {
  static thread_local IfuLanes lanes;
  return lanes;
}

}  // namespace

void Ifu::run_lanes(const Tables& t, std::span<const std::uint64_t> seeds,
                    std::span<coverage::CoverageVector> out) const {
  ASCDG_ASSERT(seeds.size() == out.size(), "batch seed/out size mismatch");
  const std::size_t n = seeds.size();
  IfuLanes& ws = ifu_lanes();
  ws.rng.clear();
  ws.rng.reserve(n);
  ws.now.assign(n, 0);
  ws.last_thread.assign(n, -1);
  ws.fetches_left.resize(n);
  ws.live.assign(n * kCreditCap, 0);
  ws.live_n.assign(n, 0);
  ws.active.clear();
  ws.active.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    ws.rng.emplace_back(seeds[l]);
    out[l].reset(space_.size());
    ws.fetches_left[l] = t.num_fetches->draw_range(ws.rng[l]);
    if (ws.fetches_left[l] > 0) ws.active.push_back(static_cast<std::uint32_t>(l));
  }

  // Round-robin over live lanes: every pass runs one fetch iteration
  // per lane (per-lane RNG streams keep the interleave unobservable),
  // retiring finished lanes by compaction.
  while (!ws.active.empty()) {
    std::size_t kept = 0;
    for (const std::uint32_t l : ws.active) {
      util::Xoshiro256& rng = ws.rng[l];
      coverage::CoverageVector& vec = out[l];
      std::int64_t& now = ws.now[l];

      now += t.fetch_gap->draw_range(rng);

      // Drain entries whose icache response has arrived (stable
      // compaction — same survivors and order as the erase_if it ports).
      std::int64_t* live = ws.live.data() + std::size_t{l} * kCreditCap;
      std::uint32_t& live_n = ws.live_n[l];
      std::uint32_t keep = 0;
      for (std::uint32_t e = 0; e < live_n; ++e) {
        if (live[e] > now) live[keep++] = live[e];
      }
      live_n = keep;

      const std::int64_t thread = std::clamp<std::int64_t>(
          t.thread_sel->draw_int(rng), 0, kThreads - 1);
      if (ws.last_thread[l] >= 0 && thread != ws.last_thread[l]) {
        vec.hit(ev_thread_switch_);
      }
      ws.last_thread[l] = thread;

      const std::int64_t sector = std::clamp<std::int64_t>(
          t.sector_sel->draw_int(rng), 0, kSectors - 1);
      const bool taken = stimgen::entry_code(*t.branch_dir, t.branch_taken,
                                             t.branch_dir->draw_index(rng)) == 0;

      // Credit limiter: live occupancy is capped at 7, so allocation
      // index 7 (the 8th entry) is structurally unreachable.
      if (live_n >= kCreditCap) {
        vec.hit(ev_stall_);
      } else {
        const std::size_t entry = live_n;

        const bool miss = stimgen::entry_code(*t.icache, t.icache_miss,
                                              t.icache->draw_index(rng)) == 0;
        if (miss) vec.hit(ev_icache_miss_);
        const std::int64_t latency = miss ? t.miss_latency->draw_range(rng)
                                          : t.hit_latency->draw_range(rng);
        live[live_n++] = now + latency;

        const std::size_t coords[4] = {entry, static_cast<std::size_t>(thread),
                                       static_cast<std::size_t>(sector),
                                       taken ? std::size_t{1} : std::size_t{0}};
        vec.hit(space_.cross_event(*cross_, coords));

        // A taken branch with redirect enabled flushes the fetch buffer.
        if (taken && stimgen::entry_code(*t.redirect, t.redirect_on,
                                         t.redirect->draw_index(rng)) == 0) {
          vec.hit(ev_redirect_);
          live_n = 0;
        }
      }

      if (--ws.fetches_left[l] > 0) ws.active[kept++] = l;
    }
    ws.active.resize(kept);
  }
}

std::unique_ptr<Ifu::Tables> Ifu::make_tables(
    const tgen::TestTemplate& tmpl) const {
  return std::make_unique<Tables>(&tmpl, defaults_);
}

coverage::CoverageVector Ifu::simulate(const tgen::TestTemplate& tmpl,
                                       std::uint64_t seed) const {
  coverage::CoverageVector vec(space_.size());
  const auto tables = make_tables(tmpl);
  run_lanes(*tables, std::span<const std::uint64_t>(&seed, 1),
            std::span<coverage::CoverageVector>(&vec, 1));
  return vec;
}

std::unique_ptr<duv::Duv::Compiled> Ifu::compile(
    const tgen::TestTemplate& tmpl) const {
  return make_tables(tmpl);
}

void Ifu::simulate_batch(const tgen::TestTemplate& tmpl,
                         const Compiled* compiled,
                         std::span<const std::uint64_t> seeds,
                         std::span<coverage::CoverageVector> out) const {
  if (compiled == nullptr) {
    run_lanes(*make_tables(tmpl), seeds, out);
    return;
  }
  const auto* tables = dynamic_cast<const Tables*>(compiled);
  ASCDG_ASSERT(tables != nullptr, "compiled tables do not belong to this unit");
  run_lanes(*tables, seeds, out);
}

std::vector<tgen::TestTemplate> Ifu::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
