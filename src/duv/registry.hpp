// Registry of the bundled simulated units, so tools, examples, and
// tests can construct them by name without hard-coding the list.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "duv/duv.hpp"

namespace ascdg::duv {

/// Names of all bundled units, in a stable order.
[[nodiscard]] std::vector<std::string> unit_names();

/// Constructs a bundled unit by name; nullptr for unknown names.
[[nodiscard]] std::unique_ptr<Duv> make_unit(std::string_view name);

/// One-line description of a bundled unit ("" for unknown names).
[[nodiscard]] std::string_view unit_description(std::string_view name);

/// The coverage-event family each bundled unit's headline experiment
/// targets ("" for unknown names) — crc, byp_reqs, ifu, lsu_fwdq.
[[nodiscard]] std::string_view unit_primary_family(std::string_view name);

}  // namespace ascdg::duv
