// Behavioural model of a Load-Store Unit — the unit the paper's Fig. 1
// uses for its test-template example ("stressing the load store unit of
// a processor with a weight parameter for the instruction mnemonic and
// a range parameter for the cache delay"). The suite even contains the
// figure's lsu_stress template verbatim.
//
// The unit executes an instruction stream of {load, store, add, sync}.
// Stores enter a 12-deep store queue and retire after a delay derived
// from CacheDelay (slow caches keep stores queued longer). A load to a
// line with an outstanding store forwards from the queue; the family
// lsu_fwdq_01 .. lsu_fwdq_12 fires at the maximum store-queue occupancy
// observed at any forwarding event in the simulation.
//
// Deep forwarding occupancy needs: a store-heavy mnemonic mix (but with
// enough loads left to forward), same-line addressing (so the load
// matches), long cache delays (slow retirement), and few syncs (a sync
// drains the queue) — again a multi-parameter optimum.
#pragma once

#include <cstdint>

#include "duv/duv.hpp"

namespace ascdg::duv {

class Lsu final : public Duv {
 public:
  Lsu();

  [[nodiscard]] std::string_view name() const noexcept override { return "lsu"; }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override;
  [[nodiscard]] std::unique_ptr<Compiled> compile(
      const tgen::TestTemplate& tmpl) const override;
  void simulate_batch(const tgen::TestTemplate& tmpl, const Compiled* compiled,
                      std::span<const std::uint64_t> seeds,
                      std::span<coverage::CoverageVector> out) const override;
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override;

  /// The lsu_fwdq_01..12 family (ordered easy -> hard).
  [[nodiscard]] const std::vector<coverage::EventId>& fwdq_family() const noexcept {
    return fwdq_events_;
  }

  static constexpr std::size_t kStoreQueueDepth = 12;
  static constexpr std::int64_t kLineCount = 256;  ///< distinct cache lines

 private:
  /// Compiled distribution tables + precomputed entry codes (lsu.cpp).
  struct Tables;
  [[nodiscard]] std::unique_ptr<Tables> make_tables(
      const tgen::TestTemplate& tmpl) const;
  /// The one simulation kernel: lane i advances seeds[i] into out[i].
  void run_lanes(const Tables& tables, std::span<const std::uint64_t> seeds,
                 std::span<coverage::CoverageVector> out) const;

  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  std::vector<coverage::EventId> fwdq_events_;
  coverage::EventId ev_mnemonic_[4]{};
  coverage::EventId ev_fwd_hit_{};
  coverage::EventId ev_ld_hit_{}, ev_ld_miss_{};
  coverage::EventId ev_stq_full_{};
  coverage::EventId ev_sync_drain_{};
  coverage::EventId ev_bank_conflict_{};
};

}  // namespace ascdg::duv
