#include "duv/io_unit.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stimgen/compiled.hpp"
#include "tgen/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

// Command indices into ev_cmd_ (must match kCmdNames order).
enum Cmd : std::size_t {
  kRead = 0,
  kWrite,
  kCrcWrite,
  kCrcDone,
  kCtrl,
  kNop,
  kAbort,
  kCmdCount
};
constexpr const char* kCmdNames[kCmdCount] = {"read", "write",    "crc_write",
                                              "crc_done", "ctrl", "nop",
                                              "abort"};

// The unit's existing regression suite (paper §IV-B): templates written
// by the verification team over the project's lifetime. Only a couple
// of them exercise the CRC path at all, which is why the crc_* family
// tail is uncovered before CDG. Kept as DSL text so the suite also
// exercises the parser on realistic input.
constexpr std::string_view kSuiteText = R"(
# Plain defaults: what a nightly sanity run uses.
template io_default {
  weight Cmd { read: 35, write: 30, crc_write: 8, crc_done: 2, ctrl: 10, nop: 10, abort: 5 }
}

# Read bandwidth stress.
template io_read_stress {
  weight Cmd { read: 70, write: 15, crc_write: 0, crc_done: 0, ctrl: 5, nop: 10, abort: 0 }
  range PacketSize [64, 256]
  weight AddrMode { seq: 70, rand: 25, wrap: 5 }
}

# Write bandwidth stress.
template io_write_stress {
  weight Cmd { read: 10, write: 75, crc_write: 0, crc_done: 0, ctrl: 10, nop: 5, abort: 0 }
  range PacketSize [64, 256]
}

# Error recovery paths.
template io_error_storm {
  weight ErrInject { off: 70, crc_err: 15, parity_err: 15 }
  weight Cmd { read: 30, write: 28, crc_write: 8, crc_done: 2, ctrl: 12, nop: 5, abort: 15 }
}

# CRC datapath smoke test: the only template that meaningfully enables
# the crc_write/crc_done pair. This is the one the coarse-grained
# search should find.
template io_crc_smoke {
  weight Cmd { read: 15, write: 10, crc_write: 35, crc_done: 10, ctrl: 5, nop: 20, abort: 5 }
  range BurstLen [2, 8]
  weight ErrInject { off: 98, crc_err: 1, parity_err: 1 }
}

# CRC with lazy pacing - long gaps kill most transfers.
template io_crc_long_gap {
  weight Cmd { read: 20, write: 15, crc_write: 28, crc_done: 7, ctrl: 10, nop: 15, abort: 5 }
  range GapDelay [8, 63]
}

# Control/abort corner cases.
template io_ctrl_heavy {
  weight Cmd { read: 15, write: 15, crc_write: 4, crc_done: 1, ctrl: 35, nop: 10, abort: 20 }
}

# QoS arbitration sweep.
template io_qos_sweep {
  weight Qos { 0: 25, 1: 25, 2: 25, 3: 25 }
  weight Cmd { read: 40, write: 40, crc_write: 0, crc_done: 0, ctrl: 10, nop: 10, abort: 0 }
}

# Address wrap corner.
template io_addr_wrap {
  weight AddrMode { seq: 10, rand: 10, wrap: 80 }
}

# Mixed mild stress.
template io_mixed {
  weight Cmd { read: 28, write: 22, crc_write: 12, crc_done: 3, ctrl: 10, nop: 20, abort: 5 }
  range GapDelay [0, 47]
  weight Qos { 0: 30, 1: 30, 2: 25, 3: 15 }
}
)";

}  // namespace

IoUnit::IoUnit() : defaults_("io_unit_defaults") {
  // --- Coverage events -------------------------------------------------
  const std::array<std::string, 6> crc_suffixes = {"004", "008", "016",
                                                   "032", "064", "096"};
  crc_events_ = space_.declare_family("crc", crc_suffixes);

  for (std::size_t c = 0; c < kCmdCount; ++c) {
    ev_cmd_[c] = space_.declare_event("io_cmd_" + std::string(kCmdNames[c]));
  }
  ev_err_crc_ = space_.declare_event("io_err_crc");
  ev_err_parity_ = space_.declare_event("io_err_parity");
  ev_credit_stall_ = space_.declare_event("io_credit_stall");
  ev_burst_partial_ = space_.declare_event("io_burst_partial");
  ev_link_retrain_ = space_.declare_event("io_link_retrain");
  ev_crc_commit_ = space_.declare_event("io_crc_commit");
  const char* addr_names[3] = {"io_addr_seq", "io_addr_rand", "io_addr_wrap"};
  for (std::size_t i = 0; i < 3; ++i) {
    ev_addr_[i] = space_.declare_event(addr_names[i]);
  }
  for (std::size_t q = 0; q < 4; ++q) {
    ev_qos_[q] = space_.declare_event("io_qos" + std::to_string(q));
  }
  const char* pkt_names[3] = {"io_pkt_small", "io_pkt_med", "io_pkt_large"};
  for (std::size_t i = 0; i < 3; ++i) {
    ev_pkt_[i] = space_.declare_event(pkt_names[i]);
  }

  // --- Default parameter settings --------------------------------------
  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"Cmd",
                                {{Value{"read"}, 35},
                                 {Value{"write"}, 30},
                                 {Value{"crc_write"}, 8},
                                 {Value{"crc_done"}, 2},
                                 {Value{"ctrl"}, 10},
                                 {Value{"nop"}, 10},
                                 {Value{"abort"}, 5}}});
  defaults_.add(RangeParameter{"BurstLen", 1, 8});
  defaults_.add(RangeParameter{"GapDelay", 0, 63});
  defaults_.add(WeightParameter{"ErrInject",
                                {{Value{"off"}, 96},
                                 {Value{"crc_err"}, 2},
                                 {Value{"parity_err"}, 2}}});
  defaults_.add(RangeParameter{"CreditLimit", 4, 8});
  defaults_.add(RangeParameter{"NumOps", 60, 160});
  defaults_.add(WeightParameter{
      "AddrMode",
      {{Value{"seq"}, 50}, {Value{"rand"}, 40}, {Value{"wrap"}, 10}}});
  defaults_.add(WeightParameter{"Qos",
                                {{Value{std::int64_t{0}}, 40},
                                 {Value{std::int64_t{1}}, 30},
                                 {Value{std::int64_t{2}}, 20},
                                 {Value{std::int64_t{3}}, 10}}});
  defaults_.add(RangeParameter{"PacketSize", 1, 256});
}

// Compiled per-template distribution tables. Cmd codes index straight
// into ev_cmd_ (unmatched symbols decay to read, like the scalar scan);
// ErrInject codes are 0 off / 1 crc_err / 2 any-other-symbol; AddrMode
// codes are 0 seq / 1 rand / 2 wrap-or-unknown.
struct IoUnit::Tables final : Duv::Compiled {
  stimgen::CompiledTemplate table;
  const stimgen::CompiledParam* num_ops;
  const stimgen::CompiledParam* credit_limit;
  const stimgen::CompiledParam* gap_delay;
  const stimgen::CompiledParam* err_inject;
  const stimgen::CompiledParam* addr_mode;
  const stimgen::CompiledParam* qos;
  const stimgen::CompiledParam* packet_size;
  const stimgen::CompiledParam* cmd;
  const stimgen::CompiledParam* burst_len;
  std::vector<std::int32_t> err_codes;
  std::vector<std::int32_t> addr_codes;
  std::vector<std::int32_t> cmd_codes;

  Tables(const tgen::TestTemplate* overrides, const tgen::TestTemplate& defaults)
      : table(overrides, defaults),
        num_ops(table.find("NumOps")),
        credit_limit(table.find("CreditLimit")),
        gap_delay(table.find("GapDelay")),
        err_inject(table.find("ErrInject")),
        addr_mode(table.find("AddrMode")),
        qos(table.find("Qos")),
        packet_size(table.find("PacketSize")),
        cmd(table.find("Cmd")),
        burst_len(table.find("BurstLen")) {
    constexpr std::string_view kErrSyms[] = {"off", "crc_err"};
    constexpr std::string_view kAddrSyms[] = {"seq", "rand"};
    constexpr std::string_view kCmdSyms[] = {"read",     "write", "crc_write",
                                             "crc_done", "ctrl",  "nop",
                                             "abort"};
    err_codes = stimgen::entry_codes(*err_inject, kErrSyms, 2);
    addr_codes = stimgen::entry_codes(*addr_mode, kAddrSyms, 2);
    cmd_codes =
        stimgen::entry_codes(*cmd, kCmdSyms, static_cast<std::int32_t>(kRead));
  }
};

namespace {

/// Per-worker SoA lane state, reused across batches.
struct IoLanes {
  std::vector<util::Xoshiro256> rng;
  std::vector<std::int64_t> credits;
  std::vector<std::int64_t> credit_limit;
  std::vector<std::int64_t> crc_acc;      ///< beats in the open transfer
  std::vector<std::int64_t> best_commit;  ///< longest *committed* transfer
  std::vector<std::int64_t> ops_left;
  std::vector<std::uint32_t> active;
};

IoLanes& io_lanes() {
  static thread_local IoLanes lanes;
  return lanes;
}

}  // namespace

void IoUnit::run_lanes(const Tables& t, std::span<const std::uint64_t> seeds,
                       std::span<coverage::CoverageVector> out) const {
  ASCDG_ASSERT(seeds.size() == out.size(), "batch seed/out size mismatch");
  const std::size_t n = seeds.size();
  IoLanes& ws = io_lanes();
  ws.rng.clear();
  ws.rng.reserve(n);
  ws.credits.resize(n);
  ws.credit_limit.resize(n);
  ws.crc_acc.assign(n, 0);
  ws.best_commit.assign(n, 0);
  ws.ops_left.resize(n);
  ws.active.clear();
  ws.active.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    ws.rng.emplace_back(seeds[l]);
    out[l].reset(space_.size());
    ws.ops_left[l] = t.num_ops->draw_range(ws.rng[l]);
    ws.credit_limit[l] =
        std::min<std::int64_t>(t.credit_limit->draw_range(ws.rng[l]), kCreditCap);
    ws.credits[l] = ws.credit_limit[l];
    if (ws.ops_left[l] > 0) ws.active.push_back(static_cast<std::uint32_t>(l));
  }

  while (!ws.active.empty()) {
    std::size_t kept = 0;
    for (const std::uint32_t l : ws.active) {
      util::Xoshiro256& rng = ws.rng[l];
      coverage::CoverageVector& vec = out[l];
      std::int64_t& credits = ws.credits[l];
      std::int64_t& crc_acc = ws.crc_acc[l];

      // A transfer only counts toward the crc_* family when it is
      // closed by a crc_done command. Anything else that ends it
      // (errors, resetting commands, gap timeout, link retrain) aborts
      // it uncommitted.

      // Inter-command gap: refills credits; too long a gap times the
      // in-progress CRC transfer out.
      const std::int64_t gap = t.gap_delay->draw_range(rng);
      if (crc_acc > 0 && gap > kGapTimeout) crc_acc = 0;
      credits = std::min(ws.credit_limit[l], credits + 1 + gap / 8);

      // Error injection pre-empts the command.
      const std::int32_t err = stimgen::entry_code(
          *t.err_inject, t.err_codes, t.err_inject->draw_index(rng));
      if (err != 0) {
        vec.hit(err == 1 ? ev_err_crc_ : ev_err_parity_);
        crc_acc = 0;
      } else {
        // Per-command side activity (always-hit shallow events).
        const std::int32_t addr = stimgen::entry_code(
            *t.addr_mode, t.addr_codes, t.addr_mode->draw_index(rng));
        vec.hit(ev_addr_[static_cast<std::size_t>(addr)]);
        const std::int64_t qos = t.qos->draw_int(rng);
        vec.hit(
            ev_qos_[static_cast<std::size_t>(std::clamp<std::int64_t>(qos, 0, 3))]);
        const std::int64_t pkt = t.packet_size->draw_range(rng);
        vec.hit(ev_pkt_[pkt <= 32 ? 0 : pkt <= 128 ? 1 : 2]);

        const auto cmd_index = static_cast<std::size_t>(
            stimgen::entry_code(*t.cmd, t.cmd_codes, t.cmd->draw_index(rng)));
        vec.hit(ev_cmd_[cmd_index]);

        switch (cmd_index) {
          case kCrcWrite: {
            const std::int64_t burst = t.burst_len->draw_range(rng);
            if (credits <= 0) {
              // No credits at all: the transfer stalls long enough to die.
              vec.hit(ev_credit_stall_);
              crc_acc = 0;
              break;
            }
            const std::int64_t consumed = std::min(burst, credits);
            credits -= consumed;
            if (consumed < burst) vec.hit(ev_burst_partial_);
            // Link hazard: each beat independently risks a retrain that
            // kills the transfer. This is environment noise no template
            // parameter can disable, and it is what gives the crc_*
            // family its gradient even under an optimal template.
            bool retrained = false;
            for (std::int64_t beat = 0; beat < consumed; ++beat) {
              ++crc_acc;
              if (rng.bernoulli(kBeatHazard)) {
                retrained = true;
                break;
              }
            }
            if (retrained) {
              vec.hit(ev_link_retrain_);
              crc_acc = 0;
            }
            break;
          }
          case kCrcDone:
            if (crc_acc > 0) {
              ws.best_commit[l] = std::max(ws.best_commit[l], crc_acc);
              vec.hit(ev_crc_commit_);
              crc_acc = 0;
            }
            break;
          case kRead:
          case kNop:
            // Neutral: does not disturb an in-progress CRC transfer.
            break;
          case kWrite:
          case kCtrl:
          case kAbort:
            crc_acc = 0;
            break;
          default:
            break;
        }
      }

      if (--ws.ops_left[l] > 0) ws.active[kept++] = l;
    }
    ws.active.resize(kept);
  }

  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t i = 0; i < crc_events_.size(); ++i) {
      if (ws.best_commit[l] >= kCrcThresholds[i]) out[l].hit(crc_events_[i]);
    }
  }
}

std::unique_ptr<IoUnit::Tables> IoUnit::make_tables(
    const tgen::TestTemplate& tmpl) const {
  return std::make_unique<Tables>(&tmpl, defaults_);
}

coverage::CoverageVector IoUnit::simulate(const tgen::TestTemplate& tmpl,
                                          std::uint64_t seed) const {
  coverage::CoverageVector vec(space_.size());
  const auto tables = make_tables(tmpl);
  run_lanes(*tables, std::span<const std::uint64_t>(&seed, 1),
            std::span<coverage::CoverageVector>(&vec, 1));
  return vec;
}

std::unique_ptr<duv::Duv::Compiled> IoUnit::compile(
    const tgen::TestTemplate& tmpl) const {
  return make_tables(tmpl);
}

void IoUnit::simulate_batch(const tgen::TestTemplate& tmpl,
                            const Compiled* compiled,
                            std::span<const std::uint64_t> seeds,
                            std::span<coverage::CoverageVector> out) const {
  if (compiled == nullptr) {
    run_lanes(*make_tables(tmpl), seeds, out);
    return;
  }
  const auto* tables = dynamic_cast<const Tables*>(compiled);
  ASCDG_ASSERT(tables != nullptr, "compiled tables do not belong to this unit");
  run_lanes(*tables, seeds, out);
}

std::vector<tgen::TestTemplate> IoUnit::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
