#include "duv/io_unit.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "stimgen/sampler.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace ascdg::duv {

namespace {

// Command indices into ev_cmd_ (must match kCmdNames order).
enum Cmd : std::size_t {
  kRead = 0,
  kWrite,
  kCrcWrite,
  kCrcDone,
  kCtrl,
  kNop,
  kAbort,
  kCmdCount
};
constexpr const char* kCmdNames[kCmdCount] = {"read", "write",    "crc_write",
                                              "crc_done", "ctrl", "nop",
                                              "abort"};

// The unit's existing regression suite (paper §IV-B): templates written
// by the verification team over the project's lifetime. Only a couple
// of them exercise the CRC path at all, which is why the crc_* family
// tail is uncovered before CDG. Kept as DSL text so the suite also
// exercises the parser on realistic input.
constexpr std::string_view kSuiteText = R"(
# Plain defaults: what a nightly sanity run uses.
template io_default {
  weight Cmd { read: 35, write: 30, crc_write: 8, crc_done: 2, ctrl: 10, nop: 10, abort: 5 }
}

# Read bandwidth stress.
template io_read_stress {
  weight Cmd { read: 70, write: 15, crc_write: 0, crc_done: 0, ctrl: 5, nop: 10, abort: 0 }
  range PacketSize [64, 256]
  weight AddrMode { seq: 70, rand: 25, wrap: 5 }
}

# Write bandwidth stress.
template io_write_stress {
  weight Cmd { read: 10, write: 75, crc_write: 0, crc_done: 0, ctrl: 10, nop: 5, abort: 0 }
  range PacketSize [64, 256]
}

# Error recovery paths.
template io_error_storm {
  weight ErrInject { off: 70, crc_err: 15, parity_err: 15 }
  weight Cmd { read: 30, write: 28, crc_write: 8, crc_done: 2, ctrl: 12, nop: 5, abort: 15 }
}

# CRC datapath smoke test: the only template that meaningfully enables
# the crc_write/crc_done pair. This is the one the coarse-grained
# search should find.
template io_crc_smoke {
  weight Cmd { read: 15, write: 10, crc_write: 35, crc_done: 10, ctrl: 5, nop: 20, abort: 5 }
  range BurstLen [2, 8]
  weight ErrInject { off: 98, crc_err: 1, parity_err: 1 }
}

# CRC with lazy pacing - long gaps kill most transfers.
template io_crc_long_gap {
  weight Cmd { read: 20, write: 15, crc_write: 28, crc_done: 7, ctrl: 10, nop: 15, abort: 5 }
  range GapDelay [8, 63]
}

# Control/abort corner cases.
template io_ctrl_heavy {
  weight Cmd { read: 15, write: 15, crc_write: 4, crc_done: 1, ctrl: 35, nop: 10, abort: 20 }
}

# QoS arbitration sweep.
template io_qos_sweep {
  weight Qos { 0: 25, 1: 25, 2: 25, 3: 25 }
  weight Cmd { read: 40, write: 40, crc_write: 0, crc_done: 0, ctrl: 10, nop: 10, abort: 0 }
}

# Address wrap corner.
template io_addr_wrap {
  weight AddrMode { seq: 10, rand: 10, wrap: 80 }
}

# Mixed mild stress.
template io_mixed {
  weight Cmd { read: 28, write: 22, crc_write: 12, crc_done: 3, ctrl: 10, nop: 20, abort: 5 }
  range GapDelay [0, 47]
  weight Qos { 0: 30, 1: 30, 2: 25, 3: 15 }
}
)";

}  // namespace

IoUnit::IoUnit() : defaults_("io_unit_defaults") {
  // --- Coverage events -------------------------------------------------
  const std::array<std::string, 6> crc_suffixes = {"004", "008", "016",
                                                   "032", "064", "096"};
  crc_events_ = space_.declare_family("crc", crc_suffixes);

  for (std::size_t c = 0; c < kCmdCount; ++c) {
    ev_cmd_[c] = space_.declare_event("io_cmd_" + std::string(kCmdNames[c]));
  }
  ev_err_crc_ = space_.declare_event("io_err_crc");
  ev_err_parity_ = space_.declare_event("io_err_parity");
  ev_credit_stall_ = space_.declare_event("io_credit_stall");
  ev_burst_partial_ = space_.declare_event("io_burst_partial");
  ev_link_retrain_ = space_.declare_event("io_link_retrain");
  ev_crc_commit_ = space_.declare_event("io_crc_commit");
  const char* addr_names[3] = {"io_addr_seq", "io_addr_rand", "io_addr_wrap"};
  for (std::size_t i = 0; i < 3; ++i) {
    ev_addr_[i] = space_.declare_event(addr_names[i]);
  }
  for (std::size_t q = 0; q < 4; ++q) {
    ev_qos_[q] = space_.declare_event("io_qos" + std::to_string(q));
  }
  const char* pkt_names[3] = {"io_pkt_small", "io_pkt_med", "io_pkt_large"};
  for (std::size_t i = 0; i < 3; ++i) {
    ev_pkt_[i] = space_.declare_event(pkt_names[i]);
  }

  // --- Default parameter settings --------------------------------------
  using tgen::RangeParameter;
  using tgen::Value;
  using tgen::WeightParameter;
  defaults_.add(WeightParameter{"Cmd",
                                {{Value{"read"}, 35},
                                 {Value{"write"}, 30},
                                 {Value{"crc_write"}, 8},
                                 {Value{"crc_done"}, 2},
                                 {Value{"ctrl"}, 10},
                                 {Value{"nop"}, 10},
                                 {Value{"abort"}, 5}}});
  defaults_.add(RangeParameter{"BurstLen", 1, 8});
  defaults_.add(RangeParameter{"GapDelay", 0, 63});
  defaults_.add(WeightParameter{"ErrInject",
                                {{Value{"off"}, 96},
                                 {Value{"crc_err"}, 2},
                                 {Value{"parity_err"}, 2}}});
  defaults_.add(RangeParameter{"CreditLimit", 4, 8});
  defaults_.add(RangeParameter{"NumOps", 60, 160});
  defaults_.add(WeightParameter{
      "AddrMode",
      {{Value{"seq"}, 50}, {Value{"rand"}, 40}, {Value{"wrap"}, 10}}});
  defaults_.add(WeightParameter{"Qos",
                                {{Value{std::int64_t{0}}, 40},
                                 {Value{std::int64_t{1}}, 30},
                                 {Value{std::int64_t{2}}, 20},
                                 {Value{std::int64_t{3}}, 10}}});
  defaults_.add(RangeParameter{"PacketSize", 1, 256});
}

coverage::CoverageVector IoUnit::simulate(const tgen::TestTemplate& tmpl,
                                          std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  stimgen::ParameterSampler sampler(&tmpl, defaults_, rng);
  coverage::CoverageVector vec(space_.size());

  const std::int64_t num_ops = sampler.draw_range("NumOps");
  const std::int64_t credit_limit =
      std::min<std::int64_t>(sampler.draw_range("CreditLimit"), kCreditCap);
  std::int64_t credits = credit_limit;

  std::int64_t crc_acc = 0;        // beats in the currently open transfer
  std::int64_t best_commit = 0;    // longest *committed* transfer

  // A transfer only counts toward the crc_* family when it is closed by
  // a crc_done command. Anything else that ends it (errors, resetting
  // commands, gap timeout, link retrain) aborts it uncommitted.
  const auto abort_transfer = [&] { crc_acc = 0; };

  for (std::int64_t op = 0; op < num_ops; ++op) {
    // Inter-command gap: refills credits; too long a gap times the
    // in-progress CRC transfer out.
    const std::int64_t gap = sampler.draw_range("GapDelay");
    if (crc_acc > 0 && gap > kGapTimeout) abort_transfer();
    credits = std::min(credit_limit, credits + 1 + gap / 8);

    // Error injection pre-empts the command.
    const tgen::Value err = sampler.draw("ErrInject");
    if (err.as_symbol() != "off") {
      vec.hit(err.as_symbol() == "crc_err" ? ev_err_crc_ : ev_err_parity_);
      abort_transfer();
      continue;
    }

    // Per-command side activity (always-hit shallow events).
    const tgen::Value addr = sampler.draw("AddrMode");
    vec.hit(ev_addr_[addr.as_symbol() == "seq"    ? 0
                     : addr.as_symbol() == "rand" ? 1
                                                  : 2]);
    const std::int64_t qos = sampler.draw_int_value("Qos");
    vec.hit(ev_qos_[static_cast<std::size_t>(std::clamp<std::int64_t>(qos, 0, 3))]);
    const std::int64_t pkt = sampler.draw_range("PacketSize");
    vec.hit(ev_pkt_[pkt <= 32 ? 0 : pkt <= 128 ? 1 : 2]);

    const tgen::Value cmd_value = sampler.draw("Cmd");
    const std::string& cmd = cmd_value.as_symbol();
    std::size_t cmd_index = 0;
    for (std::size_t c = 0; c < kCmdCount; ++c) {
      if (cmd == kCmdNames[c]) {
        cmd_index = c;
        break;
      }
    }
    vec.hit(ev_cmd_[cmd_index]);

    switch (cmd_index) {
      case kCrcWrite: {
        const std::int64_t burst = sampler.draw_range("BurstLen");
        if (credits <= 0) {
          // No credits at all: the transfer stalls long enough to die.
          vec.hit(ev_credit_stall_);
          abort_transfer();
          break;
        }
        const std::int64_t consumed = std::min(burst, credits);
        credits -= consumed;
        if (consumed < burst) vec.hit(ev_burst_partial_);
        // Link hazard: each beat independently risks a retrain that
        // kills the transfer. This is environment noise no template
        // parameter can disable, and it is what gives the crc_* family
        // its gradient even under an optimal template.
        bool retrained = false;
        for (std::int64_t beat = 0; beat < consumed; ++beat) {
          ++crc_acc;
          if (sampler.rng().bernoulli(kBeatHazard)) {
            retrained = true;
            break;
          }
        }
        if (retrained) {
          vec.hit(ev_link_retrain_);
          abort_transfer();
        }
        break;
      }
      case kCrcDone:
        if (crc_acc > 0) {
          best_commit = std::max(best_commit, crc_acc);
          vec.hit(ev_crc_commit_);
          crc_acc = 0;
        }
        break;
      case kRead:
      case kNop:
        // Neutral: does not disturb an in-progress CRC transfer.
        break;
      case kWrite:
      case kCtrl:
      case kAbort:
        abort_transfer();
        break;
      default:
        break;
    }
  }

  for (std::size_t i = 0; i < crc_events_.size(); ++i) {
    if (best_commit >= kCrcThresholds[i]) vec.hit(crc_events_[i]);
  }
  return vec;
}

std::vector<tgen::TestTemplate> IoUnit::suite() const {
  return tgen::parse_templates(kSuiteText);
}

}  // namespace ascdg::duv
