// Behavioural model of an L3 cache slice with a bypass pipeline — the
// paper's Fig. 4 / Fig. 6 subject.
//
// Requests arrive separated by InterArrival cycles. Bypassable requests
// (non-cacheable reads, DMA, and hinted read misses) allocate an entry
// in a 16-deep bypass tracker until their response returns RespDelay
// cycles later. The family events byp_reqs01 .. byp_reqs16 fire when the
// maximum number of simultaneously in-flight bypass requests reaches
// 1 .. 16 within one simulation.
//
// Two mechanisms give the family its long hard tail:
//   * Little's law — sustained concurrency needs a high bypass arrival
//     rate AND long response delays AND short inter-arrival gaps, three
//     different template parameters;
//   * occupancy backpressure — above kNackThreshold in-flight entries,
//     new bypass requests are NACKed (retried on the normal path) with
//     probability rising quadratically toward 1 at full occupancy, so
//     each extra level of concurrency is multiplicatively harder (the
//     "descent gradient from easily hit events to hard-to-hit events",
//     §V).
#pragma once

#include <cstdint>

#include "duv/duv.hpp"

namespace ascdg::duv {

class L3Cache final : public Duv {
 public:
  L3Cache();

  [[nodiscard]] std::string_view name() const noexcept override {
    return "l3_cache";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }
  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override;
  [[nodiscard]] std::unique_ptr<Compiled> compile(
      const tgen::TestTemplate& tmpl) const override;
  void simulate_batch(const tgen::TestTemplate& tmpl, const Compiled* compiled,
                      std::span<const std::uint64_t> seeds,
                      std::span<coverage::CoverageVector> out) const override;
  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override;

  /// The byp_reqs01..16 family (ordered easy -> hard).
  [[nodiscard]] const std::vector<coverage::EventId>& byp_family() const noexcept {
    return byp_events_;
  }

  static constexpr std::size_t kTrackerDepth = 16;
  static constexpr std::size_t kNackThreshold = 3;  ///< backpressure onset
  static constexpr std::size_t kWriteQueueDepth = 8;

 private:
  /// Compiled distribution tables + precomputed entry codes (l3_cache.cpp).
  struct Tables;
  [[nodiscard]] std::unique_ptr<Tables> make_tables(
      const tgen::TestTemplate& tmpl) const;
  /// The one simulation kernel: lane i advances seeds[i] into out[i].
  void run_lanes(const Tables& tables, std::span<const std::uint64_t> seeds,
                 std::span<coverage::CoverageVector> out) const;

  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  std::vector<coverage::EventId> byp_events_;
  std::vector<coverage::EventId> wrq_events_;
  coverage::EventId ev_req_[6]{};
  coverage::EventId ev_hit_{}, ev_miss_{};
  coverage::EventId ev_thread_[4]{};
  coverage::EventId ev_nack_{};
  coverage::EventId ev_tracker_full_{};
};

}  // namespace ascdg::duv
