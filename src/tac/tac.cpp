#include "tac/tac.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace ascdg::tac {

double Tac::hit_probability(std::string_view template_name,
                            coverage::EventId event) const {
  return repo_->stats(template_name).hit_rate(event);
}

std::vector<TemplateScore> Tac::best_templates(
    std::span<const WeightedEvent> events, std::size_t n) const {
  obs::Registry& reg = obs::registry();
  reg.counter("ascdg_tac_queries_total").inc();
  obs::Counter& m_scored = reg.counter("ascdg_tac_templates_scored_total");
  std::vector<TemplateScore> scored;
  for (const auto& name : repo_->template_names()) {
    m_scored.inc();
    const auto& stats = repo_->stats(name);
    double score = 0.0;
    for (const auto& [event, weight] : events) {
      score += weight * stats.hit_rate(event);
    }
    if (score > 0.0) scored.push_back({name, score, stats.sims()});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const TemplateScore& a, const TemplateScore& b) {
                     return a.score > b.score;
                   });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

std::vector<TemplateScore> Tac::best_templates(
    std::span<const coverage::EventId> events, std::size_t n) const {
  std::vector<WeightedEvent> weighted;
  weighted.reserve(events.size());
  for (const auto event : events) weighted.push_back({event, 1.0});
  return best_templates(weighted, n);
}

std::vector<coverage::EventId> Tac::uncovered_events() const {
  const coverage::SimStats total = repo_->total();
  std::vector<coverage::EventId> out;
  for (std::size_t i = 0; i < total.event_count(); ++i) {
    const coverage::EventId id{static_cast<std::uint32_t>(i)};
    if (total.hits(id) == 0) out.push_back(id);
  }
  return out;
}

std::vector<TemplateScore> Tac::templates_hitting(
    coverage::EventId event) const {
  const WeightedEvent single{event, 1.0};
  return best_templates(std::span<const WeightedEvent>(&single, 1),
                        repo_->template_names().size());
}

std::vector<std::string> Tac::suggest_regression_policy() const {
  const auto names = repo_->template_names();
  const std::size_t event_count = repo_->event_count();

  // Remaining events each template would newly cover.
  std::vector<bool> covered(event_count, false);
  std::vector<std::string> policy;
  std::vector<bool> used(names.size(), false);

  for (;;) {
    std::size_t best_index = names.size();
    std::size_t best_gain = 0;
    double best_rate_sum = 0.0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (used[i]) continue;
      const auto& stats = repo_->stats(names[i]);
      if (stats.sims() == 0) continue;
      std::size_t gain = 0;
      double rate_sum = 0.0;
      for (std::size_t e = 0; e < event_count; ++e) {
        const coverage::EventId id{static_cast<std::uint32_t>(e)};
        if (!covered[e] && stats.hits(id) > 0) {
          ++gain;
          rate_sum += stats.hit_rate(id);
        }
      }
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && rate_sum > best_rate_sum)) {
        best_index = i;
        best_gain = gain;
        best_rate_sum = rate_sum;
      }
    }
    if (best_index == names.size() || best_gain == 0) break;
    used[best_index] = true;
    policy.push_back(names[best_index]);
    const auto& stats = repo_->stats(names[best_index]);
    for (std::size_t e = 0; e < event_count; ++e) {
      const coverage::EventId id{static_cast<std::uint32_t>(e)};
      if (stats.hits(id) > 0) covered[e] = true;
    }
  }
  return policy;
}

std::vector<coverage::EventId> Tac::reliably_covered_events(
    double min_rate) const {
  std::vector<coverage::EventId> out;
  const auto names = repo_->template_names();
  for (std::size_t e = 0; e < repo_->event_count(); ++e) {
    const coverage::EventId id{static_cast<std::uint32_t>(e)};
    for (const auto& name : names) {
      if (repo_->stats(name).hit_rate(id) >= min_rate) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

}  // namespace ascdg::tac
