// Template-Aware Coverage (paper §IV-B, after Gal et al. DAC'17).
//
// TAC maintains first-order statistics on the coverage of each event by
// each test-template — "the probability of hitting the event with a
// test instance generated from the test-template" — and answers the
// queries the coarse-grained search needs: "given a list of the neighbor
// events of the target, find the best n test-templates that hit these
// events".
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "coverage/repository.hpp"

namespace ascdg::tac {

/// An event with the weight it contributes to a ranking query.
struct WeightedEvent {
  coverage::EventId event;
  double weight = 1.0;
};

/// A template and its score for a query.
struct TemplateScore {
  std::string name;
  double score = 0.0;
  std::size_t sims = 0;
};

class Tac {
 public:
  /// Non-owning view over a coverage repository; the repository must
  /// outlive the Tac.
  explicit Tac(const coverage::CoverageRepository& repo) noexcept
      : repo_(&repo) {}

  /// P(event | template): the per-template empirical hit rate.
  /// Throws util::NotFoundError on unknown template names.
  [[nodiscard]] double hit_probability(std::string_view template_name,
                                       coverage::EventId event) const;

  /// Best n templates ranked by the (weighted) sum of hit probabilities
  /// over `events` — the approximated-target score. Templates with zero
  /// score are omitted, so the result may be shorter than n.
  [[nodiscard]] std::vector<TemplateScore> best_templates(
      std::span<const WeightedEvent> events, std::size_t n) const;

  /// Convenience overload with unit weights.
  [[nodiscard]] std::vector<TemplateScore> best_templates(
      std::span<const coverage::EventId> events, std::size_t n) const;

  /// Events never hit by any template (the CDG targets).
  [[nodiscard]] std::vector<coverage::EventId> uncovered_events() const;

  /// Templates that hit `event` at least once, ranked by hit rate.
  [[nodiscard]] std::vector<TemplateScore> templates_hitting(
      coverage::EventId event) const;

  /// Suggests a regression policy (after the TAC paper's usage): a
  /// small set of templates that together hit every event any template
  /// hits, chosen greedily (largest marginal coverage first; ties by
  /// higher summed hit rate, then by name). The returned order is the
  /// selection order, so truncating the list keeps the most valuable
  /// templates.
  [[nodiscard]] std::vector<std::string> suggest_regression_policy() const;

  /// Events hit by at least `min_rate` of some single template — the
  /// "easily hit somewhere" set a regression policy can rely on.
  [[nodiscard]] std::vector<coverage::EventId> reliably_covered_events(
      double min_rate) const;

 private:
  const coverage::CoverageRepository* repo_;
};

}  // namespace ascdg::tac
