// Rendering of the paper's result artifacts:
//   * Fig. 3 / Fig. 4 — per-event hit statistics across the flow phases,
//     with the IBM color convention (red = never hit, orange = lightly
//     hit, green = well hit);
//   * Fig. 5 — event-status histogram per phase for a cross product;
//   * Fig. 6 — maximal target value per optimization iteration.
#pragma once

#include <filesystem>
#include <ostream>
#include <span>
#include <string>

#include "flow/runner.hpp"
#include "coverage/space.hpp"
#include "obs/metrics.hpp"
#include "opt/objective.hpp"
#include "util/table.hpp"

namespace ascdg::report {

/// Builds the Fig. 3/4-style table: one row per family event, one
/// (#hits, hit rate) column pair per phase.
[[nodiscard]] util::Table phase_table(
    const coverage::CoverageSpace& space,
    std::span<const coverage::EventId> family_events,
    const flow::FlowResult& flow);

/// Event-status counts over an event set.
struct StatusCounts {
  std::size_t never = 0;
  std::size_t lightly = 0;
  std::size_t well = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return never + lightly + well;
  }
};

[[nodiscard]] StatusCounts count_status(
    const coverage::SimStats& stats,
    std::span<const coverage::EventId> events);

/// Builds the Fig. 5-style table: status counts at each flow phase.
[[nodiscard]] util::Table status_table(
    const coverage::CoverageSpace& space,
    std::span<const coverage::EventId> events, const flow::FlowResult& flow);

/// Renders a Fig. 5-style horizontal bar chart of status counts per
/// phase (ASCII, colored when `use_color`).
void render_status_bars(std::ostream& os,
                        std::span<const coverage::EventId> events,
                        const flow::FlowResult& flow, bool use_color = true);

/// Renders a Fig. 6-style ASCII line chart: max target value per
/// optimization iteration.
void render_trace(std::ostream& os, const opt::OptResult& result,
                  std::size_t height = 16);

/// One-paragraph phase header ("Sampling phase (200 tests x 100 sims)").
[[nodiscard]] std::string phase_caption(const flow::FlowResult& flow);

/// Builds the run-telemetry table: per flow phase, its simulation
/// budget, share of the flow's total, wall time, and throughput.
[[nodiscard]] util::Table telemetry_table(const flow::FlowResult& flow);

/// Renders a farm telemetry snapshot (counters + chunk-latency
/// histogram) as a markdown fragment.
void render_farm_telemetry(std::ostream& os,
                           const batch::TelemetrySnapshot& farm);

/// Renders the "Run health" fragment from a metrics-registry snapshot:
/// process RSS / peak RSS / CPU split (the ascdg_proc_* gauges), the
/// watchdog verdict (ascdg_watchdog_stalls_total), per-farm worker
/// utilization (ascdg_farm_worker_busy_fraction, ppm), and the
/// per-phase CPU/RSS footprint (ascdg_phase_*{phase=...}). Sections
/// whose series are absent from the snapshot are omitted, so the
/// fragment degrades gracefully when the sampler never ran.
void render_run_health(std::ostream& os, const obs::MetricsSnapshot& snapshot);

/// Renders the convergence section as markdown: the optimizer's
/// objective curve (paper Fig. 6) as a fenced ASCII chart plus the
/// per-iteration step/resample/halving dynamics, and the coverage
/// progress — which flow phase first hit each target event. When a
/// metrics snapshot is given, latency/batch-size histogram quantiles
/// (chunk latency, eval batch size) are appended — the per-simulation
/// cost behind the convergence curve.
void render_convergence(std::ostream& os, const coverage::CoverageSpace& space,
                        const flow::FlowResult& flow,
                        const obs::MetricsSnapshot* snapshot = nullptr);

/// Renders a durable-session manifest summary as a markdown fragment:
/// the session directory, seed, resume count, where the last resume
/// picked up, and the per-stage status/sims/wall table.
void render_session(std::ostream& os, const flow::SessionSummary& session);

/// Writes a complete markdown report of a flow run — caption, the
/// Fig. 3/4-style phase table, the status summary, the optimization
/// trace as a markdown table, the convergence section, run telemetry,
/// and the harvested template — to `path`. When `farm` is non-null its
/// counters are appended to the telemetry section; when `session` is
/// non-null a "Session" section describes the durable session the run
/// checkpointed into. Throws util::Error on IO failure.
void write_flow_markdown(const std::filesystem::path& path,
                         const coverage::CoverageSpace& space,
                         std::span<const coverage::EventId> family_events,
                         const flow::FlowResult& flow,
                         const batch::TelemetrySnapshot* farm = nullptr,
                         const flow::SessionSummary* session = nullptr);

/// Writes the machine-readable metrics snapshot of a flow run: one JSON
/// object (schema "ascdg-run-metrics-v1") holding the per-iteration
/// implicit-filtering series (objective value, step size, resamples,
/// halvings), the refinement series when present, per-target-event
/// first-hit phases, and the full metrics-registry snapshot. Throws
/// util::Error on IO failure. See docs/observability.md.
void write_metrics_json(const std::filesystem::path& path,
                        const coverage::CoverageSpace& space,
                        const flow::FlowResult& flow,
                        const obs::MetricsSnapshot& snapshot);

}  // namespace ascdg::report
